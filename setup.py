"""Setup shim for environments without the `wheel` package (offline CI).

`pip install -e . --no-build-isolation` needs wheel for PEP 660 builds; this
shim lets `python setup.py develop` provide the editable install instead.
"""

from setuptools import setup

setup()
