"""The sandbox: runs a host program under a monitor, capturing Table V signals.

The sandbox plays the role of the campaign scripts' process management:

* a fresh simulated device per run (no state leaks between injections),
* tools attached via ``preload=[...]`` (the ``LD_PRELOAD`` analogue),
* an instruction-budget watchdog standing in for the wall-clock timeout a
  real campaign uses to detect hangs,
* capture of stdout, output files, exit status, crashes, CUDA errors and
  the device's dmesg (Xid) log.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, fields, replace

from repro.cuda.runtime import CudaRuntime
from repro.errors import DeviceException, ReproError, WatchdogTimeout
from repro.gpusim.device import DEFAULT_INSTRUCTION_BUDGET, Device
from repro.nvbit.api import NVBitRuntime
from repro.nvbit.tool import NVBitTool
from repro.runner.app import AppContext, AppExit, Application
from repro.runner.artifacts import RunArtifacts

# Exit statuses mirroring POSIX conventions used by campaign scripts.
EXIT_TIMEOUT = 124  # the `timeout` utility's kill status
EXIT_CRASH = 134  # SIGABRT


@dataclass
class SandboxConfig:
    """Per-run environment configuration."""

    seed: int = 0
    instruction_budget: int = DEFAULT_INSTRUCTION_BUDGET
    family: str = "volta"
    num_sms: int | None = None
    global_mem_bytes: int = 64 * 1024 * 1024
    # Block-compiled interpreter (repro.gpusim.blockc) on the device's
    # uninstrumented fast path.  Byte-identical results either way; the
    # knob exists for differential testing and benchmarking.  Deliberately
    # NOT part of the replay-cache key: a tape recorded under either
    # setting is valid for both.
    block_compile: bool = True
    extra_env: dict[str, str] = field(default_factory=dict)

    def clone(self, **overrides) -> "SandboxConfig":
        """An independent copy (every field, including ``extra_env``).

        Override names are validated against the dataclass fields: a
        misspelled keyword used to ``setattr`` a dead attribute silently,
        leaving the caller running the default configuration.
        """
        known = {f.name for f in fields(self)}
        unknown = sorted(set(overrides) - known)
        if unknown:
            raise ReproError(
                f"unknown SandboxConfig field(s) in clone(): {unknown}; "
                f"valid fields: {sorted(known)}"
            )
        copy = replace(self, extra_env=dict(self.extra_env))
        for name, value in overrides.items():
            setattr(copy, name, value)
        return copy

    def spec(self, instruction_budget: int | None = None) -> "SandboxSpec":
        """Freeze into a picklable :class:`SandboxSpec` for worker processes."""
        return SandboxSpec(
            seed=self.seed,
            instruction_budget=(
                self.instruction_budget
                if instruction_budget is None
                else instruction_budget
            ),
            family=self.family,
            num_sms=self.num_sms,
            global_mem_bytes=self.global_mem_bytes,
            block_compile=self.block_compile,
            extra_env=tuple(sorted(self.extra_env.items())),
        )


@dataclass(frozen=True)
class SandboxSpec:
    """A frozen, picklable snapshot of a :class:`SandboxConfig`.

    Campaign workers rebuild their sandbox from this record, so every field
    — including ``family``, ``num_sms``, ``global_mem_bytes`` and
    ``extra_env`` — crosses the process boundary.  (The historical parallel
    runner rebuilt configs from ``seed`` + ``instruction_budget`` only,
    silently running non-default sandboxes on a default device.)
    """

    seed: int = 0
    instruction_budget: int = DEFAULT_INSTRUCTION_BUDGET
    family: str = "volta"
    num_sms: int | None = None
    global_mem_bytes: int = 64 * 1024 * 1024
    block_compile: bool = True
    extra_env: tuple[tuple[str, str], ...] = ()

    def config(self) -> SandboxConfig:
        """Thaw back into the mutable config the sandbox consumes."""
        return SandboxConfig(
            seed=self.seed,
            instruction_budget=self.instruction_budget,
            family=self.family,
            num_sms=self.num_sms,
            global_mem_bytes=self.global_mem_bytes,
            block_compile=self.block_compile,
            extra_env=dict(self.extra_env),
        )


def run_app(
    app: Application,
    preload: list[NVBitTool] | None = None,
    config: SandboxConfig | None = None,
    tracer=None,  # repro.obs.Tracer | None (kept untyped: obs is optional here)
    recorder=None,  # repro.gpusim.replay.ReplayRecorder | None
    replay=None,  # repro.gpusim.replay.ReplayCursor | None
) -> RunArtifacts:
    """Run ``app`` to completion (or failure) and collect its artifacts.

    When a :class:`repro.obs.Tracer` is supplied, the whole run is recorded
    as one ``run`` span carrying the attached tools and the run's outcome
    (exit status, instruction/cycle counts, warps launched, ...).

    ``recorder`` attaches a golden-replay recorder to the run's device
    (every launch boundary captures its write delta); ``replay`` hands the
    driver a fast-forward cursor so launches before the injection target
    apply the recorded golden delta instead of simulating.
    """
    if tracer is None:
        from repro.obs import NULL_TRACER

        tracer = NULL_TRACER
    config = config or SandboxConfig()
    with tracer.span(
        "run",
        workload=app.name,
        tools=[tool.name for tool in preload] if preload else [],
    ) as span:
        device = Device(
            family=config.family,
            global_mem_bytes=config.global_mem_bytes,
            num_sms=config.num_sms,
            instruction_budget=config.instruction_budget,
            block_compile=config.block_compile,
        )
        if recorder is not None:
            recorder.workload = app.name
            device.replay_recorder = recorder
        interceptor = NVBitRuntime(preload) if preload else None
        runtime = CudaRuntime(device, interceptor=interceptor, replay=replay)
        ctx = AppContext(runtime, seed=config.seed, env=config.extra_env)
        artifacts = RunArtifacts()
        started = time.perf_counter()
        try:
            app.run(ctx)
            artifacts.exit_status = 0
        except AppExit as exc:
            artifacts.exit_status = exc.code
        except WatchdogTimeout:
            artifacts.timed_out = True
            artifacts.exit_status = EXIT_TIMEOUT
        except DeviceException as exc:
            # A device fault escaping the driver means the host had no chance
            # to handle it: treat as a crash of the process.
            artifacts.crashed = True
            artifacts.crash_reason = f"{type(exc).__name__}: {exc}"
            artifacts.exit_status = EXIT_CRASH
        except (ReproError, ArithmeticError, LookupError, ValueError, TypeError) as exc:
            artifacts.crashed = True
            artifacts.crash_reason = f"{type(exc).__name__}: {exc}"
            artifacts.exit_status = EXIT_CRASH
        finally:
            artifacts.wall_time = time.perf_counter() - started
            if interceptor is not None:
                interceptor.terminate()
        artifacts.stdout = ctx.stdout
        artifacts.files = dict(ctx.files)
        artifacts.cuda_errors = [
            f"{code.name}: {detail}" for code, detail in runtime.driver.error_log
        ]
        artifacts.dmesg = list(device.dmesg)
        artifacts.instructions_executed = device.instructions_executed
        artifacts.cycles = device.cycles
        artifacts.active_sms = sorted(device.active_sms)
        artifacts.warps_launched = device.warps_launched
        artifacts.divergence_depth_high_water = device.divergence_depth_high_water
        artifacts.blockc_blocks_compiled = device.blockc_blocks_compiled
        artifacts.blockc_block_hits = device.blockc_block_hits
        artifacts.blockc_compile_seconds = device.blockc_compile_seconds
        if device.blockc_blocks_compiled:
            # Compile-phase span: codegen happens lazily inside kernel
            # launches, so the aggregate is emitted as a zero-width span
            # carrying the totals once the run is over.
            with tracer.span(
                "blockc_compile",
                blocks_compiled=device.blockc_blocks_compiled,
                compile_seconds=device.blockc_compile_seconds,
            ):
                pass
        if replay is not None:
            artifacts.replay_launches_skipped = replay.skipped
            artifacts.replay_tail_skipped = replay.tail_skipped
            if replay.converged_at is not None:
                artifacts.replay_converged_at = replay.converged_at
        if span is not None:  # NullTracer yields None
            span.attrs.update(
                exit_status=artifacts.exit_status,
                crashed=artifacts.crashed,
                timed_out=artifacts.timed_out,
                instructions=artifacts.instructions_executed,
                cycles=artifacts.cycles,
                warps_launched=artifacts.warps_launched,
                divergence_depth_high_water=artifacts.divergence_depth_high_water,
                blockc_blocks_compiled=artifacts.blockc_blocks_compiled,
                blockc_block_hits=artifacts.blockc_block_hits,
            )
            if replay is not None:
                span.attrs["replay_launches_skipped"] = artifacts.replay_launches_skipped
                span.attrs["replay_tail_skipped"] = artifacts.replay_tail_skipped
                span.attrs["replay_converged_at"] = artifacts.replay_converged_at
    return artifacts
