"""Sandboxed application execution: the campaign's process-management layer."""

from repro.runner.app import AppContext, AppExit, Application
from repro.runner.artifacts import CheckResult, RunArtifacts
from repro.runner.golden import GoldenError, capture_golden, hang_budget
from repro.runner.sandbox import EXIT_CRASH, EXIT_TIMEOUT, SandboxConfig, run_app

__all__ = [
    "Application",
    "AppContext",
    "AppExit",
    "RunArtifacts",
    "CheckResult",
    "run_app",
    "SandboxConfig",
    "EXIT_CRASH",
    "EXIT_TIMEOUT",
    "capture_golden",
    "hang_budget",
    "GoldenError",
]
