"""The application abstraction: a host program plus its SDC-check script.

An :class:`Application` is what NVBitFI targets: host code that drives GPU
kernels through the CUDA runtime, prints to stdout, writes output files and
returns an exit status.  ``check`` plays the role of the per-program SDC
checking script (paper §IV-A) — it must be supplied by the user because
"what constitutes an SDC is both application and user dependent"; the
default is an exact comparison of stdout and output files.
"""

from __future__ import annotations

import numpy as np

from repro.cuda.runtime import CudaRuntime
from repro.runner.artifacts import CheckResult, RunArtifacts


class AppExit(Exception):
    """Raised by ``ctx.exit(code)`` to terminate the host program."""

    def __init__(self, code: int) -> None:
        super().__init__(f"exit({code})")
        self.code = code


class AppContext:
    """The 'process environment' handed to a host program."""

    def __init__(
        self,
        cuda: CudaRuntime,
        seed: int = 0,
        env: dict[str, str] | None = None,
    ) -> None:
        self.cuda = cuda
        self.seed = seed
        self.env = dict(env or {})
        self._stdout: list[str] = []
        self.files: dict[str, bytes] = {}

    def getenv(self, name: str, default: str | None = None) -> str | None:
        """The program's environment (``SandboxConfig.extra_env``)."""
        return self.env.get(name, default)

    def print(self, *parts: object) -> None:
        """The program's stdout."""
        self._stdout.append(" ".join(str(p) for p in parts))

    def write_file(self, name: str, data: bytes | str) -> None:
        """The program's output files."""
        self.files[name] = data.encode() if isinstance(data, str) else bytes(data)

    def exit(self, code: int) -> None:
        """Terminate with an explicit exit status (e.g. a failed assertion)."""
        raise AppExit(code)

    def rng(self, salt: str = "input") -> np.random.Generator:
        """Deterministic input-generation stream for this run."""
        from repro.utils.rng import SeedSequenceStream

        return SeedSequenceStream(self.seed).child(salt).generator()

    @property
    def stdout(self) -> str:
        return "\n".join(self._stdout) + ("\n" if self._stdout else "")


class Application:
    """Base class for target programs."""

    name = "application"
    description = ""

    def run(self, ctx: AppContext) -> None:
        """The host program. Must be deterministic given ``ctx.seed``."""
        raise NotImplementedError

    def check(self, golden: RunArtifacts, observed: RunArtifacts) -> CheckResult:
        """The SDC-check script: compare a run against the golden run."""
        if observed.stdout != golden.stdout:
            return CheckResult.fail("Standard output is different")
        if set(observed.files) != set(golden.files):
            return CheckResult.fail("Output file set is different")
        for name, payload in golden.files.items():
            if observed.files[name] != payload:
                return CheckResult.fail(f"Output file is different: {name}")
        return CheckResult.ok()
