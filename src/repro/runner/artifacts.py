"""Run artifacts: everything outcome classification (Table V) looks at."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RunArtifacts:
    """The observable result of one sandboxed program run."""

    stdout: str = ""
    files: dict[str, bytes] = field(default_factory=dict)
    exit_status: int = 0
    crashed: bool = False
    crash_reason: str = ""
    timed_out: bool = False
    cuda_errors: list[str] = field(default_factory=list)
    dmesg: list[str] = field(default_factory=list)
    wall_time: float = 0.0
    instructions_executed: int = 0
    cycles: int = 0  # simulated GPU time, incl. instrumentation cost
    active_sms: list[int] = field(default_factory=list)
    warps_launched: int = 0
    divergence_depth_high_water: int = 0  # deepest SIMT stack seen
    replay_launches_skipped: int = 0  # launches fast-forwarded from the golden log
    replay_tail_skipped: int = 0  # launches tail-replayed after re-convergence
    replay_converged_at: int = -1  # launch seq where divergence emptied (-1: never)
    blockc_blocks_compiled: int = 0  # basic blocks code-generated this run
    blockc_block_hits: int = 0  # compiled blocks executed whole
    blockc_compile_seconds: float = 0.0  # wall time spent in block codegen

    @property
    def anomalies(self) -> list[str]:
        """Non-handled system anomalies (drive the Potential-DUE flag)."""
        return self.cuda_errors + self.dmesg

    def summary(self) -> str:
        flags = []
        if self.timed_out:
            flags.append("TIMEOUT")
        if self.crashed:
            flags.append(f"CRASH({self.crash_reason})")
        if self.exit_status:
            flags.append(f"exit={self.exit_status}")
        if self.cuda_errors:
            flags.append(f"{len(self.cuda_errors)} CUDA error(s)")
        if self.dmesg:
            flags.append(f"{len(self.dmesg)} dmesg line(s)")
        status = ", ".join(flags) if flags else "clean"
        return (
            f"[{status}] stdout={len(self.stdout)}B files={len(self.files)} "
            f"instrs={self.instructions_executed} wall={self.wall_time:.3f}s"
        )


@dataclass
class CheckResult:
    """Verdict of an application's SDC-check script."""

    passed: bool
    detail: str = ""

    @classmethod
    def ok(cls) -> "CheckResult":
        return cls(True, "outputs match")

    @classmethod
    def fail(cls, detail: str) -> "CheckResult":
        return cls(False, detail)
