"""Golden-run management (Figure 1: the fault-free reference execution)."""

from __future__ import annotations

from repro.errors import ReproError
from repro.runner.app import Application
from repro.runner.artifacts import RunArtifacts
from repro.runner.sandbox import SandboxConfig, run_app


class GoldenError(ReproError):
    """The fault-free run itself failed — the campaign cannot proceed."""


def capture_golden(
    app: Application,
    config: SandboxConfig | None = None,
    tracer=None,
    recorder=None,  # repro.gpusim.replay.ReplayRecorder | None
    replay=None,  # repro.gpusim.replay.ReplayCursor | None
) -> RunArtifacts:
    """Run the application fault-free and validate the reference artifacts.

    With a ``recorder`` attached, the run also tapes every launch's
    global-memory write delta and device counters for golden-replay
    fast-forward (see :mod:`repro.gpusim.replay`).  With a ``replay``
    cursor (a cached tape from a previous campaign), every launch is
    fast-forwarded from the recording instead of simulated — the host
    program still runs, so the reference artifacts are identical.
    """
    golden = run_app(
        app, preload=None, config=config, tracer=tracer, recorder=recorder,
        replay=replay,
    )
    if golden.timed_out:
        raise GoldenError(
            f"golden run of {app.name!r} exhausted its instruction budget; "
            "raise SandboxConfig.instruction_budget"
        )
    if golden.crashed:
        raise GoldenError(
            f"golden run of {app.name!r} crashed: {golden.crash_reason}"
        )
    if golden.exit_status != 0:
        raise GoldenError(
            f"golden run of {app.name!r} exited with status {golden.exit_status}"
        )
    if golden.cuda_errors or golden.dmesg:
        raise GoldenError(
            f"golden run of {app.name!r} produced device anomalies: "
            f"{golden.anomalies}"
        )
    return golden


def hang_budget(golden: RunArtifacts, factor: int = 10, floor: int = 100_000) -> int:
    """Watchdog budget for injection runs, scaled from the golden run.

    Real campaigns set the hang timeout to a multiple of the fault-free
    runtime; we scale the instruction budget the same way.
    """
    return max(golden.instructions_executed * factor, floor)
