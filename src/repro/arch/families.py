"""GPU architecture families.

The paper's "architectural abstraction" claim is that one tool binary works
across Kepler..Ampere because NVBit hides per-family SASS encoding
differences.  We model the same thing: each family carries its own device
parameters and a distinct *encoding salt* (standing in for the per-family
binary encodings); the NVBit layer and everything above it never looks at
the salt — which is exactly the abstraction boundary the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ArchFamily:
    """Parameters of one GPU architecture family."""

    name: str
    compute_capability: tuple[int, int]
    num_sms: int
    max_threads_per_block: int
    shared_mem_per_block: int
    max_regs_per_thread: int
    encoding_salt: int  # stands in for family-specific SASS encodings
    year: int

    def __str__(self) -> str:
        major, minor = self.compute_capability
        return f"{self.name} (sm_{major}{minor})"


ARCH_FAMILIES: dict[str, ArchFamily] = {
    family.name: family
    for family in (
        ArchFamily("kepler", (3, 5), 15, 1024, 49152, 255, 0x35, 2012),
        ArchFamily("maxwell", (5, 2), 24, 1024, 49152, 255, 0x52, 2014),
        ArchFamily("pascal", (6, 1), 28, 1024, 49152, 255, 0x61, 2016),
        ArchFamily("volta", (7, 0), 80, 1024, 49152, 255, 0x70, 2017),
        ArchFamily("turing", (7, 5), 68, 1024, 49152, 255, 0x75, 2018),
        ArchFamily("ampere", (8, 0), 108, 1024, 49152, 255, 0x80, 2020),
    )
}

DEFAULT_FAMILY = "volta"  # the paper evaluates on a Titan V (Volta)


def arch_by_name(name: str) -> ArchFamily:
    """Look up a family by name, with a helpful error."""
    try:
        return ARCH_FAMILIES[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown architecture {name!r}; available: {sorted(ARCH_FAMILIES)}"
        ) from None
