"""Architecture family parameters (Kepler .. Ampere)."""

from repro.arch.families import ARCH_FAMILIES, ArchFamily, arch_by_name

__all__ = ["ARCH_FAMILIES", "ArchFamily", "arch_by_name"]
