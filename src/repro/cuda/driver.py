"""Miniature CUDA driver API over the simulated device.

This layer exists because NVBit's whole mechanism is interception of
*driver API events*: every ``cuLaunchKernel``, module load and memcpy fires
callbacks into attached instrumentation tools (the ``LD_PRELOAD``
analogue), and the launch path asks the NVBit runtime whether to run the
original kernel or its instrumented clone.

Failure model (paper §IV-A): a GPU-side fault terminates the current kernel
early and records a *sticky last error* plus an entry in the per-context
error log, but the process — and subsequent kernels — keep running unless
the host explicitly checks.  A host that never calls
:meth:`CudaDriver.cuGetLastError` / :meth:`cuCtxSynchronize` sails on with
possibly corrupt data (the "potential DUE" outcome).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.cuda.errorcodes import CudaError
from repro.errors import (
    AllocationError,
    DeviceException,
    DeviceTrap,
    LaunchError,
    MemoryViolation,
    WatchdogTimeout,
)
from repro.gpusim.device import Device
from repro.sass.encoding import decode_module
from repro.sass.assembler import assemble
from repro.sass.program import Kernel, SassModule


class CudaEvent(enum.Enum):
    """Driver API callback ids (cbids) observable by NVBit tools."""

    CTX_CREATE = "cuCtxCreate"
    CTX_DESTROY = "cuCtxDestroy"
    MODULE_LOAD = "cuModuleLoadData"
    MEM_ALLOC = "cuMemAlloc"
    MEM_FREE = "cuMemFree"
    MEMCPY_HTOD = "cuMemcpyHtoD"
    MEMCPY_DTOH = "cuMemcpyDtoH"
    LAUNCH_KERNEL = "cuLaunchKernel"
    CTX_SYNCHRONIZE = "cuCtxSynchronize"


@dataclass
class CudaFunction:
    """A loaded kernel handle."""

    kernel: Kernel
    module: "CudaModule"

    @property
    def name(self) -> str:
        return self.kernel.name

    def __hash__(self) -> int:
        return id(self.kernel)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CudaFunction) and other.kernel is self.kernel


@dataclass
class CudaModule:
    """A loaded module (possibly a dynamically loaded library)."""

    sass: SassModule
    name: str
    is_library: bool = False
    functions: dict[str, CudaFunction] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for kernel in self.sass:
            self.functions[kernel.name] = CudaFunction(kernel, self)


@dataclass
class LaunchParams:
    """The cbid payload for LAUNCH_KERNEL events (mutable by tools)."""

    func: CudaFunction
    grid: tuple[int, int, int] | int
    block: tuple[int, int, int] | int
    args: list[int]
    shared_bytes: int = 0
    error: CudaError = CudaError.SUCCESS


class CudaDriver:
    """One driver instance == one CUDA context on one device."""

    def __init__(
        self, device: Device, interceptor: Any = None, replay: Any = None
    ) -> None:
        self.device = device
        self.interceptor = interceptor  # the NVBit runtime, if attached
        # Golden-replay fast-forward (repro.gpusim.replay.ReplayCursor):
        # launches strictly before the injection target apply the recorded
        # golden delta instead of simulating; with tail fast-forward the
        # cursor also tracks post-target divergence (the device calls its
        # begin/end launch hooks) and re-arms once state re-converges.
        self.replay = replay
        if replay is not None:
            device.replay_tracker = replay
        self.last_error = CudaError.SUCCESS
        self.error_log: list[tuple[CudaError, str]] = []
        self.modules: list[CudaModule] = []
        self._dispatch(CudaEvent.CTX_CREATE, None, is_exit=False)
        self._dispatch(CudaEvent.CTX_CREATE, None, is_exit=True)

    # -- module management ---------------------------------------------------

    def cuModuleLoadData(
        self, image: str | bytes, name: str = "<module>", is_library: bool = False
    ) -> CudaModule:
        """Load a module from SASS text or a binary cubin blob."""
        if isinstance(image, bytes):
            sass = decode_module(image, name=name)
        else:
            sass = assemble(image, module_name=name)
        module = CudaModule(sass=sass, name=name, is_library=is_library)
        self.modules.append(module)
        self._dispatch(CudaEvent.MODULE_LOAD, module, is_exit=False)
        self._dispatch(CudaEvent.MODULE_LOAD, module, is_exit=True)
        return module

    def cuModuleGetFunction(self, module: CudaModule, name: str) -> CudaFunction:
        try:
            return module.functions[name]
        except KeyError:
            raise KeyError(
                f"no kernel {name!r} in module {module.name!r}; "
                f"available: {sorted(module.functions)}"
            ) from None

    # -- memory ------------------------------------------------------------------

    def cuMemAlloc(self, nbytes: int) -> int:
        self._dispatch(CudaEvent.MEM_ALLOC, nbytes, is_exit=False)
        try:
            address = self.device.malloc(nbytes)
        except AllocationError:
            self._record(CudaError.ERROR_OUT_OF_MEMORY, f"cuMemAlloc({nbytes})")
            raise
        self._dispatch(CudaEvent.MEM_ALLOC, address, is_exit=True)
        return address

    def cuMemFree(self, address: int) -> None:
        self._dispatch(CudaEvent.MEM_FREE, address, is_exit=False)
        self.device.free(address)
        self._dispatch(CudaEvent.MEM_FREE, address, is_exit=True)

    def cuMemcpyHtoD(self, address: int, payload: bytes) -> CudaError:
        self._dispatch(CudaEvent.MEMCPY_HTOD, (address, len(payload)), is_exit=False)
        try:
            self.device.global_mem.write_bytes(address, payload)
            if self.replay is not None:
                # Tail tracking: the payload is golden-identical (host state
                # cannot have diverged while the DtoH/error guards hold), so
                # it is mirrored into the golden shadow.
                self.replay.note_host_write(address, bytes(payload))
            result = CudaError.SUCCESS
        except MemoryViolation as exc:
            result = self._record(CudaError.ERROR_ILLEGAL_ADDRESS, str(exc))
        self._dispatch(CudaEvent.MEMCPY_HTOD, (address, len(payload)), is_exit=True)
        return result

    def cuMemcpyDtoH(self, address: int, nbytes: int) -> bytes:
        self._dispatch(CudaEvent.MEMCPY_DTOH, (address, nbytes), is_exit=False)
        data = self.device.global_mem.read_bytes(address, nbytes)
        if self.replay is not None:
            # Tail tracking: reading a divergent page makes the divergence
            # host-visible, which permanently disarms tail fast-forward.
            self.replay.note_host_read(address, nbytes)
        self._dispatch(CudaEvent.MEMCPY_DTOH, (address, nbytes), is_exit=True)
        return data

    # -- launch ----------------------------------------------------------------

    def cuLaunchKernel(
        self,
        func: CudaFunction,
        grid,
        block,
        args: list[int] | None = None,
        shared_bytes: int = 0,
    ) -> CudaError:
        """Launch a kernel; GPU faults become sticky errors, not exceptions."""
        params = LaunchParams(func, grid, block, list(args or []), shared_bytes)
        self._dispatch(CudaEvent.LAUNCH_KERNEL, params, is_exit=False)
        hooks = None
        if self.interceptor is not None:
            compiles_before = getattr(self.interceptor, "jit_compile_count", 0)
            hooks = self.interceptor.active_hooks(func)
            compiles_after = getattr(self.interceptor, "jit_compile_count", 0)
            for _ in range(compiles_after - compiles_before):
                self.device.charge_jit_compile()
        try:
            replayed = None
            if self.replay is not None:
                from repro.gpusim.device import _as_dim3

                replayed = self.replay.consult(
                    self.device,
                    func.name,
                    _as_dim3(grid),
                    _as_dim3(block),
                    params.args,
                    shared_bytes,
                    instrumented=hooks is not None,
                )
            if replayed is not None:
                # Fast-forward: this launch is bit-identical to the golden
                # run, so restore its recorded write delta and counters
                # instead of simulating it.
                self.replay.apply(self.device, replayed)
            else:
                self.device.launch(
                    func.kernel, grid, block, params.args, shared_bytes, hooks=hooks
                )
            result = CudaError.SUCCESS
        except LaunchError as exc:
            result = self._record(CudaError.ERROR_INVALID_CONFIGURATION, str(exc))
        except MemoryViolation as exc:
            code = (
                CudaError.ERROR_MISALIGNED_ADDRESS
                if exc.reason == "misaligned"
                else CudaError.ERROR_ILLEGAL_ADDRESS
            )
            result = self._record(code, str(exc))
        except WatchdogTimeout:
            # A hang: the sandbox monitor, not the driver, handles this.
            params.error = CudaError.ERROR_LAUNCH_TIMEOUT
            self._dispatch(CudaEvent.LAUNCH_KERNEL, params, is_exit=True)
            raise
        except DeviceTrap as exc:
            result = self._record(CudaError.ERROR_ILLEGAL_INSTRUCTION, str(exc))
        except DeviceException as exc:  # pragma: no cover - safety net
            result = self._record(CudaError.ERROR_LAUNCH_FAILED, str(exc))
        params.error = result
        self._dispatch(CudaEvent.LAUNCH_KERNEL, params, is_exit=True)
        return result

    # -- synchronisation / errors ---------------------------------------------

    def cuCtxSynchronize(self) -> CudaError:
        """Returns (without clearing) the sticky error, like cudaDeviceSynchronize."""
        self._dispatch(CudaEvent.CTX_SYNCHRONIZE, None, is_exit=False)
        self._dispatch(CudaEvent.CTX_SYNCHRONIZE, None, is_exit=True)
        return self.last_error

    def cuGetLastError(self) -> CudaError:
        """Returns and clears the sticky error, like cudaGetLastError."""
        error, self.last_error = self.last_error, CudaError.SUCCESS
        return error

    def shutdown(self) -> None:
        self._dispatch(CudaEvent.CTX_DESTROY, None, is_exit=False)
        self._dispatch(CudaEvent.CTX_DESTROY, None, is_exit=True)

    # -- internals -----------------------------------------------------------------

    def _record(self, code: CudaError, detail: str) -> CudaError:
        self.last_error = code
        self.error_log.append((code, detail))
        if self.replay is not None:
            # The golden run recorded no errors (a faulted golden launch
            # aborts recording), so any sticky error is an anomaly the host
            # may branch on: tail fast-forward must never re-arm.
            self.replay.disarm_tail()
        return code

    def _dispatch(self, event: CudaEvent, payload: Any, is_exit: bool) -> None:
        if self.interceptor is not None:
            self.interceptor.dispatch_event(self, event, payload, is_exit)
