"""Registry of dynamically loadable GPU 'shared libraries'.

The paper's headline usability claim is that NVBitFI instruments kernels
inside dynamically loaded libraries whose source is unavailable.  We model
libraries as named module images (SASS text or binary cubin blobs) that a
host program loads *at runtime* through :meth:`CudaRuntime.load_library` —
the NVBit layer sees them only when the MODULE_LOAD event fires, exactly
like a real ``dlopen``'d ``libcudnn``.
"""

from __future__ import annotations


class LibraryRegistry:
    """Per-runtime view over the process-wide library search path."""

    _global: dict[str, str | bytes] = {}

    def __init__(self) -> None:
        self._local: dict[str, str | bytes] = {}

    @classmethod
    def register_global(cls, name: str, image: str | bytes) -> None:
        """Install a library visible to every runtime (ld.so.conf analogue)."""
        cls._global[name] = image

    @classmethod
    def clear_global(cls) -> None:
        cls._global.clear()

    def register(self, name: str, image: str | bytes) -> None:
        """Install a library visible only to this runtime."""
        self._local[name] = image

    def get(self, name: str) -> str | bytes:
        if name in self._local:
            return self._local[name]
        if name in self._global:
            return self._global[name]
        raise KeyError(
            f"library {name!r} not found; registered: "
            f"{sorted(set(self._local) | set(self._global))}"
        )
