"""CUDA-runtime-style convenience layer used by host programs (workloads).

Wraps the driver with numpy-friendly memory transfers and a ``launch`` that
converts Python ints/floats into the 32-bit kernel parameter words, roughly
what the ``<<<grid, block>>>`` syntax plus ``cudaMemcpy`` give a CUDA C
programmer.
"""

from __future__ import annotations

import numpy as np

from repro.cuda.driver import CudaDriver, CudaFunction, CudaModule
from repro.cuda.errorcodes import CudaError
from repro.cuda.module_loader import LibraryRegistry
from repro.gpusim.device import Device
from repro.utils.bits import f32_to_bits


class DeviceArray:
    """A device allocation with shape/dtype bookkeeping."""

    def __init__(self, runtime: "CudaRuntime", address: int, shape, dtype) -> None:
        self.runtime = runtime
        self.address = address
        self.shape = tuple(shape) if not isinstance(shape, int) else (shape,)
        self.dtype = np.dtype(dtype)

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape)) * self.dtype.itemsize

    def to_host(self) -> np.ndarray:
        raw = self.runtime.driver.cuMemcpyDtoH(self.address, self.nbytes)
        return np.frombuffer(raw, dtype=self.dtype).reshape(self.shape).copy()

    def from_host(self, array: np.ndarray) -> None:
        array = np.ascontiguousarray(array, dtype=self.dtype)
        if array.size != int(np.prod(self.shape)):
            raise ValueError(
                f"host array has {array.size} elements, device array "
                f"{int(np.prod(self.shape))}"
            )
        self.runtime.driver.cuMemcpyHtoD(self.address, array.tobytes())

    def free(self) -> None:
        self.runtime.driver.cuMemFree(self.address)


class CudaRuntime:
    """The host-side API workloads program against."""

    def __init__(
        self, device: Device | None = None, interceptor=None, replay=None
    ) -> None:
        self.device = device if device is not None else Device()
        self.driver = CudaDriver(self.device, interceptor=interceptor, replay=replay)
        self.libraries = LibraryRegistry()

    # -- memory ---------------------------------------------------------------

    def alloc(self, shape, dtype=np.float32) -> DeviceArray:
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape if not isinstance(shape, int) else (shape,))) * dtype.itemsize
        address = self.driver.cuMemAlloc(nbytes)
        return DeviceArray(self, address, shape, dtype)

    def to_device(self, array: np.ndarray) -> DeviceArray:
        device_array = self.alloc(array.shape, array.dtype)
        device_array.from_host(array)
        return device_array

    # -- modules ---------------------------------------------------------------

    def load_module(self, image: str | bytes, name: str = "<module>") -> CudaModule:
        return self.driver.cuModuleLoadData(image, name=name)

    def load_library(self, name: str) -> CudaModule:
        """Load a registered 'shared library' module at runtime (dlopen analogue)."""
        image = self.libraries.get(name)
        return self.driver.cuModuleLoadData(image, name=name, is_library=True)

    def get_function(self, module: CudaModule, name: str) -> CudaFunction:
        return self.driver.cuModuleGetFunction(module, name)

    # -- launches ---------------------------------------------------------------

    def launch(
        self,
        func: CudaFunction,
        grid,
        block,
        *args,
        shared_bytes: int = 0,
    ) -> CudaError:
        """Launch with automatic argument conversion.

        ints and :class:`DeviceArray` handles become 32-bit words; Python
        floats become FP32 bit patterns.
        """
        words: list[int] = []
        for arg in args:
            if isinstance(arg, DeviceArray):
                words.append(arg.address)
            elif isinstance(arg, (bool, np.bool_)):
                words.append(int(arg))
            elif isinstance(arg, (int, np.integer)):
                words.append(int(arg) & 0xFFFFFFFF)
            elif isinstance(arg, (float, np.floating)):
                words.append(f32_to_bits(float(arg)))
            else:
                raise TypeError(f"unsupported kernel argument {arg!r}")
        return self.driver.cuLaunchKernel(
            func, grid, block, words, shared_bytes=shared_bytes
        )

    def synchronize(self) -> CudaError:
        return self.driver.cuCtxSynchronize()

    def last_error(self) -> CudaError:
        return self.driver.cuGetLastError()
