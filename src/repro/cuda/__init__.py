"""Miniature CUDA driver + runtime over the GPU simulator."""

from repro.cuda.driver import (
    CudaDriver,
    CudaEvent,
    CudaFunction,
    CudaModule,
    LaunchParams,
)
from repro.cuda.errorcodes import CudaError
from repro.cuda.module_loader import LibraryRegistry
from repro.cuda.runtime import CudaRuntime, DeviceArray

__all__ = [
    "CudaDriver",
    "CudaEvent",
    "CudaFunction",
    "CudaModule",
    "LaunchParams",
    "CudaError",
    "CudaRuntime",
    "DeviceArray",
    "LibraryRegistry",
]
