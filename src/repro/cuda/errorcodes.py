"""CUDA error codes (the subset the failure model needs)."""

from __future__ import annotations

import enum


class CudaError(enum.IntEnum):
    """Mirrors the relevant ``cudaError_t`` values."""

    SUCCESS = 0
    ERROR_INVALID_VALUE = 1
    ERROR_OUT_OF_MEMORY = 2
    ERROR_INVALID_CONFIGURATION = 9
    ERROR_INVALID_PTX = 218
    ERROR_MISALIGNED_ADDRESS = 716
    ERROR_ILLEGAL_ADDRESS = 700
    ERROR_ILLEGAL_INSTRUCTION = 715
    ERROR_LAUNCH_FAILED = 719
    ERROR_LAUNCH_TIMEOUT = 702
    ERROR_NOT_FOUND = 500

    @property
    def is_failure(self) -> bool:
        return self is not CudaError.SUCCESS
