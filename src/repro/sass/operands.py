"""Operand model for SASS-style instructions.

Operands are small immutable value objects; the assembler produces them and
the execution units consume them.  Register operands carry the float-style
``negate``/``absolute`` source modifiers (``-R2``, ``|R2|``) found in real
SASS listings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sass.isa import PT, RZ, SPECIAL_REGISTERS


@dataclass(frozen=True)
class Reg:
    """A general-purpose register operand R0..R254 or RZ."""

    index: int
    negate: bool = False
    absolute: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.index <= RZ:
            raise ValueError(f"register index {self.index} out of range")

    @property
    def is_rz(self) -> bool:
        return self.index == RZ

    def __str__(self) -> str:
        name = "RZ" if self.is_rz else f"R{self.index}"
        if self.absolute:
            name = f"|{name}|"
        if self.negate:
            name = f"-{name}"
        return name


@dataclass(frozen=True)
class Pred:
    """A predicate register operand P0..P6 or PT, optionally negated (!P0)."""

    index: int
    negate: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.index <= PT:
            raise ValueError(f"predicate index {self.index} out of range")

    @property
    def is_pt(self) -> bool:
        return self.index == PT

    def __str__(self) -> str:
        name = "PT" if self.is_pt else f"P{self.index}"
        return f"!{name}" if self.negate else name


@dataclass(frozen=True)
class Imm:
    """A 32-bit immediate operand, stored as its raw bit pattern."""

    bits: int

    def __post_init__(self) -> None:
        if not 0 <= self.bits <= 0xFFFFFFFF:
            raise ValueError(f"immediate 0x{self.bits:x} does not fit in 32 bits")

    def __str__(self) -> str:
        return f"0x{self.bits:x}"


@dataclass(frozen=True)
class ConstMem:
    """A constant-bank operand ``c[bank][offset]`` (kernel params live here)."""

    bank: int
    offset: int

    def __post_init__(self) -> None:
        if self.bank < 0 or self.offset < 0:
            raise ValueError("constant bank/offset must be non-negative")

    def __str__(self) -> str:
        return f"c[0x{self.bank:x}][0x{self.offset:x}]"


@dataclass(frozen=True)
class MemRef:
    """A memory reference ``[Rn + offset]``; ``reg=None`` means absolute."""

    reg: int | None
    offset: int = 0

    def __str__(self) -> str:
        if self.reg is None:
            return f"[0x{self.offset:x}]"
        base = "RZ" if self.reg == RZ else f"R{self.reg}"
        if self.offset == 0:
            return f"[{base}]"
        sign = "+" if self.offset >= 0 else "-"
        return f"[{base}{sign}0x{abs(self.offset):x}]"


@dataclass(frozen=True)
class SpecialReg:
    """A special-register source for S2R/CS2R (SR_TID.X, SR_SMID, ...)."""

    name: str

    def __post_init__(self) -> None:
        if self.name not in SPECIAL_REGISTERS:
            raise ValueError(f"unknown special register {self.name!r}")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class LabelRef:
    """A branch-target label; resolved to a PC by the assembler."""

    name: str
    target_pc: int | None = None

    def __str__(self) -> str:
        return self.name


Operand = Reg | Pred | Imm | ConstMem | MemRef | SpecialReg | LabelRef
