"""Text assembler for the SASS-style ISA.

Grammar (one statement per line, ``//`` comments, optional trailing ``;``)::

    .kernel NAME          start a new kernel
    .params N             number of 32-bit kernel parameters
    .shared BYTES         static shared-memory size
    .local BYTES          per-thread local-memory size
    LABEL:                branch target
    [@[!]Pn] OPCODE[.MOD...] [dest,] [src, ...]

Operand forms: ``R3``, ``RZ``, ``-R3``, ``|R3|``, ``P0``, ``!P2``, ``PT``,
``42``, ``-7``, ``0x1f``, ``1.5f`` (an FP32 bit-pattern immediate),
``c[0x0][0x8]``, ``[R2]``, ``[R2+0x10]``, ``[R2-4]``, ``SR_TID.X``, and bare
label names for branch opcodes.
"""

from __future__ import annotations

import re

from repro.errors import AssemblyError
from repro.sass.instruction import Instruction
from repro.sass.isa import OPCODES_BY_NAME, SPECIAL_REGISTERS, DestKind
from repro.sass.operands import (
    ConstMem,
    Imm,
    LabelRef,
    MemRef,
    Operand,
    Pred,
    Reg,
    SpecialReg,
)
from repro.sass.program import Kernel, SassModule
from repro.utils.bits import f32_to_bits, to_u32

_LABEL_RE = re.compile(r"^([.A-Za-z_][A-Za-z0-9_.$]*):$")
_GUARD_RE = re.compile(r"^@(!?)(P[0-6]|PT)$")
_REG_RE = re.compile(r"^(-?)(\|?)(R([0-9]+)|RZ)(\|?)$")
_PRED_RE = re.compile(r"^(!?)(P([0-6])|PT)$")
_CONST_RE = re.compile(
    r"^c\[(0x[0-9a-fA-F]+|[0-9]+)\]\[(0x[0-9a-fA-F]+|[0-9]+)\]$"
)
_MEM_RE = re.compile(
    r"^\[\s*(R[0-9]+|RZ)?\s*([+-]\s*(?:0x[0-9a-fA-F]+|[0-9]+))?\s*\]$"
)
_MEM_ABS_RE = re.compile(r"^\[\s*(0x[0-9a-fA-F]+|[0-9]+)\s*\]$")
_INT_RE = re.compile(r"^-?(0x[0-9a-fA-F]+|[0-9]+)$")
_F32_RE = re.compile(r"^(-?[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?)f$")
_IDENT_RE = re.compile(r"^[.A-Za-z_][A-Za-z0-9_.$]*$")

# Opcodes whose sole "value" operand is a branch-target label.
_LABEL_OPCODES = frozenset({"BRA", "SSY", "PBK", "JMP", "CALL", "BRX", "PCNT"})


def assemble(text: str, module_name: str = "<module>") -> SassModule:
    """Assemble module text into a :class:`SassModule`."""
    module = SassModule(name=module_name)
    current: _KernelBuilder | None = None
    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("//", 1)[0].strip()
        if not line:
            continue
        if line.startswith(".kernel"):
            if current is not None:
                module.add(current.finish())
            parts = line.split()
            if len(parts) != 2 or not _IDENT_RE.match(parts[1]):
                raise AssemblyError(f"malformed .kernel directive: {line!r}", line_no)
            current = _KernelBuilder(parts[1], line_no)
            continue
        if current is None:
            raise AssemblyError("statement before any .kernel directive", line_no)
        label_match = _LABEL_RE.match(line)
        if label_match:
            current.label(label_match.group(1), line_no)
            continue
        if line.startswith("."):
            current.directive(line, line_no)
            continue
        current.instruction(line, line_no)
    if current is None:
        raise AssemblyError("module text contains no .kernel directive")
    module.add(current.finish())
    return module


def assemble_kernel(text: str, name: str = "kernel") -> Kernel:
    """Assemble a bare instruction listing (no directives) into one kernel."""
    return assemble(f".kernel {name}\n{text}").get(name)


class _KernelBuilder:
    """Accumulates one kernel's statements, then resolves labels."""

    def __init__(self, name: str, line_no: int) -> None:
        self.name = name
        self.line_no = line_no
        self.num_params = 0
        self.shared_bytes = 0
        self.local_bytes = 0
        self.instructions: list[Instruction] = []
        self.labels: dict[str, int] = {}

    def directive(self, line: str, line_no: int) -> None:
        parts = line.split()
        try:
            key, value = parts[0], int(parts[1], 0)
        except (IndexError, ValueError):
            raise AssemblyError(f"malformed directive: {line!r}", line_no) from None
        if value < 0:
            raise AssemblyError(f"directive value must be >= 0: {line!r}", line_no)
        if key == ".params":
            self.num_params = value
        elif key == ".shared":
            self.shared_bytes = value
        elif key == ".local":
            self.local_bytes = value
        else:
            raise AssemblyError(f"unknown directive {key!r}", line_no)

    def label(self, name: str, line_no: int) -> None:
        if name in self.labels:
            raise AssemblyError(f"duplicate label {name!r}", line_no)
        self.labels[name] = len(self.instructions)

    def instruction(self, line: str, line_no: int) -> None:
        line = line.rstrip(";").strip()
        guard: Pred | None = None
        if line.startswith("@"):
            guard_text, _, rest = line.partition(" ")
            match = _GUARD_RE.match(guard_text)
            if not match:
                raise AssemblyError(f"malformed predicate guard {guard_text!r}", line_no)
            index = 7 if match.group(2) == "PT" else int(match.group(2)[1])
            guard = Pred(index, negate=bool(match.group(1)))
            line = rest.strip()
        if not line:
            raise AssemblyError("missing opcode after predicate guard", line_no)

        mnemonic, _, operand_text = line.partition(" ")
        opcode, *modifiers = mnemonic.split(".")
        info = OPCODES_BY_NAME.get(opcode)
        if info is None:
            raise AssemblyError(f"unknown opcode {opcode!r}", line_no)

        operands = self._parse_operands(opcode, operand_text.strip(), line_no)
        dest: Reg | Pred | None = None
        if info.dest_kind in (DestKind.GP, DestKind.GP_PAIR):
            if not operands or not isinstance(operands[0], Reg):
                raise AssemblyError(
                    f"{opcode} requires a register destination", line_no
                )
            dest, operands = operands[0], operands[1:]
            if dest.negate or dest.absolute:
                raise AssemblyError("destination cannot carry -/|| modifiers", line_no)
        elif info.dest_kind is DestKind.PRED:
            if not operands or not isinstance(operands[0], Pred):
                raise AssemblyError(
                    f"{opcode} requires a predicate destination", line_no
                )
            dest, operands = operands[0], operands[1:]
            if dest.negate:
                raise AssemblyError("destination predicate cannot be negated", line_no)
        if info.dest_kind is DestKind.GP_PAIR and isinstance(dest, Reg):
            if dest.index % 2 != 0 and not dest.is_rz:
                raise AssemblyError(
                    f"{opcode} destination must be an even register pair", line_no
                )

        self.instructions.append(
            Instruction(
                opcode=opcode,
                modifiers=tuple(modifiers),
                dest=dest,
                sources=tuple(operands),
                guard=guard,
                line_no=line_no,
            )
        )

    def _parse_operands(
        self, opcode: str, text: str, line_no: int
    ) -> list[Operand]:
        if not text:
            return []
        operands = []
        for token in _split_operands(text, line_no):
            operands.append(self._parse_operand(opcode, token, line_no))
        return operands

    def _parse_operand(self, opcode: str, token: str, line_no: int) -> Operand:
        reg_match = _REG_RE.match(token)
        if reg_match:
            negate, abs_open, body, index_text, abs_close = reg_match.groups()
            if bool(abs_open) != bool(abs_close):
                raise AssemblyError(f"unbalanced |..| in {token!r}", line_no)
            index = 255 if body == "RZ" else int(index_text)
            try:
                return Reg(index, negate=bool(negate), absolute=bool(abs_open))
            except ValueError as exc:
                raise AssemblyError(str(exc), line_no) from None
        pred_match = _PRED_RE.match(token)
        if pred_match:
            index = 7 if pred_match.group(2) == "PT" else int(pred_match.group(3))
            return Pred(index, negate=bool(pred_match.group(1)))
        const_match = _CONST_RE.match(token)
        if const_match:
            return ConstMem(int(const_match.group(1), 0), int(const_match.group(2), 0))
        if token.startswith("["):
            abs_match = _MEM_ABS_RE.match(token)
            if abs_match:
                return MemRef(reg=None, offset=int(abs_match.group(1), 0))
            mem_match = _MEM_RE.match(token)
            if mem_match:
                base_text, offset_text = mem_match.groups()
                reg = None
                if base_text is not None:
                    reg = 255 if base_text == "RZ" else int(base_text[1:])
                offset = int(offset_text.replace(" ", ""), 0) if offset_text else 0
                return MemRef(reg=reg, offset=offset)
            raise AssemblyError(f"malformed memory operand {token!r}", line_no)
        if token in SPECIAL_REGISTERS:
            return SpecialReg(token)
        f32_match = _F32_RE.match(token)
        if f32_match:
            return Imm(f32_to_bits(float(f32_match.group(1))))
        if _INT_RE.match(token):
            value = int(token, 0)
            if not -0x80000000 <= value <= 0xFFFFFFFF:
                raise AssemblyError(
                    f"immediate {token} does not fit in 32 bits", line_no
                )
            return Imm(to_u32(value))
        if _IDENT_RE.match(token):
            if opcode not in _LABEL_OPCODES:
                raise AssemblyError(
                    f"{opcode} does not take a label operand ({token!r})", line_no
                )
            return LabelRef(token)
        raise AssemblyError(f"cannot parse operand {token!r}", line_no)

    def finish(self) -> Kernel:
        if not self.instructions:
            raise AssemblyError(f"kernel {self.name!r} is empty", self.line_no)
        for instr in self.instructions:
            resolved = []
            for op in instr.sources:
                if isinstance(op, LabelRef):
                    if op.name not in self.labels:
                        raise AssemblyError(
                            f"undefined label {op.name!r}", instr.line_no
                        )
                    op = LabelRef(op.name, target_pc=self.labels[op.name])
                resolved.append(op)
            instr.sources = tuple(resolved)
        return Kernel(
            name=self.name,
            instructions=self.instructions,
            num_params=self.num_params,
            shared_bytes=self.shared_bytes,
            local_bytes=self.local_bytes,
            labels=dict(self.labels),
        )


def _split_operands(text: str, line_no: int) -> list[str]:
    """Split on commas that are not inside ``[...]`` or ``c[..][..]``."""
    tokens = []
    depth = 0
    current = []
    for ch in text:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
            if depth < 0:
                raise AssemblyError("unbalanced ']' in operand list", line_no)
        if ch == "," and depth == 0:
            tokens.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    if depth != 0:
        raise AssemblyError("unbalanced '[' in operand list", line_no)
    tail = "".join(current).strip()
    if tail:
        tokens.append(tail)
    if any(not token for token in tokens):
        raise AssemblyError("empty operand in operand list", line_no)
    return tokens
