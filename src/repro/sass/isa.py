"""The SASS-style instruction-set table.

The paper's permanent-fault model addresses opcodes by integer id into the
ISA table ("the Volta ISA contains 171 opcodes", Table III), and the
profiler keys its histograms on opcode mnemonics.  This module defines a
**Volta-like** table with exactly 171 entries.  It is not a byte-accurate
copy of NVIDIA's (undocumented) listing: the mnemonics and their categories
follow publicly visible ``cuobjdump`` output, and a functional subset
(``executable=True``) has full semantics in :mod:`repro.gpusim.exec_units`.
The remaining entries exist so opcode-id-indexed fault parameters cover the
same space as the paper.

Instruction groups (``arch state id`` of Table II) are *derived* from each
opcode's destination kind and category:

* no destination            -> G_NODEST
* predicate-only destination-> G_PR
* FP64 category             -> G_FP64
* FP32 / FP-conversion      -> G_FP32
* memory-read category      -> G_LD
* anything else             -> G_OTHERS

plus the two aggregate groups G_GPPR (= all - G_NODEST) and
G_GP (= all - G_NODEST - G_PR).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Category(enum.Enum):
    """Functional category of an opcode (drives group classification)."""

    FP32 = "fp32"
    FP64 = "fp64"
    FP16 = "fp16"
    TENSOR = "tensor"
    INTEGER = "integer"
    LOGIC = "logic"
    CONVERSION = "conversion"
    MOVEMENT = "movement"
    PREDICATE = "predicate"
    LOAD = "load"
    STORE = "store"
    ATOMIC = "atomic"
    TEXTURE = "texture"
    SURFACE = "surface"
    CONTROL = "control"
    SYSTEM = "system"
    UNIFORM = "uniform"


class DestKind(enum.Enum):
    """What architectural state an opcode writes."""

    GP = "gp"  # one 32-bit general-purpose register
    GP_PAIR = "gp_pair"  # an even-aligned 64-bit register pair
    PRED = "pred"  # one or more predicate registers, nothing else
    NONE = "none"  # no architecturally visible destination


@dataclass(frozen=True)
class OpcodeInfo:
    """Static description of one ISA opcode."""

    name: str
    category: Category
    dest_kind: DestKind
    executable: bool = False
    description: str = ""
    opcode_id: int = field(default=-1, compare=False)

    @property
    def writes_gp(self) -> bool:
        return self.dest_kind in (DestKind.GP, DestKind.GP_PAIR)

    @property
    def writes_pred_only(self) -> bool:
        return self.dest_kind is DestKind.PRED

    @property
    def has_dest(self) -> bool:
        return self.dest_kind is not DestKind.NONE


def _op(
    name: str,
    category: Category,
    dest: DestKind,
    executable: bool = False,
    description: str = "",
) -> OpcodeInfo:
    return OpcodeInfo(name, category, dest, executable, description)


_C = Category
_D = DestKind

# The 171-entry Volta-like opcode table.  Order defines the opcode id used
# by permanent-fault parameters (Table III).
_RAW_TABLE: tuple[OpcodeInfo, ...] = (
    # --- FP32 ----------------------------------------------------------
    _op("FADD", _C.FP32, _D.GP, True, "FP32 add"),
    _op("FADD32I", _C.FP32, _D.GP, False, "FP32 add, 32-bit immediate"),
    _op("FCHK", _C.FP32, _D.PRED, False, "FP32 division range check"),
    _op("FFMA", _C.FP32, _D.GP, True, "FP32 fused multiply-add"),
    _op("FFMA32I", _C.FP32, _D.GP, False, "FP32 FMA, 32-bit immediate"),
    _op("FMNMX", _C.FP32, _D.GP, True, "FP32 min/max"),
    _op("FMUL", _C.FP32, _D.GP, True, "FP32 multiply"),
    _op("FMUL32I", _C.FP32, _D.GP, False, "FP32 multiply, 32-bit immediate"),
    _op("FSEL", _C.FP32, _D.GP, True, "FP32 predicated select"),
    _op("FSET", _C.FP32, _D.GP, False, "FP32 compare to boolean register"),
    _op("FSETP", _C.FP32, _D.PRED, True, "FP32 compare, set predicate"),
    _op("FSWZADD", _C.FP32, _D.GP, False, "FP32 swizzled add"),
    _op("MUFU", _C.FP32, _D.GP, True, "multi-function unit (rcp/sqrt/sin/...)"),
    _op("FRND", _C.FP32, _D.GP, False, "FP round to integral"),
    _op("F2F", _C.CONVERSION, _D.GP, True, "float-to-float conversion"),
    _op("F2I", _C.CONVERSION, _D.GP, True, "float-to-integer conversion"),
    _op("I2F", _C.CONVERSION, _D.GP, True, "integer-to-float conversion"),
    _op("IPA", _C.FP32, _D.GP, False, "interpolate attribute"),
    _op("RRO", _C.FP32, _D.GP, False, "range reduction for MUFU"),
    # --- FP64 ----------------------------------------------------------
    _op("DADD", _C.FP64, _D.GP_PAIR, True, "FP64 add"),
    _op("DFMA", _C.FP64, _D.GP_PAIR, True, "FP64 fused multiply-add"),
    _op("DMUL", _C.FP64, _D.GP_PAIR, True, "FP64 multiply"),
    _op("DMNMX", _C.FP64, _D.GP_PAIR, True, "FP64 min/max"),
    _op("DSETP", _C.FP64, _D.PRED, True, "FP64 compare, set predicate"),
    _op("DSET", _C.FP64, _D.GP, False, "FP64 compare to boolean register"),
    # --- FP16 ----------------------------------------------------------
    _op("HADD2", _C.FP16, _D.GP, False, "packed FP16 add"),
    _op("HADD2_32I", _C.FP16, _D.GP, False, "packed FP16 add, immediate"),
    _op("HFMA2", _C.FP16, _D.GP, False, "packed FP16 FMA"),
    _op("HFMA2_32I", _C.FP16, _D.GP, False, "packed FP16 FMA, immediate"),
    _op("HMUL2", _C.FP16, _D.GP, False, "packed FP16 multiply"),
    _op("HMUL2_32I", _C.FP16, _D.GP, False, "packed FP16 multiply, immediate"),
    _op("HSET2", _C.FP16, _D.GP, False, "packed FP16 compare to boolean"),
    _op("HSETP2", _C.FP16, _D.PRED, False, "packed FP16 compare, set predicate"),
    _op("HMNMX2", _C.FP16, _D.GP, False, "packed FP16 min/max"),
    # --- Tensor core ----------------------------------------------------
    _op("HMMA", _C.TENSOR, _D.GP, False, "FP16 matrix multiply-accumulate"),
    _op("IMMA", _C.TENSOR, _D.GP, False, "integer matrix multiply-accumulate"),
    _op("BMMA", _C.TENSOR, _D.GP, False, "binary matrix multiply-accumulate"),
    # --- Integer --------------------------------------------------------
    _op("IADD", _C.INTEGER, _D.GP, True, "integer add"),
    _op("IADD3", _C.INTEGER, _D.GP, True, "three-input integer add"),
    _op("IADD32I", _C.INTEGER, _D.GP, False, "integer add, 32-bit immediate"),
    _op("IMAD", _C.INTEGER, _D.GP, True, "integer multiply-add"),
    _op("IMAD32I", _C.INTEGER, _D.GP, False, "integer multiply-add, immediate"),
    _op("IMADSP", _C.INTEGER, _D.GP, False, "extracted integer multiply-add"),
    _op("IMUL", _C.INTEGER, _D.GP, True, "integer multiply"),
    _op("IMUL32I", _C.INTEGER, _D.GP, False, "integer multiply, immediate"),
    _op("IMNMX", _C.INTEGER, _D.GP, True, "integer min/max"),
    _op("IABS", _C.INTEGER, _D.GP, True, "integer absolute value"),
    _op("ISCADD", _C.INTEGER, _D.GP, True, "scaled integer add"),
    _op("ISCADD32I", _C.INTEGER, _D.GP, False, "scaled integer add, immediate"),
    _op("ISETP", _C.INTEGER, _D.PRED, True, "integer compare, set predicate"),
    _op("ISET", _C.INTEGER, _D.GP, False, "integer compare to boolean register"),
    _op("ICMP", _C.INTEGER, _D.GP, False, "integer conditional select"),
    _op("IDP", _C.INTEGER, _D.GP, False, "integer dot product"),
    _op("IDP4A", _C.INTEGER, _D.GP, False, "4-way byte dot product"),
    _op("FLO", _C.INTEGER, _D.GP, True, "find leading one"),
    _op("POPC", _C.INTEGER, _D.GP, True, "population count"),
    _op("BFE", _C.INTEGER, _D.GP, True, "bit field extract"),
    _op("BFI", _C.INTEGER, _D.GP, True, "bit field insert"),
    _op("BREV", _C.INTEGER, _D.GP, False, "bit reverse"),
    _op("LEA", _C.INTEGER, _D.GP, False, "load effective address"),
    _op("SEL", _C.MOVEMENT, _D.GP, True, "predicated register select"),
    _op("SHF", _C.INTEGER, _D.GP, True, "funnel shift"),
    _op("SHL", _C.INTEGER, _D.GP, True, "shift left"),
    _op("SHR", _C.INTEGER, _D.GP, True, "shift right"),
    _op("XMAD", _C.INTEGER, _D.GP, False, "16x16 multiply-add"),
    _op("VABSDIFF", _C.INTEGER, _D.GP, False, "SIMD absolute difference"),
    _op("VADD", _C.INTEGER, _D.GP, False, "SIMD integer add"),
    _op("VMAD", _C.INTEGER, _D.GP, False, "SIMD integer multiply-add"),
    _op("VMNMX", _C.INTEGER, _D.GP, False, "SIMD integer min/max"),
    _op("VSET", _C.INTEGER, _D.GP, False, "SIMD compare to boolean"),
    _op("VSETP", _C.INTEGER, _D.PRED, False, "SIMD compare, set predicate"),
    _op("VSHL", _C.INTEGER, _D.GP, False, "SIMD shift left"),
    _op("VSHR", _C.INTEGER, _D.GP, False, "SIMD shift right"),
    _op("SGXT", _C.INTEGER, _D.GP, False, "sign extend"),
    _op("BMSK", _C.INTEGER, _D.GP, False, "bit mask create"),
    # --- Logic ----------------------------------------------------------
    _op("LOP", _C.LOGIC, _D.GP, True, "two-input logic op"),
    _op("LOP32I", _C.LOGIC, _D.GP, False, "logic op, 32-bit immediate"),
    _op("LOP3", _C.LOGIC, _D.GP, True, "three-input logic op (LUT)"),
    _op("PLOP3", _C.LOGIC, _D.PRED, False, "three-input predicate logic op"),
    _op("PRMT", _C.LOGIC, _D.GP, False, "byte permute"),
    # --- Conversion / movement ------------------------------------------
    _op("I2I", _C.CONVERSION, _D.GP, True, "integer-to-integer conversion"),
    _op("I2IP", _C.CONVERSION, _D.GP, False, "integer-to-integer, packed"),
    _op("F2FP", _C.CONVERSION, _D.GP, False, "float-to-float, packed"),
    _op("MOV", _C.MOVEMENT, _D.GP, True, "register move"),
    _op("MOV32I", _C.MOVEMENT, _D.GP, True, "move 32-bit immediate"),
    _op("MOVM", _C.MOVEMENT, _D.GP, False, "matrix register move"),
    _op("SHFL", _C.MOVEMENT, _D.GP, True, "warp shuffle"),
    # --- Predicate ------------------------------------------------------
    _op("PSETP", _C.PREDICATE, _D.PRED, True, "predicate logic, set predicate"),
    _op("PSET", _C.PREDICATE, _D.GP, False, "predicate logic to register"),
    _op("P2R", _C.PREDICATE, _D.GP, True, "pack predicates into register"),
    _op("R2P", _C.PREDICATE, _D.PRED, True, "unpack register into predicates"),
    _op("CSET", _C.PREDICATE, _D.GP, False, "condition-code compare to register"),
    _op("CSETP", _C.PREDICATE, _D.PRED, False, "condition-code compare to predicate"),
    # --- Memory: loads ---------------------------------------------------
    _op("LD", _C.LOAD, _D.GP, True, "generic load"),
    _op("LDC", _C.LOAD, _D.GP, True, "load from constant bank"),
    _op("LDG", _C.LOAD, _D.GP, True, "load from global memory"),
    _op("LDL", _C.LOAD, _D.GP, True, "load from local memory"),
    _op("LDS", _C.LOAD, _D.GP, True, "load from shared memory"),
    _op("LDSM", _C.LOAD, _D.GP, False, "load matrix from shared memory"),
    # --- Memory: stores --------------------------------------------------
    _op("ST", _C.STORE, _D.NONE, True, "generic store"),
    _op("STG", _C.STORE, _D.NONE, True, "store to global memory"),
    _op("STL", _C.STORE, _D.NONE, True, "store to local memory"),
    _op("STS", _C.STORE, _D.NONE, True, "store to shared memory"),
    _op("MATCH", _C.LOAD, _D.GP, False, "warp-wide value match"),
    _op("QSPC", _C.LOAD, _D.PRED, False, "query address space"),
    # --- Atomics ---------------------------------------------------------
    _op("ATOM", _C.ATOMIC, _D.GP, True, "generic atomic (returns old value)"),
    _op("ATOMS", _C.ATOMIC, _D.GP, True, "shared-memory atomic"),
    _op("ATOMG", _C.ATOMIC, _D.GP, True, "global-memory atomic"),
    _op("RED", _C.ATOMIC, _D.NONE, True, "reduction (no return value)"),
    _op("CCTL", _C.SYSTEM, _D.NONE, False, "cache control"),
    _op("CCTLL", _C.SYSTEM, _D.NONE, False, "local cache control"),
    _op("CCTLT", _C.SYSTEM, _D.NONE, False, "texture cache control"),
    _op("MEMBAR", _C.SYSTEM, _D.NONE, True, "memory barrier"),
    _op("ERRBAR", _C.SYSTEM, _D.NONE, False, "error barrier"),
    # --- Texture / surface ------------------------------------------------
    _op("TEX", _C.TEXTURE, _D.GP, False, "texture fetch"),
    _op("TLD", _C.TEXTURE, _D.GP, False, "texture load"),
    _op("TLD4", _C.TEXTURE, _D.GP, False, "texture gather4"),
    _op("TMML", _C.TEXTURE, _D.GP, False, "texture mip-map level"),
    _op("TXD", _C.TEXTURE, _D.GP, False, "texture with derivatives"),
    _op("TXQ", _C.TEXTURE, _D.GP, False, "texture query"),
    _op("SUATOM", _C.SURFACE, _D.GP, False, "surface atomic"),
    _op("SULD", _C.SURFACE, _D.GP, False, "surface load"),
    _op("SURED", _C.SURFACE, _D.NONE, False, "surface reduction"),
    _op("SUST", _C.SURFACE, _D.NONE, False, "surface store"),
    _op("SUQ", _C.SURFACE, _D.GP, False, "surface query"),
    _op("PIXLD", _C.TEXTURE, _D.GP, False, "pixel parameter load"),
    # --- Control flow ------------------------------------------------------
    _op("BRA", _C.CONTROL, _D.NONE, True, "relative branch"),
    _op("BRX", _C.CONTROL, _D.NONE, False, "indexed branch"),
    _op("JMP", _C.CONTROL, _D.NONE, False, "absolute jump"),
    _op("JMX", _C.CONTROL, _D.NONE, False, "indexed absolute jump"),
    _op("SSY", _C.CONTROL, _D.NONE, True, "push divergence sync point"),
    _op("SYNC", _C.CONTROL, _D.NONE, True, "reconverge at sync point"),
    _op("CALL", _C.CONTROL, _D.NONE, False, "call subroutine"),
    _op("RET", _C.CONTROL, _D.NONE, False, "return from subroutine"),
    _op("EXIT", _C.CONTROL, _D.NONE, True, "terminate thread"),
    _op("PBK", _C.CONTROL, _D.NONE, True, "push break point (loops)"),
    _op("BRK", _C.CONTROL, _D.NONE, True, "break out to break point"),
    _op("PCNT", _C.CONTROL, _D.NONE, False, "push continue point"),
    _op("CONT", _C.CONTROL, _D.NONE, False, "continue to continue point"),
    _op("PRET", _C.CONTROL, _D.NONE, False, "push return address"),
    _op("PLONGJMP", _C.CONTROL, _D.NONE, False, "push longjmp target"),
    _op("BPT", _C.CONTROL, _D.NONE, True, "breakpoint / trap"),
    _op("KILL", _C.CONTROL, _D.NONE, False, "kill thread"),
    _op("NOP", _C.CONTROL, _D.NONE, True, "no operation"),
    _op("RTT", _C.CONTROL, _D.NONE, False, "return from trap"),
    _op("WARPSYNC", _C.CONTROL, _D.NONE, True, "synchronize warp lanes"),
    _op("YIELD", _C.CONTROL, _D.NONE, False, "yield warp scheduling slot"),
    _op("BAR", _C.CONTROL, _D.NONE, True, "thread-block barrier"),
    _op("B2R", _C.CONTROL, _D.GP, False, "barrier state to register"),
    _op("R2B", _C.CONTROL, _D.NONE, False, "register to barrier state"),
    _op("DEPBAR", _C.CONTROL, _D.NONE, False, "dependency barrier"),
    _op("LEPC", _C.CONTROL, _D.GP, False, "load effective PC"),
    _op("NANOSLEEP", _C.CONTROL, _D.NONE, False, "timed sleep"),
    _op("BMOV", _C.CONTROL, _D.GP, False, "move barrier state"),
    _op("BSSY", _C.CONTROL, _D.NONE, False, "push branch-sync point (Volta style)"),
    _op("BSYNC", _C.CONTROL, _D.NONE, False, "branch-sync reconverge (Volta style)"),
    _op("BREAK", _C.CONTROL, _D.NONE, False, "break branch-sync (Volta style)"),
    # --- System ------------------------------------------------------------
    _op("S2R", _C.SYSTEM, _D.GP, True, "special register to register"),
    _op("CS2R", _C.SYSTEM, _D.GP, True, "constant special register to register"),
    _op("VOTE", _C.SYSTEM, _D.PRED, True, "warp vote"),
    _op("PMTRIG", _C.SYSTEM, _D.NONE, False, "performance-monitor trigger"),
    _op("GETLMEMBASE", _C.SYSTEM, _D.GP, False, "get local-memory base"),
    _op("SETLMEMBASE", _C.SYSTEM, _D.NONE, False, "set local-memory base"),
    _op("AL2P", _C.SYSTEM, _D.GP, False, "attribute logical-to-physical"),
    _op("OUT", _C.SYSTEM, _D.GP, False, "stream output"),
    _op("ISBERD", _C.SYSTEM, _D.GP, False, "internal stage buffer read"),
    # --- Uniform datapath ----------------------------------------------------
    _op("VOTEU", _C.UNIFORM, _D.GP, False, "uniform warp vote"),
    _op("UMOV", _C.UNIFORM, _D.GP, False, "uniform register move"),
    _op("USEL", _C.UNIFORM, _D.GP, False, "uniform select"),
    _op("ULDC", _C.UNIFORM, _D.GP, False, "uniform load constant"),
    _op("UPOPC", _C.UNIFORM, _D.GP, False, "uniform population count"),
)


def _freeze_table(raw: tuple[OpcodeInfo, ...]) -> tuple[OpcodeInfo, ...]:
    seen: set[str] = set()
    table = []
    for idx, info in enumerate(raw):
        if info.name in seen:
            raise ValueError(f"duplicate opcode {info.name} in ISA table")
        seen.add(info.name)
        table.append(
            OpcodeInfo(
                name=info.name,
                category=info.category,
                dest_kind=info.dest_kind,
                executable=info.executable,
                description=info.description,
                opcode_id=idx,
            )
        )
    return tuple(table)


OPCODES: tuple[OpcodeInfo, ...] = _freeze_table(_RAW_TABLE)
OPCODES_BY_NAME: dict[str, OpcodeInfo] = {info.name: info for info in OPCODES}
NUM_OPCODES: int = len(OPCODES)

# Registers -----------------------------------------------------------------

RZ = 255  # reads as zero, writes are discarded
PT = 7  # predicate "true"; writes are discarded
NUM_PREDICATES = 8  # P0..P6 plus PT
MAX_GP_REGS = 255  # R0..R254 (R255 is RZ)
WARP_SIZE = 32

SPECIAL_REGISTERS = (
    "SR_TID.X",
    "SR_TID.Y",
    "SR_TID.Z",
    "SR_CTAID.X",
    "SR_CTAID.Y",
    "SR_CTAID.Z",
    "SR_NTID.X",
    "SR_NTID.Y",
    "SR_NTID.Z",
    "SR_NCTAID.X",
    "SR_NCTAID.Y",
    "SR_NCTAID.Z",
    "SR_LANEID",
    "SR_WARPID",
    "SR_SMID",
    "SR_GRIDID",
    "SR_CLOCK",
    "SRZ",
)


def opcode_info(name: str) -> OpcodeInfo:
    """Look up an opcode by mnemonic, raising ``KeyError`` with context."""
    try:
        return OPCODES_BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown opcode mnemonic {name!r}") from None


def opcode_by_id(opcode_id: int) -> OpcodeInfo:
    """Look up an opcode by its integer id (permanent-fault addressing)."""
    if not 0 <= opcode_id < NUM_OPCODES:
        raise IndexError(
            f"opcode id {opcode_id} out of range 0..{NUM_OPCODES - 1}"
        )
    return OPCODES[opcode_id]


def executable_opcodes() -> tuple[OpcodeInfo, ...]:
    """All opcodes with full simulator semantics."""
    return tuple(info for info in OPCODES if info.executable)
