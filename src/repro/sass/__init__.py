"""SASS-style ISA: opcode table, instruction model, assembler, encoding."""

from repro.sass.assembler import assemble, assemble_kernel
from repro.sass.disassembler import disassemble, disassemble_kernel
from repro.sass.encoding import decode_module, encode_module
from repro.sass.instruction import Instruction
from repro.sass.isa import (
    NUM_OPCODES,
    OPCODES,
    OPCODES_BY_NAME,
    PT,
    RZ,
    WARP_SIZE,
    Category,
    DestKind,
    OpcodeInfo,
    executable_opcodes,
    opcode_by_id,
    opcode_info,
)
from repro.sass.operands import ConstMem, Imm, LabelRef, MemRef, Pred, Reg, SpecialReg
from repro.sass.program import Kernel, SassModule

__all__ = [
    "assemble",
    "assemble_kernel",
    "disassemble",
    "disassemble_kernel",
    "encode_module",
    "decode_module",
    "Instruction",
    "Kernel",
    "SassModule",
    "NUM_OPCODES",
    "OPCODES",
    "OPCODES_BY_NAME",
    "PT",
    "RZ",
    "WARP_SIZE",
    "Category",
    "DestKind",
    "OpcodeInfo",
    "executable_opcodes",
    "opcode_by_id",
    "opcode_info",
    "ConstMem",
    "Imm",
    "LabelRef",
    "MemRef",
    "Pred",
    "Reg",
    "SpecialReg",
]
