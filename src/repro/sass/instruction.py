"""The SASS instruction object shared by assembler, simulator and NVBit layer."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sass.isa import DestKind, OpcodeInfo, opcode_info
from repro.sass.operands import LabelRef, Operand, Pred, Reg


@dataclass
class Instruction:
    """One decoded SASS instruction.

    ``dest`` is the architecturally visible destination (a :class:`Reg` for
    GP-writing opcodes, a :class:`Pred` for predicate-writing ones, ``None``
    for stores/branches).  FP64 opcodes write the even-aligned pair
    ``(dest.index, dest.index + 1)``.
    """

    opcode: str
    modifiers: tuple[str, ...] = ()
    dest: Reg | Pred | None = None
    sources: tuple[Operand, ...] = ()
    guard: Pred | None = None  # the @P0 / @!P0 predicate guard
    pc: int = -1  # index within the kernel, set by the assembler
    line_no: int | None = None

    _info: OpcodeInfo | None = field(default=None, repr=False, compare=False)

    @property
    def info(self) -> OpcodeInfo:
        if self._info is None:
            self._info = opcode_info(self.opcode)
        return self._info

    @property
    def opcode_id(self) -> int:
        return self.info.opcode_id

    def has_modifier(self, name: str) -> bool:
        return name in self.modifiers

    @property
    def dest_regs(self) -> tuple[int, ...]:
        """The GP register indices written by this instruction (pair for FP64)."""
        if not isinstance(self.dest, Reg) or self.dest.is_rz:
            return ()
        if self.info.dest_kind is DestKind.GP_PAIR:
            return (self.dest.index, self.dest.index + 1)
        # F2F widening to FP64 also writes a pair even though the opcode's
        # static dest kind is GP.
        if self.opcode == "F2F" and "F64" in self.modifiers:
            return (self.dest.index, self.dest.index + 1)
        return (self.dest.index,)

    @property
    def dest_pred(self) -> int | None:
        """The predicate register index written, if any."""
        if isinstance(self.dest, Pred) and not self.dest.is_pt:
            return self.dest.index
        return None

    @property
    def is_control_flow(self) -> bool:
        return self.opcode in ("BRA", "SSY", "SYNC", "PBK", "BRK", "EXIT", "BAR")

    @property
    def branch_target(self) -> int:
        """Resolved target PC for BRA/SSY/PBK."""
        for op in self.sources:
            if isinstance(op, LabelRef):
                if op.target_pc is None:
                    raise ValueError(
                        f"unresolved label {op.name!r} in {self.opcode} at pc {self.pc}"
                    )
                return op.target_pc
        raise ValueError(f"{self.opcode} at pc {self.pc} has no label operand")

    def __str__(self) -> str:
        parts = []
        if self.guard is not None:
            parts.append(f"@{self.guard}")
        mnemonic = ".".join((self.opcode,) + self.modifiers)
        parts.append(mnemonic)
        operands = []
        if self.dest is not None:
            operands.append(str(self.dest))
        operands.extend(str(op) for op in self.sources)
        if operands:
            parts.append(", ".join(operands))
        return " ".join(parts) + " ;"
