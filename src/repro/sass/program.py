"""Kernel and module containers produced by the assembler / kernel builder."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AssemblyError
from repro.sass.instruction import Instruction
from repro.sass.operands import MemRef, Reg


@dataclass
class Kernel:
    """One GPU kernel: a named instruction sequence plus launch metadata.

    ``num_params`` is the number of 32-bit kernel parameters; parameter *i*
    is visible to the kernel at constant bank 0, byte offset ``4 * i``.
    """

    name: str
    instructions: list[Instruction]
    num_params: int = 0
    shared_bytes: int = 0
    local_bytes: int = 0
    labels: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for pc, instr in enumerate(self.instructions):
            instr.pc = pc
        if not self.instructions or self.instructions[-1].opcode not in ("EXIT", "BRA"):
            raise AssemblyError(
                f"kernel {self.name!r} must end with EXIT (or an unconditional BRA)"
            )

    @property
    def num_regs(self) -> int:
        """Highest GP register index used, plus one (for register-file sizing)."""
        highest = -1
        for instr in self.instructions:
            for reg in instr.dest_regs:
                highest = max(highest, reg)
            for op in instr.sources:
                if isinstance(op, Reg) and not op.is_rz:
                    highest = max(highest, op.index)
                if isinstance(op, MemRef) and op.reg is not None and op.reg != 255:
                    highest = max(highest, op.reg)
        return highest + 1

    def static_opcode_counts(self) -> dict[str, int]:
        """Static instruction histogram by mnemonic."""
        counts: dict[str, int] = {}
        for instr in self.instructions:
            counts[instr.opcode] = counts.get(instr.opcode, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self.instructions)

    def __str__(self) -> str:
        lines = [f".kernel {self.name}", f".params {self.num_params}"]
        if self.shared_bytes:
            lines.append(f".shared {self.shared_bytes}")
        if self.local_bytes:
            lines.append(f".local {self.local_bytes}")
        by_pc = {pc: name for name, pc in self.labels.items()}
        for instr in self.instructions:
            if instr.pc in by_pc:
                lines.append(f"{by_pc[instr.pc]}:")
            lines.append(f"    {instr}")
        return "\n".join(lines)


@dataclass
class SassModule:
    """A compilation unit holding one or more kernels (a 'cubin' analogue)."""

    kernels: dict[str, Kernel] = field(default_factory=dict)
    name: str = "<module>"

    def add(self, kernel: Kernel) -> None:
        if kernel.name in self.kernels:
            raise AssemblyError(
                f"duplicate kernel {kernel.name!r} in module {self.name!r}"
            )
        self.kernels[kernel.name] = kernel

    def get(self, name: str) -> Kernel:
        try:
            return self.kernels[name]
        except KeyError:
            raise KeyError(
                f"kernel {name!r} not found in module {self.name!r}; "
                f"available: {sorted(self.kernels)}"
            ) from None

    def __iter__(self):
        return iter(self.kernels.values())

    def __len__(self) -> int:
        return len(self.kernels)
