"""Disassembler: renders kernels/modules back to assembleable text.

The invariant ``assemble(disassemble(module)) == module`` (up to label
names) is exercised by the round-trip property tests.
"""

from __future__ import annotations

from repro.sass.instruction import Instruction
from repro.sass.operands import LabelRef
from repro.sass.program import Kernel, SassModule


def disassemble_kernel(kernel: Kernel) -> str:
    """Render one kernel as assembler-compatible text."""
    label_for_pc = _branch_labels(kernel)
    lines = [f".kernel {kernel.name}", f".params {kernel.num_params}"]
    if kernel.shared_bytes:
        lines.append(f".shared {kernel.shared_bytes}")
    if kernel.local_bytes:
        lines.append(f".local {kernel.local_bytes}")
    for instr in kernel.instructions:
        if instr.pc in label_for_pc:
            lines.append(f"{label_for_pc[instr.pc]}:")
        lines.append(f"    {_render(instr, label_for_pc)}")
    return "\n".join(lines) + "\n"


def disassemble(module: SassModule) -> str:
    """Render a whole module as assembler-compatible text."""
    return "\n".join(disassemble_kernel(k) for k in module)


def _branch_labels(kernel: Kernel) -> dict[int, str]:
    """Assign a stable label name to every branch-target PC."""
    targets = set()
    for instr in kernel.instructions:
        for op in instr.sources:
            if isinstance(op, LabelRef) and op.target_pc is not None:
                targets.add(op.target_pc)
    return {pc: f".L_{pc}" for pc in sorted(targets)}


def _render(instr: Instruction, label_for_pc: dict[int, str]) -> str:
    parts = []
    if instr.guard is not None:
        parts.append(f"@{instr.guard}")
    parts.append(".".join((instr.opcode,) + instr.modifiers))
    operands = []
    if instr.dest is not None:
        operands.append(str(instr.dest))
    for op in instr.sources:
        if isinstance(op, LabelRef) and op.target_pc is not None:
            operands.append(label_for_pc[op.target_pc])
        else:
            operands.append(str(op))
    if operands:
        parts.append(", ".join(operands))
    return " ".join(parts) + " ;"
