"""Binary instruction encoding — the 'cubin' analogue.

Real SASS packs instructions into architecture-specific 128-bit words whose
layouts NVIDIA does not document.  We use a fixed 32-byte word per
instruction (two 128-bit halves) (documented deviation; see DESIGN.md) so that modules can be
shipped, loaded and instrumented as *binary* artifacts with no source —
the property NVBitFI's usability argument rests on.

Word layout (little-endian):

====== ======================================================
bytes  field
====== ======================================================
0-1    opcode id
2      predicate guard: bit7 = present, bit6 = negated, low 4 = index
3      operand count (dest included) and dest-present flag (bit7)
4-6    modifier table indices (0xFF = unused slot)
7-30   six 4-byte operand slots: 1 tag byte + 3 payload bytes
31     0x5A sentinel (corruption check)
====== ======================================================

Operand payloads that need more than 24 bits (large immediates, constant
offsets) overflow into the next free slot; the encoder validates limits.
"""

from __future__ import annotations

import struct

from repro.errors import EncodingError
from repro.sass.instruction import Instruction
from repro.sass.isa import NUM_OPCODES, OPCODES
from repro.sass.operands import (
    ConstMem,
    Imm,
    LabelRef,
    MemRef,
    Operand,
    Pred,
    Reg,
    SpecialReg,
)
from repro.sass.program import Kernel, SassModule

WORD_SIZE = 32
_SENTINEL = 0x5A

# Operand tags.
_TAG_NONE = 0
_TAG_REG = 1
_TAG_PRED = 2
_TAG_IMM = 3  # payload unused; 32-bit value in following slot
_TAG_CONST = 4
_TAG_MEM = 5
_TAG_SREG = 6
_TAG_LABEL = 7
_TAG_IMM_PAYLOAD = 8

# A global modifier registry: every modifier string used anywhere gets a
# stable index.  Built lazily, persisted in the module header.
_KNOWN_MODIFIERS = [
    "LT", "LE", "GT", "GE", "EQ", "NE", "U32", "S32", "AND", "OR", "XOR",
    "NOT", "MIN", "MAX", "32", "64", "8", "16", "RCP", "RSQ", "SQRT", "SIN",
    "COS", "EX2", "LG2", "ADD", "EXCH", "CAS", "F32", "F64", "F16", "IDX",
    "UP", "DOWN", "BFLY", "ALL", "ANY", "SYNC", "ARV", "E", "TRUNC", "FLOOR",
    "CEIL", "L", "R", "W", "WIDE", "HI", "LO", "X", "BALLOT", "SAT", "RZ",
    "RN", "CLAMP", "LUT",
]
_MODIFIER_INDEX = {name: idx for idx, name in enumerate(_KNOWN_MODIFIERS)}

from repro.sass.isa import SPECIAL_REGISTERS

_SREG_INDEX = {name: idx for idx, name in enumerate(SPECIAL_REGISTERS)}


def encode_instruction(instr: Instruction) -> bytes:
    """Encode one instruction into a 24-byte word."""
    if not 0 <= instr.opcode_id < NUM_OPCODES:
        raise EncodingError(f"bad opcode id {instr.opcode_id}")
    guard_byte = 0
    if instr.guard is not None:
        guard_byte = 0x80 | (0x40 if instr.guard.negate else 0) | instr.guard.index

    operands: list[Operand] = []
    if instr.dest is not None:
        operands.append(instr.dest)
    operands.extend(instr.sources)

    mod_bytes = bytearray([0xFF, 0xFF, 0xFF])
    if len(instr.modifiers) > 3:
        raise EncodingError(
            f"{instr.opcode} carries {len(instr.modifiers)} modifiers; max 3"
        )
    for idx, mod in enumerate(instr.modifiers):
        if mod not in _MODIFIER_INDEX:
            raise EncodingError(f"modifier {mod!r} not in the encoding registry")
        mod_bytes[idx] = _MODIFIER_INDEX[mod]

    slots: list[bytes] = []
    for op in operands:
        slots.extend(_encode_operand(op))
    if len(slots) > 6:
        raise EncodingError(
            f"{instr.opcode} needs {len(slots)} operand slots; max 6"
        )
    while len(slots) < 6:
        slots.append(bytes([_TAG_NONE, 0, 0, 0]))

    count_byte = len(operands) | (0x80 if instr.dest is not None else 0)
    word = (
        struct.pack("<HBB", instr.opcode_id, guard_byte, count_byte)
        + bytes(mod_bytes)
        + b"".join(slots)
        + bytes([_SENTINEL])
    )
    if len(word) != WORD_SIZE:
        raise EncodingError(f"internal: encoded {len(word)} bytes")
    return word


def decode_instruction(word: bytes) -> Instruction:
    """Decode one 24-byte word back into an :class:`Instruction`."""
    if len(word) != WORD_SIZE:
        raise EncodingError(f"instruction word must be {WORD_SIZE} bytes")
    if word[31] != _SENTINEL:
        raise EncodingError("corrupt instruction word (bad sentinel)")
    opcode_id, guard_byte, count_byte = struct.unpack("<HBB", word[:4])
    if opcode_id >= NUM_OPCODES:
        raise EncodingError(f"opcode id {opcode_id} out of range")
    info = OPCODES[opcode_id]
    guard = None
    if guard_byte & 0x80:
        guard = Pred(guard_byte & 0x0F, negate=bool(guard_byte & 0x40))
    modifiers = tuple(
        _KNOWN_MODIFIERS[b] for b in word[4:7] if b != 0xFF
    )
    num_operands = count_byte & 0x7F
    has_dest = bool(count_byte & 0x80)

    raw_slots = [word[7 + 4 * i : 11 + 4 * i] for i in range(6)]
    operands: list[Operand] = []
    idx = 0
    while idx < len(raw_slots) and len(operands) < num_operands:
        op, consumed = _decode_operand(raw_slots, idx)
        operands.append(op)
        idx += consumed

    if len(operands) != num_operands:
        raise EncodingError("operand count mismatch while decoding")

    dest: Reg | Pred | None = None
    if has_dest:
        first = operands.pop(0)
        if not isinstance(first, (Reg, Pred)):
            raise EncodingError("destination slot holds a non-register operand")
        dest = first
    return Instruction(
        opcode=info.name,
        modifiers=modifiers,
        dest=dest,
        sources=tuple(operands),
        guard=guard,
    )


def encode_kernel(kernel: Kernel) -> bytes:
    """Encode a kernel: header + instruction words."""
    name_bytes = kernel.name.encode()
    header = struct.pack(
        "<HHIII",
        len(name_bytes),
        kernel.num_params,
        kernel.shared_bytes,
        kernel.local_bytes,
        len(kernel.instructions),
    )
    body = b"".join(encode_instruction(i) for i in kernel.instructions)
    return header + name_bytes + body


def decode_kernel(data: bytes, offset: int = 0) -> tuple[Kernel, int]:
    """Decode one kernel starting at ``offset``; returns (kernel, next offset)."""
    header_size = struct.calcsize("<HHIII")
    name_len, num_params, shared, local, count = struct.unpack_from(
        "<HHIII", data, offset
    )
    offset += header_size
    name = data[offset : offset + name_len].decode()
    offset += name_len
    instructions = []
    for _ in range(count):
        instructions.append(decode_instruction(data[offset : offset + WORD_SIZE]))
        offset += WORD_SIZE
    kernel = Kernel(
        name=name,
        instructions=instructions,
        num_params=num_params,
        shared_bytes=shared,
        local_bytes=local,
    )
    return kernel, offset


_MAGIC = b"RCB1"  # "repro cubin v1"


def encode_module(module: SassModule) -> bytes:
    """Encode a module into a binary 'cubin' blob."""
    blob = _MAGIC + struct.pack("<I", len(module))
    for kernel in module:
        blob += encode_kernel(kernel)
    return blob


def decode_module(data: bytes, name: str = "<binary>") -> SassModule:
    """Decode a binary 'cubin' blob back into a module."""
    if data[:4] != _MAGIC:
        raise EncodingError("not a repro cubin (bad magic)")
    (count,) = struct.unpack_from("<I", data, 4)
    offset = 8
    module = SassModule(name=name)
    for _ in range(count):
        kernel, offset = decode_kernel(data, offset)
        module.add(kernel)
    return module


def _encode_operand(op: Operand) -> list[bytes]:
    def slot(tag: int, payload: int) -> bytes:
        return bytes([tag]) + payload.to_bytes(3, "little")

    if isinstance(op, Reg):
        payload = op.index | (0x100 if op.negate else 0) | (0x200 if op.absolute else 0)
        return [slot(_TAG_REG, payload)]
    if isinstance(op, Pred):
        return [slot(_TAG_PRED, op.index | (0x100 if op.negate else 0))]
    if isinstance(op, Imm):
        if op.bits > 0xFFFFFF:
            # Wide immediate: low 24 bits in this slot, high 8 in a payload slot.
            return [slot(_TAG_IMM, op.bits & 0xFFFFFF), slot(_TAG_IMM_PAYLOAD, op.bits >> 24)]
        return [slot(_TAG_IMM, op.bits)]
    if isinstance(op, ConstMem):
        if op.bank > 0xF or op.offset > 0xFFFFF:
            raise EncodingError(f"constant operand too large: {op}")
        return [slot(_TAG_CONST, (op.bank << 20) | op.offset)]
    if isinstance(op, MemRef):
        if not -0x800 <= op.offset <= 0x7FF:
            raise EncodingError(f"memory offset out of range: {op}")
        reg = 0x1FF if op.reg is None else op.reg
        return [slot(_TAG_MEM, (reg << 12) | (op.offset & 0xFFF))]
    if isinstance(op, SpecialReg):
        return [slot(_TAG_SREG, _SREG_INDEX[op.name])]
    if isinstance(op, LabelRef):
        if op.target_pc is None:
            raise EncodingError(f"cannot encode unresolved label {op.name!r}")
        return [slot(_TAG_LABEL, op.target_pc)]
    raise EncodingError(f"cannot encode operand {op!r}")


def _decode_operand(slots: list[bytes], idx: int) -> tuple[Operand, int]:
    tag = slots[idx][0]
    payload = int.from_bytes(slots[idx][1:4], "little")
    if tag == _TAG_REG:
        return (
            Reg(payload & 0xFF, negate=bool(payload & 0x100), absolute=bool(payload & 0x200)),
            1,
        )
    if tag == _TAG_PRED:
        return Pred(payload & 0xFF, negate=bool(payload & 0x100)), 1
    if tag == _TAG_IMM:
        # Wide immediates spill their high 8 bits into a payload slot.
        if idx + 1 < len(slots) and slots[idx + 1][0] == _TAG_IMM_PAYLOAD:
            high = int.from_bytes(slots[idx + 1][1:4], "little")
            return Imm((high << 24) | payload), 2
        return Imm(payload), 1
    if tag == _TAG_CONST:
        return ConstMem(payload >> 20, payload & 0xFFFFF), 1
    if tag == _TAG_MEM:
        reg = payload >> 12
        offset = payload & 0xFFF
        if offset & 0x800:
            offset -= 0x1000
        return MemRef(None if reg == 0x1FF else reg, offset), 1
    if tag == _TAG_SREG:
        return SpecialReg(SPECIAL_REGISTERS[payload]), 1
    if tag == _TAG_LABEL:
        return LabelRef(f".L_{payload}", target_pc=payload), 1
    raise EncodingError(f"unknown operand tag {tag}")
