"""Shared low-level utilities: bit manipulation, seeded RNG streams, text tables."""

from repro.utils.bits import (
    MASK32,
    MASK64,
    bits_to_f32,
    bits_to_f64,
    f32_to_bits,
    f64_to_bits,
    popcount,
    sign_extend,
    to_i32,
    to_u32,
)
from repro.utils.rng import SeedSequenceStream
from repro.utils.text import format_table

__all__ = [
    "MASK32",
    "MASK64",
    "bits_to_f32",
    "bits_to_f64",
    "f32_to_bits",
    "f64_to_bits",
    "popcount",
    "sign_extend",
    "to_i32",
    "to_u32",
    "SeedSequenceStream",
    "format_table",
]
