"""Deterministic random-number streams for campaigns.

Fault-injection experiments must be exactly reproducible from a single
campaign seed: site selection, bit-pattern selection and workload input
generation each get an independent, named child stream so that adding a new
consumer never perturbs existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np


class SeedSequenceStream:
    """A tree of named, independent ``numpy.random.Generator`` streams.

    Child streams are derived by hashing the parent seed with the child name,
    so ``stream.child("sites")`` is stable across runs and across unrelated
    code changes.
    """

    def __init__(self, seed: int, path: str = "root") -> None:
        if not isinstance(seed, int) or seed < 0:
            raise ValueError(f"seed must be a non-negative int, got {seed!r}")
        self.seed = seed
        self.path = path

    def child(self, name: str) -> "SeedSequenceStream":
        """Derive an independent named child stream."""
        digest = hashlib.sha256(f"{self.seed}:{self.path}/{name}".encode()).digest()
        child_seed = int.from_bytes(digest[:8], "little")
        return SeedSequenceStream(child_seed, path=f"{self.path}/{name}")

    def generator(self) -> np.random.Generator:
        """Return a fresh numpy Generator seeded from this stream."""
        return np.random.default_rng(self.seed)

    def uniform(self) -> float:
        """One deterministic float in [0, 1) without consuming shared state."""
        return float(self.generator().random())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SeedSequenceStream(seed={self.seed}, path={self.path!r})"
