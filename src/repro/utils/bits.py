"""Bit-level helpers for 32/64-bit register values.

All architectural register state in the simulator is stored as unsigned
integers (``int`` in scalar code, ``numpy.uint32`` in vectorised warp code).
These helpers convert between the raw bit patterns and the typed views
(signed integers, IEEE-754 floats) that instruction semantics operate on.
"""

from __future__ import annotations

import struct

MASK32 = 0xFFFFFFFF
MASK64 = 0xFFFFFFFFFFFFFFFF


def to_u32(value: int) -> int:
    """Truncate an arbitrary Python int to an unsigned 32-bit value."""
    return value & MASK32


def to_u64(value: int) -> int:
    """Truncate an arbitrary Python int to an unsigned 64-bit value."""
    return value & MASK64


def to_i32(value: int) -> int:
    """Reinterpret the low 32 bits of ``value`` as a signed 32-bit integer."""
    value &= MASK32
    return value - 0x100000000 if value & 0x80000000 else value


def to_i64(value: int) -> int:
    """Reinterpret the low 64 bits of ``value`` as a signed 64-bit integer."""
    value &= MASK64
    return value - 0x10000000000000000 if value & 0x8000000000000000 else value


def sign_extend(value: int, bits: int) -> int:
    """Sign-extend the low ``bits`` bits of ``value`` to a Python int."""
    if bits <= 0:
        raise ValueError(f"bit width must be positive, got {bits}")
    mask = (1 << bits) - 1
    value &= mask
    sign_bit = 1 << (bits - 1)
    return value - (1 << bits) if value & sign_bit else value


def f32_to_bits(value: float) -> int:
    """Return the IEEE-754 binary32 bit pattern of ``value``."""
    return struct.unpack("<I", struct.pack("<f", value))[0]


def bits_to_f32(bits: int) -> float:
    """Interpret a 32-bit pattern as an IEEE-754 binary32 value."""
    return struct.unpack("<f", struct.pack("<I", bits & MASK32))[0]


def f64_to_bits(value: float) -> int:
    """Return the IEEE-754 binary64 bit pattern of ``value``."""
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def bits_to_f64(bits: int) -> float:
    """Interpret a 64-bit pattern as an IEEE-754 binary64 value."""
    return struct.unpack("<d", struct.pack("<Q", bits & MASK64))[0]


def popcount(value: int) -> int:
    """Number of set bits in a non-negative integer."""
    if value < 0:
        raise ValueError("popcount is defined for non-negative values")
    return bin(value).count("1")


def flo(value: int) -> int:
    """Find-leading-one: index of the highest set bit, or 0xFFFFFFFF if none.

    Mirrors the SASS ``FLO`` convention of returning all-ones for a zero
    input.
    """
    value &= MASK32
    if value == 0:
        return MASK32
    return value.bit_length() - 1


def bit_field_extract(value: int, pos: int, width: int) -> int:
    """Extract ``width`` bits of ``value`` starting at bit ``pos`` (BFE)."""
    if width <= 0:
        return 0
    return (to_u32(value) >> (pos & 31)) & ((1 << width) - 1)


def bit_field_insert(base: int, insert: int, pos: int, width: int) -> int:
    """Insert the low ``width`` bits of ``insert`` into ``base`` at ``pos`` (BFI)."""
    if width <= 0:
        return to_u32(base)
    pos &= 31
    mask = ((1 << width) - 1) << pos
    return (to_u32(base) & ~mask & MASK32) | ((to_u32(insert) << pos) & mask)
