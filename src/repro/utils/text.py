"""Plain-text table rendering for benchmark reports.

The benchmark harness regenerates the paper's tables and figures as aligned
monospace tables; this module is the single formatter they all share.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""
    str_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))

    def fmt_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[idx]) for idx, cell in enumerate(cells)).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_line(list(headers)))
    lines.append(fmt_line(["-" * w for w in widths]))
    lines.extend(fmt_line(row) for row in str_rows)
    return "\n".join(lines)


def format_histogram_row(label: str, fractions: dict[str, float], width: int = 40) -> str:
    """One stacked-bar line (e.g. ``SDC``/``DUE``/``Masked`` shares) for figures."""
    chars = {"SDC": "#", "DUE": "x", "Masked": ".", "Potential DUE": "?"}
    bar = ""
    for key, frac in fractions.items():
        bar += chars.get(key, "*") * max(0, round(frac * width))
    pcts = "  ".join(f"{key}={frac * 100:5.1f}%" for key, frac in fractions.items())
    return f"{label:<16} |{bar:<{width}}| {pcts}"


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
