"""Warp state: registers, predicates, and the SIMT divergence stack.

The divergence model is the classic pre-Volta stack machine:

* ``SSY L`` pushes a reconvergence point for a potentially divergent branch;
  both paths end by executing ``SYNC`` at (or branching to) ``L``.
* a divergent ``@P BRA`` pushes the fall-through half as a ``DIV`` entry and
  runs the taken half first;
* ``PBK L`` / ``@P BRK`` implement loops with divergent exits: broken lanes
  park in the ``PBK`` entry until the last lane leaves the loop.

Lanes that ``EXIT`` are removed from every future mask via ``exited``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DeviceTrap
from repro.sass.isa import NUM_PREDICATES, WARP_SIZE
from repro.sass.operands import Pred


@dataclass
class StackEntry:
    """One SIMT stack entry; ``gather`` collects lanes waiting to resume."""

    kind: str  # "SSY", "DIV" or "PBK"
    target_pc: int
    mask: np.ndarray  # lanes governed by / resuming at this entry
    gather: np.ndarray = field(
        default_factory=lambda: np.zeros(WARP_SIZE, dtype=bool)
    )  # SSY: arrived lanes; PBK: broken lanes; DIV: unused


class Warp:
    """One 32-lane warp executing a kernel.

    Invariant relied on by the block-compiled interpreter
    (:mod:`repro.gpusim.blockc`): ``active`` is only reassigned by the
    control-flow methods below (branch/sync/brk/exit/_refill) and is
    non-empty whenever the warp is schedulable (``done`` is set the moment
    it drains).  Between control-flow instructions the ``active`` array —
    the object itself, not just its contents — is therefore stable, so a
    compiled block of straight-line instructions may hoist one reference
    and pass it as the execution mask of every unguarded instruction.
    ``__slots__`` keeps per-instruction attribute loads on the interpreter
    hot path cheap (and catches stray attribute writes).
    """

    __slots__ = (
        "warp_id", "regs", "preds", "pc", "valid", "active", "exited",
        "stack", "tid_x", "tid_y", "tid_z", "at_barrier", "done",
        "local", "local_bytes", "ctx",
    )

    def __init__(
        self,
        warp_id: int,
        num_regs: int,
        valid_mask: np.ndarray,
        tid: tuple[np.ndarray, np.ndarray, np.ndarray],
        local_bytes: int = 0,
    ) -> None:
        self.warp_id = warp_id
        self.regs = np.zeros((max(num_regs, 1), WARP_SIZE), dtype=np.uint32)
        self.preds = np.zeros((NUM_PREDICATES, WARP_SIZE), dtype=bool)
        self.preds[7] = True  # PT
        self.pc = 0
        self.valid = valid_mask.copy()
        self.active = valid_mask.copy()
        self.exited = ~valid_mask
        self.stack: list[StackEntry] = []
        self.tid_x, self.tid_y, self.tid_z = tid
        self.at_barrier = False
        self.done = not self.active.any()
        self.local = (
            np.zeros((max(local_bytes // 4, 1), WARP_SIZE), dtype=np.uint32)
            if local_bytes
            else None
        )
        self.local_bytes = local_bytes

    # -- register access (lane-scalar helpers used by the NVBit layer) -------

    def read_reg_lane(self, reg: int, lane: int) -> int:
        if reg == 255:
            return 0
        return int(self.regs[reg, lane])

    def write_reg_lane(self, reg: int, lane: int, value: int) -> None:
        if reg == 255:
            return
        self.regs[reg, lane] = np.uint32(value & 0xFFFFFFFF)

    def read_pred_lane(self, pred: int, lane: int) -> bool:
        if pred == 7:
            return True
        return bool(self.preds[pred, lane])

    def write_pred_lane(self, pred: int, lane: int, value: bool) -> None:
        if pred == 7:
            return
        self.preds[pred, lane] = bool(value)

    # -- guard evaluation ------------------------------------------------------

    def guard_mask(self, guard: Pred | None) -> np.ndarray:
        """Lanes that actually execute the instruction (active AND guard)."""
        if guard is None or guard.is_pt and not guard.negate:
            return self.active.copy()
        value = self.preds[guard.index]
        if guard.negate:
            value = ~value
        return self.active & value

    # -- control flow -----------------------------------------------------------

    def branch(self, taken: np.ndarray, target_pc: int) -> None:
        """Resolve a (possibly divergent) predicated branch."""
        fallthrough = self.active & ~taken
        if not taken.any():
            self.pc += 1
            return
        if not fallthrough.any():
            self.pc = target_pc
            return
        self.stack.append(StackEntry("DIV", self.pc + 1, fallthrough))
        self.active = taken
        self.pc = target_pc

    def push_ssy(self, target_pc: int) -> None:
        self.stack.append(StackEntry("SSY", target_pc, self.active.copy()))
        self.pc += 1

    def sync(self) -> None:
        """Reconverge at the innermost SSY point."""
        ssy = self._nearest("SSY")
        ssy.gather |= self.active
        top = self.stack[-1]
        if top.kind == "DIV":
            self.stack.pop()
            self.pc = top.target_pc
            self.active = top.mask & ~self.exited
            if not self.active.any():
                self._refill()
        elif top is ssy:
            self.stack.pop()
            self.pc = ssy.target_pc
            self.active = ssy.gather & ~self.exited
            if not self.active.any():
                self._refill()
        else:
            raise DeviceTrap(
                f"SYNC at pc {self.pc}: unexpected {top.kind} on top of stack"
            )

    def push_pbk(self, target_pc: int) -> None:
        self.stack.append(StackEntry("PBK", target_pc, self.active.copy()))
        self.pc += 1

    def brk(self, breaking: np.ndarray) -> None:
        """Park ``breaking`` lanes at the innermost PBK target."""
        pbk = self._nearest("PBK")
        pbk.gather |= breaking
        self.active = self.active & ~breaking
        if self.active.any():
            self.pc += 1
        else:
            self._refill()

    def exit_lanes(self, exiting: np.ndarray) -> None:
        self.exited |= exiting
        self.active = self.active & ~exiting
        if self.active.any():
            # Some lanes were predicated off the EXIT; they continue.
            self.pc += 1
        else:
            self._refill()

    def _nearest(self, kind: str) -> StackEntry:
        for entry in reversed(self.stack):
            if entry.kind == kind:
                return entry
        raise DeviceTrap(f"no {kind} entry on SIMT stack at pc {self.pc}")

    def _refill(self) -> None:
        """Active mask drained: resume the next pending stack entry."""
        while self.stack:
            entry = self.stack.pop()
            if entry.kind == "DIV":
                mask = entry.mask & ~self.exited
            elif entry.kind == "SSY":
                mask = entry.gather & ~self.exited
            else:  # PBK
                mask = entry.gather & ~self.exited
            if mask.any():
                self.pc = entry.target_pc
                self.active = mask
                return
        self.done = True
        self.active = np.zeros(WARP_SIZE, dtype=bool)

    @property
    def live_lanes(self) -> np.ndarray:
        return self.valid & ~self.exited
