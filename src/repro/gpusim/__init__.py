"""Functional SIMT GPU simulator: devices, SMs, warps, instruction semantics."""

from repro.gpusim.context import ExecContext, InstrSite
from repro.gpusim.device import DEFAULT_INSTRUCTION_BUDGET, Device
from repro.gpusim.sm import SM, Hooks
from repro.gpusim.warp import StackEntry, Warp

__all__ = [
    "Device",
    "DEFAULT_INSTRUCTION_BUDGET",
    "SM",
    "Hooks",
    "Warp",
    "StackEntry",
    "ExecContext",
    "InstrSite",
]
