"""In-launch checkpointing for multi-fault batched injection.

The snapshot executor (PR 8) amortizes everything *before* the target
launch: one replayed parent forks one copy-on-write child per sibling
fault at the launch boundary.  What it cannot amortize is the target
launch itself — the prefix of that launch before each fault's
``instruction_count`` is byte-identical across all faults aimed at the
same dynamic launch, yet every child re-simulates it from instruction
zero.  ROADMAP item 2(c) names that prefix as the dominant remaining
campaign cost.

This module supplies the mechanism that removes it.  The batch injector
(:mod:`repro.core.batch_injector`) runs the target launch **once** as a
clean counting pass and consults two pieces of machinery here:

* :class:`CheckpointPlan` — the sorted fault schedule for one launch.
  Per instrumented site the injector asks which targets land inside the
  site's ``[counter, counter + num_executed)`` group-instruction range;
  the plan's cursor advances monotonically, so each target is serviced
  exactly once, in instruction-count order, with the same lane-offset
  arithmetic as the serial injector.

* :class:`OverlayForker` — the copy-on-write overlay layer.  At each due
  checkpoint the clean pass forks (``os.fork``): the child *is* the
  fault's overlay — register files, predicate banks, SIMT stacks and
  global-memory pages are all shared with the clean pass until first
  write, at OS page granularity, riding the same dirty-page semantics
  the replay tape's shadow/diff machinery (:mod:`repro.gpusim.replay`)
  relies on — and it resumes the launch on the inherited Python stack
  with its own fault applied.  The parent resumes counting toward the
  next checkpoint immediately — children run *concurrently* with the
  sweep (bounded by ``max_inflight``, default the usable CPU count) and
  are reaped oldest-first, so on a multi-core box the divergent
  suffixes overlap each other and the pass instead of serializing
  behind it.  The parent never simulates any fault's divergent suffix
  itself.

* :class:`SweepCursor` — the cross-launch sweep.  Sharing one counting
  pass per target launch only pays off when several faults aim at the
  same launch; real campaigns spread faults across many launches (the
  370.bt benchmark averages ~1.25 faults per target), so the dominant
  duplicated cost is the *per-group* host run and tape replay, not the
  in-launch prefix.  The sweep removes that too: because the clean pass
  never injects, its memory after cleanly simulating a target launch is
  still bit-identical to golden, so the same parent can re-arm tape
  replay and continue to the *next* group's target launch.  One host run
  and one pass over the tape then service every fault group that shares
  a tape, an opcode group and a sandbox — regardless of which launches
  they target.

Equivalence with the serial path is structural rather than re-derived:
from the fork point onward a child executes exactly the instructions the
serial injection run would execute from the same dynamic instruction, on
bit-identical device state — including the armed tail-tracking window,
which the child inherits mid-launch and folds at the launch boundary
exactly as a serial run does (so tail fast-forward re-arms per fault on
reconvergence).  Records, artifacts and simulated-cycle totals therefore
match byte for byte.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.gpusim.replay import TAIL_PATIENCE, ReplayCursor, ReplayLog


def overlay_fork_supported() -> bool:
    """In-launch overlays need a POSIX ``os.fork`` (same bar as snapshots)."""
    return hasattr(os, "fork")


@dataclass(frozen=True)
class FaultPoint:
    """One armed fault target inside the shared launch.

    ``count`` is the fault's group-instruction count (Table II
    ``instruction_count``); ``order`` breaks ties deterministically when
    two faults target the same dynamic instruction (plan order, so
    results are reproducible); ``payload`` is opaque to this layer — the
    executor threads its task through it.
    """

    count: int
    order: int
    payload: object


class CheckpointPlan:
    """The sorted in-launch checkpoint schedule for one target launch.

    A monotone cursor over fault points ordered by
    ``(instruction_count, order)``.  The counting pass calls :meth:`due`
    once per instrumented site with the site's group-instruction window;
    every point whose count falls inside the window is returned (and
    consumed) in order.  Points never reached by the launch — counts
    beyond its total group instructions — are drained with
    :meth:`take_rest` at launch exit and serviced as not-injected runs,
    mirroring the serial injector's never-reached semantics.
    """

    def __init__(self, points: Iterable[FaultPoint]) -> None:
        self._points = sorted(points, key=lambda p: (p.count, p.order))
        self._next = 0

    def __len__(self) -> int:
        return len(self._points)

    @property
    def next_count(self) -> int | None:
        """The next checkpoint's instruction count (``None`` when done).

        The counting pass's fast path: sites whose window ends at or
        before this count advance the counter and return without touching
        the plan.
        """
        if self._next >= len(self._points):
            return None
        return self._points[self._next].count

    @property
    def exhausted(self) -> bool:
        return self._next >= len(self._points)

    def due(self, counter: int, end: int) -> list[FaultPoint]:
        """Consume and return every point with ``count`` in ``[counter, end)``.

        ``counter`` is the group-instruction total before the current
        site, ``end`` the total after it; a returned point's in-site lane
        offset is ``point.count - counter``, exactly the serial
        ``target - _instr_counter`` arithmetic.  Points below ``counter``
        cannot exist — the cursor already consumed them at an earlier
        site (counts only grow).
        """
        taken: list[FaultPoint] = []
        points = self._points
        index = self._next
        while index < len(points) and points[index].count < end:
            taken.append(points[index])
            index += 1
        self._next = index
        return taken

    def take_rest(self) -> list[FaultPoint]:
        """Consume every remaining (never-reached) point."""
        rest = self._points[self._next:]
        self._next = len(self._points)
        return rest


def _usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


class OverlayForker:
    """Copy-on-write overlay forks taken at in-launch checkpoints.

    One instance per group run.  ``fork_overlay(payload)`` forks the
    process at the current simulator state: it returns ``True`` in the
    child — the fault's overlay, which applies its corruption and runs
    the divergent suffix on inherited state — and ``False`` in the
    parent.  ``os.fork`` snapshots the clean pass at the call, so every
    child sees pristine counting-pass state no matter when the parent
    reaps it.

    Children are *pipelined*: the parent does not wait for a child
    before resuming the counting pass, so up to ``max_inflight``
    divergent suffixes run concurrently with the sweep (and each other)
    — on a multi-core box the children's simulation time divides across
    cores instead of serializing behind the parent.  ``max_inflight``
    defaults to the usable CPU count (``REPRO_BATCH_INFLIGHT``
    overrides); on a single-CPU box that degrades to the fork-and-reap
    sequence of a blocking forker.  Reaping is oldest-first, so
    :attr:`results` stays in fork order regardless of which child
    finishes first — the executor's output ordering (and ``results.csv``)
    cannot depend on scheduling.

    The child ships its pickled result back through :meth:`ship`; the
    parent records ``(payload, exitcode, bytes)`` per child in
    :attr:`results` for the executor to validate (call :meth:`drain`
    first to reap stragglers).  A child that dies without shipping
    surfaces as a non-zero exit status there — policy (retries,
    charging) stays with the executor.
    """

    def __init__(self, max_inflight: int | None = None) -> None:
        self.in_child = False
        self.child_payload: object | None = None
        self._child_fd = -1
        #: ``(payload, exitcode, raw bytes)`` per reaped child, fork order.
        self.results: list[tuple[object, int, bytes]] = []
        #: In-launch checkpoints taken (forks), for observability.
        self.checkpoints = 0
        if max_inflight is None:
            env = os.environ.get("REPRO_BATCH_INFLIGHT", "")
            max_inflight = int(env) if env.isdigit() else _usable_cpus()
        self._max_inflight = max(1, max_inflight)
        #: ``(payload, pid, read fd)`` per running child, fork order.
        self._pending: list[tuple[object, int, int]] = []

    def fork_overlay(self, payload: object) -> bool:
        while len(self._pending) >= self._max_inflight:
            self._reap_oldest()
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:
            # The overlay: drop the parent's bookkeeping — earlier
            # siblings' pipes belong to the parent, and this child's only
            # job is to ship its own result and exit.
            for _, _, fd in self._pending:
                try:
                    os.close(fd)
                except OSError:
                    pass
            self._pending = []
            self.results = []
            os.close(read_fd)
            self.in_child = True
            self.child_payload = payload
            self._child_fd = write_fd
            return True
        os.close(write_fd)
        self._pending.append((payload, pid, read_fd))
        self.checkpoints += 1
        return False

    def _reap_oldest(self) -> None:
        payload, pid, read_fd = self._pending.pop(0)
        data = b""
        try:
            with os.fdopen(read_fd, "rb") as pipe:
                data = pipe.read()
        except OSError:
            data = b""
        _, status = os.waitpid(pid, 0)
        self.results.append((payload, os.waitstatus_to_exitcode(status), data))

    def drain(self) -> None:
        """Reap every still-running child (parent side, before collecting)."""
        while self._pending:
            self._reap_oldest()

    def ship(self, payload: bytes) -> None:
        """Write the child's pickled result to the parent and close the pipe."""
        view = memoryview(payload)
        while view:
            written = os.write(self._child_fd, view)
            view = view[written:]
        os.close(self._child_fd)
        self._child_fd = -1


class SweepCursor(ReplayCursor):
    """A replay cursor that retargets across a sorted series of stop launches.

    The first stop behaves exactly like a plain :class:`ReplayCursor`
    target: pre-target replay, shadow snapshot at the boundary, tail
    tracking through the target launch.  The twist is what happens after:
    the sweep's parent never injects, so its memory after cleanly
    simulating a target launch still equals golden, the divergence set
    empties at the next boundary, and the cursor re-arms — at which point
    it can treat the *next* stop in the series as a fresh target instead
    of replaying to the end of the tape.

    Three pieces keep a child forked at stop ``T`` bit-identical to a
    serial run whose cursor targeted ``T`` alone:

    * **Retarget reset** — reaching a stop while replaying (or while
      tracking with an empty divergence set, for back-to-back stops)
      resets ``skipped`` to the stop's sequence index, zeroes
      ``tail_skipped`` / ``converged_at`` and restores full tail
      patience, then runs the normal target-boundary transition (fresh
      shadow snapshot, tracking).  That is exactly the state a serial
      cursor has after pre-replaying ``[0, T)``.

    * **Counter fixup** — the parent simulates each non-final target
      launch under instrumentation, so its cycle counter picks up
      instrumentation and JIT costs a serial later-targeted run (which
      *replays* that launch from the tape) never pays.  While more stops
      remain, the counters a target launch accumulated are replaced with
      the recorded golden delta — rebased on a snapshot taken at tool
      arming, before the JIT charge (:meth:`begin_target_launch`).  The
      fixup is deferred to the next launch consult so that never-reached
      children forked at the target's *exit* still inherit the
      instrumented counters their serial counterparts would have.

    * **Child collapse** — a forked child calls
      :meth:`collapse_to_current_target`, dropping the remaining stops
      and any pending fixup, and thereafter behaves exactly like the
      serial single-target cursor it is equivalent to.

    Every guard of the base cursor stays conservative: if the tape
    disarms (mismatch, host-visible divergence, patience), the remaining
    stops are simply never reached, the affected groups fork no children,
    and the executor falls back to per-task serial runs.
    """

    def __init__(
        self,
        log: ReplayLog,
        stops: Sequence[int],
        pre: bool = True,
        tail: bool = True,
    ) -> None:
        ordered = sorted(set(stops))
        super().__init__(log, ordered[0], pre=pre, tail=tail)
        self._stops = ordered[1:]
        self._entry_snap = None  # counters at target arming (before JIT charge)
        self._launch_snap = None  # fallback: counters at simulated-launch begin
        self._fixup = None  # (counter snapshot, recorded delta) awaiting consult

    @staticmethod
    def _snap(device) -> tuple[int, int, int, int]:
        return (
            device.instructions_executed,
            device.cycles,
            device.warps_launched,
            device.divergence_depth_high_water,
        )

    def begin_target_launch(self, device) -> None:
        """Counter snapshot at tool arming, before the launch's JIT charge.

        Called by the batch injector when it arms a target launch; only
        meaningful while further stops remain (the final target's parent
        counters are never observed by anyone).  Any fixup still pending
        from the previous target must land first — with back-to-back
        targets there is no intermediate launch consult to flush it, and
        deferring past this launch's JIT charge would erase that charge.
        """
        self._apply_fixup(device)
        if self._stops:
            self._entry_snap = self._snap(device)

    def collapse_to_current_target(self) -> None:
        """Make a forked child a plain single-target cursor (no retargets)."""
        self._stops = []
        self._entry_snap = None
        self._launch_snap = None
        self._fixup = None

    def _apply_fixup(self, device) -> None:
        """Replace a swept target launch's instrumented counters with the
        recorded golden delta, rebased on the pre-launch snapshot."""
        if self._fixup is None:
            return
        snap, rec = self._fixup
        self._fixup = None
        device.instructions_executed = snap[0] + rec.instructions
        device.cycles = snap[1] + rec.cycles
        device.warps_launched = snap[2] + rec.warps
        device.active_sms.update(rec.active_sms)
        device.divergence_depth_high_water = max(
            snap[3], rec.divergence_high_water
        )

    def consult(
        self, device, kernel_name, grid, block, args, shared_bytes, instrumented
    ):
        self._apply_fixup(device)
        if (
            self._stops
            and self._state in (self._TRACKING, self._REPLAYING)
            and not self.divergent
            and device.launch_count == self._stops[0]
        ):
            # Memory equals golden at this boundary (the parent never
            # injects), so the next stop is reachable as a fresh target.
            seq = device.launch_count
            self.stop_launch = self._stops.pop(0)
            self._patience = TAIL_PATIENCE
            self.converged_at = None
            self.skipped = seq
            self.tail_skipped = 0
            self._shadow = None
            self._pending = None
            return self._reach_target(
                device, seq, kernel_name, grid, block, args, shared_bytes
            )
        return super().consult(
            device, kernel_name, grid, block, args, shared_bytes, instrumented
        )

    def begin_simulated_launch(self, device) -> None:
        if self._stops and self._entry_snap is None:
            # An unarmed (uninstrumented) target simulation: no JIT charge
            # preceded it, so the launch boundary itself is the snapshot.
            self._launch_snap = self._snap(device)
        super().begin_simulated_launch(device)

    def end_simulated_launch(self, device) -> None:
        pending = self._pending
        snap = self._entry_snap if self._entry_snap is not None else self._launch_snap
        self._entry_snap = None
        self._launch_snap = None
        super().end_simulated_launch(device)
        if self._stops and pending is not None and snap is not None:
            self._fixup = (snap, pending[1])
