"""Instruction semantics for the executable opcode subset.

Every handler operates on whole warps: operands are read as length-32 numpy
arrays, computed under ``mask`` (the lanes that actually execute), and
written back masked.  Integer arithmetic is performed in int64/uint64 and
wrapped to 32 bits, matching hardware wrap-around without numpy overflow
noise; FP32/FP64 use IEEE float32/float64 views of the register file.

Calling convention (relied on by the block-compiled interpreter,
:mod:`repro.gpusim.blockc`): every handler is ``handler(warp, instr, mask)``
where ``mask`` is **read-only** — handlers may index with it but must never
mutate it or retain a reference past the call.  That contract lets
block-compiled callers pass ``warp.active`` itself for unguarded
instructions instead of the defensive copy ``Warp.guard_mask`` makes, and
lets them skip the per-instruction ``mask.any()`` test (``active`` is
non-empty whenever a warp is scheduled, and only control opcodes — which
never appear inside a compiled block — can drain it).  Handlers validate
before they write, so a handler that raises has not modified warp or
memory state (the property that makes mid-block trap rollback exact).
"""

from __future__ import annotations

import numpy as np

from repro.errors import DeviceTrap, MemoryViolation
from repro.sass.instruction import Instruction
from repro.sass.isa import WARP_SIZE
from repro.sass.operands import ConstMem, Imm, MemRef, Pred, Reg, SpecialReg
from repro.gpusim.warp import Warp

_U32 = np.uint32
_LANES = np.arange(WARP_SIZE)


# ---------------------------------------------------------------------------
# Operand access
# ---------------------------------------------------------------------------

# Broadcast arrays for immediate operands, keyed by (kind, bits).  An
# immediate's lane values never change, so the historical per-read
# ``np.full`` + astype chain is pure allocation churn on the interpreter
# hot path.  The cached arrays are shared across reads and therefore
# frozen (``writeable = False``): every handler computes into fresh
# arrays (audited — the in-place ops in this module all target arrays the
# handler itself allocated), and a future violation fails loudly instead
# of corrupting unrelated instructions.  The cache is bounded by the
# number of distinct immediates in loaded programs.
_IMM_CACHE: dict[tuple[str, int], np.ndarray] = {}


def _imm_array(kind: str, bits: int) -> np.ndarray:
    key = (kind, bits)
    cached = _IMM_CACHE.get(key)
    if cached is None:
        raw = np.full(WARP_SIZE, bits, dtype=_U32)
        if kind == "u32":
            cached = raw
        elif kind == "i64":
            # Same sign-extension the generic int path performs.
            cached = raw.astype(np.int32).astype(np.int64)
        elif kind == "zx64":
            # Zero-extended int64 (the raw.astype(int64) of a U32 compare).
            cached = raw.astype(np.int64)
        else:  # "f32"
            cached = raw.view(np.float32).copy()
        cached.flags.writeable = False
        _IMM_CACHE[key] = cached
    return cached


def read_raw(warp: Warp, op) -> np.ndarray:
    """Read an operand as raw uint32 bits (no -/|| modifiers applied).

    Immediate reads return a shared **read-only** array; handlers must
    treat every source read as read-only data (copy before in-place
    mutation), which the whole-warp compute style already guarantees.
    """
    if isinstance(op, Reg):
        if op.is_rz:
            return np.zeros(WARP_SIZE, dtype=_U32)
        return warp.regs[op.index].copy()
    if isinstance(op, Imm):
        return _imm_array("u32", op.bits)
    if isinstance(op, ConstMem):
        return np.full(WARP_SIZE, warp.ctx.const.read32(op.offset), dtype=_U32)
    raise DeviceTrap(f"operand {op!r} cannot be read as a value")


def read_int(warp: Warp, op) -> np.ndarray:
    """Read an operand as signed int64 with integer -/|| modifiers applied.

    The register fast path reinterprets the uint32 lanes as int32 with a
    free ``view`` and sign-extends in one ``astype`` — bit-identical to
    the historical ``copy -> astype(int32) -> astype(int64)`` chain, two
    array allocations cheaper per operand read.  Immediates come from the
    shared read-only cache.
    """
    if isinstance(op, Reg):
        if op.is_rz:
            return np.zeros(WARP_SIZE, dtype=np.int64)
        value = warp.regs[op.index].view(np.int32).astype(np.int64)
        if op.absolute:
            np.abs(value, out=value)
        if op.negate:
            np.negative(value, out=value)
        return value
    if isinstance(op, Imm):
        return _imm_array("i64", op.bits)
    return read_raw(warp, op).astype(np.int32).astype(np.int64)


def read_f32(warp: Warp, op) -> np.ndarray:
    """Read an operand as float32 with FP -/|| modifiers applied."""
    if isinstance(op, Reg):
        if op.is_rz:
            return np.zeros(WARP_SIZE, dtype=np.float32)
        value = warp.regs[op.index].view(np.float32).copy()
        if op.absolute:
            np.abs(value, out=value)
        if op.negate:
            np.negative(value, out=value)
        return value
    if isinstance(op, Imm):
        return _imm_array("f32", op.bits)
    return read_raw(warp, op).view(np.float32).copy()


def read_f64(warp: Warp, op) -> np.ndarray:
    """Read a register-pair operand as float64."""
    if isinstance(op, Reg):
        if op.is_rz:
            value = np.zeros(WARP_SIZE, dtype=np.float64)
        else:
            lo = warp.regs[op.index].astype(np.uint64)
            hi = warp.regs[op.index + 1].astype(np.uint64)
            value = ((hi << np.uint64(32)) | lo).view(np.float64).copy()
        if op.absolute:
            value = np.abs(value)
        if op.negate:
            value = -value
        return value
    if isinstance(op, Imm):
        # Immediates for FP64 ops are interpreted as FP32 and widened.
        return np.full(WARP_SIZE, np.float32(np.uint32(op.bits).view(np.float32)), dtype=np.float64)
    raise DeviceTrap(f"operand {op!r} cannot be read as FP64")


def read_pred_src(warp: Warp, op) -> np.ndarray:
    if not isinstance(op, Pred):
        raise DeviceTrap(f"expected predicate source, got {op!r}")
    value = np.ones(WARP_SIZE, dtype=bool) if op.is_pt else warp.preds[op.index].copy()
    return ~value if op.negate else value


def write_u32(warp: Warp, instr: Instruction, values: np.ndarray, mask: np.ndarray) -> None:
    """Write ``values`` truncated to uint32 into the destination register.

    Conversion semantics (must stay bit-identical across refactors): float
    inputs truncate toward zero into int64 first, then everything keeps its
    low 32 bits.  ``int64 -> uint32`` is a single C cast with the same
    result as the historical ``int64 -> uint64 -> uint32`` chain, and
    ``copy=False`` skips the allocation when values are already int64 —
    the overwhelmingly common case for integer ALU results.
    """
    dest = instr.dest
    if not isinstance(dest, Reg) or dest.is_rz:
        return
    if values.dtype != _U32:
        values = values.astype(np.int64, copy=False).astype(_U32)
    np.copyto(warp.regs[dest.index], values, where=mask)


def write_f32(warp: Warp, instr: Instruction, values: np.ndarray, mask: np.ndarray) -> None:
    dest = instr.dest
    if not isinstance(dest, Reg) or dest.is_rz:
        return
    np.copyto(
        warp.regs[dest.index], values.astype(np.float32, copy=False).view(_U32),
        where=mask,
    )


def write_f64(warp: Warp, instr: Instruction, values: np.ndarray, mask: np.ndarray) -> None:
    dest = instr.dest
    if not isinstance(dest, Reg) or dest.is_rz:
        return
    bits = values.astype(np.float64).view(np.uint64)
    np.copyto(
        warp.regs[dest.index],
        (bits & np.uint64(0xFFFFFFFF)).astype(_U32),
        where=mask,
    )
    np.copyto(
        warp.regs[dest.index + 1], (bits >> np.uint64(32)).astype(_U32),
        where=mask,
    )


def write_pred(warp: Warp, instr: Instruction, values: np.ndarray, mask: np.ndarray) -> None:
    dest = instr.dest
    if not isinstance(dest, Pred) or dest.is_pt:
        return
    np.copyto(warp.preds[dest.index], values, where=mask, casting="unsafe")


# ---------------------------------------------------------------------------
# Comparison helper shared by ISETP / FSETP / DSETP
# ---------------------------------------------------------------------------

_CMP_OPS = {
    "LT": np.less,
    "LE": np.less_equal,
    "GT": np.greater,
    "GE": np.greater_equal,
    "EQ": np.equal,
    "NE": np.not_equal,
}


def _compare(instr: Instruction, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    for mod in instr.modifiers:
        if mod in _CMP_OPS:
            return _CMP_OPS[mod](a, b)
    raise DeviceTrap(f"{instr.opcode} at pc {instr.pc} lacks a comparison modifier")


def _combine(warp: Warp, instr: Instruction, result: np.ndarray, psrc_idx: int) -> np.ndarray:
    """Apply the optional .AND/.OR/.XOR combination with a predicate source."""
    psrc = None
    if len(instr.sources) > psrc_idx:
        psrc = read_pred_src(warp, instr.sources[psrc_idx])
    if psrc is None:
        return result
    if instr.has_modifier("OR"):
        return result | psrc
    if instr.has_modifier("XOR"):
        return result ^ psrc
    return result & psrc  # .AND is the default combination


# ---------------------------------------------------------------------------
# Handlers: data movement and system
# ---------------------------------------------------------------------------

def _h_mov(warp, instr, mask):
    write_u32(warp, instr, read_raw(warp, instr.sources[0]), mask)


def _h_sel(warp, instr, mask):
    a = read_raw(warp, instr.sources[0])
    b = read_raw(warp, instr.sources[1])
    p = read_pred_src(warp, instr.sources[2])
    write_u32(warp, instr, np.where(p, a, b), mask)


_SREG_READERS = {
    "SR_LANEID": lambda warp: _LANES.astype(_U32),
    "SR_WARPID": lambda warp: np.full(WARP_SIZE, warp.warp_id, dtype=_U32),
    "SRZ": lambda warp: np.zeros(WARP_SIZE, dtype=_U32),
}


def _read_special(warp: Warp, name: str) -> np.ndarray:
    if name in _SREG_READERS:
        return _SREG_READERS[name](warp)
    ctx = warp.ctx
    table = {
        "SR_TID.X": warp.tid_x,
        "SR_TID.Y": warp.tid_y,
        "SR_TID.Z": warp.tid_z,
        "SR_CTAID.X": np.full(WARP_SIZE, ctx.ctaid[0], dtype=_U32),
        "SR_CTAID.Y": np.full(WARP_SIZE, ctx.ctaid[1], dtype=_U32),
        "SR_CTAID.Z": np.full(WARP_SIZE, ctx.ctaid[2], dtype=_U32),
        "SR_NTID.X": np.full(WARP_SIZE, ctx.ntid[0], dtype=_U32),
        "SR_NTID.Y": np.full(WARP_SIZE, ctx.ntid[1], dtype=_U32),
        "SR_NTID.Z": np.full(WARP_SIZE, ctx.ntid[2], dtype=_U32),
        "SR_NCTAID.X": np.full(WARP_SIZE, ctx.nctaid[0], dtype=_U32),
        "SR_NCTAID.Y": np.full(WARP_SIZE, ctx.nctaid[1], dtype=_U32),
        "SR_NCTAID.Z": np.full(WARP_SIZE, ctx.nctaid[2], dtype=_U32),
        "SR_SMID": np.full(WARP_SIZE, ctx.sm_id, dtype=_U32),
        "SR_GRIDID": np.full(WARP_SIZE, ctx.grid_id, dtype=_U32),
        "SR_CLOCK": np.full(WARP_SIZE, ctx.clock() & 0xFFFFFFFF, dtype=_U32),
    }
    try:
        return table[name].astype(_U32)
    except KeyError:
        raise DeviceTrap(f"unsupported special register {name}") from None


def _h_s2r(warp, instr, mask):
    src = instr.sources[0]
    if not isinstance(src, SpecialReg):
        raise DeviceTrap("S2R requires a special-register source")
    write_u32(warp, instr, _read_special(warp, src.name), mask)


def reads_clock(instr: Instruction) -> bool:
    """Does this instruction observe the device tick counter (SR_CLOCK)?

    Such instructions see ``instructions_executed`` at their exact dynamic
    position, so the block compiler must step them individually — a bulk
    ``tick_n`` charge up front would make the read observably early.
    """
    return any(
        isinstance(op, SpecialReg) and op.name == "SR_CLOCK"
        for op in instr.sources
    )


def _h_cs2r(warp, instr, mask):
    _h_s2r(warp, instr, mask)


# ---------------------------------------------------------------------------
# Handlers: integer
# ---------------------------------------------------------------------------

def _h_iadd(warp, instr, mask):
    a = read_int(warp, instr.sources[0])
    b = read_int(warp, instr.sources[1])
    write_u32(warp, instr, a + b, mask)


def _h_iadd3(warp, instr, mask):
    a = read_int(warp, instr.sources[0])
    b = read_int(warp, instr.sources[1])
    c = read_int(warp, instr.sources[2])
    write_u32(warp, instr, a + b + c, mask)


def _h_imul(warp, instr, mask):
    a = read_int(warp, instr.sources[0])
    b = read_int(warp, instr.sources[1])
    product = a * b
    if instr.has_modifier("HI"):
        product >>= 32
    write_u32(warp, instr, product, mask)


def _h_imad(warp, instr, mask):
    a = read_int(warp, instr.sources[0])
    b = read_int(warp, instr.sources[1])
    c = read_int(warp, instr.sources[2])
    write_u32(warp, instr, a * b + c, mask)


def _h_imnmx(warp, instr, mask):
    if instr.has_modifier("U32"):
        a = read_raw(warp, instr.sources[0]).astype(np.int64)
        b = read_raw(warp, instr.sources[1]).astype(np.int64)
    else:
        a = read_int(warp, instr.sources[0])
        b = read_int(warp, instr.sources[1])
    result = np.maximum(a, b) if instr.has_modifier("MAX") else np.minimum(a, b)
    write_u32(warp, instr, result, mask)


def _h_iabs(warp, instr, mask):
    write_u32(warp, instr, np.abs(read_int(warp, instr.sources[0])), mask)


def _h_iscadd(warp, instr, mask):
    a = read_int(warp, instr.sources[0])
    b = read_int(warp, instr.sources[1])
    shift = read_int(warp, instr.sources[2]) & 31
    write_u32(warp, instr, (a << shift) + b, mask)


def _h_isetp(warp, instr, mask):
    if instr.has_modifier("U32"):
        a = read_raw(warp, instr.sources[0]).astype(np.int64)
        b = read_raw(warp, instr.sources[1]).astype(np.int64)
    else:
        a = read_int(warp, instr.sources[0])
        b = read_int(warp, instr.sources[1])
    result = _combine(warp, instr, _compare(instr, a, b), 2)
    write_pred(warp, instr, result, mask)


def _h_flo(warp, instr, mask):
    a = read_raw(warp, instr.sources[0]).astype(np.int64)
    bits = np.zeros(WARP_SIZE, dtype=np.int64)
    nonzero = a > 0
    bits[nonzero] = np.floor(np.log2(a[nonzero].astype(np.float64))).astype(np.int64)
    result = np.where(a == 0, np.int64(0xFFFFFFFF), bits)
    write_u32(warp, instr, result, mask)


def _h_popc(warp, instr, mask):
    a = read_raw(warp, instr.sources[0])
    counts = np.zeros(WARP_SIZE, dtype=np.int64)
    value = a.astype(np.uint32).copy()
    for _ in range(32):
        counts += value & 1
        value >>= _U32(1)
    write_u32(warp, instr, counts, mask)


def _h_bfe(warp, instr, mask):
    a = read_raw(warp, instr.sources[0]).astype(np.uint64)
    control = read_raw(warp, instr.sources[1]).astype(np.int64)
    pos = (control & 0xFF) & 31
    width = (control >> 8) & 0xFF
    extracted = (a >> pos.astype(np.uint64)) & ((np.uint64(1) << np.minimum(width, 32).astype(np.uint64)) - np.uint64(1))
    extracted = np.where(width == 0, np.uint64(0), extracted)
    write_u32(warp, instr, extracted.astype(np.int64), mask)


def _h_bfi(warp, instr, mask):
    insert = read_raw(warp, instr.sources[0]).astype(np.uint64)
    control = read_raw(warp, instr.sources[1]).astype(np.int64)
    base = read_raw(warp, instr.sources[2]).astype(np.uint64)
    pos = (control & 0xFF) & 31
    width = np.minimum((control >> 8) & 0xFF, 32)
    field_mask = ((np.uint64(1) << width.astype(np.uint64)) - np.uint64(1)) << pos.astype(np.uint64)
    result = (base & ~field_mask) | ((insert << pos.astype(np.uint64)) & field_mask)
    result = np.where(width == 0, base, result)
    write_u32(warp, instr, result.astype(np.int64), mask)


def _h_lop(warp, instr, mask):
    a = read_raw(warp, instr.sources[0])
    if instr.has_modifier("NOT"):
        write_u32(warp, instr, (~a).astype(np.int64), mask)
        return
    b = read_raw(warp, instr.sources[1])
    if instr.has_modifier("AND"):
        result = a & b
    elif instr.has_modifier("OR"):
        result = a | b
    elif instr.has_modifier("XOR"):
        result = a ^ b
    else:
        raise DeviceTrap("LOP requires .AND/.OR/.XOR/.NOT")
    write_u32(warp, instr, result.astype(np.int64), mask)


def _h_lop3(warp, instr, mask):
    a = read_raw(warp, instr.sources[0]).astype(np.uint32)
    b = read_raw(warp, instr.sources[1]).astype(np.uint32)
    c = read_raw(warp, instr.sources[2]).astype(np.uint32)
    lut_op = instr.sources[3]
    if not isinstance(lut_op, Imm):
        raise DeviceTrap("LOP3 LUT operand must be an immediate")
    lut = lut_op.bits & 0xFF
    result = np.zeros(WARP_SIZE, dtype=np.uint32)
    for index in range(8):
        if lut >> index & 1:
            term = np.full(WARP_SIZE, 0xFFFFFFFF, dtype=np.uint32)
            term &= a if index & 4 else ~a
            term &= b if index & 2 else ~b
            term &= c if index & 1 else ~c
            result |= term
    write_u32(warp, instr, result.astype(np.int64), mask)


def _h_shl(warp, instr, mask):
    a = read_raw(warp, instr.sources[0]).astype(np.uint64)
    shift = read_raw(warp, instr.sources[1]).astype(np.int64) & 0xFF
    result = np.where(shift >= 32, np.uint64(0), a << np.minimum(shift, 63).astype(np.uint64))
    write_u32(warp, instr, result.astype(np.int64), mask)


def _h_shr(warp, instr, mask):
    shift = read_raw(warp, instr.sources[1]).astype(np.int64) & 0xFF
    capped = np.minimum(shift, 63).astype(np.uint64)
    if instr.has_modifier("S32"):
        a = read_raw(warp, instr.sources[0]).astype(np.int32).astype(np.int64)
        result = a >> np.minimum(shift, 31)
    else:
        a = read_raw(warp, instr.sources[0]).astype(np.uint64)
        result = np.where(shift >= 32, np.uint64(0), a >> capped).astype(np.int64)
    write_u32(warp, instr, result, mask)


def _h_shf(warp, instr, mask):
    lo = read_raw(warp, instr.sources[0]).astype(np.uint64)
    shift = read_raw(warp, instr.sources[1]).astype(np.int64) & 31
    hi = read_raw(warp, instr.sources[2]).astype(np.uint64)
    combined = (hi << np.uint64(32)) | lo
    if instr.has_modifier("L"):
        result = (combined << shift.astype(np.uint64)) >> np.uint64(32)
    else:  # .R
        result = combined >> shift.astype(np.uint64)
    write_u32(warp, instr, result.astype(np.int64), mask)


def _h_i2i(warp, instr, mask):
    a = read_raw(warp, instr.sources[0]).astype(np.int64)
    if instr.has_modifier("S8"):
        a = ((a & 0xFF) ^ 0x80) - 0x80
    elif instr.has_modifier("U8"):
        a = a & 0xFF
    elif instr.has_modifier("S16"):
        a = ((a & 0xFFFF) ^ 0x8000) - 0x8000
    elif instr.has_modifier("U16"):
        a = a & 0xFFFF
    write_u32(warp, instr, a, mask)


# ---------------------------------------------------------------------------
# Handlers: FP32 / FP64
# ---------------------------------------------------------------------------

def _h_fadd(warp, instr, mask):
    write_f32(warp, instr, read_f32(warp, instr.sources[0]) + read_f32(warp, instr.sources[1]), mask)


def _h_fmul(warp, instr, mask):
    write_f32(warp, instr, read_f32(warp, instr.sources[0]) * read_f32(warp, instr.sources[1]), mask)


def _h_ffma(warp, instr, mask):
    a = read_f32(warp, instr.sources[0]).astype(np.float64)
    b = read_f32(warp, instr.sources[1]).astype(np.float64)
    c = read_f32(warp, instr.sources[2]).astype(np.float64)
    write_f32(warp, instr, (a * b + c).astype(np.float32), mask)


def _h_fmnmx(warp, instr, mask):
    a = read_f32(warp, instr.sources[0])
    b = read_f32(warp, instr.sources[1])
    result = np.fmax(a, b) if instr.has_modifier("MAX") else np.fmin(a, b)
    write_f32(warp, instr, result, mask)


def _h_fsel(warp, instr, mask):
    a = read_f32(warp, instr.sources[0])
    b = read_f32(warp, instr.sources[1])
    p = read_pred_src(warp, instr.sources[2])
    write_f32(warp, instr, np.where(p, a, b), mask)


def _h_fsetp(warp, instr, mask):
    a = read_f32(warp, instr.sources[0])
    b = read_f32(warp, instr.sources[1])
    result = _combine(warp, instr, _compare(instr, a, b), 2)
    write_pred(warp, instr, result, mask)


def _h_mufu(warp, instr, mask):
    a = read_f32(warp, instr.sources[0]).astype(np.float64)
    if instr.has_modifier("RCP"):
        result = 1.0 / a
    elif instr.has_modifier("RSQ"):
        result = 1.0 / np.sqrt(a)
    elif instr.has_modifier("SQRT"):
        result = np.sqrt(a)
    elif instr.has_modifier("SIN"):
        result = np.sin(a)
    elif instr.has_modifier("COS"):
        result = np.cos(a)
    elif instr.has_modifier("EX2"):
        result = np.exp2(a)
    elif instr.has_modifier("LG2"):
        result = np.log2(a)
    else:
        raise DeviceTrap("MUFU requires a function modifier")
    write_f32(warp, instr, result.astype(np.float32), mask)


def _h_f2i(warp, instr, mask):
    a = read_f32(warp, instr.sources[0]).astype(np.float64)
    a = np.where(np.isnan(a), 0.0, a)
    if instr.has_modifier("U32"):
        clipped = np.clip(np.trunc(a), 0, 0xFFFFFFFF)
    else:
        clipped = np.clip(np.trunc(a), -0x80000000, 0x7FFFFFFF)
    write_u32(warp, instr, clipped.astype(np.int64), mask)


def _h_i2f(warp, instr, mask):
    if instr.has_modifier("U32"):
        a = read_raw(warp, instr.sources[0]).astype(np.float64)
    else:
        a = read_int(warp, instr.sources[0]).astype(np.float64)
    write_f32(warp, instr, a.astype(np.float32), mask)


def _h_f2f(warp, instr, mask):
    mods = instr.modifiers
    if "F64" in mods and "F32" in mods and mods.index("F64") < mods.index("F32"):
        # F2F.F64.F32: widen FP32 source into an FP64 destination pair.
        write_f64(warp, instr, read_f32(warp, instr.sources[0]).astype(np.float64), mask)
    elif "F32" in mods and "F64" in mods:
        # F2F.F32.F64: narrow FP64 pair into FP32.
        write_f32(warp, instr, read_f64(warp, instr.sources[0]).astype(np.float32), mask)
    else:
        result = read_f32(warp, instr.sources[0])
        if instr.has_modifier("TRUNC"):
            result = np.trunc(result)
        elif instr.has_modifier("FLOOR"):
            result = np.floor(result)
        elif instr.has_modifier("CEIL"):
            result = np.ceil(result)
        write_f32(warp, instr, result, mask)


def _h_dadd(warp, instr, mask):
    write_f64(warp, instr, read_f64(warp, instr.sources[0]) + read_f64(warp, instr.sources[1]), mask)


def _h_dmul(warp, instr, mask):
    write_f64(warp, instr, read_f64(warp, instr.sources[0]) * read_f64(warp, instr.sources[1]), mask)


def _h_dfma(warp, instr, mask):
    a = read_f64(warp, instr.sources[0])
    b = read_f64(warp, instr.sources[1])
    c = read_f64(warp, instr.sources[2])
    write_f64(warp, instr, a * b + c, mask)


def _h_dmnmx(warp, instr, mask):
    a = read_f64(warp, instr.sources[0])
    b = read_f64(warp, instr.sources[1])
    result = np.fmax(a, b) if instr.has_modifier("MAX") else np.fmin(a, b)
    write_f64(warp, instr, result, mask)


def _h_dsetp(warp, instr, mask):
    a = read_f64(warp, instr.sources[0])
    b = read_f64(warp, instr.sources[1])
    result = _combine(warp, instr, _compare(instr, a, b), 2)
    write_pred(warp, instr, result, mask)


# ---------------------------------------------------------------------------
# Handlers: predicate manipulation and warp-wide ops
# ---------------------------------------------------------------------------

def _h_psetp(warp, instr, mask):
    a = read_pred_src(warp, instr.sources[0])
    b = read_pred_src(warp, instr.sources[1])
    if instr.has_modifier("OR"):
        result = a | b
    elif instr.has_modifier("XOR"):
        result = a ^ b
    else:
        result = a & b
    write_pred(warp, instr, result, mask)


def _h_p2r(warp, instr, mask):
    packed = np.zeros(WARP_SIZE, dtype=np.int64)
    for index in range(7):
        packed |= warp.preds[index].astype(np.int64) << index
    write_u32(warp, instr, packed, mask)


def _h_r2p(warp, instr, mask):
    bits = read_raw(warp, instr.sources[0]).astype(np.int64)
    for index in range(7):
        values = (bits >> index & 1).astype(bool)
        warp.preds[index][mask] = values[mask]


def _h_vote(warp, instr, mask):
    p = read_pred_src(warp, instr.sources[0])
    participating = mask
    if instr.has_modifier("ALL"):
        outcome = bool(p[participating].all()) if participating.any() else True
    elif instr.has_modifier("ANY"):
        outcome = bool((p & participating).any())
    else:
        raise DeviceTrap("VOTE requires .ALL or .ANY")
    write_pred(warp, instr, np.full(WARP_SIZE, outcome, dtype=bool), mask)


def _h_shfl(warp, instr, mask):
    value = read_raw(warp, instr.sources[0])
    lane_arg = read_raw(warp, instr.sources[1]).astype(np.int64)
    if instr.has_modifier("IDX"):
        source_lane = lane_arg & 31
    elif instr.has_modifier("UP"):
        source_lane = _LANES - lane_arg
    elif instr.has_modifier("DOWN"):
        source_lane = _LANES + lane_arg
    elif instr.has_modifier("BFLY"):
        source_lane = _LANES ^ lane_arg
    else:
        raise DeviceTrap("SHFL requires .IDX/.UP/.DOWN/.BFLY")
    in_range = (source_lane >= 0) & (source_lane < WARP_SIZE)
    clipped = np.clip(source_lane, 0, WARP_SIZE - 1)
    gathered = value[clipped]
    # Out-of-range (or inactive-source) lanes keep their own value.
    source_inactive = ~mask[clipped]
    keep_own = ~in_range | source_inactive
    result = np.where(keep_own, value, gathered)
    write_u32(warp, instr, result.astype(np.int64), mask)


# ---------------------------------------------------------------------------
# Handlers: memory
# ---------------------------------------------------------------------------

def _addresses(warp: Warp, op: MemRef) -> np.ndarray:
    if not isinstance(op, MemRef):
        raise DeviceTrap(f"expected a memory operand, got {op!r}")
    if op.reg is None or op.reg == 255:
        base = np.zeros(WARP_SIZE, dtype=np.int64)
    else:
        base = warp.regs[op.reg].astype(np.int64)
    return base + op.offset


def _width(instr: Instruction) -> int:
    if instr.has_modifier("64"):
        return 8
    return 4


def _h_load_global(warp, instr, mask):
    addresses = _addresses(warp, instr.sources[0])
    if _width(instr) == 8:
        values = warp.ctx.global_mem.load64(addresses, mask)
        dest = instr.dest
        if isinstance(dest, Reg) and not dest.is_rz:
            warp.regs[dest.index][mask] = (values & np.uint64(0xFFFFFFFF)).astype(_U32)[mask]
            warp.regs[dest.index + 1][mask] = (values >> np.uint64(32)).astype(_U32)[mask]
    else:
        values = warp.ctx.global_mem.load32(addresses, mask)
        write_u32(warp, instr, values, mask)


def _h_store_global(warp, instr, mask):
    addresses = _addresses(warp, instr.sources[0])
    value_op = instr.sources[1]
    if _width(instr) == 8:
        if not isinstance(value_op, Reg) or value_op.is_rz:
            values = np.zeros(WARP_SIZE, dtype=np.uint64)
        else:
            lo = warp.regs[value_op.index].astype(np.uint64)
            hi = warp.regs[value_op.index + 1].astype(np.uint64)
            values = (hi << np.uint64(32)) | lo
        warp.ctx.global_mem.store64(addresses, mask, values)
    else:
        warp.ctx.global_mem.store32(addresses, mask, read_raw(warp, value_op))


def _h_load_shared(warp, instr, mask):
    addresses = _addresses(warp, instr.sources[0])
    if _width(instr) == 8:
        values = warp.ctx.shared.load64(addresses, mask)
        dest = instr.dest
        if isinstance(dest, Reg) and not dest.is_rz:
            warp.regs[dest.index][mask] = (values & np.uint64(0xFFFFFFFF)).astype(_U32)[mask]
            warp.regs[dest.index + 1][mask] = (values >> np.uint64(32)).astype(_U32)[mask]
    else:
        write_u32(warp, instr, warp.ctx.shared.load32(addresses, mask), mask)


def _h_store_shared(warp, instr, mask):
    addresses = _addresses(warp, instr.sources[0])
    value_op = instr.sources[1]
    if _width(instr) == 8:
        if not isinstance(value_op, Reg) or value_op.is_rz:
            values = np.zeros(WARP_SIZE, dtype=np.uint64)
        else:
            lo = warp.regs[value_op.index].astype(np.uint64)
            hi = warp.regs[value_op.index + 1].astype(np.uint64)
            values = (hi << np.uint64(32)) | lo
        warp.ctx.shared.store64(addresses, mask, values)
    else:
        warp.ctx.shared.store32(addresses, mask, read_raw(warp, value_op))


def _h_load_local(warp, instr, mask):
    if warp.local is None:
        raise MemoryViolation(0, 4, "local", "unmapped")
    addresses = _addresses(warp, instr.sources[0])
    active = addresses[mask]
    if active.size and ((active % 4 != 0).any() or (active < 0).any() or (active + 4 > warp.local_bytes).any()):
        raise MemoryViolation(int(active[0]), 4, "local", "out-of-bounds")
    out = np.zeros(WARP_SIZE, dtype=_U32)
    lanes = np.nonzero(mask)[0]
    out[lanes] = warp.local[addresses[lanes] // 4, lanes]
    write_u32(warp, instr, out.astype(np.int64), mask)


def _h_store_local(warp, instr, mask):
    if warp.local is None:
        raise MemoryViolation(0, 4, "local", "unmapped")
    addresses = _addresses(warp, instr.sources[0])
    active = addresses[mask]
    if active.size and ((active % 4 != 0).any() or (active < 0).any() or (active + 4 > warp.local_bytes).any()):
        raise MemoryViolation(int(active[0]), 4, "local", "out-of-bounds")
    values = read_raw(warp, instr.sources[1])
    lanes = np.nonzero(mask)[0]
    warp.local[addresses[lanes] // 4, lanes] = values[lanes]


def _h_ldc(warp, instr, mask):
    src = instr.sources[0]
    if isinstance(src, ConstMem):
        offsets = np.full(WARP_SIZE, src.offset, dtype=np.int64)
    else:
        offsets = _addresses(warp, src)
    write_u32(warp, instr, warp.ctx.const.load32(offsets, mask).astype(np.int64), mask)


def _atomic(memory, instr, addresses, mask, operands, warp):
    """Serialised atomic over the active lanes, returning old values."""
    values = read_raw(warp, operands)
    is_f32 = instr.has_modifier("F32")
    old = np.zeros(WARP_SIZE, dtype=_U32)
    if hasattr(memory, "validate"):
        memory.validate(addresses, mask, 4)
    else:
        memory._validate(addresses, mask, 4)
    view = memory.data.view(np.uint32)
    for lane in np.nonzero(mask)[0]:
        slot = int(addresses[lane]) // 4
        current = int(view[slot])
        old[lane] = current
        new = _atomic_combine(instr, current, int(values[lane]), is_f32)
        view[slot] = np.uint32(new & 0xFFFFFFFF)
    # Atomics bypass store32, so report the dirty pages themselves (global
    # memory only; shared memory is per-launch scratch and untracked).
    note_stores = getattr(memory, "note_stores", None)
    if note_stores is not None:
        note_stores(addresses, mask)
    return old


def _atomic_combine(instr: Instruction, current: int, operand: int, is_f32: bool) -> int:
    import struct as _struct

    if instr.has_modifier("EXCH"):
        return operand
    if is_f32:
        cur_f = _struct.unpack("<f", _struct.pack("<I", current))[0]
        op_f = _struct.unpack("<f", _struct.pack("<I", operand))[0]
        if instr.has_modifier("MAX"):
            result = max(cur_f, op_f)
        elif instr.has_modifier("MIN"):
            result = min(cur_f, op_f)
        else:
            result = np.float32(np.float32(cur_f) + np.float32(op_f))
        return _struct.unpack("<I", _struct.pack("<f", float(result)))[0]
    if instr.has_modifier("MAX"):
        return max(current, operand)
    if instr.has_modifier("MIN"):
        return min(current, operand)
    return (current + operand) & 0xFFFFFFFF


def _h_atom_global(warp, instr, mask):
    addresses = _addresses(warp, instr.sources[0])
    old = _atomic(warp.ctx.global_mem, instr, addresses, mask, instr.sources[1], warp)
    write_u32(warp, instr, old.astype(np.int64), mask)


def _h_atom_shared(warp, instr, mask):
    addresses = _addresses(warp, instr.sources[0])
    old = _atomic(warp.ctx.shared, instr, addresses, mask, instr.sources[1], warp)
    write_u32(warp, instr, old.astype(np.int64), mask)


def _h_red(warp, instr, mask):
    addresses = _addresses(warp, instr.sources[0])
    _atomic(warp.ctx.global_mem, instr, addresses, mask, instr.sources[1], warp)


def _h_membar(warp, instr, mask):
    return None  # single-threaded simulation: memory is always coherent


def _h_warpsync(warp, instr, mask):
    return None  # our execution model is already warp-synchronous


def _h_nop(warp, instr, mask):
    return None


def _h_bpt(warp, instr, mask):
    raise DeviceTrap(f"BPT trap at pc {instr.pc}")


# ---------------------------------------------------------------------------
# Dispatch table (control-flow opcodes are handled by the SM scheduler)
# ---------------------------------------------------------------------------

HANDLERS = {
    "MOV": _h_mov,
    "MOV32I": _h_mov,
    "SEL": _h_sel,
    "S2R": _h_s2r,
    "CS2R": _h_cs2r,
    "IADD": _h_iadd,
    "IADD3": _h_iadd3,
    "IMUL": _h_imul,
    "IMAD": _h_imad,
    "IMNMX": _h_imnmx,
    "IABS": _h_iabs,
    "ISCADD": _h_iscadd,
    "ISETP": _h_isetp,
    "FLO": _h_flo,
    "POPC": _h_popc,
    "BFE": _h_bfe,
    "BFI": _h_bfi,
    "LOP": _h_lop,
    "LOP3": _h_lop3,
    "SHL": _h_shl,
    "SHR": _h_shr,
    "SHF": _h_shf,
    "I2I": _h_i2i,
    "FADD": _h_fadd,
    "FMUL": _h_fmul,
    "FFMA": _h_ffma,
    "FMNMX": _h_fmnmx,
    "FSEL": _h_fsel,
    "FSETP": _h_fsetp,
    "MUFU": _h_mufu,
    "F2I": _h_f2i,
    "I2F": _h_i2f,
    "F2F": _h_f2f,
    "DADD": _h_dadd,
    "DMUL": _h_dmul,
    "DFMA": _h_dfma,
    "DMNMX": _h_dmnmx,
    "DSETP": _h_dsetp,
    "PSETP": _h_psetp,
    "P2R": _h_p2r,
    "R2P": _h_r2p,
    "VOTE": _h_vote,
    "SHFL": _h_shfl,
    "LD": _h_load_global,
    "LDG": _h_load_global,
    "ST": _h_store_global,
    "STG": _h_store_global,
    "LDS": _h_load_shared,
    "STS": _h_store_shared,
    "LDL": _h_load_local,
    "STL": _h_store_local,
    "LDC": _h_ldc,
    "ATOM": _h_atom_global,
    "ATOMG": _h_atom_global,
    "ATOMS": _h_atom_shared,
    "RED": _h_red,
    "MEMBAR": _h_membar,
    "WARPSYNC": _h_warpsync,
    "NOP": _h_nop,
    "BPT": _h_bpt,
}

CONTROL_OPCODES = frozenset({"BRA", "SSY", "SYNC", "PBK", "BRK", "EXIT", "BAR"})
