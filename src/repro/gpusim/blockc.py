"""Block-compiled warp interpreter: straight-line SASS fused into superhandlers.

After the replay/snapshot/batch work, campaign wall-clock is dominated by
launches that must be simulated instruction-by-instruction (golden runs and
never-reconverging divergent suffixes), and profiling shows the cost there
is not the numpy lane math but the per-dynamic-instruction Python constant
in ``SM._run_slice_fast``: one dispatch index, one ``Warp.guard_mask`` call
(which copies ``active``), one ``device.tick()``, and one
``exec_mask.any()`` per warp-instruction.  This module removes that
constant for straight-line code:

* each kernel is partitioned once into **basic blocks** — maximal runs of
  non-control instructions, split at branch targets, unknown opcodes,
  ``SR_CLOCK`` readers (they observe the tick counter mid-block) and at
  :data:`MAX_BLOCK_LEN` so a block always fits one scheduling quantum;
* each block is code-generated into one Python **superhandler** via a
  source template + ``compile()``: the handler calls are inlined in
  sequence with the handler and instruction objects bound as keyword
  defaults (LOAD_FAST, no per-instruction table indexing), ``warp.active``
  / ``warp.preds`` hoisted out of the loop, guard masks still evaluated
  per-instruction (predicates mutate mid-block) but resolved to the
  no-copy ``_a`` fast path when the instruction is unguarded, the
  per-instruction ``exec_mask.any()`` / ``handler is None`` checks
  resolved at compile time, and the ``device.tick()`` calls replaced by a
  single bulk :meth:`~repro.gpusim.device.Device.tick_n` charge;
* a mid-block trap rolls the bulk tick charge back to the faulting
  instruction and restores ``warp.pc`` to it, so device counters, memory
  and warp state at the trap are exactly what per-instruction stepping
  would have produced.

The scheduler (``SM._run_slice_fast``) only executes a block whole when it
fits the warp's remaining quantum **and** the watchdog budget has headroom
for the whole block — otherwise it steps per-instruction — so the
round-robin interleaving of warps (atomics, shared memory) and the exact
watchdog trap point are preserved and ``results.csv`` plus simulated-cycle
totals are byte-identical with block compilation on or off.

Caching is two-level.  The expensive part — partitioning plus
``compile()`` of the generated source — is cached process-globally, keyed
on :func:`content_fingerprint` (a hash of every instruction's canonical
text plus resolved branch targets), so the thousands of per-run kernel
objects a campaign assembles from the same source pay codegen once.  The
cheap part — binding a kernel instance's handler table and instruction
objects into block functions — is cached on the kernel object and
validated against the *identity* of every instruction (strong references
are held, so ids cannot be reused), which also fixes the historical
``_gpusim_handlers`` staleness bug where an in-place rewrite of equal
length kept serving the old dispatch table.
"""

from __future__ import annotations

import hashlib
from time import perf_counter

import numpy as np

from repro.gpusim.exec_units import (
    CONTROL_OPCODES,
    HANDLERS,
    _imm_array,
    reads_clock,
)
from repro.sass.operands import Imm, Pred, Reg

# Must equal the SM scheduling quantum (repro.gpusim.sm imports it from
# here): a block longer than one slice could never run whole, and capping
# block length at the quantum keeps the warp round-robin interleaving
# identical to per-instruction stepping.
MAX_BLOCK_LEN = 64

# Control opcodes that carry a label operand (their resolved targets are
# block boundaries and part of the content fingerprint).
_BRANCHING = frozenset({"BRA", "SSY", "PBK"})


def _CONTROL(*_args) -> None:  # pragma: no cover - dispatch sentinel, never called
    """Handler-table sentinel marking a control-flow opcode.

    A module-level function (not ``object()``) so its identity survives
    pickling, should a kernel with a cached table ever cross a process
    boundary.
    """
    raise AssertionError("_CONTROL is a dispatch sentinel")


def content_fingerprint(instructions) -> str:
    """Content hash of an instruction sequence (text + branch targets).

    The canonical ``str(instr)`` covers opcode, modifiers, operands and the
    guard; branch targets are appended as resolved pcs because two kernels
    can render identical instruction text while their labels sit on
    different lines.
    """
    hasher = hashlib.sha256()
    for instr in instructions:
        hasher.update(str(instr).encode())
        if instr.opcode in _BRANCHING:
            try:
                hasher.update(b"@%d" % instr.branch_target)
            except ValueError:
                hasher.update(b"@?")
        hasher.update(b"\n")
    return hasher.hexdigest()


def build_table(instructions) -> list:
    """Pre-resolved dispatch table, one entry per static pc.

    Entries are the handler function, :func:`_CONTROL` for control-flow
    opcodes, or ``None`` for unknown opcodes — which still trap only when
    (and if) they are actually executed.
    """
    return [
        _CONTROL if instr.opcode in CONTROL_OPCODES else HANDLERS.get(instr.opcode)
        for instr in instructions
    ]


def _compilable(instr) -> bool:
    """Can this instruction live inside a compiled block?

    Control flow ends a block by definition; unknown opcodes must keep
    their trap-only-when-executed semantics (the step path raises at
    execution time); ``SR_CLOCK`` readers observe ``instructions_executed``
    mid-block, which the bulk ``tick_n`` charge would perturb.
    """
    if instr.opcode in CONTROL_OPCODES:
        return False
    if instr.opcode not in HANDLERS:
        return False
    return not reads_clock(instr)


def _block_spans(instructions) -> list[tuple[int, int]]:
    """Partition into maximal compilable runs ``[start, end)``.

    Splits at control opcodes, branch targets (a jump must land on a block
    start or plain-stepped pc, never mid-block), non-compilable
    instructions, and :data:`MAX_BLOCK_LEN`.
    """
    starts = set()
    for instr in instructions:
        if instr.opcode in _BRANCHING:
            try:
                starts.add(instr.branch_target)
            except ValueError:
                pass
    spans = []
    i = 0
    n = len(instructions)
    while i < n:
        if not _compilable(instructions[i]):
            i += 1
            continue
        j = i + 1
        while (
            j < n
            and j - i < MAX_BLOCK_LEN
            and j not in starts
            and _compilable(instructions[j])
        ):
            j += 1
        spans.append((i, j))
        i = j
    return spans


def _is_unguarded(guard) -> bool:
    """Mirror of ``Warp.guard_mask``'s fast path (no guard, or @PT)."""
    return guard is None or (guard.is_pt and not guard.negate)


# ---------------------------------------------------------------------------
# Inline opcode specialization
# ---------------------------------------------------------------------------
#
# For the hottest ALU opcodes the generated block does not call the generic
# handler at all: it emits the handler's numpy computation directly, with
# everything that is static per-instruction resolved at codegen time —
# modifier branches (``.HI``, ``.S32``, ``.U32``, the compare/combine ops),
# immediate operands (bound as shared read-only broadcast arrays, see
# ``exec_units._imm_array``), immediate *shift counts* (folded to Python
# ints), and register numbers (baked indices into the hoisted ``_r =
# warp.regs`` row table).  Register sources are read as numpy *views*
# where the handler's defensive copy is value-equivalent (every emitted
# expression allocates a fresh result before the terminal masked
# ``np.copyto`` store, so no view is ever mutated and read-modify-write
# instructions like ``IADD R1, R1, 1`` stay exact).  Each specialization
# mirrors its handler statement for statement — bit-identical results,
# and the single mutating store comes last so mid-block trap rollback
# semantics are unchanged.  Any operand/modifier shape outside the
# specialized pattern falls back to the generic handler call.

_CMP_SYMS = {"LT": "<", "LE": "<=", "GT": ">", "GE": ">=", "EQ": "==", "NE": "!="}

# numpy module + dtype objects bound as keyword defaults of every
# specialized superhandler (LOAD_FAST instead of global lookups).
_DTYPE_PARAMS = (
    "_np=_NP, _I32=_NP.int32, _I64=_NP.int64, _U32=_NP.uint32, "
    "_U64=_NP.uint64, _F32=_NP.float32, _F64=_NP.float64"
)


class _ConstPool:
    """Layout-level constants referenced by generated code as ``_C[i]``.

    Holds the shared read-only immediate arrays (and any other
    pre-computed objects) a layout's blocks bind as keyword defaults.
    Everything in the pool is derived from instruction *text* only, so a
    pool is as shareable across kernel instances as the source itself.
    """

    def __init__(self) -> None:
        self.values: list = []
        self._index: dict[int, int] = {}

    def add(self, value) -> int:
        idx = self._index.get(id(value))
        if idx is None:
            idx = len(self.values)
            self.values.append(value)
            self._index[id(value)] = idx
        return idx


def _imm_scalar(bits: int) -> int:
    """The signed-int64 lane value of an immediate (sign-extended int32)."""
    return bits - 0x100000000 if bits >= 0x80000000 else bits


class _Spec:
    """Per-block specializer: emits inline statements for one instruction.

    ``lines(instr, mask)`` returns the statement list (mask variable name
    already substituted) or ``None`` when the instruction must go through
    its generic handler.  Constants allocated along the way are recorded
    in ``used`` so the block generator can bind them as parameters.
    """

    def __init__(self, pool: _ConstPool) -> None:
        self.pool = pool
        self.used: set[int] = set()

    def _const(self, value) -> str:
        idx = self.pool.add(value)
        self.used.add(idx)
        return f"_c{idx}"

    def _imm(self, kind: str, bits: int) -> str:
        return self._const(_imm_array(kind, bits))

    # -- operand expressions (mirroring exec_units read helpers) ----------

    def _u32(self, op) -> str | None:
        """``read_raw``: raw uint32 bits, modifiers ignored (as the helper
        does).  Register reads are views — callers never mutate."""
        if isinstance(op, Reg):
            if op.is_rz:
                return self._imm("u32", 0)
            return f"_r[{op.index}]"
        if isinstance(op, Imm):
            return self._imm("u32", op.bits)
        return None

    def _i64(self, op) -> str | None:
        """``read_int``: sign-extended int64 with integer -/|| modifiers."""
        if isinstance(op, Reg):
            if op.is_rz:
                expr = self._imm("i64", 0)
            else:
                expr = f"_r[{op.index}].view(_I32).astype(_I64)"
            if op.absolute:
                expr = f"_np.abs({expr})"
            if op.negate:
                expr = f"(-{expr})"
            return expr
        if isinstance(op, Imm):
            return self._imm("i64", op.bits)
        return None

    def _zx64(self, op) -> str | None:
        """``read_raw(...).astype(int64)``: zero-extended (U32 compares)."""
        if isinstance(op, Reg):
            if op.is_rz:
                return self._imm("zx64", 0)
            return f"_r[{op.index}].astype(_I64)"
        if isinstance(op, Imm):
            return self._imm("zx64", op.bits)
        return None

    def _f32(self, op) -> str | None:
        """``read_f32``: float32 view with FP -/|| modifiers."""
        if isinstance(op, Reg):
            if op.is_rz:
                expr = self._imm("f32", 0)
            else:
                expr = f"_r[{op.index}].view(_F32)"
            if op.absolute:
                expr = f"_np.abs({expr})"
            if op.negate:
                expr = f"(-{expr})"
            return expr
        if isinstance(op, Imm):
            return self._imm("f32", op.bits)
        return None

    # -- destination stores ------------------------------------------------

    @staticmethod
    def _dest_reg(instr):
        dest = instr.dest
        if isinstance(dest, Reg) and not dest.is_rz:
            return dest.index
        return None

    def _store_i64(self, instr, expr: str, mask: str) -> list[str] | None:
        d = self._dest_reg(instr)
        if d is None:
            return ["pass"] if isinstance(instr.dest, Reg) else None
        return [f"_np.copyto(_r[{d}], ({expr}).astype(_U32), where={mask})"]

    def _store_u32(self, instr, expr: str, mask: str) -> list[str] | None:
        d = self._dest_reg(instr)
        if d is None:
            return ["pass"] if isinstance(instr.dest, Reg) else None
        return [f"_np.copyto(_r[{d}], {expr}, where={mask})"]

    def _store_f32(self, instr, expr: str, mask: str) -> list[str] | None:
        d = self._dest_reg(instr)
        if d is None:
            return ["pass"] if isinstance(instr.dest, Reg) else None
        return [f"_np.copyto(_r[{d}], ({expr}).view(_U32), where={mask})"]

    # -- per-opcode specializations ---------------------------------------

    def lines(self, instr, mask: str) -> list[str] | None:
        method = getattr(self, f"_op_{instr.opcode.lower()}", None)
        if method is None:
            return None
        return method(instr, mask)

    def _binary(self, instr, read):
        if len(instr.sources) != 2:
            return None, None
        return read(instr.sources[0]), read(instr.sources[1])

    def _op_mov(self, instr, mask):
        if len(instr.sources) != 1:
            return None
        a = self._u32(instr.sources[0])
        if a is None:
            return None
        return self._store_u32(instr, a, mask)

    def _op_iadd(self, instr, mask):
        a, b = self._binary(instr, self._i64)
        if a is None or b is None:
            return None
        return self._store_i64(instr, f"{a} + {b}", mask)

    def _op_iadd3(self, instr, mask):
        if len(instr.sources) != 3:
            return None
        a, b, c = (self._i64(op) for op in instr.sources)
        if a is None or b is None or c is None:
            return None
        return self._store_i64(instr, f"{a} + {b} + {c}", mask)

    def _op_imul(self, instr, mask):
        a, b = self._binary(instr, self._i64)
        if a is None or b is None:
            return None
        expr = f"{a} * {b}"
        if instr.has_modifier("HI"):
            expr = f"({expr}) >> 32"
        return self._store_i64(instr, expr, mask)

    def _op_imad(self, instr, mask):
        if len(instr.sources) != 3:
            return None
        a, b, c = (self._i64(op) for op in instr.sources)
        if a is None or b is None or c is None:
            return None
        return self._store_i64(instr, f"{a} * {b} + {c}", mask)

    def _op_iscadd(self, instr, mask):
        if len(instr.sources) != 3:
            return None
        a = self._i64(instr.sources[0])
        b = self._i64(instr.sources[1])
        shift_op = instr.sources[2]
        if a is None or b is None or not isinstance(shift_op, Imm):
            return None
        shift = _imm_scalar(shift_op.bits) & 31
        return self._store_i64(instr, f"({a} << {shift}) + {b}", mask)

    def _op_shl(self, instr, mask):
        # Immediate shift counts only: the handler's >=32 / cap-at-63
        # clamping folds to either a zero result or a plain shift.
        if len(instr.sources) != 2 or not isinstance(instr.sources[1], Imm):
            return None
        a = self._u32(instr.sources[0])
        if a is None:
            return None
        shift = _imm_scalar(instr.sources[1].bits) & 0xFF
        if shift >= 32:
            return self._store_u32(instr, self._imm("u32", 0), mask)
        return self._store_i64(instr, f"{a}.astype(_U64) << {shift}", mask)

    def _op_shr(self, instr, mask):
        if len(instr.sources) != 2 or not isinstance(instr.sources[1], Imm):
            return None
        shift = _imm_scalar(instr.sources[1].bits) & 0xFF
        if instr.has_modifier("S32"):
            a = self._i64(instr.sources[0])
            if a is None:
                return None
            return self._store_i64(instr, f"{a} >> {min(shift, 31)}", mask)
        a = self._u32(instr.sources[0])
        if a is None:
            return None
        if shift >= 32:
            return self._store_u32(instr, self._imm("u32", 0), mask)
        return self._store_i64(instr, f"{a}.astype(_U64) >> {shift}", mask)

    def _op_lop(self, instr, mask):
        if not instr.sources:
            return None
        a = self._u32(instr.sources[0])
        if a is None:
            return None
        if instr.has_modifier("NOT"):
            return self._store_u32(instr, f"~{a}", mask)
        if len(instr.sources) != 2:
            return None
        b = self._u32(instr.sources[1])
        if b is None:
            return None
        for mod, sym in (("AND", "&"), ("OR", "|"), ("XOR", "^")):
            if instr.has_modifier(mod):
                return self._store_u32(instr, f"{a} {sym} {b}", mask)
        return None

    def _op_fadd(self, instr, mask):
        a, b = self._binary(instr, self._f32)
        if a is None or b is None:
            return None
        return self._store_f32(instr, f"{a} + {b}", mask)

    def _op_fmul(self, instr, mask):
        a, b = self._binary(instr, self._f32)
        if a is None or b is None:
            return None
        return self._store_f32(instr, f"{a} * {b}", mask)

    def _op_ffma(self, instr, mask):
        if len(instr.sources) != 3:
            return None
        a, b, c = (self._f32(op) for op in instr.sources)
        if a is None or b is None or c is None:
            return None
        expr = (
            f"({a}).astype(_F64) * ({b}).astype(_F64) + ({c}).astype(_F64)"
        )
        return self._store_f32(instr, f"({expr}).astype(_F32)", mask)

    def _op_fmnmx(self, instr, mask):
        a, b = self._binary(instr, self._f32)
        if a is None or b is None:
            return None
        fn = "fmax" if instr.has_modifier("MAX") else "fmin"
        return self._store_f32(instr, f"_np.{fn}({a}, {b})", mask)

    def _setp(self, instr, mask, a, b):
        """Shared ISETP/FSETP tail: compare, combine, store predicate."""
        cmp_sym = None
        for mod in instr.modifiers:
            if mod in _CMP_SYMS:
                cmp_sym = _CMP_SYMS[mod]
                break
        if cmp_sym is None:
            return None
        expr = f"({a}) {cmp_sym} ({b})"
        if len(instr.sources) > 2:
            psrc = instr.sources[2]
            if not isinstance(psrc, Pred):
                return None
            if instr.has_modifier("OR"):
                sym = "|"
            elif instr.has_modifier("XOR"):
                sym = "^"
            else:
                sym = "&"
            if psrc.is_pt:
                # Constant pred source: resolve the combination statically.
                value = not psrc.negate
                if sym == "&":
                    if not value:
                        expr = f"_np.zeros_like({expr})"
                elif sym == "|":
                    if value:
                        expr = f"_np.ones_like({expr})"
                else:  # XOR
                    if value:
                        expr = f"~({expr})"
            else:
                pexpr = f"_p[{psrc.index}]"
                if psrc.negate:
                    pexpr = f"~{pexpr}"
                expr = f"({expr}) {sym} {pexpr}"
        dest = instr.dest
        if not isinstance(dest, Pred):
            return None
        if dest.is_pt:
            return ["pass"]
        return [
            f"_np.copyto(_p[{dest.index}], {expr}, "
            f"where={mask}, casting='unsafe')"
        ]

    def _op_isetp(self, instr, mask):
        if len(instr.sources) < 2:
            return None
        read = self._zx64 if instr.has_modifier("U32") else self._i64
        a = read(instr.sources[0])
        b = read(instr.sources[1])
        if a is None or b is None:
            return None
        return self._setp(instr, mask, a, b)

    def _op_fsetp(self, instr, mask):
        if len(instr.sources) < 2:
            return None
        a = self._f32(instr.sources[0])
        b = self._f32(instr.sources[1])
        if a is None or b is None:
            return None
        return self._setp(instr, mask, a, b)

    def _op_sel(self, instr, mask):
        return self._sel(instr, mask, self._u32, self._store_u32)

    def _op_fsel(self, instr, mask):
        return self._sel(instr, mask, self._f32, self._store_f32)

    def _sel(self, instr, mask, read, store):
        if len(instr.sources) != 3 or not isinstance(instr.sources[2], Pred):
            return None
        a = read(instr.sources[0])
        b = read(instr.sources[1])
        if a is None or b is None:
            return None
        p = instr.sources[2]
        if p.is_pt:
            # Constant selector: the chosen source's bits are the result
            # (f32 values round-trip to their original register bits).
            chosen = b if p.negate else a
            if store is self._store_f32:
                return self._store_u32(instr, f"({chosen}).view(_U32)", mask)
            return self._store_u32(instr, chosen, mask)
        pexpr = f"_p[{p.index}]"
        if p.negate:
            a, b = b, a
        return store(instr, f"_np.where({pexpr}, {a}, {b})", mask)


def _gen_block_source(instructions, start: int, end: int, pool: _ConstPool) -> str:
    """Source for one superhandler ``_b<start>(warp, device)``.

    The generated function executes instructions ``[start, end)`` exactly
    as the step interpreter would, with the per-instruction constant costs
    resolved at compile time:

    * one bulk ``device.tick_n(n)`` instead of n ``tick()`` calls (the
      caller has already checked watchdog headroom for the whole block);
    * ``_a = warp.active`` hoisted — ``active`` is invariant inside a
      block (only control opcodes mutate it) and non-empty whenever the
      warp is scheduled, so unguarded instructions pass it uncopied and
      skip ``any()``;
    * guarded instructions compute ``_a & [~]warp.preds[i]`` inline (the
      one mask that must stay per-instruction: predicates mutate
      mid-block) and keep the ``any()`` gate;
    * hot ALU opcodes are inlined by :class:`_Spec` instead of calling
      their generic handler (register file hoisted as ``_r``, immediates
      bound as shared read-only arrays, modifier branches resolved here);
    * on a mid-block raise, the over-charged ticks are rolled back and
      ``warp.pc`` is set to the faulting instruction, leaving device
      counters and warp state exactly as stepping would at the trap.
    """
    n = end - start
    params = ["warp", "device"]
    stmts: list[list[str]] = []
    spec = _Spec(pool)
    specialized = False
    need_active = False
    need_preds = False
    for pc in range(start, end):
        idx = pc - start
        instr = instructions[pc]
        guard = instr.guard
        lines = []
        if _is_unguarded(guard):
            inline = spec.lines(instr, "_a")
            if inline is not None:
                lines.extend(inline)
                specialized = True
            else:
                params.append(f"_h{idx}=_T[{pc}]")
                params.append(f"_i{idx}=_I[{pc}]")
                lines.append(f"_h{idx}(warp, _i{idx}, _a)")
            need_active = True
        elif guard.is_pt:
            # @!PT: statically never executes — only the tick is charged.
            lines.append(f"pass  # @!PT {instr.opcode}")
        else:
            invert = "~" if guard.negate else ""
            lines.append(f"_m = _a & {invert}_p[{guard.index}]")
            lines.append("if _m.any():")
            inline = spec.lines(instr, "_m")
            if inline is not None:
                lines.extend("    " + inner for inner in inline)
                specialized = True
            else:
                params.append(f"_h{idx}=_T[{pc}]")
                params.append(f"_i{idx}=_I[{pc}]")
                lines.append(f"    _h{idx}(warp, _i{idx}, _m)")
            need_active = True
            need_preds = True
        stmts.append(lines)

    body = [line for lines in stmts for line in lines]
    need_regs = any("_r[" in line for line in body)
    need_preds = need_preds or any("_p[" in line for line in body)
    if specialized:
        params.append(_DTYPE_PARAMS)
        params.extend(f"_c{idx}=_C[{idx}]" for idx in sorted(spec.used))

    out = [f"def _b{start}({', '.join(params)}):"]
    out.append(f"    device.tick_n({n})")
    if need_active:
        out.append("    _a = warp.active")
    if need_preds:
        out.append("    _p = warp.preds")
    if need_regs:
        out.append("    _r = warp.regs")
    if n == 1:
        # A raise leaves pc at the faulting instruction and exactly one
        # tick charged — already identical to stepping, no rollback needed.
        out.extend("    " + line for line in stmts[0])
        out.append(f"    warp.pc = {end}")
    else:
        out.append("    _pos = 0")
        out.append("    try:")
        for idx, lines in enumerate(stmts):
            out.extend("        " + line for line in lines)
            if idx < n - 1:
                out.append(f"        _pos = {idx + 1}")
        out.append("    except BaseException:")
        out.append(f"        device.untick({n} - 1 - _pos)")
        out.append(f"        warp.pc = {start} + _pos")
        out.append("        raise")
        out.append(f"    warp.pc = {end}")
    return "\n".join(out)


class _Layout:
    """The content-keyed, kernel-instance-independent compilation product:
    block spans, the compiled module of superhandler definitions, and the
    constant pool (shared read-only immediate arrays) the code binds."""

    __slots__ = ("spans", "source", "code", "consts")

    def __init__(self, spans, source, code, consts) -> None:
        self.spans = spans
        self.source = source
        self.code = code
        self.consts = consts


# Process-global codegen cache: campaigns re-assemble the same kernels for
# every run, so the partition + compile() cost is paid once per distinct
# instruction content, not once per run.  Fork-based executors inherit it.
_CODE_CACHE: dict[str, _Layout] = {}


def _build_layout(instructions) -> _Layout:
    spans = _block_spans(instructions)
    pool = _ConstPool()
    source = "\n\n".join(
        _gen_block_source(instructions, start, end, pool) for start, end in spans
    )
    code = compile(source, "<gpusim-blockc>", "exec")
    return _Layout(spans, source, code, pool.values)


class Block:
    """One compiled basic block: ``run(warp, device)`` executes it whole."""

    __slots__ = ("start", "end", "length", "run")

    def __init__(self, start: int, end: int, run) -> None:
        self.start = start
        self.end = end
        self.length = end - start
        self.run = run


class CompiledKernel:
    """Per-kernel-instance execution tables.

    ``table`` is the per-pc dispatch table (handler / :func:`_CONTROL` /
    ``None``); ``blocks`` maps each block-start pc to its :class:`Block`
    (``None`` elsewhere, or entirely ``None`` when blocks were not
    requested).  ``instructions`` holds strong references to the exact
    instruction objects the code was bound to, making the identity check
    in :func:`compiled_for` sound (a freed id could otherwise be reused).
    """

    __slots__ = ("ids", "fingerprint", "table", "blocks", "instructions")

    def __init__(self, ids, fingerprint, table, blocks, instructions) -> None:
        self.ids = ids
        self.fingerprint = fingerprint
        self.table = table
        self.blocks = blocks
        self.instructions = instructions

    @property
    def num_blocks(self) -> int:
        return 0 if self.blocks is None else sum(
            1 for block in self.blocks if block is not None
        )


def compiled_for(kernel, device=None, want_blocks: bool = True) -> CompiledKernel:
    """The (cached) compiled tables for a kernel instance.

    Cached on the kernel object, validated against the identity of every
    instruction — an in-place rewrite (even of equal length) rebuilds both
    the dispatch table and the blocks.  With ``want_blocks=False`` only the
    dispatch table is built (hooked launches and ``block_compile=False``
    devices never pay codegen); a later ``want_blocks=True`` call upgrades
    the cache entry in place.

    ``device`` (optional) receives the observability charges:
    ``blockc_blocks_compiled`` and ``blockc_compile_seconds``.
    """
    instructions = tuple(kernel.instructions)
    ids = tuple(map(id, instructions))
    cached = getattr(kernel, "_gpusim_blockc", None)
    if cached is not None and cached.ids == ids:
        if cached.blocks is not None or not want_blocks:
            return cached
    started = perf_counter()
    table = build_table(instructions)
    if want_blocks:
        fingerprint = content_fingerprint(instructions)
        layout = _CODE_CACHE.get(fingerprint)
        if layout is None:
            layout = _build_layout(instructions)
            _CODE_CACHE[fingerprint] = layout
        namespace = {
            "_T": table, "_I": instructions, "_C": layout.consts, "_NP": np,
        }
        exec(layout.code, namespace)
        blocks: list | None = [None] * len(instructions)
        for start, end in layout.spans:
            blocks[start] = Block(start, end, namespace[f"_b{start}"])
        compiled_count = len(layout.spans)
    else:
        fingerprint = None
        blocks = None
        compiled_count = 0
    compiled = CompiledKernel(ids, fingerprint, table, blocks, instructions)
    kernel._gpusim_blockc = compiled
    if device is not None and compiled_count:
        device.blockc_blocks_compiled += compiled_count
        device.blockc_compile_seconds += perf_counter() - started
    return compiled


def invalidate(kernel) -> None:
    """Drop a kernel's compiled tables (next launch rebuilds them).

    Called by :meth:`repro.nvbit.api.NVBitRuntime.invalidate_instrumented`:
    a tool that forces a fresh instrumented clone may have rewritten the
    function's instructions, and the identity check alone should not be
    the only line of defence.
    """
    if getattr(kernel, "_gpusim_blockc", None) is not None:
        kernel._gpusim_blockc = None
