"""Golden-replay fast-forward: skip simulating everything before the fault.

NVBitFI's headline property (paper §III-C, Figures 4–5) is that an
injection run costs barely more than an uninstrumented run, because only
the one targeted kernel launch is instrumented.  This module takes the
idea to its logical end, ZOFI-style: every launch *strictly before* the
target ``(kernel_name, kernel_count)`` instance is bit-identical to the
golden run, so it does not need to be simulated at all — its effect on
persistent device state can be replayed from a recording.

Three pieces:

* :class:`ReplayRecorder` — attached to the golden run's
  :class:`~repro.gpusim.device.Device`; at every kernel-launch boundary it
  captures the launch's global-memory write delta (dirty 256-byte pages,
  tracked by :class:`~repro.mem.memory.GlobalMemory`) and the end-of-launch
  device counters (instructions, cycles, warps, divergence high-water,
  active SMs), producing a :class:`ReplayLog`;
* :class:`ReplayLog` — the per-campaign recording, with a compact binary
  on-disk format (:func:`save_replay_log` / :func:`load_replay_log`; loads
  are cached per process so parallel campaign workers share one read-only
  copy);
* :class:`ReplayCursor` — one per injection run, consulted by
  :meth:`repro.cuda.driver.CudaDriver.cuLaunchKernel`: launches before the
  target instance apply the recorded delta with one vectorised numpy copy
  instead of simulating; the target launch and everything after it (state
  may have diverged) simulate normally.

**Tail fast-forward** closes the other half of the gap: masked faults
dominate real campaigns, and a masked fault's architectural state usually
re-converges with the golden run within a few launches.  With ``tail``
enabled the cursor keeps going after the target: at the target boundary it
snapshots a *shadow* of golden global memory (memory still equals golden
there), then after every simulated launch it advances the shadow by the
recorded golden delta and maintains the *divergence set* — the 256-byte
pages whose live contents differ from the shadow — from
:class:`~repro.mem.memory.GlobalMemory` dirty-page tracking.  At the first
launch boundary where the divergence set is empty the fault is
architecturally dead: the cursor **re-arms** and replays every remaining
launch from the tape.  Re-arm is conservative — a host read
(``cuMemcpyDtoH``) touching a divergent page, any recorded CUDA error, an
instrumented post-target launch, running past the tape, or any metadata
mismatch permanently disarms the tail, falling back to simulation.

Correctness is enforceable because the whole stack is deterministic: the
recorded per-launch metadata (kernel name, instance, grid, block,
arguments, shared memory) is verified against the live launch, and any
mismatch — or any instrumented launch — permanently disarms the cursor,
falling back to full simulation.  The only persistent cross-launch device
state is global memory (shared memory, constant banks and warp state are
rebuilt per launch), so page-exact equality with the shadow at a launch
boundary implies the remaining launches are bit-identical to the tape.
``results.csv`` is byte-identical with fast-forward (pre or tail) on or
off; skipped launches reconstruct their ``instructions_executed``/cycle
accounting from the recorded counters, so traces, metrics and the
Figure 4/5 overhead numbers stay exact.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import threading
from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError, WatchdogTimeout
from repro.mem.memory import PAGE_SHIFT, PAGE_SIZE

_MAGIC = b"RPRL\x01\n"

# Launch boundaries the divergence set may stay non-empty before the tail
# gives up.  Masked faults that re-converge at all do so almost immediately
# (the corrupted value dies in-kernel or the polluted buffer is overwritten
# within a launch or two); a persistently divergent run would otherwise pay
# dirty-page tracking on every remaining launch for nothing.  Giving up is
# always safe — it only forfeits a possible speedup.
TAIL_PATIENCE = 8


Dim3 = tuple[int, int, int]


@dataclass
class LaunchDelta:
    """Everything one golden launch did to persistent device state.

    ``pages``/``data`` hold the post-launch contents of every dirty page
    (``data`` is ``len(pages) * PAGE_SIZE`` bytes, page-major); the counter
    fields are per-launch deltas except ``divergence_high_water``, which is
    the absolute post-launch high-water mark.
    """

    kernel_name: str
    instance: int  # per-kernel dynamic instance index (the injector's count)
    grid: Dim3
    block: Dim3
    args: tuple[int, ...]
    shared_bytes: int
    instructions: int
    cycles: int
    warps: int
    divergence_high_water: int
    active_sms: tuple[int, ...]
    pages: np.ndarray  # int64 page indices, sorted
    data: np.ndarray  # uint8, page-major dirty-page contents

    def matches(
        self, kernel_name: str, grid: Dim3, block: Dim3, args, shared_bytes: int
    ) -> bool:
        """Does a live launch look exactly like this recorded one?"""
        return (
            kernel_name == self.kernel_name
            and grid == self.grid
            and block == self.block
            and tuple(args) == self.args
            and shared_bytes == self.shared_bytes
        )


class ReplayLog:
    """One golden run's launch-by-launch recording."""

    def __init__(
        self, mem_size: int, launches: list[LaunchDelta], workload: str = ""
    ) -> None:
        self.mem_size = mem_size
        self.launches = launches
        self.workload = workload
        #: sha256 hex digest of the serialised blob section; set by the
        #: loader (and by ``save_replay_log``) so callers such as the
        #: persistent replay cache can validate content identity.
        self.content_hash: str | None = None
        self._by_instance: dict[tuple[str, int], int] | None = None

    def __len__(self) -> int:
        return len(self.launches)

    def stop_launch_for(self, kernel_name: str, kernel_count: int) -> int | None:
        """Global launch-sequence index of the (kernel_count+1)-th dynamic
        instance of ``kernel_name`` — the first launch that must simulate."""
        if self._by_instance is None:
            self._by_instance = {
                (rec.kernel_name, rec.instance): seq
                for seq, rec in enumerate(self.launches)
            }
        return self._by_instance.get((kernel_name, kernel_count))

    @property
    def total_pages(self) -> int:
        return sum(int(rec.pages.size) for rec in self.launches)


class ReplayRecorder:
    """Captures per-launch deltas while attached to a golden run's device.

    The recorder is fail-safe: any launch that raises, any device whose
    memory size is not page-aligned, and any overlapping recording session
    aborts the recording (``log()`` then returns ``None``) rather than
    producing a log that could replay wrong state.
    """

    def __init__(self) -> None:
        self.launches: list[LaunchDelta] = []
        self.aborted = False
        self.workload = ""
        self._mem_size: int | None = None
        self._instances: dict[str, int] = {}
        self._snapshot: tuple[int, int, int, set[int]] | None = None

    # -- Device.launch hooks ---------------------------------------------------

    def begin_launch(self, device) -> None:
        """Called by :meth:`Device.launch` before the first block runs."""
        if self.aborted:
            return
        mem = device.global_mem
        if mem.size % PAGE_SIZE != 0:
            self.abort()
            return
        if self._mem_size is None:
            self._mem_size = mem.size
        elif self._mem_size != mem.size:  # a second device mid-recording
            self.abort()
            return
        self._snapshot = (
            device.instructions_executed,
            device.cycles,
            device.warps_launched,
            set(device.active_sms),
        )
        mem.begin_write_tracking()

    def end_launch(
        self, device, kernel_name: str, grid: Dim3, block: Dim3,
        args, shared_bytes: int,
    ) -> None:
        """Called by :meth:`Device.launch` after the last block completes."""
        if self.aborted or self._snapshot is None:
            return
        mem = device.global_mem
        pages = mem.end_write_tracking()
        instructions0, cycles0, warps0, sms0 = self._snapshot
        self._snapshot = None
        instance = self._instances.get(kernel_name, 0)
        self._instances[kernel_name] = instance + 1
        data = (
            mem.data.reshape(-1, PAGE_SIZE)[pages].ravel().copy()
            if pages.size
            else np.empty(0, dtype=np.uint8)
        )
        self.launches.append(
            LaunchDelta(
                kernel_name=kernel_name,
                instance=instance,
                grid=grid,
                block=block,
                args=tuple(int(a) for a in args),
                shared_bytes=shared_bytes,
                instructions=device.instructions_executed - instructions0,
                cycles=device.cycles - cycles0,
                warps=device.warps_launched - warps0,
                divergence_high_water=device.divergence_depth_high_water,
                active_sms=tuple(sorted(device.active_sms - sms0)),
                pages=pages,
                data=data,
            )
        )

    def abort(self) -> None:
        """Discard the recording (a launch faulted or state is untrackable)."""
        self.aborted = True
        self.launches = []
        self._snapshot = None

    def log(self) -> ReplayLog | None:
        """The finished recording, or ``None`` when nothing usable was taped."""
        if self.aborted or self._mem_size is None or not self.launches:
            return None
        return ReplayLog(self._mem_size, self.launches, workload=self.workload)


class ReplayCursor:
    """Per-run fast-forward state, consulted once per ``cuLaunchKernel``.

    ``stop_launch`` is the global sequence index of the target launch: only
    launches with a strictly smaller index may be pre-replayed (``pre``).
    With ``tail`` enabled the cursor does not die at the target: it tracks
    post-target divergence against a golden shadow and re-arms the moment
    the divergence set empties at a launch boundary, replaying the rest of
    the run from the tape.

    The cursor is a five-state machine:

    ``PRE``
        pre-target replay armed (the PR-4 behaviour);
    ``WAIT``
        no pre-target window (``pre=False``) — simulate, waiting for the
        target boundary to start tail tracking;
    ``TRACKING``
        post-target: every simulated launch folds its dirty pages and the
        recorded golden delta into the shadow/divergence set;
    ``REPLAYING``
        re-armed: the divergence set emptied at a boundary, remaining
        launches replay from the tape;
    ``OFF``
        permanently disarmed; everything simulates.

    Disarm rules are conservative.  Reaching the target ends ``PRE``; an
    instrumented post-target launch (permanent/intermittent-style tooling
    the tape does not cover), running past the tape, a metadata or
    memory-size mismatch, a faulted launch, a recorded CUDA error, or a
    host read of a divergent page all turn the tail ``OFF`` for good.
    Tracking also gives up (``patience``, default :data:`TAIL_PATIENCE`)
    once the divergence set has stayed non-empty for that many launch
    boundaries — re-converging faults die within a launch or two, and a
    persistent one would pay dirty-page tracking forever for nothing.
    """

    _PRE = "pre"
    _WAIT = "wait"
    _TRACKING = "tracking"
    _REPLAYING = "replaying"
    _OFF = "off"

    def __init__(
        self,
        log: ReplayLog,
        stop_launch: int,
        pre: bool = True,
        tail: bool = False,
        patience: int | None = TAIL_PATIENCE,
    ) -> None:
        self.log = log
        self.stop_launch = min(stop_launch, len(log.launches))
        self.tail = tail
        self._patience = patience  # None: track until the tape runs out
        self.skipped = 0  # launches replayed before the target (PRE)
        self.tail_skipped = 0  # launches replayed after convergence (REPLAYING)
        self.converged_at = None  # launch seq where the divergence set emptied
        self.divergent: set[int] = set()
        self._shadow: np.ndarray | None = None  # golden global-memory mirror
        self._pending: tuple[int, LaunchDelta] | None = None
        if pre:
            self._state = self._PRE
        elif tail:
            self._state = self._WAIT
        else:
            self._state = self._OFF

    @property
    def armed(self) -> bool:
        """Pre-target replay active (compatibility with the PR-4 cursor)."""
        return self._state == self._PRE

    @property
    def tracking(self) -> bool:
        """Post-target divergence tracking active (checked by Device.launch)."""
        return self._state == self._TRACKING

    def consult(
        self,
        device,
        kernel_name: str,
        grid: Dim3,
        block: Dim3,
        args,
        shared_bytes: int,
        instrumented: bool,
    ) -> LaunchDelta | None:
        """The recorded delta to apply instead of simulating, or ``None``."""
        state = self._state
        if state == self._OFF:
            return None
        seq = device.launch_count
        if state in (self._PRE, self._WAIT):
            if seq >= self.stop_launch or instrumented:
                return self._reach_target(
                    device, seq, kernel_name, grid, block, args, shared_bytes
                )
            if state == self._WAIT:
                return None
            if device.global_mem.size != self.log.mem_size:
                self._state = self._OFF
                return None
            rec = self.log.launches[seq]
            if not rec.matches(kernel_name, grid, block, args, shared_bytes):
                self._state = self._OFF
                return None
            return rec
        if state == self._TRACKING:
            return self._consult_tracking(
                device, seq, kernel_name, grid, block, args, shared_bytes,
                instrumented,
            )
        # REPLAYING: like PRE, but falling off the tape (or any mismatch) is
        # safe — memory is the exact golden state at this boundary, so the
        # cursor just retires and the rest simulates.
        if (
            not instrumented
            and seq < len(self.log.launches)
            and device.global_mem.size == self.log.mem_size
        ):
            rec = self.log.launches[seq]
            if rec.matches(kernel_name, grid, block, args, shared_bytes):
                return rec
        self._disarm_tail()
        return None

    def _reach_target(
        self, device, seq, kernel_name, grid, block, args, shared_bytes
    ) -> None:
        """Pre-target replay is over; start tail tracking if it soundly can.

        The target boundary is the one place memory is known to equal
        golden, so the shadow snapshot happens here.  An instrumented
        launch *before* the target (``seq < stop_launch``), a target off
        the tape, a memory-size mismatch or mismatched target metadata all
        mean the tape cannot describe this run — tail stays off.
        """
        if (
            not self.tail
            or seq != self.stop_launch
            or seq >= len(self.log.launches)
            or device.global_mem.size != self.log.mem_size
        ):
            self._state = self._OFF
            return None
        rec = self.log.launches[seq]
        if not rec.matches(kernel_name, grid, block, args, shared_bytes):
            self._state = self._OFF
            return None
        self._shadow = device.global_mem.shadow_copy()
        self.divergent = set()
        self._pending = (seq, rec)
        self._state = self._TRACKING
        return None

    def _consult_tracking(
        self, device, seq, kernel_name, grid, block, args, shared_bytes,
        instrumented,
    ) -> LaunchDelta | None:
        """A launch boundary while tracking: re-arm if converged, else keep
        simulating (with tracking), or disarm if the tape can't follow."""
        off_tape = (
            instrumented
            or seq >= len(self.log.launches)
            or device.global_mem.size != self.log.mem_size
        )
        rec = None if off_tape else self.log.launches[seq]
        if rec is not None and not rec.matches(
            kernel_name, grid, block, args, shared_bytes
        ):
            rec = None
        if rec is None:
            # Instrumented, past the tape, or diverged launch sequence: the
            # recording cannot describe this launch, tracked or replayed.
            self._disarm_tail()
            return None
        if not self.divergent:
            # Architecturally dead fault: memory equals the shadow, which
            # equals golden at this boundary — re-arm and replay the rest.
            self._rearm(seq)
            return rec
        if self._patience is not None:
            self._patience -= 1
            if self._patience < 0:
                # Still divergent after TAIL_PATIENCE boundaries: treat the
                # fault as persistent and stop paying for tracking.
                self._disarm_tail()
                return None
        self._pending = (seq, rec)
        return None

    # -- Device.launch hooks (TRACKING state only) ----------------------------

    def begin_simulated_launch(self, device) -> None:
        """Open a dirty-page window around a tracked simulated launch."""
        device.global_mem.begin_write_tracking()

    def end_simulated_launch(self, device) -> None:
        """Fold one simulated launch into the shadow and divergence set."""
        if self._state != self._TRACKING:
            return
        written = device.global_mem.end_write_tracking()
        pending, self._pending = self._pending, None
        if pending is None:  # a launch consult never saw (shouldn't happen)
            self._disarm_tail()
            return
        _seq, rec = pending
        shadow = self._shadow
        if rec.pages.size:
            shadow.reshape(-1, PAGE_SIZE)[rec.pages] = rec.data.reshape(
                -1, PAGE_SIZE
            )
        candidates = self.divergent.union(
            written.tolist(), rec.pages.tolist()
        )
        if candidates:
            pages = np.fromiter(
                candidates, dtype=np.int64, count=len(candidates)
            )
            differing = device.global_mem.diff_pages(shadow, pages)
            self.divergent = set(differing.tolist())
        else:
            self.divergent = set()

    def launch_faulted(self, device) -> None:
        """A tracked launch raised: partial writes make the divergence set
        untrustworthy (and golden saw no fault), so the tail turns off."""
        device.global_mem.end_write_tracking()
        self._disarm_tail()

    # -- host-traffic guards (CudaDriver) --------------------------------------

    def note_host_write(self, address: int, payload: bytes) -> None:
        """Mirror a successful ``cuMemcpyHtoD`` into the shadow.

        Sound while the read/error guards hold: host state can only diverge
        from golden by observing divergent device bytes or a CUDA error,
        both of which permanently disarm the tail — so any HtoD payload
        reaching this point is golden-identical.
        """
        if self._state == self._TRACKING and len(payload):
            self._shadow[address : address + len(payload)] = np.frombuffer(
                payload, dtype=np.uint8
            )

    def note_host_read(self, address: int, nbytes: int) -> None:
        """A ``cuMemcpyDtoH`` overlapping a divergent page makes divergence
        host-visible: the host may now branch away from golden, so the tail
        is permanently disarmed."""
        if self._state != self._TRACKING or nbytes <= 0 or not self.divergent:
            return
        first = address >> PAGE_SHIFT
        last = (address + nbytes - 1) >> PAGE_SHIFT
        if any(first <= page <= last for page in self.divergent):
            self._disarm_tail()

    def disarm_tail(self) -> None:
        """A recorded CUDA error (or other host-visible anomaly the golden
        run did not have): the host may branch on it, so tail fast-forward
        can never re-arm in this run."""
        if self._state in (self._WAIT, self._TRACKING, self._REPLAYING):
            self._disarm_tail()
        else:
            # PRE keeps replaying (pre-target launches are verified per
            # launch), but the tail may no longer arm at the target.
            self.tail = False

    # -- internals -------------------------------------------------------------

    def _rearm(self, seq: int) -> None:
        self._state = self._REPLAYING
        self.converged_at = seq
        self._shadow = None
        self._pending = None
        self.divergent = set()

    def _disarm_tail(self) -> None:
        self._state = self._OFF
        self._shadow = None
        self._pending = None
        self.divergent = set()

    def apply(self, device, rec: LaunchDelta) -> None:
        """Fast-forward one launch: restore its write delta and counters.

        The bulk counter charge goes through :meth:`Device.tick_n` — last,
        so that when the recorded instructions push the run over its budget
        the raised :class:`WatchdogTimeout` leaves exactly the same device
        state (memory, launch/warp counters, skip tallies) as before.
        """
        mem = device.global_mem
        if rec.pages.size:
            mem.data.reshape(-1, PAGE_SIZE)[rec.pages] = rec.data.reshape(
                -1, PAGE_SIZE
            )
        device.launch_count += 1
        device.warps_launched += rec.warps
        device.active_sms.update(rec.active_sms)
        if rec.divergence_high_water > device.divergence_depth_high_water:
            device.divergence_depth_high_water = rec.divergence_high_water
        if self._state == self._REPLAYING:
            self.tail_skipped += 1
        else:
            self.skipped += 1
        device.tick_n(rec.instructions, cycles=rec.cycles)


# -- on-disk format ------------------------------------------------------------
#
#   magic (6 bytes) | header length (uint32 LE) | JSON header | blobs
#
# The JSON header carries the log-level fields plus per-launch metadata
# (including each launch's page count); the blob section holds, for each
# launch in order, the int64 little-endian page-index array followed by the
# raw page contents.  Everything after the header is offset-computable, so
# the loader is a single sequential read.
#
# The header also embeds ``sha256``, the hex digest of the blob section:
# the loader rejects a log whose blobs do not match (torn write, bit rot,
# or a rewrite that kept the header), and the persistent replay cache uses
# the digest as its content-identity check.  Logs written before the field
# existed still load (no digest, no validation).


def save_replay_log(log: ReplayLog, path: str | os.PathLike) -> None:
    """Serialise ``log`` to ``path`` (atomically, via a temp file)."""
    digest = hashlib.sha256()
    for rec in log.launches:
        digest.update(rec.pages.astype("<i8").tobytes())
        digest.update(rec.data.tobytes())
    content_hash = digest.hexdigest()
    header = {
        "page_size": PAGE_SIZE,
        "mem_size": log.mem_size,
        "workload": log.workload,
        "sha256": content_hash,
        "launches": [
            {
                "kernel": rec.kernel_name,
                "instance": rec.instance,
                "grid": list(rec.grid),
                "block": list(rec.block),
                "args": list(rec.args),
                "shared": rec.shared_bytes,
                "instructions": rec.instructions,
                "cycles": rec.cycles,
                "warps": rec.warps,
                "div_hw": rec.divergence_high_water,
                "sms": list(rec.active_sms),
                "num_pages": int(rec.pages.size),
            }
            for rec in log.launches
        ],
    }
    blob = json.dumps(header, separators=(",", ":")).encode()
    # Unique per process *and* thread: `repro serve` coordinators write
    # shared-cache entries concurrently from threads of one process.
    tmp = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
    with open(tmp, "wb") as handle:
        handle.write(_MAGIC)
        handle.write(struct.pack("<I", len(blob)))
        handle.write(blob)
        for rec in log.launches:
            handle.write(rec.pages.astype("<i8").tobytes())
            handle.write(rec.data.tobytes())
    os.replace(tmp, path)
    log.content_hash = content_hash


def _read_replay_log(path: str | os.PathLike) -> ReplayLog:
    with open(path, "rb") as handle:
        raw = handle.read()
    if raw[: len(_MAGIC)] != _MAGIC:
        raise ReproError(f"{path} is not a replay log (bad magic)")
    offset = len(_MAGIC)
    (header_len,) = struct.unpack_from("<I", raw, offset)
    offset += 4
    header = json.loads(raw[offset : offset + header_len].decode())
    offset += header_len
    if header.get("page_size") != PAGE_SIZE:
        raise ReproError(
            f"{path} was recorded with page size {header.get('page_size')}, "
            f"this build uses {PAGE_SIZE}"
        )
    expected_hash = header.get("sha256")
    if expected_hash is not None:
        actual = hashlib.sha256(raw[offset:]).hexdigest()
        if actual != expected_hash:
            raise ReproError(
                f"{path} failed content validation: blob sha256 {actual} "
                f"does not match recorded {expected_hash}"
            )
    launches = []
    for meta in header["launches"]:
        num_pages = meta["num_pages"]
        pages = np.frombuffer(raw, dtype="<i8", count=num_pages, offset=offset)
        offset += 8 * num_pages
        nbytes = num_pages * PAGE_SIZE
        data = np.frombuffer(raw, dtype=np.uint8, count=nbytes, offset=offset)
        offset += nbytes
        launches.append(
            LaunchDelta(
                kernel_name=meta["kernel"],
                instance=meta["instance"],
                grid=tuple(meta["grid"]),
                block=tuple(meta["block"]),
                args=tuple(meta["args"]),
                shared_bytes=meta["shared"],
                instructions=meta["instructions"],
                cycles=meta["cycles"],
                warps=meta["warps"],
                divergence_high_water=meta["div_hw"],
                active_sms=tuple(meta["sms"]),
                pages=pages.astype(np.int64),
                data=data,
            )
        )
    log = ReplayLog(
        header["mem_size"], launches, workload=header.get("workload", "")
    )
    log.content_hash = expected_hash
    return log


def _peek_content_hash(path: str | os.PathLike) -> str | None:
    """The header-embedded blob digest, read without parsing the blobs.

    Returns ``None`` for pre-digest logs; I/O or parse errors also return
    ``None`` and are left for the full read to report properly.
    """
    try:
        with open(path, "rb") as handle:
            if handle.read(len(_MAGIC)) != _MAGIC:
                return None
            prefix = handle.read(4)
            if len(prefix) < 4:
                return None
            (header_len,) = struct.unpack("<I", prefix)
            header = json.loads(handle.read(header_len).decode())
    except (OSError, ValueError):
        return None
    return header.get("sha256")


# One read-only copy per process: parallel campaign workers (and a serial
# engine re-running against the same store) all share the cached log.  The
# key includes file identity (path, mtime_ns, size) *and* the
# header-embedded content digest, so an overwritten log is reloaded even
# when the rewrite preserves mtime and size (e.g. a golden re-run after a
# workload edit restored with ``os.utime``) — never served stale.
_LOG_CACHE: dict[tuple[str, int, int, str | None], ReplayLog] = {}
_LOG_CACHE_LOCK = threading.Lock()


def load_replay_log(path: str | os.PathLike) -> ReplayLog:
    """Load (with per-process caching) the replay log at ``path``."""
    stat = os.stat(path)
    key = (
        os.path.realpath(path),
        stat.st_mtime_ns,
        stat.st_size,
        _peek_content_hash(path),
    )
    with _LOG_CACHE_LOCK:
        cached = _LOG_CACHE.get(key)
        if cached is not None:
            return cached
    log = _read_replay_log(path)
    with _LOG_CACHE_LOCK:
        _LOG_CACHE.clear()  # at most one live log per worker process
        _LOG_CACHE[key] = log
    return log


@dataclass(frozen=True)
class ReplayRef:
    """A picklable pointer to one task's fast-forward window.

    ``path`` names the on-disk log; ``stop_launch`` is the target launch's
    global sequence index.  ``pre`` replays the launches strictly before
    the target; ``tail`` tracks post-target divergence and replays the
    remaining launches once state re-converges with golden.  Workers thaw
    the reference into a live :class:`ReplayCursor` via the per-process log
    cache; a missing or unreadable log degrades to full simulation instead
    of failing the task.
    """

    path: str
    stop_launch: int
    pre: bool = True
    tail: bool = False

    def cursor(self) -> ReplayCursor | None:
        try:
            log = load_replay_log(self.path)
        except (OSError, ReproError):
            return None
        return ReplayCursor(log, self.stop_launch, pre=self.pre, tail=self.tail)
