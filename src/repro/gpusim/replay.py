"""Golden-replay fast-forward: skip simulating everything before the fault.

NVBitFI's headline property (paper §III-C, Figures 4–5) is that an
injection run costs barely more than an uninstrumented run, because only
the one targeted kernel launch is instrumented.  This module takes the
idea to its logical end, ZOFI-style: every launch *strictly before* the
target ``(kernel_name, kernel_count)`` instance is bit-identical to the
golden run, so it does not need to be simulated at all — its effect on
persistent device state can be replayed from a recording.

Three pieces:

* :class:`ReplayRecorder` — attached to the golden run's
  :class:`~repro.gpusim.device.Device`; at every kernel-launch boundary it
  captures the launch's global-memory write delta (dirty 256-byte pages,
  tracked by :class:`~repro.mem.memory.GlobalMemory`) and the end-of-launch
  device counters (instructions, cycles, warps, divergence high-water,
  active SMs), producing a :class:`ReplayLog`;
* :class:`ReplayLog` — the per-campaign recording, with a compact binary
  on-disk format (:func:`save_replay_log` / :func:`load_replay_log`; loads
  are cached per process so parallel campaign workers share one read-only
  copy);
* :class:`ReplayCursor` — one per injection run, consulted by
  :meth:`repro.cuda.driver.CudaDriver.cuLaunchKernel`: launches before the
  target instance apply the recorded delta with one vectorised numpy copy
  instead of simulating; the target launch and everything after it (state
  has diverged) simulate normally.

Correctness is enforceable because the whole stack is deterministic: the
recorded per-launch metadata (kernel name, instance, grid, block,
arguments, shared memory) is verified against the live launch, and any
mismatch — or any instrumented launch — permanently disarms the cursor,
falling back to full simulation.  ``results.csv`` is byte-identical with
fast-forward on or off; skipped launches reconstruct their
``instructions_executed``/cycle accounting from the recorded counters, so
traces, metrics and the Figure 4/5 overhead numbers stay exact.
"""

from __future__ import annotations

import json
import os
import struct
import threading
from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError, WatchdogTimeout
from repro.mem.memory import PAGE_SIZE

_MAGIC = b"RPRL\x01\n"


Dim3 = tuple[int, int, int]


@dataclass
class LaunchDelta:
    """Everything one golden launch did to persistent device state.

    ``pages``/``data`` hold the post-launch contents of every dirty page
    (``data`` is ``len(pages) * PAGE_SIZE`` bytes, page-major); the counter
    fields are per-launch deltas except ``divergence_high_water``, which is
    the absolute post-launch high-water mark.
    """

    kernel_name: str
    instance: int  # per-kernel dynamic instance index (the injector's count)
    grid: Dim3
    block: Dim3
    args: tuple[int, ...]
    shared_bytes: int
    instructions: int
    cycles: int
    warps: int
    divergence_high_water: int
    active_sms: tuple[int, ...]
    pages: np.ndarray  # int64 page indices, sorted
    data: np.ndarray  # uint8, page-major dirty-page contents

    def matches(
        self, kernel_name: str, grid: Dim3, block: Dim3, args, shared_bytes: int
    ) -> bool:
        """Does a live launch look exactly like this recorded one?"""
        return (
            kernel_name == self.kernel_name
            and grid == self.grid
            and block == self.block
            and tuple(args) == self.args
            and shared_bytes == self.shared_bytes
        )


class ReplayLog:
    """One golden run's launch-by-launch recording."""

    def __init__(
        self, mem_size: int, launches: list[LaunchDelta], workload: str = ""
    ) -> None:
        self.mem_size = mem_size
        self.launches = launches
        self.workload = workload
        self._by_instance: dict[tuple[str, int], int] | None = None

    def __len__(self) -> int:
        return len(self.launches)

    def stop_launch_for(self, kernel_name: str, kernel_count: int) -> int | None:
        """Global launch-sequence index of the (kernel_count+1)-th dynamic
        instance of ``kernel_name`` — the first launch that must simulate."""
        if self._by_instance is None:
            self._by_instance = {
                (rec.kernel_name, rec.instance): seq
                for seq, rec in enumerate(self.launches)
            }
        return self._by_instance.get((kernel_name, kernel_count))

    @property
    def total_pages(self) -> int:
        return sum(int(rec.pages.size) for rec in self.launches)


class ReplayRecorder:
    """Captures per-launch deltas while attached to a golden run's device.

    The recorder is fail-safe: any launch that raises, any device whose
    memory size is not page-aligned, and any overlapping recording session
    aborts the recording (``log()`` then returns ``None``) rather than
    producing a log that could replay wrong state.
    """

    def __init__(self) -> None:
        self.launches: list[LaunchDelta] = []
        self.aborted = False
        self.workload = ""
        self._mem_size: int | None = None
        self._instances: dict[str, int] = {}
        self._snapshot: tuple[int, int, int, set[int]] | None = None

    # -- Device.launch hooks ---------------------------------------------------

    def begin_launch(self, device) -> None:
        """Called by :meth:`Device.launch` before the first block runs."""
        if self.aborted:
            return
        mem = device.global_mem
        if mem.size % PAGE_SIZE != 0:
            self.abort()
            return
        if self._mem_size is None:
            self._mem_size = mem.size
        elif self._mem_size != mem.size:  # a second device mid-recording
            self.abort()
            return
        self._snapshot = (
            device.instructions_executed,
            device.cycles,
            device.warps_launched,
            set(device.active_sms),
        )
        mem.begin_write_tracking()

    def end_launch(
        self, device, kernel_name: str, grid: Dim3, block: Dim3,
        args, shared_bytes: int,
    ) -> None:
        """Called by :meth:`Device.launch` after the last block completes."""
        if self.aborted or self._snapshot is None:
            return
        mem = device.global_mem
        pages = mem.end_write_tracking()
        instructions0, cycles0, warps0, sms0 = self._snapshot
        self._snapshot = None
        instance = self._instances.get(kernel_name, 0)
        self._instances[kernel_name] = instance + 1
        data = (
            mem.data.reshape(-1, PAGE_SIZE)[pages].ravel().copy()
            if pages.size
            else np.empty(0, dtype=np.uint8)
        )
        self.launches.append(
            LaunchDelta(
                kernel_name=kernel_name,
                instance=instance,
                grid=grid,
                block=block,
                args=tuple(int(a) for a in args),
                shared_bytes=shared_bytes,
                instructions=device.instructions_executed - instructions0,
                cycles=device.cycles - cycles0,
                warps=device.warps_launched - warps0,
                divergence_high_water=device.divergence_depth_high_water,
                active_sms=tuple(sorted(device.active_sms - sms0)),
                pages=pages,
                data=data,
            )
        )

    def abort(self) -> None:
        """Discard the recording (a launch faulted or state is untrackable)."""
        self.aborted = True
        self.launches = []
        self._snapshot = None

    def log(self) -> ReplayLog | None:
        """The finished recording, or ``None`` when nothing usable was taped."""
        if self.aborted or self._mem_size is None or not self.launches:
            return None
        return ReplayLog(self._mem_size, self.launches, workload=self.workload)


class ReplayCursor:
    """Per-run fast-forward state, consulted once per ``cuLaunchKernel``.

    ``stop_launch`` is the global sequence index of the target launch: only
    launches with a strictly smaller index may be replayed.  The cursor
    disarms itself permanently at the first launch that must simulate —
    reaching the target, an instrumented launch, running past the log, or
    any metadata mismatch — because from that point on device state may
    have diverged from the golden recording.
    """

    def __init__(self, log: ReplayLog, stop_launch: int) -> None:
        self.log = log
        self.stop_launch = min(stop_launch, len(log.launches))
        self.armed = True
        self.skipped = 0

    def consult(
        self,
        device,
        kernel_name: str,
        grid: Dim3,
        block: Dim3,
        args,
        shared_bytes: int,
        instrumented: bool,
    ) -> LaunchDelta | None:
        """The recorded delta to apply instead of simulating, or ``None``."""
        if not self.armed:
            return None
        seq = device.launch_count
        if seq >= self.stop_launch or instrumented:
            self.armed = False
            return None
        if device.global_mem.size != self.log.mem_size:
            self.armed = False
            return None
        rec = self.log.launches[seq]
        if not rec.matches(kernel_name, grid, block, args, shared_bytes):
            self.armed = False
            return None
        return rec

    def apply(self, device, rec: LaunchDelta) -> None:
        """Fast-forward one launch: restore its write delta and counters."""
        mem = device.global_mem
        if rec.pages.size:
            mem.data.reshape(-1, PAGE_SIZE)[rec.pages] = rec.data.reshape(
                -1, PAGE_SIZE
            )
        device.launch_count += 1
        device.instructions_executed += rec.instructions
        device.cycles += rec.cycles
        device.warps_launched += rec.warps
        device.active_sms.update(rec.active_sms)
        if rec.divergence_high_water > device.divergence_depth_high_water:
            device.divergence_depth_high_water = rec.divergence_high_water
        self.skipped += 1
        if device.instructions_executed > device.instruction_budget:
            device.log_xid(
                8, "GPU watchdog: kernel execution budget exhausted"
            )
            raise WatchdogTimeout(
                device.instructions_executed, device.instruction_budget
            )


# -- on-disk format ------------------------------------------------------------
#
#   magic (6 bytes) | header length (uint32 LE) | JSON header | blobs
#
# The JSON header carries the log-level fields plus per-launch metadata
# (including each launch's page count); the blob section holds, for each
# launch in order, the int64 little-endian page-index array followed by the
# raw page contents.  Everything after the header is offset-computable, so
# the loader is a single sequential read.


def save_replay_log(log: ReplayLog, path: str | os.PathLike) -> None:
    """Serialise ``log`` to ``path`` (atomically, via a temp file)."""
    header = {
        "page_size": PAGE_SIZE,
        "mem_size": log.mem_size,
        "workload": log.workload,
        "launches": [
            {
                "kernel": rec.kernel_name,
                "instance": rec.instance,
                "grid": list(rec.grid),
                "block": list(rec.block),
                "args": list(rec.args),
                "shared": rec.shared_bytes,
                "instructions": rec.instructions,
                "cycles": rec.cycles,
                "warps": rec.warps,
                "div_hw": rec.divergence_high_water,
                "sms": list(rec.active_sms),
                "num_pages": int(rec.pages.size),
            }
            for rec in log.launches
        ],
    }
    blob = json.dumps(header, separators=(",", ":")).encode()
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as handle:
        handle.write(_MAGIC)
        handle.write(struct.pack("<I", len(blob)))
        handle.write(blob)
        for rec in log.launches:
            handle.write(rec.pages.astype("<i8").tobytes())
            handle.write(rec.data.tobytes())
    os.replace(tmp, path)


def _read_replay_log(path: str | os.PathLike) -> ReplayLog:
    with open(path, "rb") as handle:
        raw = handle.read()
    if raw[: len(_MAGIC)] != _MAGIC:
        raise ReproError(f"{path} is not a replay log (bad magic)")
    offset = len(_MAGIC)
    (header_len,) = struct.unpack_from("<I", raw, offset)
    offset += 4
    header = json.loads(raw[offset : offset + header_len].decode())
    offset += header_len
    if header.get("page_size") != PAGE_SIZE:
        raise ReproError(
            f"{path} was recorded with page size {header.get('page_size')}, "
            f"this build uses {PAGE_SIZE}"
        )
    launches = []
    for meta in header["launches"]:
        num_pages = meta["num_pages"]
        pages = np.frombuffer(raw, dtype="<i8", count=num_pages, offset=offset)
        offset += 8 * num_pages
        nbytes = num_pages * PAGE_SIZE
        data = np.frombuffer(raw, dtype=np.uint8, count=nbytes, offset=offset)
        offset += nbytes
        launches.append(
            LaunchDelta(
                kernel_name=meta["kernel"],
                instance=meta["instance"],
                grid=tuple(meta["grid"]),
                block=tuple(meta["block"]),
                args=tuple(meta["args"]),
                shared_bytes=meta["shared"],
                instructions=meta["instructions"],
                cycles=meta["cycles"],
                warps=meta["warps"],
                divergence_high_water=meta["div_hw"],
                active_sms=tuple(meta["sms"]),
                pages=pages.astype(np.int64),
                data=data,
            )
        )
    return ReplayLog(
        header["mem_size"], launches, workload=header.get("workload", "")
    )


# One read-only copy per process: parallel campaign workers (and a serial
# engine re-running against the same store) all share the cached log.  The
# key includes file identity so an overwritten log is reloaded, never
# served stale.
_LOG_CACHE: dict[tuple[str, int, int], ReplayLog] = {}
_LOG_CACHE_LOCK = threading.Lock()


def load_replay_log(path: str | os.PathLike) -> ReplayLog:
    """Load (with per-process caching) the replay log at ``path``."""
    stat = os.stat(path)
    key = (os.path.realpath(path), stat.st_mtime_ns, stat.st_size)
    with _LOG_CACHE_LOCK:
        cached = _LOG_CACHE.get(key)
        if cached is not None:
            return cached
    log = _read_replay_log(path)
    with _LOG_CACHE_LOCK:
        _LOG_CACHE.clear()  # at most one live log per worker process
        _LOG_CACHE[key] = log
    return log


@dataclass(frozen=True)
class ReplayRef:
    """A picklable pointer to one task's fast-forward window.

    ``path`` names the on-disk log; ``stop_launch`` is the target launch's
    global sequence index.  Workers thaw the reference into a live
    :class:`ReplayCursor` via the per-process log cache; a missing or
    unreadable log degrades to full simulation instead of failing the task.
    """

    path: str
    stop_launch: int

    def cursor(self) -> ReplayCursor | None:
        try:
            log = load_replay_log(self.path)
        except (OSError, ReproError):
            return None
        return ReplayCursor(log, self.stop_launch)
