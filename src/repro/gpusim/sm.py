"""Streaming multiprocessor: block/warp scheduling and the fetch-execute loop.

Scheduling is deterministic — blocks run in launch order on their assigned
SM, warps within a block run round-robin with a fixed quantum — so a
profiled ``<kernel, kernel_count, instruction_count>`` tuple always maps to
the same dynamic instruction in the injection run.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DeviceTrap
from repro.gpusim.blockc import _CONTROL, MAX_BLOCK_LEN, compiled_for
from repro.gpusim.context import ExecContext, InstrSite
from repro.gpusim.warp import Warp
from repro.sass.isa import WARP_SIZE
from repro.sass.program import Kernel

# Warp-instructions per scheduling slice.  Equal to the maximum compiled
# block length by construction, so a fresh slice can always run any block
# whole without changing the round-robin interleaving.
_QUANTUM = MAX_BLOCK_LEN

Hooks = dict[int, tuple[list, list]]  # pc -> (before callbacks, after callbacks)


def _handler_table(kernel: Kernel) -> list:
    """Per-kernel pre-resolved dispatch table, one entry per static pc.

    Resolving ``HANDLERS.get(opcode)`` once per *static* instruction at
    first launch (cached on the kernel) replaces a dict lookup plus a
    frozenset membership test per *dynamic* instruction in the hot loop.
    Entries are the handler function, ``blockc._CONTROL`` for control-flow
    opcodes, or ``None`` for unknown opcodes — which still trap only when
    (and if) they are actually executed, exactly as before.

    Built and cached by :func:`repro.gpusim.blockc.compiled_for`, which
    keys on the identity of every instruction object — an in-place rewrite
    of the instruction list rebuilds the table even when the length is
    unchanged (the historical cache keyed on length alone and served stale
    dispatch for same-length rewrites).
    """
    return compiled_for(kernel, want_blocks=False).table


class SM:
    """One streaming multiprocessor."""

    def __init__(self, sm_id: int, device) -> None:
        self.sm_id = sm_id
        self.device = device

    def run_block(
        self,
        kernel: Kernel,
        ctx: ExecContext,
        hooks: Hooks | None,
        table: list | None = None,
        blocks: list | None = None,
    ) -> None:
        """Execute one thread block to completion.

        ``table``/``blocks`` are normally resolved once per launch by
        :meth:`Device.launch` and passed in; direct callers may omit them
        and pay per-block resolution (cached on the kernel either way).
        ``blocks`` is only ever non-``None`` on hooks-free launches.
        """
        warps = _build_warps(kernel, ctx)
        self.device.warps_launched += len(warps)
        instrs = kernel.instructions
        if table is None:
            compiled = compiled_for(
                kernel,
                self.device,
                want_blocks=self.device.block_compile and not hooks,
            )
            table = compiled.table
            if not hooks and self.device.block_compile:
                blocks = compiled.blocks
        # Uninstrumented launches (the overwhelmingly common case: golden
        # runs, and every non-target launch of an injection run) take the
        # hooks-free fast path; ``not hooks`` also covers an empty dict.
        fast = not hooks
        while True:
            progressed = False
            for warp in warps:
                if warp.done or warp.at_barrier:
                    continue
                if fast:
                    self._run_slice_fast(warp, instrs, table, blocks)
                else:
                    self._run_slice(warp, instrs, table, hooks)
                progressed = True
            live = [w for w in warps if not w.done]
            if not live:
                return
            if all(w.at_barrier for w in live):
                for warp in live:
                    warp.at_barrier = False
                continue
            if not progressed:
                raise DeviceTrap(
                    f"barrier deadlock in kernel {kernel.name!r} "
                    f"(block {ctx.ctaid})"
                )

    def _run_slice_fast(self, warp: Warp, instrs, table, blocks=None) -> None:
        """Hooks-free hot loop: pre-resolved dispatch, whole compiled blocks.

        When ``blocks`` is supplied (block compilation enabled), a block at
        the current pc executes whole **only** when it fits the warp's
        remaining quantum (so the round-robin interleaving of warps over
        shared memory and atomics is unchanged) and the watchdog budget has
        headroom for every instruction in it (so the exact trap instruction
        of a budget exhaustion is unchanged).  Everything else — mid-block
        resume points, unknown opcodes, clock readers, budget-edge and
        quantum-edge cases — steps per-instruction exactly as before.
        """
        device = self.device
        num_instrs = len(instrs)
        budget = _QUANTUM
        while budget > 0:
            if warp.done or warp.at_barrier:
                return
            pc = warp.pc
            if pc >= num_instrs:
                raise DeviceTrap(
                    f"warp {warp.warp_id} fell off the end of the kernel"
                )
            if blocks is not None:
                block = blocks[pc]
                if (
                    block is not None
                    and block.length <= budget
                    and device.instructions_executed + block.length
                        <= device.instruction_budget
                ):
                    block.run(warp, device)
                    device.blockc_block_hits += 1
                    budget -= block.length
                    continue
            instr = instrs[pc]
            device.tick()
            exec_mask = warp.guard_mask(instr.guard)
            handler = table[pc]
            if handler is _CONTROL:
                self._control(warp, instr, exec_mask)
            else:
                if exec_mask.any():
                    if handler is None:
                        raise DeviceTrap(
                            f"opcode {instr.opcode} has no execution semantics"
                        )
                    handler(warp, instr, exec_mask)
                warp.pc += 1
            budget -= 1

    def _run_slice(self, warp: Warp, instrs, table, hooks: Hooks) -> None:
        device = self.device
        for _ in range(_QUANTUM):
            if warp.done or warp.at_barrier:
                return
            pc = warp.pc
            if pc >= len(instrs):
                raise DeviceTrap(
                    f"warp {warp.warp_id} fell off the end of the kernel"
                )
            instr = instrs[pc]
            device.tick()
            exec_mask = warp.guard_mask(instr.guard)
            pc_hooks = hooks.get(pc)
            site = None
            if pc_hooks is not None:
                site = InstrSite(warp, instr, exec_mask)
                executed = site.num_executed
                for callback in pc_hooks[0]:
                    device.charge_instrumentation(executed)
                    callback(site)
            handler = table[pc]
            if handler is _CONTROL:
                self._control(warp, instr, exec_mask)
            else:
                if exec_mask.any():
                    if handler is None:
                        raise DeviceTrap(
                            f"opcode {instr.opcode} has no execution semantics"
                        )
                    handler(warp, instr, exec_mask)
                warp.pc += 1
            if pc_hooks is not None:
                for callback in pc_hooks[1]:
                    device.charge_instrumentation(executed)
                    callback(site)

    def _control(self, warp: Warp, instr, exec_mask: np.ndarray) -> None:
        opcode = instr.opcode
        if opcode == "BRA":
            warp.branch(exec_mask, instr.branch_target)
        elif opcode == "SSY":
            warp.push_ssy(instr.branch_target)
        elif opcode == "PBK":
            warp.push_pbk(instr.branch_target)
        elif opcode == "SYNC":
            warp.sync()
        elif opcode == "BRK":
            warp.brk(exec_mask)
        elif opcode == "EXIT":
            warp.exit_lanes(exec_mask)
        elif opcode == "BAR":
            warp.at_barrier = True
            warp.pc += 1
        else:  # pragma: no cover - CONTROL_OPCODES is exhaustive
            raise DeviceTrap(f"unhandled control opcode {opcode}")
        # Divergence-stack high-water mark: only control ops grow the stack,
        # so sampling here is exact and stays off the arithmetic hot path.
        depth = len(warp.stack)
        if depth > self.device.divergence_depth_high_water:
            self.device.divergence_depth_high_water = depth


def _build_warps(kernel: Kernel, ctx: ExecContext) -> list[Warp]:
    """Split a block's threads into warps with linearised thread ids.

    All three thread-id components (and the valid mask) are built once for
    the whole block — zero-padded to a warp multiple, then reshaped to
    ``(num_warps, WARP_SIZE)`` — so each warp receives row views instead of
    one ``np.concatenate`` per warp per component.
    """
    bx, by, bz = ctx.ntid
    total = bx * by * bz
    num_warps = -(-total // WARP_SIZE)
    padded = num_warps * WARP_SIZE
    linear = np.arange(total, dtype=np.int64)
    tid = np.zeros((3, padded), dtype=np.uint32)
    tid[0, :total] = linear % bx
    tid[1, :total] = linear // bx % by
    tid[2, :total] = linear // (bx * by)
    tid = tid.reshape(3, num_warps, WARP_SIZE)
    valid = np.zeros(padded, dtype=bool)
    valid[:total] = True
    valid = valid.reshape(num_warps, WARP_SIZE)
    num_regs = kernel.num_regs
    warps = []
    for warp_id in range(num_warps):
        warp = Warp(
            warp_id=warp_id,
            num_regs=num_regs,
            valid_mask=valid[warp_id],
            tid=(tid[0, warp_id], tid[1, warp_id], tid[2, warp_id]),
            local_bytes=kernel.local_bytes,
        )
        warp.ctx = ctx
        warps.append(warp)
    return warps
