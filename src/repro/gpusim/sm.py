"""Streaming multiprocessor: block/warp scheduling and the fetch-execute loop.

Scheduling is deterministic — blocks run in launch order on their assigned
SM, warps within a block run round-robin with a fixed quantum — so a
profiled ``<kernel, kernel_count, instruction_count>`` tuple always maps to
the same dynamic instruction in the injection run.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DeviceTrap
from repro.gpusim.context import ExecContext, InstrSite
from repro.gpusim.exec_units import CONTROL_OPCODES, HANDLERS
from repro.gpusim.warp import Warp
from repro.sass.isa import WARP_SIZE
from repro.sass.program import Kernel

_QUANTUM = 64  # warp-instructions per scheduling slice

Hooks = dict[int, tuple[list, list]]  # pc -> (before callbacks, after callbacks)


class SM:
    """One streaming multiprocessor."""

    def __init__(self, sm_id: int, device) -> None:
        self.sm_id = sm_id
        self.device = device

    def run_block(
        self,
        kernel: Kernel,
        ctx: ExecContext,
        hooks: Hooks | None,
    ) -> None:
        """Execute one thread block to completion."""
        warps = _build_warps(kernel, ctx)
        self.device.warps_launched += len(warps)
        instrs = kernel.instructions
        while True:
            progressed = False
            for warp in warps:
                if warp.done or warp.at_barrier:
                    continue
                self._run_slice(warp, instrs, hooks)
                progressed = True
            live = [w for w in warps if not w.done]
            if not live:
                return
            if all(w.at_barrier for w in live):
                for warp in live:
                    warp.at_barrier = False
                continue
            if not progressed:
                raise DeviceTrap(
                    f"barrier deadlock in kernel {kernel.name!r} "
                    f"(block {ctx.ctaid})"
                )

    def _run_slice(self, warp: Warp, instrs, hooks: Hooks | None) -> None:
        device = self.device
        for _ in range(_QUANTUM):
            if warp.done or warp.at_barrier:
                return
            if warp.pc >= len(instrs):
                raise DeviceTrap(
                    f"warp {warp.warp_id} fell off the end of the kernel"
                )
            instr = instrs[warp.pc]
            device.tick()
            exec_mask = warp.guard_mask(instr.guard)
            pc_hooks = hooks.get(warp.pc) if hooks is not None else None
            site = None
            if pc_hooks is not None:
                site = InstrSite(warp, instr, exec_mask)
                executed = site.num_executed
                for callback in pc_hooks[0]:
                    device.charge_instrumentation(executed)
                    callback(site)
            opcode = instr.opcode
            if opcode in CONTROL_OPCODES:
                self._control(warp, instr, exec_mask)
            else:
                if exec_mask.any():
                    handler = HANDLERS.get(opcode)
                    if handler is None:
                        raise DeviceTrap(
                            f"opcode {opcode} has no execution semantics"
                        )
                    handler(warp, instr, exec_mask)
                warp.pc += 1
            if pc_hooks is not None:
                for callback in pc_hooks[1]:
                    device.charge_instrumentation(executed)
                    callback(site)

    def _control(self, warp: Warp, instr, exec_mask: np.ndarray) -> None:
        opcode = instr.opcode
        if opcode == "BRA":
            warp.branch(exec_mask, instr.branch_target)
        elif opcode == "SSY":
            warp.push_ssy(instr.branch_target)
        elif opcode == "PBK":
            warp.push_pbk(instr.branch_target)
        elif opcode == "SYNC":
            warp.sync()
        elif opcode == "BRK":
            warp.brk(exec_mask)
        elif opcode == "EXIT":
            warp.exit_lanes(exec_mask)
        elif opcode == "BAR":
            warp.at_barrier = True
            warp.pc += 1
        else:  # pragma: no cover - CONTROL_OPCODES is exhaustive
            raise DeviceTrap(f"unhandled control opcode {opcode}")
        # Divergence-stack high-water mark: only control ops grow the stack,
        # so sampling here is exact and stays off the arithmetic hot path.
        depth = len(warp.stack)
        if depth > self.device.divergence_depth_high_water:
            self.device.divergence_depth_high_water = depth


def _build_warps(kernel: Kernel, ctx: ExecContext) -> list[Warp]:
    """Split a block's threads into warps with linearised thread ids."""
    bx, by, bz = ctx.ntid
    total = bx * by * bz
    linear = np.arange(total, dtype=np.int64)
    tid_x = (linear % bx).astype(np.uint32)
    tid_y = (linear // bx % by).astype(np.uint32)
    tid_z = (linear // (bx * by)).astype(np.uint32)
    num_regs = kernel.num_regs
    warps = []
    for start in range(0, total, WARP_SIZE):
        lanes = min(WARP_SIZE, total - start)
        valid = np.zeros(WARP_SIZE, dtype=bool)
        valid[:lanes] = True
        pad = WARP_SIZE - lanes

        def _slice(arr: np.ndarray) -> np.ndarray:
            chunk = arr[start : start + lanes]
            if pad:
                chunk = np.concatenate([chunk, np.zeros(pad, dtype=np.uint32)])
            return chunk.astype(np.uint32)

        warp = Warp(
            warp_id=start // WARP_SIZE,
            num_regs=num_regs,
            valid_mask=valid,
            tid=(_slice(tid_x), _slice(tid_y), _slice(tid_z)),
            local_bytes=kernel.local_bytes,
        )
        warp.ctx = ctx
        warps.append(warp)
    return warps
