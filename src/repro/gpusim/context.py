"""Per-block execution context and the instrumentation site object.

``ExecContext`` gives warps access to the memory spaces and launch geometry;
``InstrSite`` is what instrumentation callbacks (the NVBit layer) receive for
every executed instruction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gpusim.warp import Warp
    from repro.mem.memory import ConstantBank, GlobalMemory, SharedMemory
    from repro.sass.instruction import Instruction


@dataclass
class ExecContext:
    """Everything a warp needs that is not warp-local state."""

    global_mem: "GlobalMemory"
    shared: "SharedMemory"
    const: "ConstantBank"
    ctaid: tuple[int, int, int]
    ntid: tuple[int, int, int]
    nctaid: tuple[int, int, int]
    sm_id: int
    grid_id: int
    clock: Callable[[], int]


class InstrSite:
    """A dynamic instruction instance, as seen by instrumentation callbacks.

    ``exec_mask`` is the set of lanes that actually execute (active AND
    predicate guard) — lanes predicated off are excluded, matching the
    paper's profiling rule.  Register/predicate accessors let injector
    callbacks corrupt a single lane's destination after execution.
    """

    __slots__ = ("warp", "instr", "exec_mask")

    def __init__(self, warp: "Warp", instr: "Instruction", exec_mask: np.ndarray) -> None:
        self.warp = warp
        self.instr = instr
        self.exec_mask = exec_mask

    @property
    def num_executed(self) -> int:
        """Number of threads that executed this instruction instance."""
        return int(np.count_nonzero(self.exec_mask))

    @property
    def active_lanes(self) -> np.ndarray:
        """Indices of executing lanes, in lane order (deterministic)."""
        return np.nonzero(self.exec_mask)[0]

    @property
    def sm_id(self) -> int:
        return self.warp.ctx.sm_id

    @property
    def ctaid(self) -> tuple[int, int, int]:
        return self.warp.ctx.ctaid

    @property
    def opcode(self) -> str:
        return self.instr.opcode

    def read_reg(self, lane: int, reg: int) -> int:
        return self.warp.read_reg_lane(reg, lane)

    def write_reg(self, lane: int, reg: int, value: int) -> None:
        self.warp.write_reg_lane(reg, lane, value)

    def read_pred(self, lane: int, pred: int) -> bool:
        return self.warp.read_pred_lane(pred, lane)

    def write_pred(self, lane: int, pred: int, value: bool) -> None:
        self.warp.write_pred_lane(pred, lane, value)

    def thread_index(self, lane: int) -> tuple[int, int, int]:
        """The CUDA threadIdx of a lane."""
        return (
            int(self.warp.tid_x[lane]),
            int(self.warp.tid_y[lane]),
            int(self.warp.tid_z[lane]),
        )
