"""The simulated GPU device: SMs, memory, watchdog, and the dmesg (Xid) log.

Kernel-side anomalies follow the real CUDA failure model the paper leans on
(§IV-A): a :class:`~repro.errors.MemoryViolation` or
:class:`~repro.errors.DeviceTrap` terminates the *current kernel* early,
records an Xid entry in ``dmesg`` and leaves the rest of the process alive;
the CUDA driver layer converts it into a sticky error the host may or may
not check.  A :class:`~repro.errors.WatchdogTimeout` models a hang and
propagates to the sandbox monitor.
"""

from __future__ import annotations

import numpy as np

from repro.arch.families import ArchFamily, arch_by_name
from repro.errors import DeviceException, LaunchError, WatchdogTimeout
from repro.gpusim import blockc
from repro.gpusim.context import ExecContext
from repro.gpusim.sm import SM, Hooks
from repro.mem.memory import ConstantBank, GlobalMemory, SharedMemory
from repro.sass.program import Kernel

Dim3 = tuple[int, int, int]

DEFAULT_INSTRUCTION_BUDGET = 20_000_000

# Simulated-time model for instrumentation (see DESIGN.md):
# an uninstrumented warp-instruction costs 1 cycle; every instrumentation
# callback costs a fixed trampoline entry plus one cycle per executing
# thread (NVBit saves/restores state and the injected device function runs
# per thread); JIT-recompiling an instrumented kernel costs a one-time fee.
INSTRUMENTATION_FIXED_CYCLES = 5
INSTRUMENTATION_PER_THREAD_CYCLES = 1
JIT_COMPILE_CYCLES = 5_000


def _as_dim3(value) -> Dim3:
    if isinstance(value, int):
        return (value, 1, 1)
    dims = tuple(int(v) for v in value)
    if len(dims) == 1:
        return (dims[0], 1, 1)
    if len(dims) == 2:
        return (dims[0], dims[1], 1)
    if len(dims) == 3:
        return dims  # type: ignore[return-value]
    raise LaunchError(f"dimension {value!r} must have 1..3 components")


class Device:
    """One simulated GPU."""

    def __init__(
        self,
        family: str | ArchFamily = "volta",
        global_mem_bytes: int = 64 * 1024 * 1024,
        num_sms: int | None = None,
        instruction_budget: int = DEFAULT_INSTRUCTION_BUDGET,
        block_compile: bool = True,
    ) -> None:
        self.arch = family if isinstance(family, ArchFamily) else arch_by_name(family)
        self.num_sms = num_sms if num_sms is not None else self.arch.num_sms
        self.global_mem = GlobalMemory(global_mem_bytes)
        self.sms = [SM(sm_id, self) for sm_id in range(self.num_sms)]
        self.dmesg: list[str] = []
        self.instructions_executed = 0
        self.instruction_budget = instruction_budget
        self.launch_count = 0
        self.active_sms: set[int] = set()
        self.cycles = 0  # simulated GPU time (includes instrumentation cost)
        # Block-compiled interpreter (repro.gpusim.blockc): uninstrumented
        # launches execute code-generated basic-block superhandlers instead
        # of stepping per instruction.  Results are byte-identical either
        # way; the knob exists for differential testing and benchmarking.
        self.block_compile = block_compile
        self.blockc_blocks_compiled = 0
        self.blockc_block_hits = 0
        self.blockc_compile_seconds = 0.0
        # Cheap observability counters (flow into repro.obs MetricsRegistry
        # via RunArtifacts): warps ever launched and the deepest SIMT
        # divergence stack seen on any warp.
        self.warps_launched = 0
        self.divergence_depth_high_water = 0
        # Golden-replay recording (repro.gpusim.replay.ReplayRecorder):
        # when attached, every launch boundary captures its global-memory
        # write delta and end-of-launch counters.
        self.replay_recorder = None
        # Tail fast-forward (repro.gpusim.replay.ReplayCursor): while the
        # cursor is tracking post-target divergence, every simulated launch
        # is bracketed by its begin/end hooks so the divergence set stays
        # current at each launch boundary.
        self.replay_tracker = None

    # -- watchdog ----------------------------------------------------------

    def tick(self) -> None:
        self.instructions_executed += 1
        self.cycles += 1
        if self.instructions_executed > self.instruction_budget:
            self.log_xid(8, "GPU watchdog: kernel execution budget exhausted")
            raise WatchdogTimeout(self.instructions_executed, self.instruction_budget)

    def tick_n(self, n: int, cycles: int | None = None) -> None:
        """Bulk accounting: exactly equivalent to ``n`` :meth:`tick` calls.

        ``cycles`` overrides the cycle charge when it differs from the
        instruction count (replayed launches fold back recorded cycle
        totals that include instrumentation cost).  Callers that must trap
        at the *exact* crossing instruction (the block-compiled fast path)
        check headroom first and step instead.
        """
        self.instructions_executed += n
        self.cycles += n if cycles is None else cycles
        if self.instructions_executed > self.instruction_budget:
            self.log_xid(8, "GPU watchdog: kernel execution budget exhausted")
            raise WatchdogTimeout(self.instructions_executed, self.instruction_budget)

    def untick(self, n: int) -> None:
        """Roll back ``n`` over-charged ticks (mid-block trap recovery)."""
        self.instructions_executed -= n
        self.cycles -= n

    def charge_instrumentation(self, executed_threads: int) -> None:
        """Simulated cost of one instrumentation callback invocation."""
        self.cycles += (
            INSTRUMENTATION_FIXED_CYCLES
            + INSTRUMENTATION_PER_THREAD_CYCLES * executed_threads
        )

    def charge_jit_compile(self) -> None:
        """Simulated cost of JIT-building an instrumented kernel clone."""
        self.cycles += JIT_COMPILE_CYCLES

    def log_xid(self, xid: int, message: str) -> None:
        """Record an Xid-style driver event (the dmesg analogue)."""
        self.dmesg.append(f"NVRM: Xid {xid}: {message}")

    # -- launches ------------------------------------------------------------

    def launch(
        self,
        kernel: Kernel,
        grid,
        block,
        params: list[int] | None = None,
        shared_bytes: int = 0,
        hooks: Hooks | None = None,
    ) -> None:
        """Run a kernel to completion (raises DeviceException on GPU faults)."""
        grid3 = _as_dim3(grid)
        block3 = _as_dim3(block)
        threads_per_block = block3[0] * block3[1] * block3[2]
        if threads_per_block <= 0 or min(grid3) <= 0:
            raise LaunchError(f"empty launch: grid={grid3} block={block3}")
        if threads_per_block > self.arch.max_threads_per_block:
            raise LaunchError(
                f"{threads_per_block} threads/block exceeds the limit of "
                f"{self.arch.max_threads_per_block}"
            )
        params = list(params or [])
        if len(params) < kernel.num_params:
            raise LaunchError(
                f"kernel {kernel.name!r} expects {kernel.num_params} params, "
                f"got {len(params)}"
            )
        const = ConstantBank()
        const.write_params(params)
        total_shared = kernel.shared_bytes + shared_bytes
        if total_shared > self.arch.shared_mem_per_block:
            raise LaunchError(
                f"shared memory {total_shared} exceeds per-block limit"
            )
        grid_id = self.launch_count
        self.launch_count += 1
        # Resolve the kernel's execution tables once per launch, not once
        # per thread block.  Compiled blocks are only handed to hooks-free
        # launches: instrumented launches (injection targets, profiling,
        # counting passes) must observe every dynamic instruction.
        use_blocks = self.block_compile and not hooks
        compiled = blockc.compiled_for(kernel, self, want_blocks=use_blocks)
        blocks = compiled.blocks if use_blocks else None
        recorder = self.replay_recorder
        if recorder is not None:
            recorder.begin_launch(self)
        tracker = self.replay_tracker
        tracking = tracker is not None and tracker.tracking
        if tracking:
            tracker.begin_simulated_launch(self)

        num_blocks = grid3[0] * grid3[1] * grid3[2]
        try:
            with np.errstate(all="ignore"):
                for block_id in range(num_blocks):
                    ctaid = (
                        block_id % grid3[0],
                        block_id // grid3[0] % grid3[1],
                        block_id // (grid3[0] * grid3[1]),
                    )
                    sm = self.sms[block_id % self.num_sms]
                    self.active_sms.add(sm.sm_id)
                    ctx = ExecContext(
                        global_mem=self.global_mem,
                        shared=SharedMemory(total_shared),
                        const=const,
                        ctaid=ctaid,
                        ntid=block3,
                        nctaid=grid3,
                        sm_id=sm.sm_id,
                        grid_id=grid_id,
                        clock=lambda: self.instructions_executed,
                    )
                    try:
                        sm.run_block(kernel, ctx, hooks, compiled.table, blocks)
                    except WatchdogTimeout:
                        raise
                    except DeviceException as exc:
                        self.log_xid(
                            13, f"Graphics Exception: {exc} (kernel {kernel.name})"
                        )
                        raise
        except BaseException:
            # A faulted launch leaves partial writes behind: any recording
            # in progress would replay wrong state, so discard it entirely;
            # likewise a tracked launch's divergence set is no longer
            # trustworthy, so the tail permanently disarms.
            if recorder is not None:
                recorder.abort()
                self.global_mem.end_write_tracking()
            if tracking:
                tracker.launch_faulted(self)
            raise
        if recorder is not None:
            recorder.end_launch(
                self, kernel.name, grid3, block3, params, shared_bytes
            )
        if tracking:
            tracker.end_simulated_launch(self)

    # -- memory convenience (used by the CUDA runtime layer) -------------------

    def malloc(self, nbytes: int) -> int:
        return self.global_mem.alloc(nbytes)

    def free(self, address: int) -> None:
        self.global_mem.free(address)
