"""Linear-scan register allocation for the kernel builder.

Virtual registers get live intervals from their definition/use positions
(with loop-carried intervals pre-extended by the builder); physical GP
registers R0..Rmax and predicates P0..P6 are handed out first-fit.  FP64
virtuals need an even-aligned free pair.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RegisterAllocationError


@dataclass
class Interval:
    """Live interval of one virtual register."""

    vreg_id: int
    kind: str  # "u32", "f32", "f64", "pred"
    start: int
    end: int


def allocate(
    intervals: list[Interval],
    max_gp_regs: int = 64,
    max_preds: int = 7,
) -> dict[int, int]:
    """Map each virtual register id to a physical register index."""
    assignment: dict[int, int] = {}
    free_gp = set(range(max_gp_regs))
    free_pred = set(range(max_preds))
    active: list[Interval] = []

    for interval in sorted(intervals, key=lambda iv: (iv.start, iv.vreg_id)):
        # Expire finished intervals.
        still_active = []
        for old in active:
            if old.end < interval.start:
                _release(old, assignment[old.vreg_id], free_gp, free_pred)
            else:
                still_active.append(old)
        active = still_active

        if interval.kind == "pred":
            if not free_pred:
                raise RegisterAllocationError(
                    f"out of predicate registers at position {interval.start}"
                )
            phys = min(free_pred)
            free_pred.discard(phys)
        elif interval.kind == "f64":
            phys = _even_pair(free_gp, interval.start)
            free_gp.discard(phys)
            free_gp.discard(phys + 1)
        else:
            if not free_gp:
                raise RegisterAllocationError(
                    f"out of GP registers at position {interval.start} "
                    f"(limit {max_gp_regs}); split the kernel"
                )
            phys = min(free_gp)
            free_gp.discard(phys)
        assignment[interval.vreg_id] = phys
        active.append(interval)
    return assignment


def _release(interval: Interval, phys: int, free_gp: set[int], free_pred: set[int]) -> None:
    if interval.kind == "pred":
        free_pred.add(phys)
    elif interval.kind == "f64":
        free_gp.add(phys)
        free_gp.add(phys + 1)
    else:
        free_gp.add(phys)


def _even_pair(free_gp: set[int], position: int) -> int:
    for candidate in sorted(free_gp):
        if candidate % 2 == 0 and candidate + 1 in free_gp:
            return candidate
    raise RegisterAllocationError(
        f"no even-aligned register pair free at position {position}"
    )
