"""KernelBuilder: a typed, virtual-register front-end that emits SASS.

This plays the role of the compiler back-end in the real stack (CUDA C ->
PTX -> SASS): workloads describe kernels with Python expressions and
structured control flow; the builder performs linear-scan register
allocation and emits assembler text for :func:`repro.sass.assemble`.

Example::

    kb = KernelBuilder("saxpy", num_params=4)
    i = kb.global_tid_x()
    with kb.if_then(kb.setp_lt_u32(i, kb.param(0))):
        x = kb.ldg_f32(kb.index(kb.param(1), i, 4))
        y = kb.ldg_f32(kb.index(kb.param(2), i, 4))
        kb.stg_f32(kb.index(kb.param(2), i, 4), kb.ffma(x, kb.param_f32(3), y))
    kb.exit()
    sass_text = kb.finish()
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AssemblyError
from repro.kbuild.regalloc import Interval, allocate
from repro.utils.bits import f32_to_bits, to_u32


@dataclass(frozen=True)
class VReg:
    """A typed virtual register."""

    vid: int
    kind: str  # "u32", "f32", "f64", "pred"

    def __str__(self) -> str:
        return f"%{self.kind}{self.vid}"


@dataclass
class _Op:
    """One recorded instruction before register assignment."""

    opcode: str  # full mnemonic with modifiers
    dest: VReg | None
    operands: list  # VReg | str (literal operand text) | _Mem | _PredSrc
    guard: "_PredSrc | None" = None
    label_before: str | None = None


@dataclass(frozen=True)
class _Mem:
    base: VReg
    offset: int
    width: int  # 4 or 8


@dataclass(frozen=True)
class _PredSrc:
    pred: VReg
    negate: bool = False


def _imm_u32(value: int) -> str:
    return str(to_u32(int(value)) if value >= 0 else int(value))


class _Block:
    """Context manager for structured regions (if / loop)."""

    def __init__(self, builder: "KernelBuilder", kind: str, **labels: str) -> None:
        self.builder = builder
        self.kind = kind
        self.labels = labels
        self.start_index = len(builder._ops)

    def __enter__(self) -> "_Block":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.builder._close_block(self)

    # loop-only API ---------------------------------------------------------

    def break_if(self, pred: VReg, negate: bool = False) -> None:
        if self.kind != "loop":
            raise AssemblyError("break_if is only valid inside a loop block")
        self.builder._emit("BRK", None, [], guard=_PredSrc(pred, negate))


class KernelBuilder:
    """Builds one kernel; see the module docstring for usage."""

    def __init__(
        self,
        name: str,
        num_params: int = 0,
        shared_bytes: int = 0,
        local_bytes: int = 0,
        max_regs: int = 64,
    ) -> None:
        self.name = name
        self.num_params = num_params
        self.shared_bytes = shared_bytes
        self.local_bytes = local_bytes
        self.max_regs = max_regs
        self._ops: list[_Op] = []
        self._next_vid = 0
        self._next_label = 0
        self._pending_label: str | None = None
        self._loop_spans: list[tuple[int, int]] = []
        self._else_stack: list[dict] = []

    # -- virtual registers ---------------------------------------------------

    def _new(self, kind: str) -> VReg:
        vreg = VReg(self._next_vid, kind)
        self._next_vid += 1
        return vreg

    def _label(self, hint: str) -> str:
        self._next_label += 1
        return f".L{hint}_{self._next_label}"

    def _emit(
        self,
        opcode: str,
        dest: VReg | None,
        operands: list,
        guard: _PredSrc | None = None,
    ) -> VReg | None:
        op = _Op(opcode, dest, list(operands), guard, self._pending_label)
        self._pending_label = None
        self._ops.append(op)
        return dest

    def _place_label(self, label: str) -> None:
        if self._pending_label is not None:
            # Two labels on the same spot: alias by emitting a NOP.
            self._emit("NOP", None, [])
        self._pending_label = label

    # -- parameters, constants, specials ----------------------------------------

    def param(self, index: int) -> VReg:
        """Kernel parameter ``index`` as a u32 (pointers and ints)."""
        dest = self._new("u32")
        return self._emit("MOV", dest, [f"c[0x0][0x{4 * index:x}]"])

    def param_f32(self, index: int) -> VReg:
        dest = self._new("f32")
        return self._emit("MOV", dest, [f"c[0x0][0x{4 * index:x}]"])

    def const_u32(self, value: int) -> VReg:
        dest = self._new("u32")
        return self._emit("MOV32I", dest, [_imm_u32(value)])

    def const_f32(self, value: float) -> VReg:
        dest = self._new("f32")
        return self._emit("MOV32I", dest, [f"0x{f32_to_bits(float(value)):x}"])

    def special(self, name: str) -> VReg:
        dest = self._new("u32")
        return self._emit("S2R", dest, [name])

    def tid_x(self) -> VReg:
        return self.special("SR_TID.X")

    def ctaid_x(self) -> VReg:
        return self.special("SR_CTAID.X")

    def ntid_x(self) -> VReg:
        return self.special("SR_NTID.X")

    def nctaid_x(self) -> VReg:
        return self.special("SR_NCTAID.X")

    def lane_id(self) -> VReg:
        return self.special("SR_LANEID")

    def sm_id(self) -> VReg:
        return self.special("SR_SMID")

    def global_tid_x(self) -> VReg:
        """blockIdx.x * blockDim.x + threadIdx.x."""
        return self.imad(self.ctaid_x(), self.ntid_x(), self.tid_x())

    def grid_size_x(self) -> VReg:
        """gridDim.x * blockDim.x (for grid-stride loops)."""
        return self.imul(self.nctaid_x(), self.ntid_x())

    # -- integer ops ----------------------------------------------------------------

    def _u32_operand(self, value) -> object:
        if isinstance(value, VReg):
            return value
        if isinstance(value, int):
            return _imm_u32(value)
        raise AssemblyError(f"cannot use {value!r} as an integer operand")

    def _f32_operand(self, value) -> object:
        if isinstance(value, VReg):
            return value
        if isinstance(value, (int, float)):
            return f"0x{f32_to_bits(float(value)):x}"
        raise AssemblyError(f"cannot use {value!r} as an FP32 operand")

    def mov(self, src) -> VReg:
        dest = self._new(src.kind if isinstance(src, VReg) else "u32")
        return self._emit("MOV", dest, [self._u32_operand(src)])

    def assign(self, dest: VReg, src) -> None:
        """In-place update (loop-carried variables)."""
        operand = (
            self._f32_operand(src) if dest.kind == "f32" else self._u32_operand(src)
        )
        self._emit("MOV", dest, [operand])

    def iadd(self, a, b) -> VReg:
        return self._emit("IADD", self._new("u32"),
                          [self._u32_operand(a), self._u32_operand(b)])

    def iadd3(self, a, b, c) -> VReg:
        return self._emit("IADD3", self._new("u32"),
                          [self._u32_operand(a), self._u32_operand(b), self._u32_operand(c)])

    def isub(self, a, b: VReg) -> VReg:
        # Integer subtraction is IADD with a negated register operand.
        return self._emit("IADD", self._new("u32"),
                          [self._u32_operand(a), _Neg(b)])

    def imul(self, a, b) -> VReg:
        return self._emit("IMUL", self._new("u32"),
                          [self._u32_operand(a), self._u32_operand(b)])

    def imad(self, a, b, c) -> VReg:
        return self._emit("IMAD", self._new("u32"),
                          [self._u32_operand(a), self._u32_operand(b), self._u32_operand(c)])

    def imnmx(self, a, b, maximum: bool = False) -> VReg:
        opcode = "IMNMX.MAX" if maximum else "IMNMX.MIN"
        return self._emit(opcode, self._new("u32"),
                          [self._u32_operand(a), self._u32_operand(b)])

    def iscadd(self, index, base, shift: int) -> VReg:
        """base + (index << shift) — the address-computation idiom."""
        return self._emit("ISCADD", self._new("u32"),
                          [self._u32_operand(index), self._u32_operand(base), str(shift)])

    def index(self, base, index, elem_size: int) -> VReg:
        """Device address of ``base[index]`` with ``elem_size`` in {4, 8}."""
        shift = {4: 2, 8: 3}[elem_size]
        return self.iscadd(index, base, shift)

    def land(self, a, b) -> VReg:
        return self._emit("LOP.AND", self._new("u32"),
                          [self._u32_operand(a), self._u32_operand(b)])

    def lor(self, a, b) -> VReg:
        return self._emit("LOP.OR", self._new("u32"),
                          [self._u32_operand(a), self._u32_operand(b)])

    def lxor(self, a, b) -> VReg:
        return self._emit("LOP.XOR", self._new("u32"),
                          [self._u32_operand(a), self._u32_operand(b)])

    def shl(self, a, b) -> VReg:
        return self._emit("SHL", self._new("u32"),
                          [self._u32_operand(a), self._u32_operand(b)])

    def shr(self, a, b, arithmetic: bool = False) -> VReg:
        opcode = "SHR.S32" if arithmetic else "SHR.U32"
        return self._emit(opcode, self._new("u32"),
                          [self._u32_operand(a), self._u32_operand(b)])

    def popc(self, a) -> VReg:
        return self._emit("POPC", self._new("u32"), [self._u32_operand(a)])

    def sel(self, a, b, pred: VReg, negate: bool = False) -> VReg:
        """``pred ? a : b`` without divergence (SEL)."""
        kind = a.kind if isinstance(a, VReg) else (b.kind if isinstance(b, VReg) else "u32")
        conv = self._f32_operand if kind == "f32" else self._u32_operand
        return self._emit("SEL", self._new(kind),
                          [conv(a), conv(b), _PredSrc(pred, negate)])

    # -- FP32 ops ---------------------------------------------------------------------

    def fadd(self, a, b) -> VReg:
        return self._emit("FADD", self._new("f32"),
                          [self._f32_operand(a), self._f32_operand(b)])

    def fsub(self, a, b: VReg) -> VReg:
        return self._emit("FADD", self._new("f32"), [self._f32_operand(a), _Neg(b)])

    def fmul(self, a, b) -> VReg:
        return self._emit("FMUL", self._new("f32"),
                          [self._f32_operand(a), self._f32_operand(b)])

    def ffma(self, a, b, c) -> VReg:
        return self._emit("FFMA", self._new("f32"),
                          [self._f32_operand(a), self._f32_operand(b), self._f32_operand(c)])

    def fmnmx(self, a, b, maximum: bool = False) -> VReg:
        opcode = "FMNMX.MAX" if maximum else "FMNMX.MIN"
        return self._emit(opcode, self._new("f32"),
                          [self._f32_operand(a), self._f32_operand(b)])

    def fabs(self, a: VReg) -> VReg:
        return self._emit("FADD", self._new("f32"), [_Abs(a), "0x0"])

    def mufu(self, function: str, a) -> VReg:
        if function.upper() not in ("RCP", "RSQ", "SQRT", "SIN", "COS", "EX2", "LG2"):
            raise AssemblyError(f"unknown MUFU function {function!r}")
        return self._emit(f"MUFU.{function.upper()}", self._new("f32"),
                          [self._f32_operand(a)])

    def i2f(self, a, unsigned: bool = False) -> VReg:
        opcode = "I2F.U32" if unsigned else "I2F"
        dest = self._new("f32")
        return self._emit(opcode, dest, [self._u32_operand(a)])

    def f2i(self, a, unsigned: bool = False) -> VReg:
        opcode = "F2I.U32" if unsigned else "F2I"
        dest = self._new("u32")
        return self._emit(opcode, dest, [self._f32_operand(a)])

    # -- FP64 ops -------------------------------------------------------------------------

    def f2d(self, a) -> VReg:
        dest = self._new("f64")
        return self._emit("F2F.F64.F32", dest, [self._f32_operand(a)])

    def d2f(self, a: VReg) -> VReg:
        dest = self._new("f32")
        return self._emit("F2F.F32.F64", dest, [a])

    def dadd(self, a: VReg, b: VReg) -> VReg:
        return self._emit("DADD", self._new("f64"), [a, b])

    def dsub(self, a: VReg, b: VReg) -> VReg:
        return self._emit("DADD", self._new("f64"), [a, _Neg(b)])

    def dmul(self, a: VReg, b: VReg) -> VReg:
        return self._emit("DMUL", self._new("f64"), [a, b])

    def dfma(self, a: VReg, b: VReg, c: VReg) -> VReg:
        return self._emit("DFMA", self._new("f64"), [a, b, c])

    # -- comparisons ------------------------------------------------------------------------

    def isetp(self, cmp: str, a, b, unsigned: bool = False) -> VReg:
        suffix = f"{cmp.upper()}.U32" if unsigned else cmp.upper()
        dest = self._new("pred")
        return self._emit(f"ISETP.{suffix}", dest,
                          [self._u32_operand(a), self._u32_operand(b)])

    def fsetp(self, cmp: str, a, b) -> VReg:
        dest = self._new("pred")
        return self._emit(f"FSETP.{cmp.upper()}", dest,
                          [self._f32_operand(a), self._f32_operand(b)])

    def dsetp(self, cmp: str, a: VReg, b: VReg) -> VReg:
        dest = self._new("pred")
        return self._emit(f"DSETP.{cmp.upper()}", dest, [a, b])

    def psetp(self, op: str, a: VReg, b: VReg) -> VReg:
        """Combine two predicates with AND/OR/XOR."""
        dest = self._new("pred")
        return self._emit(
            f"PSETP.{op.upper()}", dest, [_PredSrc(a, False), _PredSrc(b, False)]
        )

    def psetp_and(self, a: VReg, b: VReg) -> VReg:
        return self.psetp("AND", a, b)

    # -- memory ---------------------------------------------------------------------------------

    def ldg(self, address: VReg, offset: int = 0, kind: str = "f32") -> VReg:
        width = 8 if kind == "f64" else 4
        opcode = "LDG.64" if width == 8 else "LDG.32"
        dest = self._new(kind)
        return self._emit(opcode, dest, [_Mem(address, offset, width)])

    def ldg_f32(self, address: VReg, offset: int = 0) -> VReg:
        return self.ldg(address, offset, "f32")

    def ldg_u32(self, address: VReg, offset: int = 0) -> VReg:
        return self.ldg(address, offset, "u32")

    def ldg_f64(self, address: VReg, offset: int = 0) -> VReg:
        return self.ldg(address, offset, "f64")

    def stg(self, address: VReg, value: VReg, offset: int = 0) -> None:
        opcode = "STG.64" if value.kind == "f64" else "STG.32"
        width = 8 if value.kind == "f64" else 4
        self._emit(opcode, None, [_Mem(address, offset, width), value])

    def stg_f32(self, address: VReg, value, offset: int = 0) -> None:
        if not isinstance(value, VReg):
            value = self.const_f32(float(value))
        self.stg(address, value, offset)

    def lds(self, address: VReg, offset: int = 0, kind: str = "f32") -> VReg:
        dest = self._new(kind)
        opcode = "LDS.64" if kind == "f64" else "LDS.32"
        return self._emit(opcode, dest, [_Mem(address, offset, 8 if kind == "f64" else 4)])

    def sts(self, address: VReg, value: VReg, offset: int = 0) -> None:
        opcode = "STS.64" if value.kind == "f64" else "STS.32"
        self._emit(opcode, None, [_Mem(address, offset, 8 if value.kind == "f64" else 4), value])

    def atom_add_f32(self, address: VReg, value: VReg) -> VReg:
        dest = self._new("f32")
        return self._emit("ATOMG.ADD.F32", dest, [_Mem(address, 0, 4), value])

    def red_add_f32(self, address: VReg, value: VReg) -> None:
        self._emit("RED.ADD.F32", None, [_Mem(address, 0, 4), value])

    def red_add_u32(self, address: VReg, value: VReg) -> None:
        self._emit("RED.ADD", None, [_Mem(address, 0, 4), value])

    def shfl_down(self, value: VReg, delta: int) -> VReg:
        dest = self._new(value.kind if value.kind != "f64" else "u32")
        return self._emit("SHFL.DOWN", dest, [value, str(delta)])

    def shfl_bfly(self, value: VReg, lane_mask: int) -> VReg:
        dest = self._new(value.kind if value.kind != "f64" else "u32")
        return self._emit("SHFL.BFLY", dest, [value, str(lane_mask)])

    # -- control flow -----------------------------------------------------------------------------

    def barrier(self) -> None:
        self._emit("BAR.SYNC", None, ["0"])

    def exit(self) -> None:
        self._emit("EXIT", None, [])

    def exit_if(self, pred: VReg, negate: bool = False) -> None:
        self._emit("EXIT", None, [], guard=_PredSrc(pred, negate))

    def if_then(self, pred: VReg, negate: bool = False) -> _Block:
        """``with kb.if_then(p): body`` — SSY / divergent BRA / SYNC."""
        reconv = self._label("endif")
        skip = self._label("skip")
        self._emit("SSY", None, [reconv])
        self._emit("BRA", None, [skip], guard=_PredSrc(pred, not negate))
        return _Block(self, "if", reconv=reconv, skip=skip)

    def loop(self) -> _Block:
        """``with kb.loop() as l: ... l.break_if(p)`` — PBK / BRK / BRA."""
        end = self._label("loopend")
        head = self._label("loophead")
        self._emit("PBK", None, [end])
        block = _Block(self, "loop", end=end, head=head)
        block.start_index = len(self._ops)
        self._place_label(head)
        return block

    def _close_block(self, block: _Block) -> None:
        if block.kind == "if":
            self._place_label(block.labels["skip"])
            self._emit("SYNC", None, [])
            self._place_label(block.labels["reconv"])
        elif block.kind == "loop":
            self._emit("BRA", None, [block.labels["head"]])
            self._place_label(block.labels["end"])
            self._loop_spans.append((block.start_index, len(self._ops)))
        # A trailing label needs an anchor instruction; NOP if nothing follows.

    def for_range(self, count, start: int = 0, step: int = 1):
        """``for i in kb.for_range(n)`` — a counted loop; yields the counter."""
        counter = self.mov(self.const_u32(start))
        block = self.loop()
        limit = count if isinstance(count, VReg) else None

        class _ForLoop:
            def __init__(self, builder: KernelBuilder) -> None:
                self.builder = builder
                self.counter = counter

            def __enter__(self) -> VReg:
                builder = self.builder
                if limit is not None:
                    done = builder.isetp("GE", counter, limit)
                else:
                    done = builder.isetp("GE", counter, int(count))
                block.break_if(done)
                return counter

            def __exit__(self, exc_type, exc, tb) -> None:
                if exc_type is None:
                    builder = self.builder
                    builder.assign(counter, builder.iadd(counter, step))
                    block.__exit__(None, None, None)

        return _ForLoop(self)

    # -- finalisation --------------------------------------------------------------------------------

    def finish(self) -> str:
        """Register-allocate and render the kernel as assembler text."""
        if self._pending_label is not None:
            # A block's end label points past the last instruction; anchor
            # it with the terminal EXIT.
            self.exit()
        elif not self._ops or self._ops[-1].opcode != "EXIT":
            self.exit()
        assignment = allocate(
            self._intervals(), max_gp_regs=self.max_regs, max_preds=7
        )
        lines = [
            f".kernel {self.name}",
            f".params {self.num_params}",
        ]
        if self.shared_bytes:
            lines.append(f".shared {self.shared_bytes}")
        if self.local_bytes:
            lines.append(f".local {self.local_bytes}")
        for op in self._ops:
            if op.label_before:
                lines.append(f"{op.label_before}:")
            lines.append(f"    {self._render(op, assignment)}")
        return "\n".join(lines) + "\n"

    def _render(self, op: _Op, assignment: dict[int, int]) -> str:
        def reg_name(vreg: VReg) -> str:
            phys = assignment[vreg.vid]
            return f"P{phys}" if vreg.kind == "pred" else f"R{phys}"

        parts = []
        if op.guard is not None:
            bang = "!" if op.guard.negate else ""
            parts.append(f"@{bang}{reg_name(op.guard.pred)}")
        parts.append(op.opcode)
        rendered = []
        if op.dest is not None:
            rendered.append(reg_name(op.dest))
        for operand in op.operands:
            if isinstance(operand, VReg):
                rendered.append(reg_name(operand))
            elif isinstance(operand, _Neg):
                rendered.append(f"-{reg_name(operand.vreg)}")
            elif isinstance(operand, _Abs):
                rendered.append(f"|{reg_name(operand.vreg)}|")
            elif isinstance(operand, _Mem):
                base = reg_name(operand.base)
                if operand.offset:
                    sign = "+" if operand.offset >= 0 else "-"
                    rendered.append(f"[{base}{sign}0x{abs(operand.offset):x}]")
                else:
                    rendered.append(f"[{base}]")
            elif isinstance(operand, _PredSrc):
                bang = "!" if operand.negate else ""
                rendered.append(f"{bang}{reg_name(operand.pred)}")
            else:
                rendered.append(str(operand))
        if rendered:
            parts.append(", ".join(rendered))
        return " ".join(parts) + " ;"

    def _intervals(self) -> list[Interval]:
        first: dict[int, int] = {}
        last: dict[int, int] = {}
        kinds: dict[int, str] = {}

        def touch(vreg: VReg, position: int) -> None:
            first.setdefault(vreg.vid, position)
            last[vreg.vid] = max(last.get(vreg.vid, position), position)
            kinds[vreg.vid] = vreg.kind

        for position, op in enumerate(self._ops):
            if op.dest is not None:
                touch(op.dest, position)
            if op.guard is not None:
                touch(op.guard.pred, position)
            for operand in op.operands:
                if isinstance(operand, VReg):
                    touch(operand, position)
                elif isinstance(operand, (_Neg, _Abs)):
                    touch(operand.vreg, position)
                elif isinstance(operand, _Mem):
                    touch(operand.base, position)
                elif isinstance(operand, _PredSrc):
                    touch(operand.pred, position)

        # Loop-carried extension: anything touched inside a loop body lives
        # for the whole loop (the back edge may revisit it).
        for start, end in self._loop_spans:
            for vid in first:
                if first[vid] < end and last[vid] >= start:
                    last[vid] = max(last[vid], end)

        return [
            Interval(vid, kinds[vid], first[vid], last[vid]) for vid in first
        ]


@dataclass(frozen=True)
class _Neg:
    vreg: VReg


@dataclass(frozen=True)
class _Abs:
    vreg: VReg
