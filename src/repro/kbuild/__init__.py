"""Kernel builder: the compiler back-end substrate (virtual regs -> SASS)."""

from repro.kbuild.builder import KernelBuilder, VReg
from repro.kbuild.regalloc import Interval, allocate

__all__ = ["KernelBuilder", "VReg", "Interval", "allocate"]
