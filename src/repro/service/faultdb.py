"""The FaultDB: one SQLite database holding every campaign's fault data.

The directory-backed :class:`~repro.core.store.CampaignStore` persists one
campaign as a file tree; the FaultDB persists *many* campaigns in one
WAL-mode SQLite file so concurrent workers (threads in the ``repro serve``
process and separate worker processes alike) share it safely:

* ``campaigns`` — one row per submitted campaign: the full config (JSON,
  via :mod:`repro.service.codec`), kind, lifecycle state;
* ``sites`` — the planned injection sites of each campaign, each stamped
  with its *fault fingerprint* (:func:`fault_fingerprint`): a digest of
  everything that determines the run's outcome on the deterministic
  simulator.  Same fingerprint ⇒ same outcome, which is what makes
  cross-campaign deduplication sound;
* ``outcomes`` — one row per completed injection, losslessly round-
  tripping :class:`~repro.core.params.TransientParams`,
  :class:`~repro.core.injector.InjectionRecord` and
  :class:`~repro.core.outcomes.OutcomeRecord` through their canonical
  text forms.  "Has an identical fault already executed?" is one indexed
  query (:meth:`FaultDB.find_outcome`);
* ``artifacts`` — golden stdout/files, the profile and adaptive decision
  tapes as per-campaign blobs;
* ``units`` — the scheduler's leased work units (see
  :mod:`repro.service.scheduler`).

:meth:`FaultDB.campaign_store` adapts one campaign's slice of the database
to the :class:`~repro.core.result_store.ResultStore` protocol, so the
unchanged campaign engine checkpoints injections straight into SQLite.
:meth:`FaultDB.export_results_csv` renders the campaign's ``results.csv``
through the same :func:`~repro.core.result_store.render_results_csv` as
the directory store — byte-identical by construction, pinned by parity
tests.
"""

from __future__ import annotations

import hashlib
import json
import shutil
import sqlite3
import tempfile
import threading
import time
import weakref
from pathlib import Path

from repro.core.campaign import (
    CampaignConfig,
    PermanentResult,
    TransientCampaignResult,
    TransientResult,
)
from repro.core.injector import InjectionRecord
from repro.core.kinds import CampaignKind
from repro.core.outcomes import Outcome, OutcomeRecord
from repro.core.params import PermanentParams, TransientParams
from repro.core.profile_data import ProgramProfile
from repro.core.result_store import render_results_csv
from repro.errors import ReproError
from repro.runner.artifacts import RunArtifacts
from repro.service.codec import config_from_dict, config_to_dict

_SCHEMA = """
CREATE TABLE IF NOT EXISTS campaigns (
    campaign_id  TEXT PRIMARY KEY,
    workload     TEXT NOT NULL,
    kind         TEXT NOT NULL,
    config_json  TEXT NOT NULL,
    state        TEXT NOT NULL DEFAULT 'pending',
    error        TEXT NOT NULL DEFAULT '',
    created_at   REAL NOT NULL,
    updated_at   REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS sites (
    campaign_id  TEXT NOT NULL,
    idx          INTEGER NOT NULL,
    kind         TEXT NOT NULL,
    params_text  TEXT NOT NULL,
    fingerprint  TEXT NOT NULL,
    PRIMARY KEY (campaign_id, idx)
);
CREATE INDEX IF NOT EXISTS sites_by_fingerprint ON sites (fingerprint);
CREATE TABLE IF NOT EXISTS outcomes (
    campaign_id   TEXT NOT NULL,
    idx           INTEGER NOT NULL,
    kind          TEXT NOT NULL,
    fingerprint   TEXT NOT NULL,
    params_text   TEXT NOT NULL,
    record_text   TEXT NOT NULL,
    outcome       TEXT NOT NULL,
    symptom       TEXT NOT NULL,
    potential_due INTEGER NOT NULL,
    wall_time     REAL NOT NULL,
    instructions  INTEGER NOT NULL,
    extras_json   TEXT NOT NULL DEFAULT '{}',
    deduped_from  TEXT NOT NULL DEFAULT '',
    PRIMARY KEY (campaign_id, kind, idx)
);
CREATE INDEX IF NOT EXISTS outcomes_by_fingerprint ON outcomes (fingerprint);
CREATE TABLE IF NOT EXISTS artifacts (
    campaign_id TEXT NOT NULL,
    name        TEXT NOT NULL,
    payload     BLOB NOT NULL,
    PRIMARY KEY (campaign_id, name)
);
CREATE TABLE IF NOT EXISTS units (
    campaign_id   TEXT NOT NULL,
    unit_id       INTEGER NOT NULL,
    indices_json  TEXT NOT NULL,
    state         TEXT NOT NULL DEFAULT 'pending',
    worker        TEXT NOT NULL DEFAULT '',
    lease_expires REAL NOT NULL DEFAULT 0,
    attempts      INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (campaign_id, unit_id)
);
"""


def fault_fingerprint(
    workload: str,
    kind: CampaignKind | str,
    params,
    config: CampaignConfig,
) -> str:
    """The digest of everything that determines one injection's outcome.

    The simulator is deterministic, so two injections agreeing on
    workload, kind, the full parameter record and the sandbox/watchdog
    environment produce identical outcomes — the soundness condition for
    deduplication.  Fields that only affect speed (``fast_forward``,
    executor choice, retry backoff) are deliberately excluded:
    ``results.csv`` is byte-identical across them, so they cannot change
    the outcome.
    """
    sandbox = config.sandbox
    parts = [
        workload,
        CampaignKind.coerce(kind).value,
        params.to_text(),
        str(config.hang_budget_factor),
        str(sandbox.seed),
        str(sandbox.instruction_budget),
        sandbox.family,
        str(sandbox.num_sms),
        str(sandbox.global_mem_bytes),
        json.dumps(sorted(sandbox.extra_env.items())),
    ]
    return hashlib.sha256("\x1f".join(parts).encode()).hexdigest()


class FaultDB:
    """One SQLite fault database, shared by every campaign and worker.

    Each process opens its own :class:`FaultDB` over the same path; within
    a process the single connection is serialized by a lock
    (``check_same_thread=False`` + :class:`threading.Lock`, the idiom WAL
    mode expects).  Cross-process writers coordinate through WAL and a
    generous ``busy_timeout``.

    **Lease clock.** Unit lease deadlines are epoch-valued but derived
    from :meth:`_now` — the wall clock sampled once at connection open
    plus the monotonic delta since — so an NTP step during a process's
    lifetime can neither mass-expire live leases nor immortalize dead
    ones.  Across processes (and hosts) the stored values compare as
    ordinary epoch timestamps; the protocol therefore assumes
    inter-worker clock skew is small relative to ``lease_seconds``
    (seconds of skew against the default 30 s lease), the standard
    assumption for lease-based coordination on NTP-disciplined fleets.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Monotonic-safe lease clock anchor (see the class docstring).
        self._epoch_origin = time.time()
        self._mono_origin = time.monotonic()
        # Autocommit (isolation_level=None): transactions are explicit
        # (BEGIN IMMEDIATE in lease_unit and the batch inserts), never
        # implicitly opened by the driver — the implicit mode would leave a
        # transaction dangling across the lease's own BEGIN.
        self._conn = sqlite3.connect(
            str(self.path), check_same_thread=False, isolation_level=None
        )
        self._lock = threading.Lock()
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA busy_timeout=30000")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.executescript(_SCHEMA)

    def _now(self) -> float:
        """Epoch-like seconds immune to wall-clock steps after open.

        All lease arithmetic (claim, heartbeat, expiry checks) goes
        through this, so a forward NTP step cannot mass-expire every live
        lease and a backward step cannot immortalize a dead worker's.
        """
        return self._epoch_origin + (time.monotonic() - self._mono_origin)

    def replay_cache_dir(self) -> Path:
        """The DB-adjacent persistent replay-cache directory.

        ``repro serve`` points every scheduler worker's engine here (via
        ``CampaignConfig.replay_cache``), so the first worker to record a
        workload's golden tape shares it with every other worker and
        tenant on this database.
        """
        return self.path.with_name(self.path.name + ".replay")

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "FaultDB":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- campaigns -------------------------------------------------------------

    def create_campaign(
        self,
        campaign_id: str,
        config: CampaignConfig,
        kind: CampaignKind | str = CampaignKind.TRANSIENT,
    ) -> None:
        if not config.workload:
            raise ReproError("a FaultDB campaign needs config.workload set")
        kind = CampaignKind.coerce(kind)
        now = time.time()
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT INTO campaigns (campaign_id, workload, kind, "
                "config_json, state, created_at, updated_at) "
                "VALUES (?, ?, ?, ?, 'pending', ?, ?)",
                (
                    campaign_id,
                    config.workload,
                    kind.value,
                    json.dumps(config_to_dict(config)),
                    now,
                    now,
                ),
            )

    def campaign_config(self, campaign_id: str) -> CampaignConfig:
        row = self._fetchone(
            "SELECT config_json FROM campaigns WHERE campaign_id = ?",
            (campaign_id,),
        )
        if row is None:
            raise ReproError(f"no campaign {campaign_id!r} in {self.path}")
        return config_from_dict(json.loads(row[0]))

    def campaign_row(self, campaign_id: str) -> dict:
        row = self._fetchone(
            "SELECT campaign_id, workload, kind, state, error, created_at, "
            "updated_at FROM campaigns WHERE campaign_id = ?",
            (campaign_id,),
        )
        if row is None:
            raise ReproError(f"no campaign {campaign_id!r} in {self.path}")
        keys = (
            "campaign_id", "workload", "kind", "state", "error",
            "created_at", "updated_at",
        )
        return dict(zip(keys, row))

    def list_campaigns(self) -> list[dict]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT campaign_id, workload, kind, state, error, "
                "created_at, updated_at FROM campaigns ORDER BY created_at"
            ).fetchall()
        keys = (
            "campaign_id", "workload", "kind", "state", "error",
            "created_at", "updated_at",
        )
        return [dict(zip(keys, row)) for row in rows]

    def set_campaign_state(
        self, campaign_id: str, state: str, error: str = ""
    ) -> None:
        with self._lock, self._conn:
            self._conn.execute(
                "UPDATE campaigns SET state = ?, error = ?, updated_at = ? "
                "WHERE campaign_id = ?",
                (state, error, time.time(), campaign_id),
            )

    # -- sites -----------------------------------------------------------------

    def insert_sites(
        self,
        campaign_id: str,
        sites,
        kind: CampaignKind | str = CampaignKind.TRANSIENT,
    ) -> None:
        """Record the campaign's planned sites with their fingerprints."""
        config = self.campaign_config(campaign_id)
        kind = CampaignKind.coerce(kind)
        rows = [
            (
                campaign_id,
                index,
                kind.value,
                site.to_text(),
                fault_fingerprint(config.workload, kind, site, config),
            )
            for index, site in enumerate(sites)
        ]
        with self._lock:
            try:
                self._conn.execute("BEGIN IMMEDIATE")
                self._conn.executemany(
                    "INSERT OR REPLACE INTO sites "
                    "(campaign_id, idx, kind, params_text, fingerprint) "
                    "VALUES (?, ?, ?, ?, ?)",
                    rows,
                )
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise

    def site_fingerprints(self, campaign_id: str) -> dict[int, str]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT idx, fingerprint FROM sites WHERE campaign_id = ?",
                (campaign_id,),
            ).fetchall()
        return dict(rows)

    # -- fingerprint dedup -----------------------------------------------------

    def has_executed(self, fingerprint: str) -> bool:
        """One indexed query: has an identical fault already run anywhere?"""
        return (
            self._fetchone(
                "SELECT 1 FROM outcomes WHERE fingerprint = ? LIMIT 1",
                (fingerprint,),
            )
            is not None
        )

    def find_outcome(self, fingerprint: str) -> dict | None:
        """The stored outcome of an identical fault, if any campaign ran one.

        Prefers an originally-executed row over a dedup copy, so provenance
        chains stay one hop deep.
        """
        row = self._fetchone(
            "SELECT campaign_id, idx, kind, fingerprint, params_text, "
            "record_text, outcome, symptom, potential_due, wall_time, "
            "instructions, extras_json, deduped_from FROM outcomes "
            "WHERE fingerprint = ? ORDER BY deduped_from != '' LIMIT 1",
            (fingerprint,),
        )
        return None if row is None else _outcome_row_dict(row)

    def dedupe_campaign(self, campaign_id: str) -> int:
        """Copy outcomes for sites whose fingerprint already executed.

        Run after :meth:`insert_sites` and before workers start: every site
        matching a stored outcome (from an earlier campaign, or a duplicate
        site earlier in this plan) gets a copied outcome row with
        ``deduped_from`` naming the donor, so workers skip it via the
        normal resume path.  The simulator is deterministic, so the copy
        is exactly what executing the site would have produced —
        ``results.csv`` parity is preserved.  Returns the number of
        injections skipped.
        """
        fingerprints = self.site_fingerprints(campaign_id)
        config = self.campaign_config(campaign_id)
        done = set(self.completed_injections(campaign_id))
        copied = 0
        for index in sorted(fingerprints):
            if index in done:
                continue
            donor = self.find_outcome(fingerprints[index])
            if donor is None:
                continue
            result = _transient_result_from_row(donor)
            self.save_transient_outcome(
                campaign_id,
                index,
                result,
                config=config,
                deduped_from=f"{donor['campaign_id']}/{donor['idx']}",
            )
            copied += 1
        return copied

    # -- outcomes --------------------------------------------------------------

    def save_transient_outcome(
        self,
        campaign_id: str,
        index: int,
        result: TransientResult,
        config: CampaignConfig | None = None,
        deduped_from: str = "",
    ) -> None:
        config = config or self.campaign_config(campaign_id)
        fingerprint = fault_fingerprint(
            config.workload or "", CampaignKind.TRANSIENT, result.params, config
        )
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO outcomes (campaign_id, idx, kind, "
                "fingerprint, params_text, record_text, outcome, symptom, "
                "potential_due, wall_time, instructions, extras_json, "
                "deduped_from) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    campaign_id,
                    index,
                    CampaignKind.TRANSIENT.value,
                    fingerprint,
                    result.params.to_text(),
                    result.record.to_text(),
                    result.outcome.outcome.value,
                    result.outcome.symptom,
                    int(result.outcome.potential_due),
                    result.wall_time,
                    result.instructions,
                    "{}",
                    deduped_from,
                ),
            )

    def load_transient_outcome(
        self, campaign_id: str, index: int
    ) -> TransientResult:
        row = self._fetchone(
            "SELECT campaign_id, idx, kind, fingerprint, params_text, "
            "record_text, outcome, symptom, potential_due, wall_time, "
            "instructions, extras_json, deduped_from FROM outcomes "
            "WHERE campaign_id = ? AND kind = ? AND idx = ?",
            (campaign_id, CampaignKind.TRANSIENT.value, index),
        )
        if row is None:
            raise ReproError(
                f"injection {index} of campaign {campaign_id!r} not in "
                f"{self.path}"
            )
        return _transient_result_from_row(_outcome_row_dict(row))

    def completed_injections(self, campaign_id: str) -> list[int]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT idx FROM outcomes WHERE campaign_id = ? AND kind = ? "
                "ORDER BY idx",
                (campaign_id, CampaignKind.TRANSIENT.value),
            ).fetchall()
        return [row[0] for row in rows]

    def save_permanent_outcome(
        self, campaign_id: str, index: int, result: PermanentResult
    ) -> None:
        config = self.campaign_config(campaign_id)
        fingerprint = fault_fingerprint(
            config.workload or "", CampaignKind.PERMANENT, result.params, config
        )
        extras = json.dumps(
            {
                "opcode": result.opcode,
                "weight": result.weight,
                "activations": result.activations,
            }
        )
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO outcomes (campaign_id, idx, kind, "
                "fingerprint, params_text, record_text, outcome, symptom, "
                "potential_due, wall_time, instructions, extras_json, "
                "deduped_from) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    campaign_id,
                    index,
                    CampaignKind.PERMANENT.value,
                    fingerprint,
                    result.params.to_text(),
                    "",
                    result.outcome.outcome.value,
                    result.outcome.symptom,
                    int(result.outcome.potential_due),
                    result.wall_time,
                    0,
                    extras,
                    "",
                ),
            )

    def load_permanent_outcome(
        self, campaign_id: str, index: int
    ) -> PermanentResult:
        row = self._fetchone(
            "SELECT campaign_id, idx, kind, fingerprint, params_text, "
            "record_text, outcome, symptom, potential_due, wall_time, "
            "instructions, extras_json, deduped_from FROM outcomes "
            "WHERE campaign_id = ? AND kind = ? AND idx = ?",
            (campaign_id, CampaignKind.PERMANENT.value, index),
        )
        if row is None:
            raise ReproError(
                f"permanent injection {index} of campaign {campaign_id!r} "
                f"not in {self.path}"
            )
        data = _outcome_row_dict(row)
        extras = json.loads(data["extras_json"])
        return PermanentResult(
            params=PermanentParams.from_text(data["params_text"]),
            opcode=extras.get("opcode", ""),
            weight=float(extras.get("weight", 1.0)),
            activations=int(extras.get("activations", 0)),
            outcome=_outcome_record_from_row(data),
            wall_time=data["wall_time"],
        )

    def completed_permanent_injections(self, campaign_id: str) -> list[int]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT idx FROM outcomes WHERE campaign_id = ? AND kind = ? "
                "ORDER BY idx",
                (campaign_id, CampaignKind.PERMANENT.value),
            ).fetchall()
        return [row[0] for row in rows]

    # -- artifacts -------------------------------------------------------------

    def save_artifact(
        self, campaign_id: str, name: str, payload: bytes
    ) -> None:
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO artifacts (campaign_id, name, payload) "
                "VALUES (?, ?, ?)",
                (campaign_id, name, payload),
            )

    def load_artifact(self, campaign_id: str, name: str) -> bytes | None:
        row = self._fetchone(
            "SELECT payload FROM artifacts WHERE campaign_id = ? AND name = ?",
            (campaign_id, name),
        )
        return None if row is None else row[0]

    def list_artifacts(self, campaign_id: str, prefix: str = "") -> list[str]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT name FROM artifacts WHERE campaign_id = ? "
                "AND name LIKE ? ORDER BY name",
                (campaign_id, prefix + "%"),
            ).fetchall()
        return [row[0] for row in rows]

    # -- results export --------------------------------------------------------

    def export_results_csv(self, campaign_id: str) -> str:
        """The campaign's ``results.csv``, rendered from the database.

        Rows are rebuilt losslessly from the ``outcomes`` table and passed
        through the same :func:`~repro.core.result_store.render_results_csv`
        as :class:`~repro.core.store.CampaignStore` — the export is
        byte-identical to what an equivalent directory-backed campaign
        wrote.
        """
        results = [
            (index, self.load_transient_outcome(campaign_id, index))
            for index in self.completed_injections(campaign_id)
        ]
        return render_results_csv(results)

    # -- work units (leases; see repro.service.scheduler) ----------------------

    def insert_units(
        self, campaign_id: str, units: list[list[int]]
    ) -> None:
        rows = [
            (campaign_id, unit_id, json.dumps(indices))
            for unit_id, indices in enumerate(units)
        ]
        with self._lock:
            try:
                self._conn.execute("BEGIN IMMEDIATE")
                self._conn.executemany(
                    "INSERT OR REPLACE INTO units (campaign_id, unit_id, "
                    "indices_json, state) VALUES (?, ?, ?, 'pending')",
                    rows,
                )
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise

    def lease_unit(
        self, campaign_id: str, worker: str, lease_seconds: float
    ) -> tuple[int, list[int]] | None:
        """Atomically claim one runnable unit (pending, or expired lease).

        ``BEGIN IMMEDIATE`` takes the write lock up front so two workers
        racing for the same unit serialize; the loser sees it leased and
        picks the next one.  Returns ``(unit_id, indices)`` or ``None``
        when nothing is currently runnable (all done or leased-and-alive).
        """
        now = self._now()
        with self._lock:
            try:
                self._conn.execute("BEGIN IMMEDIATE")
                row = self._conn.execute(
                    "SELECT unit_id, indices_json FROM units "
                    "WHERE campaign_id = ? AND (state = 'pending' OR "
                    "(state = 'leased' AND lease_expires < ?)) "
                    "ORDER BY unit_id LIMIT 1",
                    (campaign_id, now),
                ).fetchone()
                if row is None:
                    self._conn.execute("ROLLBACK")
                    return None
                unit_id, indices_json = row
                self._conn.execute(
                    "UPDATE units SET state = 'leased', worker = ?, "
                    "lease_expires = ?, attempts = attempts + 1 "
                    "WHERE campaign_id = ? AND unit_id = ?",
                    (worker, now + lease_seconds, campaign_id, unit_id),
                )
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
        return unit_id, json.loads(indices_json)

    def heartbeat_unit(
        self,
        campaign_id: str,
        unit_id: int,
        worker: str,
        lease_seconds: float,
    ) -> bool:
        """Extend a live lease; returns False if the lease was lost."""
        with self._lock, self._conn:
            cursor = self._conn.execute(
                "UPDATE units SET lease_expires = ? WHERE campaign_id = ? "
                "AND unit_id = ? AND worker = ? AND state = 'leased'",
                (self._now() + lease_seconds, campaign_id, unit_id, worker),
            )
            return cursor.rowcount == 1

    def complete_unit(
        self, campaign_id: str, unit_id: int, worker: str
    ) -> None:
        with self._lock, self._conn:
            self._conn.execute(
                "UPDATE units SET state = 'done' WHERE campaign_id = ? "
                "AND unit_id = ? AND worker = ?",
                (campaign_id, unit_id, worker),
            )

    def unit_states(self, campaign_id: str) -> dict[str, int]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) FROM units WHERE campaign_id = ? "
                "GROUP BY state",
                (campaign_id,),
            ).fetchall()
        return dict(rows)

    def has_runnable_unit(self, campaign_id: str) -> bool:
        """Any unit currently claimable (pending, or lease expired)?"""
        return (
            self._fetchone(
                "SELECT 1 FROM units WHERE campaign_id = ? AND "
                "(state = 'pending' OR (state = 'leased' AND "
                "lease_expires < ?)) LIMIT 1",
                (campaign_id, self._now()),
            )
            is not None
        )

    def all_units_done(self, campaign_id: str) -> bool:
        return (
            self._fetchone(
                "SELECT 1 FROM units WHERE campaign_id = ? AND state != 'done' "
                "LIMIT 1",
                (campaign_id,),
            )
            is None
        )

    # -- the engine-facing store adapter ---------------------------------------

    def campaign_store(self, campaign_id: str) -> "FaultDBCampaignStore":
        """One campaign's slice of the database, as a ``ResultStore``."""
        self.campaign_row(campaign_id)  # raises for unknown campaigns
        return FaultDBCampaignStore(self, campaign_id)

    # -- plumbing --------------------------------------------------------------

    def _fetchone(self, sql: str, args: tuple) -> tuple | None:
        with self._lock:
            return self._conn.execute(sql, args).fetchone()


def _outcome_row_dict(row: tuple) -> dict:
    keys = (
        "campaign_id", "idx", "kind", "fingerprint", "params_text",
        "record_text", "outcome", "symptom", "potential_due", "wall_time",
        "instructions", "extras_json", "deduped_from",
    )
    return dict(zip(keys, row))


def _outcome_record_from_row(data: dict) -> OutcomeRecord:
    return OutcomeRecord(
        outcome=Outcome(data["outcome"]),
        symptom=data["symptom"],
        potential_due=bool(data["potential_due"]),
    )


def _transient_result_from_row(data: dict) -> TransientResult:
    return TransientResult(
        params=TransientParams.from_text(data["params_text"]),
        record=InjectionRecord.from_text(data["record_text"]),
        outcome=_outcome_record_from_row(data),
        wall_time=data["wall_time"],
        instructions=data["instructions"],
    )


class FaultDBCampaignStore:
    """One campaign's view of a :class:`FaultDB`, engine-compatible.

    Implements the :class:`~repro.core.result_store.ResultStore` protocol,
    so ``CampaignEngine`` (and :func:`repro.api.run_campaign` via
    ``store=``) checkpoints injections into SQLite with no engine changes.
    The golden run's fast-forward tape still needs a real filesystem path
    (workers ``mmap`` it by name), so :meth:`replay_path` hands out a
    per-store-instance temp file — each worker process records its own
    deterministic copy, which also keeps concurrent workers from racing on
    one file.
    """

    def __init__(self, db: FaultDB, campaign_id: str) -> None:
        self.db = db
        self.campaign_id = campaign_id
        self._config = db.campaign_config(campaign_id)
        self._replay_dir: str | None = None

    # -- golden + profile -----------------------------------------------------

    def save_golden(self, golden: RunArtifacts) -> None:
        self.db.save_artifact(
            self.campaign_id, "golden/stdout", golden.stdout.encode()
        )
        for name, payload in golden.files.items():
            self.db.save_artifact(
                self.campaign_id, f"golden/files/{name}", payload
            )

    def load_golden(self) -> RunArtifacts:
        stdout = self.db.load_artifact(self.campaign_id, "golden/stdout")
        if stdout is None:
            raise ReproError(
                f"no golden run stored for campaign {self.campaign_id!r}"
            )
        prefix = "golden/files/"
        files = {
            name[len(prefix):]: self.db.load_artifact(self.campaign_id, name)
            for name in self.db.list_artifacts(self.campaign_id, prefix)
        }
        return RunArtifacts(stdout=stdout.decode(), files=files)

    def save_profile(self, profile: ProgramProfile) -> None:
        self.db.save_artifact(
            self.campaign_id, "profile", profile.to_text().encode()
        )

    def load_profile(self) -> ProgramProfile:
        payload = self.db.load_artifact(self.campaign_id, "profile")
        if payload is None:
            raise ReproError(
                f"no profile stored for campaign {self.campaign_id!r}"
            )
        return ProgramProfile.from_text(payload.decode())

    def replay_path(self) -> Path:
        if self._replay_dir is None:
            self._replay_dir = tempfile.mkdtemp(prefix="repro-faultdb-replay-")
            weakref.finalize(
                self, shutil.rmtree, self._replay_dir, ignore_errors=True
            )
        return Path(self._replay_dir) / "replay.bin"

    # -- adaptive decision tape ------------------------------------------------

    def save_adaptive_state(self, state: dict) -> None:
        self.db.save_artifact(
            self.campaign_id, "adaptive", json.dumps(state).encode()
        )

    def load_adaptive_state(self) -> dict | None:
        payload = self.db.load_artifact(self.campaign_id, "adaptive")
        return None if payload is None else json.loads(payload.decode())

    # -- transient injections --------------------------------------------------

    def save_injection(self, index: int, result: TransientResult) -> None:
        self.db.save_transient_outcome(
            self.campaign_id, index, result, config=self._config
        )

    def load_injection(self, index: int) -> TransientResult:
        return self.db.load_transient_outcome(self.campaign_id, index)

    def completed_injections(self) -> list[int]:
        return self.db.completed_injections(self.campaign_id)

    # -- permanent injections --------------------------------------------------

    def save_permanent_injection(
        self, index: int, result: PermanentResult
    ) -> None:
        self.db.save_permanent_outcome(self.campaign_id, index, result)

    def load_permanent_injection(self, index: int) -> PermanentResult:
        return self.db.load_permanent_outcome(self.campaign_id, index)

    def completed_permanent_injections(self) -> list[int]:
        return self.db.completed_permanent_injections(self.campaign_id)

    # -- aggregate results -----------------------------------------------------

    def save_results_csv(self, result: TransientCampaignResult) -> None:
        self.db.save_artifact(
            self.campaign_id,
            "results.csv",
            render_results_csv(enumerate(result.results)).encode(),
        )

    def save_partial_results_csv(
        self, by_index: dict[int, TransientResult]
    ) -> None:
        self.db.save_artifact(
            self.campaign_id,
            "results.csv",
            render_results_csv(sorted(by_index.items())).encode(),
        )
