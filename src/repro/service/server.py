"""``repro serve``: the stdlib-HTTP front end over one FaultDB.

A :class:`~http.server.ThreadingHTTPServer` (no dependencies beyond the
standard library) exposing multi-tenant campaign submission against one
:class:`~repro.service.faultdb.FaultDB`:

* ``POST /campaigns`` — submit ``{"workload": ..., "config": {...},
  "workers": N}``; the config object is a *partial*
  :mod:`repro.service.codec` payload layered over the base config with
  ``CampaignConfig.with_overrides`` (the same override mechanism the API
  and CLI use).  Returns ``{"campaign_id": ...}`` immediately; a
  coordinator thread runs the :class:`~repro.service.scheduler.CampaignScheduler`
  to completion in the background.  Concurrent submissions run
  concurrently — each campaign gets its own coordinator and workers, all
  sharing the one database;
* ``GET /campaigns`` — every campaign's lifecycle row;
* ``GET /campaigns/<id>`` — live progress: state, completed/total
  injection counts, work-unit states and the running outcome tally with
  confidence intervals (:func:`repro.core.report.summarize_tally`);
* ``GET /campaigns/<id>/results`` — the deterministic ``results.csv``
  (409 until the campaign is done, so a partial file can never be
  mistaken for the final export);
* ``GET /healthz``, ``GET /metrics`` — liveness and the text metrics
  dump (``service.*`` counters).

Permanent-fault submissions are rejected with 400: the scheduler shards
transient plans only (a permanent campaign's per-opcode weighting is a
whole-plan property).  Run those through :func:`repro.api.run_campaign`.
"""

from __future__ import annotations

import json
import threading
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.core.campaign import CampaignConfig
from repro.core.kinds import CampaignKind
from repro.core.report import OutcomeTally, summarize_tally
from repro.errors import ReproError
from repro.obs import MetricsRegistry
from repro.service.codec import decode_overrides
from repro.service.faultdb import FaultDB
from repro.service.scheduler import LEASE_SECONDS, CampaignScheduler
from repro.workloads import WORKLOADS


class FaultService:
    """The campaign service: one FaultDB, many concurrent campaigns."""

    def __init__(
        self,
        db_path: str,
        host: str = "127.0.0.1",
        port: int = 0,
        default_workers: int = 2,
        lease_seconds: float = LEASE_SECONDS,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.db = FaultDB(db_path)
        self.db_path = str(db_path)
        self.default_workers = default_workers
        self.lease_seconds = lease_seconds
        self.registry = metrics if metrics is not None else MetricsRegistry()
        self._coordinators: dict[str, threading.Thread] = {}
        self._httpd = ThreadingHTTPServer(
            (host, port), _make_handler(self)
        )
        self._httpd.daemon_threads = True
        self._serve_thread: threading.Thread | None = None

    # -- lifecycle -------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        return self._httpd.server_address[:2]

    def start(self) -> None:
        """Serve requests on a background thread (returns immediately)."""
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True
        )
        self._serve_thread.start()

    def serve_forever(self) -> None:
        """Serve requests on the calling thread (the CLI entry point)."""
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        self._httpd.shutdown()
        if self._serve_thread is not None:
            self._serve_thread.join()
        self._httpd.server_close()
        self.db.close()

    def join_campaign(self, campaign_id: str, timeout: float | None = None) -> None:
        """Block until a submitted campaign's coordinator finishes (tests)."""
        thread = self._coordinators.get(campaign_id)
        if thread is not None:
            thread.join(timeout)

    # -- operations (handlers call these) --------------------------------------

    def submit(self, payload: dict) -> str:
        workload = payload.get("workload")
        if not workload:
            raise ReproError("submission needs a 'workload' field")
        if workload not in WORKLOADS:
            raise ReproError(
                f"unknown workload {workload!r}; see GET /workloads"
            )
        kind = CampaignKind.coerce(payload.get("kind", CampaignKind.TRANSIENT))
        if kind is not CampaignKind.TRANSIENT:
            raise ReproError(
                f"the service runs transient campaigns only, got "
                f"{kind.value!r}; run permanent campaigns through "
                "repro.api.run_campaign"
            )
        overrides = decode_overrides(payload.get("config", {}))
        overrides.pop("workload", None)
        config = CampaignConfig(workload=workload).with_overrides(**overrides)
        workers = int(payload.get("workers", self.default_workers))
        campaign_id = uuid.uuid4().hex[:12]
        self.db.create_campaign(campaign_id, config, kind)
        scheduler = CampaignScheduler(
            self.db,
            campaign_id,
            workers=workers,
            lease_seconds=self.lease_seconds,
        )
        thread = threading.Thread(
            target=self._run_coordinator, args=(scheduler,), daemon=True
        )
        self._coordinators[campaign_id] = thread
        thread.start()
        self.registry.counter("service.campaigns_submitted").inc()
        return campaign_id

    def _run_coordinator(self, scheduler: CampaignScheduler) -> None:
        try:
            scheduler.run()
            self.registry.counter("service.campaigns_completed").inc()
        except BaseException:
            # State and error text are already recorded on the campaign row.
            self.registry.counter("service.campaigns_failed").inc()

    def status(self, campaign_id: str) -> dict:
        row = self.db.campaign_row(campaign_id)
        config = self.db.campaign_config(campaign_id)
        completed = self.db.completed_injections(campaign_id)
        tally = OutcomeTally()
        for index in completed:
            result = self.db.load_transient_outcome(campaign_id, index)
            tally.add(result.outcome)
        return {
            **row,
            "total": config.num_transient,
            "completed": len(completed),
            "units": self.db.unit_states(campaign_id),
            "tally": summarize_tally(tally),
        }

    def results_csv(self, campaign_id: str) -> str:
        row = self.db.campaign_row(campaign_id)
        if row["state"] != "done":
            raise _NotReady(
                f"campaign {campaign_id!r} is {row['state']}; results.csv "
                "is exported when it reaches 'done'"
            )
        payload = self.db.load_artifact(campaign_id, "results.csv")
        if payload is None:
            return self.db.export_results_csv(campaign_id)
        return payload.decode()


class _NotReady(Exception):
    """Results requested before the campaign finished (HTTP 409)."""


def _make_handler(service: FaultService):
    class Handler(BaseHTTPRequestHandler):
        # Quiet: the service logs through metrics, not stderr chatter.
        def log_message(self, format, *args):  # noqa: A002
            pass

        def do_GET(self) -> None:
            service.registry.counter("service.requests").inc()
            try:
                self._route_get()
            except ReproError as exc:
                self._send_json({"error": str(exc)}, status=404)
            except _NotReady as exc:
                self._send_json({"error": str(exc)}, status=409)
            except Exception as exc:  # pragma: no cover - defensive
                self._send_json({"error": str(exc)}, status=500)

        def do_POST(self) -> None:
            service.registry.counter("service.requests").inc()
            try:
                self._route_post()
            except ReproError as exc:
                self._send_json({"error": str(exc)}, status=400)
            except Exception as exc:  # pragma: no cover - defensive
                self._send_json({"error": str(exc)}, status=500)

        # -- routing -----------------------------------------------------------

        def _route_get(self) -> None:
            parts = [p for p in self.path.split("?")[0].split("/") if p]
            if parts == ["healthz"]:
                self._send_json({"ok": True})
            elif parts == ["metrics"]:
                self._send_text(service.registry.render_text())
            elif parts == ["workloads"]:
                self._send_json({"workloads": sorted(WORKLOADS)})
            elif parts == ["campaigns"]:
                self._send_json({"campaigns": service.db.list_campaigns()})
            elif len(parts) == 2 and parts[0] == "campaigns":
                self._send_json(service.status(parts[1]))
            elif (
                len(parts) == 3
                and parts[0] == "campaigns"
                and parts[2] == "results"
            ):
                self._send_text(
                    service.results_csv(parts[1]), content_type="text/csv"
                )
            else:
                self._send_json({"error": f"no route {self.path!r}"}, status=404)

        def _route_post(self) -> None:
            parts = [p for p in self.path.split("?")[0].split("/") if p]
            if parts != ["campaigns"]:
                self._send_json({"error": f"no route {self.path!r}"}, status=404)
                return
            length = int(self.headers.get("Content-Length", "0"))
            try:
                payload = json.loads(self.rfile.read(length) or b"{}")
            except json.JSONDecodeError as exc:
                self._send_json({"error": f"bad JSON: {exc}"}, status=400)
                return
            campaign_id = service.submit(payload)
            self._send_json({"campaign_id": campaign_id}, status=202)

        # -- responses ---------------------------------------------------------

        def _send_json(self, payload: dict, status: int = 200) -> None:
            body = json.dumps(payload).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _send_text(
            self, text: str, status: int = 200, content_type: str = "text/plain"
        ) -> None:
            body = text.encode()
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

    return Handler
