"""The campaign scheduler: shardable work units leased to worker processes.

Turns one submitted :class:`~repro.core.campaign.CampaignConfig` into a
fleet of cooperating processes over one :class:`~repro.service.faultdb.FaultDB`:

1. the coordinator plans the campaign once (golden → profile → select,
   checkpointed into the database), records every site's fault
   fingerprint, and *dedups*: sites whose fingerprint already executed —
   in any campaign — get their outcome copied instead of re-run;
2. the remaining indices are sharded into ``units`` rows;
3. N worker processes each rebuild the identical engine (site selection
   is deterministic from the config seed, so every worker derives the
   same plan via ``plan_transient``), then loop: lease a unit
   (``BEGIN IMMEDIATE`` — atomic under concurrent workers), heartbeat it
   from a background thread, pump it through
   :meth:`~repro.core.engine.CampaignEngine.run_batch` (the engine's own
   executor/retry/fast-forward machinery, checkpointing every injection
   into the database), and mark it done;
4. a worker that dies mid-unit simply stops heartbeating: the lease
   expires and the next ``lease_unit`` call requeues the unit.  Completed
   injections inside the dead worker's unit were already checkpointed, so
   only unfinished indices re-run;
5. when every unit is done the coordinator exports ``results.csv``
   (byte-identical to a single-process run) and marks the campaign done.

``worker_main`` is module-level so ``multiprocessing`` can import it under
any start method.
"""

from __future__ import annotations

import math
import multiprocessing
import threading
import time

from repro.core.engine import CampaignEngine
from repro.core.kinds import CampaignKind
from repro.errors import ReproError
from repro.service.faultdb import FaultDB

#: Lease duration; a worker heartbeats every LEASE_SECONDS / 3, so three
#: consecutive missed beats hand the unit to another worker.
LEASE_SECONDS = 30.0


def shard_units(
    num_sites: int, workers: int, unit_size: int | None = None
) -> list[list[int]]:
    """Contiguous index shards sized so each worker gets several units.

    Several small units per worker (rather than one big one) bound the
    re-run cost of a worker death to one unit and let faster workers steal
    the stragglers' share.
    """
    if num_sites <= 0:
        return []
    if unit_size is None:
        unit_size = max(1, math.ceil(num_sites / max(1, workers * 4)))
    return [
        list(range(start, min(start + unit_size, num_sites)))
        for start in range(0, num_sites, unit_size)
    ]


def _service_config(db: FaultDB, campaign_id: str):
    """The stored config with service defaults applied.

    Campaigns that did not choose a ``replay_cache`` get the DB-adjacent
    shared cache dir: the first worker (usually the coordinator, during
    planning) records the workload's golden tape and every other
    worker/tenant on this database replays it instead of re-recording.
    """
    config = db.campaign_config(campaign_id)
    if config.replay_cache is None and config.fast_forward:
        config = config.with_overrides(
            replay_cache=str(db.replay_cache_dir())
        )
    return config


def worker_main(
    db_path: str,
    campaign_id: str,
    worker_id: str,
    lease_seconds: float = LEASE_SECONDS,
) -> None:
    """One scheduler worker: lease units until none are runnable.

    Runs in its own process.  The engine is rebuilt from the campaign's
    stored config with a FaultDB-backed store, so ``run_batch`` skips
    indices other workers (or the dedup pass) already completed and
    checkpoints each injection the moment it finishes.  When the
    heartbeat thread discovers the lease was lost (this worker was
    presumed dead and the unit requeued), it signals ``run_batch`` to
    abandon the unit after the in-flight injection — the new lease holder
    owns the rest, so finishing it here would be wasted duplicate work.
    """
    db = FaultDB(db_path)
    config = _service_config(db, campaign_id)
    store = db.campaign_store(campaign_id)
    engine = CampaignEngine(config.workload, config, store=store)
    engine.plan_transient()  # deterministic: same plan in every worker
    while True:
        lease = db.lease_unit(campaign_id, worker_id, lease_seconds)
        if lease is None:
            break
        unit_id, indices = lease
        stop_heartbeat = threading.Event()
        lease_lost = threading.Event()
        beat = threading.Thread(
            target=_heartbeat_loop,
            args=(
                db,
                campaign_id,
                unit_id,
                worker_id,
                lease_seconds,
                stop_heartbeat,
                lease_lost,
            ),
            daemon=True,
        )
        beat.start()
        try:
            engine.run_batch(indices, stop=lease_lost)
        finally:
            stop_heartbeat.set()
            beat.join()
        if lease_lost.is_set():
            # Completed injections were checkpointed; the unit itself now
            # belongs to whoever re-leased it.  Move on to the next lease.
            continue
        db.complete_unit(campaign_id, unit_id, worker_id)
    db.close()


def _heartbeat_loop(
    db: FaultDB,
    campaign_id: str,
    unit_id: int,
    worker_id: str,
    lease_seconds: float,
    stop: threading.Event,
    lost: threading.Event | None = None,
) -> None:
    while not stop.wait(lease_seconds / 3.0):
        if not db.heartbeat_unit(campaign_id, unit_id, worker_id, lease_seconds):
            # Lease lost (we were presumed dead): stop renewing and tell
            # the worker to abandon the unit instead of finishing it as
            # duplicate work.
            if lost is not None:
                lost.set()
            return


class CampaignScheduler:
    """Coordinates one campaign end-to-end against a FaultDB.

    Lives in the submitting process (the ``repro serve`` coordinator
    thread, or a test).  ``workers=0`` runs the whole campaign inline
    through :meth:`~repro.core.engine.CampaignEngine.run_transient` — the
    path adaptive campaigns always take, since their batch draws are a
    sequential decision process that cannot shard.
    """

    def __init__(
        self,
        db: FaultDB,
        campaign_id: str,
        workers: int = 2,
        lease_seconds: float = LEASE_SECONDS,
        poll_seconds: float = 0.2,
    ) -> None:
        self.db = db
        self.campaign_id = campaign_id
        self.workers = workers
        self.lease_seconds = lease_seconds
        self.poll_seconds = poll_seconds

    def run(self) -> None:
        """Plan, dedup, shard, drive workers to completion, export."""
        campaign = self.db.campaign_row(self.campaign_id)
        config = _service_config(self.db, self.campaign_id)
        store = self.db.campaign_store(self.campaign_id)
        self.db.set_campaign_state(self.campaign_id, "running")
        try:
            if campaign["kind"] != CampaignKind.TRANSIENT.value:
                raise ReproError(
                    "the scheduler shards transient campaigns only; "
                    f"got kind {campaign['kind']!r}"
                )
            adaptive = config.stopping is not None or config.sampling is not None
            if self.workers <= 0 or adaptive:
                engine = CampaignEngine(config.workload, config, store=store)
                engine.run_transient()
                self.db.save_artifact(
                    self.campaign_id,
                    "results.csv",
                    self.db.export_results_csv(self.campaign_id).encode(),
                )
                self.db.set_campaign_state(self.campaign_id, "done")
                return
            engine = CampaignEngine(config.workload, config, store=store)
            sites = engine.plan_transient()
            self.db.insert_sites(self.campaign_id, sites)
            self.db.dedupe_campaign(self.campaign_id)
            remaining = sorted(
                set(range(len(sites)))
                - set(self.db.completed_injections(self.campaign_id))
            )
            # Order units stop-launch-coherently: sites sharing a
            # fast-forward checkpoint land in the same unit, so snapshot
            # workers fork siblings off one restored state and batch
            # workers (config.batch_launch) service whole same-launch
            # groups from one shared counting pass.
            remaining = engine.snapshot_order(remaining)
            shards = shard_units(len(remaining), self.workers)
            units = [[remaining[i] for i in shard] for shard in shards]
            self.db.insert_units(self.campaign_id, units)
            if units:
                self._drive_workers()
            self.db.save_artifact(
                self.campaign_id,
                "results.csv",
                self.db.export_results_csv(self.campaign_id).encode(),
            )
            self.db.set_campaign_state(self.campaign_id, "done")
        except BaseException as exc:
            self.db.set_campaign_state(self.campaign_id, "failed", error=str(exc))
            raise

    def _drive_workers(self) -> None:
        """Spawn workers and poll until every unit is done.

        Workers exit when no unit is runnable, which can happen while a
        slow peer still holds live leases — so the pool is respawned as
        long as undone units exist and no worker is alive (covering both
        the everyone-finished-early race and genuine worker deaths after
        lease expiry)."""
        procs = self._spawn()
        while not self.db.all_units_done(self.campaign_id):
            if not any(p.is_alive() for p in procs):
                # All workers gone but units remain: leases must expire
                # before the replacements can claim them.
                self._await_expiry()
                procs = self._spawn()
            time.sleep(self.poll_seconds)
        for proc in procs:
            proc.join()

    def _spawn(self) -> list[multiprocessing.Process]:
        procs = []
        for n in range(self.workers):
            proc = multiprocessing.Process(
                target=worker_main,
                args=(
                    str(self.db.path),
                    self.campaign_id,
                    f"{self.campaign_id}-w{n}",
                    self.lease_seconds,
                ),
            )
            proc.start()
            procs.append(proc)
        return procs

    def _await_expiry(self) -> None:
        while not self.db.all_units_done(self.campaign_id):
            if self.db.has_runnable_unit(self.campaign_id):
                return
            time.sleep(self.poll_seconds)
