"""JSON codec for :class:`~repro.core.campaign.CampaignConfig`.

The service stores each campaign's full config in the FaultDB (so workers
in other processes rebuild the exact engine) and accepts submissions over
HTTP; both need one canonical JSON shape.  Enums travel as their stable
names/values (``group``/``model`` by name, matching ``results.csv``;
``profiling`` and ``target_outcome`` by value), nested policies as plain
objects.  ``config_from_dict(config_to_dict(c)) == c`` for every config.
"""

from __future__ import annotations

from repro.core.adaptive import SamplingPlan, StoppingRule
from repro.core.bitflip import BitFlipModel
from repro.core.campaign import CampaignConfig
from repro.core.groups import InstructionGroup
from repro.core.outcomes import Outcome
from repro.core.profiler import ProfilingMode
from repro.core.resilience import RetryPolicy
from repro.errors import ParamError
from repro.runner.sandbox import SandboxConfig


def config_to_dict(config: CampaignConfig) -> dict:
    """The JSON-friendly form of a campaign config (lossless)."""
    return {
        "workload": config.workload,
        "group": config.group.name,
        "model": config.model.name,
        "num_transient": config.num_transient,
        "seed": config.seed,
        "profiling": config.profiling.value,
        "hang_budget_factor": config.hang_budget_factor,
        "fast_forward": config.fast_forward,
        "tail_fast_forward": config.tail_fast_forward,
        "snapshot": config.snapshot,
        "batch_launch": config.batch_launch,
        "block_compile": config.block_compile,
        "replay_cache": config.replay_cache,
        "sandbox": _sandbox_to_dict(config.sandbox),
        "retry": _retry_to_dict(config.retry),
        "stopping": _stopping_to_dict(config.stopping),
        "sampling": _sampling_to_dict(config.sampling),
    }


def config_from_dict(payload: dict) -> CampaignConfig:
    """Rebuild a campaign config from :func:`config_to_dict` output.

    Unknown keys raise :class:`~repro.errors.ParamError` (a submission
    typo should fail the submit, not silently run a default campaign).
    """
    if not isinstance(payload, dict):
        raise ParamError(f"campaign config must be an object, got {payload!r}")
    decoders = {
        "workload": lambda v: v,
        "group": _decode_group,
        "model": _decode_model,
        "num_transient": int,
        "seed": int,
        "profiling": ProfilingMode,
        "hang_budget_factor": int,
        "fast_forward": bool,
        "tail_fast_forward": bool,
        "snapshot": bool,
        "batch_launch": bool,
        "block_compile": bool,
        "replay_cache": _decode_replay_cache,
        "sandbox": _sandbox_from_dict,
        "retry": _retry_from_dict,
        "stopping": _stopping_from_dict,
        "sampling": _sampling_from_dict,
    }
    unknown = sorted(set(payload) - set(decoders))
    if unknown:
        raise ParamError(
            f"unknown campaign config key(s) {unknown}; "
            f"valid keys: {sorted(decoders)}"
        )
    kwargs = {}
    for key, value in payload.items():
        try:
            kwargs[key] = decoders[key](value)
        except (ValueError, KeyError, TypeError) as exc:
            raise ParamError(f"bad campaign config value for {key!r}: {exc}") from None
    return CampaignConfig(**kwargs)


def decode_overrides(payload: dict) -> dict:
    """Typed override values for ``CampaignConfig.with_overrides``.

    The service submission path: a client POSTs a partial config (just the
    keys it wants to change) and the server layers it over its base config
    with ``base.with_overrides(**decode_overrides(body))`` — the same
    single override mechanism the API and CLI use.
    """
    decoded = config_from_dict(payload)
    return {key: getattr(decoded, key) for key in payload}


# -- nested pieces -------------------------------------------------------------


def _decode_group(value: str) -> InstructionGroup:
    try:
        return InstructionGroup[value]
    except KeyError:
        raise ValueError(
            f"unknown instruction group {value!r}; expected one of "
            f"{[member.name for member in InstructionGroup]}"
        ) from None


def _decode_model(value: str) -> BitFlipModel:
    try:
        return BitFlipModel[value]
    except KeyError:
        raise ValueError(
            f"unknown bit-flip model {value!r}; expected one of "
            f"{[member.name for member in BitFlipModel]}"
        ) from None


def _decode_replay_cache(value: bool | str | None) -> bool | str | None:
    """``replay_cache`` is tri-state: off (None/False), default dir (True),
    or an explicit cache directory (string)."""
    if value is None or isinstance(value, bool) or isinstance(value, str):
        return value
    raise ValueError(
        f"replay_cache must be null, a boolean or a directory string, "
        f"got {value!r}"
    )


def _sandbox_to_dict(sandbox: SandboxConfig) -> dict:
    return {
        "seed": sandbox.seed,
        "instruction_budget": sandbox.instruction_budget,
        "family": sandbox.family,
        "num_sms": sandbox.num_sms,
        "global_mem_bytes": sandbox.global_mem_bytes,
        "block_compile": sandbox.block_compile,
        "extra_env": dict(sandbox.extra_env),
    }


def _sandbox_from_dict(payload: dict) -> SandboxConfig:
    return SandboxConfig(**payload)


def _retry_to_dict(retry: RetryPolicy) -> dict:
    return {
        "max_attempts": retry.max_attempts,
        "backoff_base": retry.backoff_base,
        "backoff_factor": retry.backoff_factor,
        "backoff_max": retry.backoff_max,
        "jitter": retry.jitter,
        "seed": retry.seed,
        "task_timeout": retry.task_timeout,
        "on_failure": retry.on_failure,
    }


def _retry_from_dict(payload: dict) -> RetryPolicy:
    return RetryPolicy(**payload)


def _stopping_to_dict(stopping: StoppingRule | None) -> dict | None:
    if stopping is None:
        return None
    return {
        "target_outcome": stopping.target_outcome.value,
        "confidence": stopping.confidence,
        "half_width": stopping.half_width,
        "min_injections": stopping.min_injections,
    }


def _stopping_from_dict(payload: dict | None) -> StoppingRule | None:
    if payload is None:
        return None
    payload = dict(payload)
    if "target_outcome" in payload:
        payload["target_outcome"] = Outcome(payload["target_outcome"])
    return StoppingRule(**payload)


def _sampling_to_dict(sampling: SamplingPlan | None) -> dict | None:
    if sampling is None:
        return None
    return {"mode": sampling.mode, "batch_size": sampling.batch_size}


def _sampling_from_dict(payload: dict | None) -> SamplingPlan | None:
    if payload is None:
        return None
    return SamplingPlan(**payload)
