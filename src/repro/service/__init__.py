"""The campaign service: FaultDB, the shard scheduler and ``repro serve``.

Three layers turn the library into a long-running, multi-tenant campaign
service backed by one SQLite database:

* :mod:`repro.service.faultdb` — the :class:`FaultDB`: campaigns, injection
  sites, per-injection outcomes and work units in one WAL-mode SQLite file,
  with fault-fingerprint deduplication (one indexed query answers "has an
  identical fault already executed?") and a
  :class:`~repro.core.result_store.ResultStore` adapter so the campaign
  engine checkpoints straight into the database;
* :mod:`repro.service.scheduler` — turns a
  :class:`~repro.core.campaign.CampaignConfig` into shardable work units
  leased to N worker processes (heartbeat leases, requeue-on-death),
  reusing the engine's executor/retry/fast-forward machinery through the
  pump API (``plan_transient`` / ``draw_batch`` / ``ingest_results``);
* :mod:`repro.service.server` — ``repro serve``: a stdlib-HTTP front end
  with submit/status/live-progress/results endpoints, supporting
  concurrent campaigns against one FaultDB.

See ``docs/service.md`` for the schema, endpoints and lease semantics.
"""

from repro.service.codec import (
    config_from_dict,
    config_to_dict,
    decode_overrides,
)
from repro.service.faultdb import FaultDB, FaultDBCampaignStore, fault_fingerprint
from repro.service.scheduler import CampaignScheduler, shard_units, worker_main
from repro.service.server import FaultService

__all__ = [
    "FaultDB",
    "FaultDBCampaignStore",
    "fault_fingerprint",
    "CampaignScheduler",
    "shard_units",
    "worker_main",
    "FaultService",
    "config_to_dict",
    "config_from_dict",
    "decode_overrides",
]
