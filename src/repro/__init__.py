"""repro — a Python reproduction of NVBitFI (DSN 2021).

NVBitFI is NVIDIA's dynamic fault-injection tool for GPUs, built on the
NVBit binary-instrumentation framework.  This package reproduces the full
system on a simulated GPU substrate:

* :mod:`repro.sass` — a SASS-style ISA (171-opcode Volta-like table),
  assembler/disassembler and binary encoding;
* :mod:`repro.gpusim` — a functional SIMT GPU simulator (SMs, warps,
  divergence stacks, shared/global memory, barriers);
* :mod:`repro.cuda` — a miniature CUDA driver/runtime with dynamic
  library loading;
* :mod:`repro.nvbit` — the dynamic binary-instrumentation framework
  (driver-event callbacks, instruction inspection, selective JIT);
* :mod:`repro.core` — NVBitFI itself: exact/approximate profilers,
  transient/permanent/intermittent injectors, fault dictionary, outcome
  classification (Table V) and campaign orchestration;
* :mod:`repro.workloads` — the 15 SpecACCEL-style evaluation programs of
  Table IV plus the AV-pipeline case study.

Quickstart (the stable facade lives in :mod:`repro.api`)::

    import repro

    result = repro.run_campaign(
        repro.CampaignConfig(workload="303.ostencil", num_transient=100, seed=1)
    )
    print(result.tally.report())
"""

from repro.api import InjectResult, inject, profile, run_campaign, select_sites
from repro.core import (
    BitFlipModel,
    Campaign,
    CampaignConfig,
    CampaignKind,
    FaultDictionary,
    InstructionGroup,
    IntermittentInjectorTool,
    IntermittentParams,
    Outcome,
    PermanentInjectorTool,
    PermanentParams,
    ProfilerTool,
    ProfilingMode,
    ProgramProfile,
    RetryPolicy,
    SamplingPlan,
    StoppingRule,
    TransientInjectorTool,
    TransientParams,
    classify,
)
from repro.cuda import CudaRuntime
from repro.gpusim import Device
from repro.kbuild import KernelBuilder
from repro.nvbit import NVBitRuntime, NVBitTool
from repro.runner import Application, SandboxConfig, run_app
from repro.sass import assemble, disassemble
from repro.workloads import all_workloads, get_workload

__version__ = "1.0.0"

__all__ = [
    "profile",
    "select_sites",
    "inject",
    "run_campaign",
    "InjectResult",
    "Campaign",
    "CampaignConfig",
    "CampaignKind",
    "InstructionGroup",
    "BitFlipModel",
    "TransientParams",
    "PermanentParams",
    "IntermittentParams",
    "ProfilerTool",
    "ProfilingMode",
    "ProgramProfile",
    "TransientInjectorTool",
    "PermanentInjectorTool",
    "IntermittentInjectorTool",
    "FaultDictionary",
    "Outcome",
    "classify",
    "RetryPolicy",
    "StoppingRule",
    "SamplingPlan",
    "Device",
    "CudaRuntime",
    "NVBitRuntime",
    "NVBitTool",
    "KernelBuilder",
    "Application",
    "SandboxConfig",
    "run_app",
    "assemble",
    "disassemble",
    "get_workload",
    "all_workloads",
    "__version__",
]
