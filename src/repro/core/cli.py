"""Command-line interface: ``python -m repro <command>``.

Mirrors the real package's convenience scripts: profile a target, select
fault sites, run a single injection from a parameter file, or run a whole
campaign.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.bitflip import BitFlipModel
from repro.core.campaign import Campaign, CampaignConfig
from repro.core.groups import InstructionGroup
from repro.core.injector import TransientInjectorTool
from repro.core.outcomes import classify
from repro.core.params import TransientParams
from repro.core.profiler import ProfilingMode
from repro.runner.golden import capture_golden, hang_budget
from repro.runner.sandbox import SandboxConfig, run_app
from repro.workloads import WORKLOADS, get_workload


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NVBitFI reproduction: GPU fault-injection campaigns "
        "on a simulated device",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available workloads")

    profile = sub.add_parser("profile", help="profile a workload")
    _add_common(profile)
    profile.add_argument(
        "--mode", choices=["exact", "approximate"], default="exact"
    )
    profile.add_argument("--output", help="write the profile to this file")

    select = sub.add_parser("select", help="select transient fault sites")
    _add_common(select)
    select.add_argument("--count", type=int, default=10)
    select.add_argument("--group", type=int, default=8, help="arch state id (Table II)")
    select.add_argument("--model", type=int, default=1, help="bit-flip model (Table II)")

    inject = sub.add_parser("inject", help="run one injection from a parameter file")
    inject.add_argument("workload")
    inject.add_argument("params_file", help="7-line transient parameter file")
    inject.add_argument("--seed", type=int, default=0)

    campaign = sub.add_parser("campaign", help="run a full transient campaign")
    _add_common(campaign)
    campaign.add_argument("--injections", type=int, default=100)
    campaign.add_argument("--group", type=int, default=8)
    campaign.add_argument("--model", type=int, default=1)
    campaign.add_argument(
        "--profiling", choices=["exact", "approximate"], default="exact"
    )
    campaign.add_argument("--permanent", action="store_true",
                          help="also run the permanent-fault campaign")
    campaign.add_argument("--workers", type=int, default=0,
                          help="fan injection runs out over N worker processes")
    campaign.add_argument("--chunksize", type=int, default=1,
                          help="injections per parallel work chunk")
    campaign.add_argument("--store",
                          help="study directory: checkpoint each injection "
                               "as it completes and resume interrupted runs")
    campaign.add_argument("--family", default="volta",
                          help="GPU architecture family of the sandbox device")
    campaign.add_argument("--num-sms", type=int, default=None,
                          help="override the device's SM count")
    campaign.add_argument("--progress", action="store_true",
                          help="print per-injection progress")

    dump = sub.add_parser(
        "dump", help="disassemble a workload's kernels (cuobjdump analogue)"
    )
    dump.add_argument("workload")
    dump.add_argument("--kernel", help="dump only this kernel")
    return parser


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("workload", help="e.g. 303.ostencil (see `repro list`)")
    parser.add_argument("--seed", type=int, default=0)


def main(argv: list[str] | None = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:
        # Output piped into `head` etc.; the POSIX-polite exit.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name in sorted(WORKLOADS):
            cls = WORKLOADS[name]
            print(f"{name:16} {cls.description}")
        return 0

    app = get_workload(args.workload)

    if args.command == "dump":
        from repro.sass import assemble, disassemble_kernel

        module = assemble(app.module_text(), module_name=app.name)
        for kernel in module:
            if args.kernel and kernel.name != args.kernel:
                continue
            print(disassemble_kernel(kernel))
        return 0

    if args.command == "profile":
        campaign = Campaign(app, CampaignConfig(seed=args.seed))
        profile = campaign.run_profile(ProfilingMode(args.mode))
        text = profile.to_text()
        if args.output:
            with open(args.output, "w") as handle:
                handle.write(text)
            print(f"profile written to {args.output}")
        else:
            print(text, end="")
        print(
            f"# {profile.num_dynamic_kernels} dynamic kernels, "
            f"{profile.num_static_kernels} static, "
            f"{profile.total_count()} dynamic instructions",
            file=sys.stderr,
        )
        return 0

    if args.command == "select":
        campaign = Campaign(app, CampaignConfig(
            seed=args.seed,
            group=InstructionGroup(args.group),
            model=BitFlipModel(args.model),
        ))
        for site in campaign.select_sites(args.count):
            print(site.to_text())
            print()
        return 0

    if args.command == "inject":
        with open(args.params_file) as handle:
            params = TransientParams.from_text(handle.read())
        golden = capture_golden(app, SandboxConfig(seed=args.seed))
        injector = TransientInjectorTool(params)
        config = SandboxConfig(
            seed=args.seed, instruction_budget=hang_budget(golden)
        )
        observed = run_app(app, preload=[injector], config=config)
        outcome = classify(app, golden, observed)
        print(injector.record.describe())
        print(outcome.label())
        return 0 if outcome.outcome.value == "Masked" else 1

    if args.command == "campaign":
        from repro.core.engine import (
            CampaignEngine,
            EngineHooks,
            ParallelExecutor,
            SerialExecutor,
        )
        from repro.core.store import CampaignStore

        config = CampaignConfig(
            seed=args.seed,
            num_transient=args.injections,
            group=InstructionGroup(args.group),
            model=BitFlipModel(args.model),
            profiling=ProfilingMode(args.profiling),
            sandbox=SandboxConfig(
                seed=args.seed, family=args.family, num_sms=args.num_sms
            ),
        )

        class _Progress(EngineHooks):
            def on_injection(self, index, outcome, completed, total, tally):
                print(f"  [{completed}/{total}] run {index:05d}: "
                      f"{outcome.outcome.value}", file=sys.stderr)

        engine = CampaignEngine(
            app,
            config,
            executor=(
                ParallelExecutor(max_workers=args.workers, chunksize=args.chunksize)
                if args.workers
                else SerialExecutor()
            ),
            store=CampaignStore(args.store) if args.store else None,
            hooks=_Progress() if args.progress else None,
        )
        result = engine.run_transient()
        print(f"{app.name}: {len(result.results)} transient injections")
        print(result.tally.report(samples=len(result.results)))
        print(engine.metrics.summary(), file=sys.stderr)
        if args.permanent:
            permanent = engine.run_permanent()
            print(f"{app.name}: {len(permanent.results)} permanent injections "
                  "(one per executed opcode)")
            print(permanent.tally.report())
        return 0

    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
