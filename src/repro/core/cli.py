"""Command-line interface: ``python -m repro <command>``.

Mirrors the real package's convenience scripts: profile a target, select
fault sites, run a single injection from a parameter file, run a whole
campaign, or analyse a recorded campaign trace.

All run-producing commands share the same sandbox flags (``--family``,
``--num-sms``, ``--env``) and observability flags (``--trace FILE`` writes
a JSONL span/event trace, ``--metrics {text,json}`` prints the metrics
registry at exit); ``select`` and ``campaign`` also take
``--format {text,json}`` for machine-readable output.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.bitflip import BitFlipModel
from repro.core.campaign import CampaignConfig
from repro.core.groups import InstructionGroup
from repro.core.kinds import CampaignKind
from repro.core.params import TransientParams
from repro.core.profiler import ProfilingMode
from repro.errors import ReproError
from repro.obs import JsonlSink, MetricsRegistry, NULL_TRACER, Tracer
from repro.runner.sandbox import SandboxConfig
from repro.workloads import WORKLOADS, get_workload


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NVBitFI reproduction: GPU fault-injection campaigns "
        "on a simulated device",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available workloads")

    profile = sub.add_parser("profile", help="profile a workload")
    _add_common(profile)
    _add_sandbox(profile)
    _add_obs(profile)
    profile.add_argument(
        "--mode", choices=["exact", "approximate"], default="exact"
    )
    profile.add_argument("--output", help="write the profile to this file")

    select = sub.add_parser("select", help="select transient fault sites")
    _add_common(select)
    select.add_argument("--count", type=int, default=10)
    select.add_argument("--group", type=int, default=8, help="arch state id (Table II)")
    select.add_argument("--model", type=int, default=1, help="bit-flip model (Table II)")
    select.add_argument("--format", choices=["text", "json"], default="text")

    inject = sub.add_parser("inject", help="run one injection from a parameter file")
    inject.add_argument("workload")
    inject.add_argument("params_file", help="7-line transient parameter file")
    inject.add_argument("--seed", type=int, default=0)
    _add_sandbox(inject)
    _add_obs(inject)

    campaign = sub.add_parser("campaign", help="run a full transient campaign")
    _add_common(campaign)
    _add_sandbox(campaign)
    _add_obs(campaign)
    campaign.add_argument("--injections", type=int, default=None,
                          help="injection budget (default: 100, or the "
                               "stopping rule's fixed-N equivalent when "
                               "--target-outcome is given)")
    campaign.add_argument("--group", type=int, default=8)
    campaign.add_argument("--model", type=int, default=1)
    campaign.add_argument(
        "--profiling", choices=["exact", "approximate"], default="exact"
    )
    campaign.add_argument("--permanent", action="store_true",
                          help="also run the permanent-fault campaign")
    campaign.add_argument("--workers", type=int, default=0,
                          help="fan injection runs out over N worker processes")
    campaign.add_argument("--chunksize", type=int, default=1,
                          help="injections per parallel work chunk")
    campaign.add_argument("--store",
                          help="study directory: checkpoint each injection "
                               "as it completes and resume interrupted runs")
    campaign.add_argument("--progress", action="store_true",
                          help="print per-injection progress")
    campaign.add_argument("--format", choices=["text", "json"], default="text")
    campaign.add_argument("--max-attempts", type=int, default=3,
                          help="attempts per injection task before it is "
                               "quarantined (1 = no retries)")
    campaign.add_argument("--task-timeout", type=float, default=None,
                          metavar="SECONDS",
                          help="parent-side wall-clock deadline per task "
                               "(parallel executor); hung workers are killed "
                               "and the task retried or quarantined")
    campaign.add_argument("--on-failure", choices=["quarantine", "raise"],
                          default="quarantine",
                          help="after the final failed attempt: synthesize a "
                               "DUE and continue (quarantine) or abort (raise)")
    campaign.add_argument("--fast-forward", action=argparse.BooleanOptionalAction,
                          default=True,
                          help="golden-replay fast-forward: skip simulating "
                               "launches before each injection target by "
                               "replaying write deltas recorded during the "
                               "golden run (results are byte-identical "
                               "either way)")
    campaign.add_argument("--tail-fast-forward",
                          action=argparse.BooleanOptionalAction,
                          default=True,
                          help="tail fast-forward: once an injection run's "
                               "memory re-converges with the golden run at a "
                               "launch boundary, replay the remaining "
                               "launches from the golden recording (needs "
                               "--fast-forward; results are byte-identical "
                               "either way)")
    campaign.add_argument("--snapshot", action=argparse.BooleanOptionalAction,
                          default=False,
                          help="snapshot execution: fork copy-on-write "
                               "children off one replayed checkpoint per "
                               "fast-forward stop launch instead of "
                               "replaying per injection (POSIX only; "
                               "results are byte-identical either way)")
    campaign.add_argument("--batch-launch",
                          action=argparse.BooleanOptionalAction,
                          default=False,
                          help="batched multi-fault pass: simulate each "
                               "targeted launch once for all faults aimed "
                               "at it, forking a copy-on-write overlay at "
                               "each fault's instruction count (implies "
                               "snapshot grouping; POSIX only; results "
                               "are byte-identical either way)")
    campaign.add_argument("--replay-cache", nargs="?", const=True,
                          default=None, metavar="DIR",
                          help="persist the golden replay tape across "
                               "campaigns: with no value, cache under "
                               "~/.cache/repro/replay (or "
                               "$REPRO_REPLAY_CACHE); with DIR, cache "
                               "there (entries are content-hash validated)")

    campaign.add_argument("--target-outcome",
                          choices=["SDC", "DUE", "Masked"], default=None,
                          help="adaptive early stopping: stop once this "
                               "outcome's confidence interval is narrower "
                               "than --half-width (see docs/statistics.md)")
    campaign.add_argument("--confidence", type=float, default=0.95,
                          help="confidence level of the stopping rule's "
                               "interval (default 0.95)")
    campaign.add_argument("--half-width", type=float, default=0.05,
                          help="target CI half-width of the stopping rule "
                               "(default 0.05)")
    campaign.add_argument("--sampling",
                          choices=["uniform", "stratified", "importance"],
                          default="uniform",
                          help="site-sampling plan: uniform (the paper's "
                               "Monte Carlo), stratified (proportional per "
                               "static kernel) or importance (steer toward "
                               "strata with the highest observed target-"
                               "outcome rate; estimates stay unbiased)")
    campaign.add_argument("--batch-size", type=int, default=25,
                          help="injections per adaptive batch (the stopping "
                               "rule is re-evaluated at batch boundaries)")

    serve = sub.add_parser(
        "serve",
        help="run the campaign service: HTTP submit/status/results over "
             "one FaultDB (see docs/service.md)",
    )
    serve.add_argument("--db", required=True, metavar="FILE",
                       help="SQLite FaultDB path (created if missing)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8321)
    serve.add_argument("--workers", type=int, default=2,
                       help="default worker processes per submitted "
                            "campaign (submissions can override)")
    serve.add_argument("--lease-seconds", type=float, default=30.0,
                       help="work-unit lease duration; a worker that stops "
                            "heartbeating for this long forfeits its unit")

    trace = sub.add_parser(
        "trace", help="summarise a campaign trace file (per-phase times)"
    )
    trace.add_argument("trace_file", help="JSONL trace written by --trace")

    report = sub.add_parser(
        "report", help="analyse a campaign store's results.csv"
    )
    report.add_argument("view", choices=["ci"],
                        help="ci: per-outcome fractions with confidence "
                             "intervals, overall and per stratum")
    report.add_argument("store", help="study directory (or a results.csv)")
    report.add_argument("--confidence", type=float, default=0.95,
                        help="confidence level of the intervals "
                             "(default 0.95)")

    dump = sub.add_parser(
        "dump", help="disassemble a workload's kernels (cuobjdump analogue)"
    )
    dump.add_argument("workload")
    dump.add_argument("--kernel", help="dump only this kernel")
    return parser


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("workload", help="e.g. 303.ostencil (see `repro list`)")
    parser.add_argument("--seed", type=int, default=0)


def _add_sandbox(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--family", default="volta",
                        help="GPU architecture family of the sandbox device")
    parser.add_argument("--num-sms", type=int, default=None,
                        help="override the device's SM count")
    parser.add_argument("--block-compile", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="block-compiled interpreter: fuse straight-line "
                             "SASS into pre-compiled superhandlers on the "
                             "uninstrumented fast path (results are "
                             "byte-identical either way)")
    parser.add_argument("--env", action="append", default=[], metavar="KEY=VALUE",
                        help="extra sandbox environment entry (repeatable)")


def _add_obs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="write a JSONL span/event trace to FILE")
    parser.add_argument("--metrics", choices=["text", "json"], default=None,
                        help="print the metrics registry on exit")


def _sandbox_config(args) -> SandboxConfig:
    extra_env = {}
    for entry in args.env:
        key, sep, value = entry.partition("=")
        if not sep or not key:
            raise ReproError(f"--env expects KEY=VALUE, got {entry!r}")
        extra_env[key] = value
    return SandboxConfig(
        seed=args.seed,
        family=args.family,
        num_sms=args.num_sms,
        block_compile=getattr(args, "block_compile", True),
        extra_env=extra_env,
    )


def _make_tracer(args) -> Tracer:
    if args.trace:
        return Tracer(sink=JsonlSink(args.trace))
    return NULL_TRACER


def _finish_obs(args, tracer: Tracer, registry: MetricsRegistry) -> None:
    """Flush the trace file and print the metrics registry if requested."""
    if tracer is not NULL_TRACER:
        tracer.close()
        print(f"trace written to {args.trace}", file=sys.stderr)
    if args.metrics == "json":
        print(registry.render_json())
    elif args.metrics == "text":
        print(registry.render_text(), end="")


def main(argv: list[str] | None = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:
        # Output piped into `head` etc.; the POSIX-polite exit.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name in sorted(WORKLOADS):
            cls = WORKLOADS[name]
            print(f"{name:16} {cls.description}")
        return 0

    if args.command == "trace":
        from repro.core.report import render_phase_breakdown

        print(render_phase_breakdown(args.trace_file), end="")
        return 0

    if args.command == "report":
        from repro.core.report import render_ci_report

        print(render_ci_report(args.store, confidence=args.confidence), end="")
        return 0

    if args.command == "serve":
        from repro.service import FaultService

        service = FaultService(
            args.db,
            host=args.host,
            port=args.port,
            default_workers=args.workers,
            lease_seconds=args.lease_seconds,
        )
        host, port = service.address
        print(f"repro serve: FaultDB {args.db} on http://{host}:{port}",
              file=sys.stderr)
        try:
            service.serve_forever()
        except KeyboardInterrupt:
            print("shutting down", file=sys.stderr)
        finally:
            service.shutdown()
        return 0

    app = get_workload(args.workload)

    if args.command == "dump":
        from repro.sass import assemble, disassemble_kernel

        module = assemble(app.module_text(), module_name=app.name)
        for kernel in module:
            if args.kernel and kernel.name != args.kernel:
                continue
            print(disassemble_kernel(kernel))
        return 0

    if args.command == "profile":
        from repro import api

        tracer = _make_tracer(args)
        registry = MetricsRegistry()
        profile = api.profile(
            app,
            mode=ProfilingMode(args.mode),
            sandbox=_sandbox_config(args),
            tracer=tracer,
            metrics=registry,
        )
        text = profile.to_text()
        if args.output:
            with open(args.output, "w") as handle:
                handle.write(text)
            print(f"profile written to {args.output}")
        else:
            print(text, end="")
        print(
            f"# {profile.num_dynamic_kernels} dynamic kernels, "
            f"{profile.num_static_kernels} static, "
            f"{profile.total_count()} dynamic instructions",
            file=sys.stderr,
        )
        _finish_obs(args, tracer, registry)
        return 0

    if args.command == "select":
        from repro import api

        profile = api.profile(app)
        sites = api.select_sites(
            profile,
            count=args.count,
            group=InstructionGroup(args.group),
            model=BitFlipModel(args.model),
            seed=args.seed,
        )
        if args.format == "json":
            doc = [
                {
                    "group": site.group.value,
                    "model": site.model.value,
                    "kernel_name": site.kernel_name,
                    "kernel_count": site.kernel_count,
                    "instruction_count": site.instruction_count,
                    "dest_reg_selector": site.dest_reg_selector,
                    "bit_pattern_value": site.bit_pattern_value,
                }
                for site in sites
            ]
            print(json.dumps(doc, indent=2))
        else:
            for site in sites:
                print(site.to_text())
                print()
        return 0

    if args.command == "inject":
        from repro import api

        with open(args.params_file) as handle:
            params = TransientParams.from_text(handle.read())
        tracer = _make_tracer(args)
        registry = MetricsRegistry()
        result = api.inject(
            app, params, sandbox=_sandbox_config(args), tracer=tracer,
            metrics=registry,
        )
        print(result.record.describe())
        print(result.outcome.label())
        _finish_obs(args, tracer, registry)
        return 0 if result.masked else 1

    if args.command == "campaign":
        from repro import api
        from repro.core.adaptive import SamplingPlan, StoppingRule
        from repro.core.engine import EngineHooks, ParallelExecutor
        from repro.core.resilience import RetryPolicy
        from repro.core.store import CampaignStore

        stopping = None
        if args.target_outcome is not None:
            stopping = StoppingRule(
                target_outcome=args.target_outcome,
                confidence=args.confidence,
                half_width=args.half_width,
            )
        sampling = None
        if stopping is not None or args.sampling != "uniform":
            sampling = SamplingPlan(
                mode=args.sampling, batch_size=args.batch_size
            )
        # With a stopping rule and no explicit budget, cap the campaign at
        # the rule's fixed-N equivalent: adaptive stops at or under it.
        budget = args.injections
        if budget is None:
            budget = stopping.fixed_n() if stopping is not None else 100

        # Base config from the positional knobs, per-run tweaks layered on
        # through the one typed override path (shared with the API facade
        # and service submissions).
        config = CampaignConfig(
            workload=args.workload,
            seed=args.seed,
            num_transient=budget,
            group=InstructionGroup(args.group),
            model=BitFlipModel(args.model),
            profiling=ProfilingMode(args.profiling),
            sandbox=_sandbox_config(args),
        ).with_overrides(
            stopping=stopping,
            sampling=sampling,
            retry=RetryPolicy(
                max_attempts=args.max_attempts,
                task_timeout=args.task_timeout,
                on_failure=args.on_failure,
                seed=args.seed,
            ),
            fast_forward=args.fast_forward,
            tail_fast_forward=args.tail_fast_forward,
            snapshot=args.snapshot,
            batch_launch=args.batch_launch,
            block_compile=args.block_compile,
            replay_cache=args.replay_cache,
        )

        if args.batch_launch:
            from repro.core.batch_injector import BatchExecutor

            executor = BatchExecutor(max_workers=args.workers)
        elif args.snapshot:
            from repro.core.snapshot import SnapshotExecutor

            executor = SnapshotExecutor(max_workers=args.workers)
        elif args.workers:
            executor = ParallelExecutor(
                max_workers=args.workers, chunksize=args.chunksize
            )
        else:
            executor = None

        class _Progress(EngineHooks):
            def on_injection(self, index, outcome, completed, total, tally):
                print(f"  [{completed}/{total}] run {index:05d}: "
                      f"{outcome.outcome.value}", file=sys.stderr)

        tracer = _make_tracer(args)
        registry = MetricsRegistry()
        try:
            result = api.run_campaign(
                config,
                executor=executor,
                store=CampaignStore(args.store) if args.store else None,
                hooks=_Progress() if args.progress else None,
                tracer=tracer,
                metrics=registry,
            )
            permanent = None
            if args.permanent:
                permanent = api.run_campaign(
                    config,
                    store=CampaignStore(args.store) if args.store else None,
                    tracer=tracer,
                    metrics=registry,
                    kind=CampaignKind.PERMANENT,
                )
        except KeyboardInterrupt:
            # Completed injections are already checkpointed (and, with
            # --store, a partial results.csv written); exit like `timeout`-
            # style tooling does on SIGINT.
            if args.store:
                print(
                    f"interrupted; completed injections checkpointed under "
                    f"{args.store} (rerun the same command to resume)",
                    file=sys.stderr,
                )
            else:
                print("interrupted; rerun with --store to make campaigns "
                      "resumable", file=sys.stderr)
            _finish_obs(args, tracer, registry)
            return 130
        if args.format == "json":
            doc = {
                "workload": app.name,
                "injections": len(result.results),
                "fractions": result.tally.fractions(),
                "potential_due_fraction": result.tally.potential_due_fraction(),
                "golden_time": result.golden_time,
                "profile_time": result.profile_time,
                "total_time": result.total_time,
            }
            if result.adaptive is not None:
                summary = result.adaptive
                doc["adaptive"] = {
                    "mode": summary.mode,
                    "batch_size": summary.batch_size,
                    "batches": summary.batches,
                    "budget": summary.budget,
                    "stopped_early_at": summary.stopped_early_at,
                    "injections_saved": summary.injections_saved,
                }
                if summary.estimate is not None:
                    doc["adaptive"]["estimate"] = {
                        "p_hat": summary.estimate.p_hat,
                        "half_width": summary.estimate.half_width,
                        "low": summary.estimate.low,
                        "high": summary.estimate.high,
                        "n": summary.estimate.n,
                    }
                if summary.strata:
                    doc["adaptive"]["strata"] = {
                        s.name: s.injections for s in summary.strata
                    }
            if permanent is not None:
                doc["permanent"] = {
                    "injections": len(permanent.results),
                    "fractions": permanent.tally.fractions(),
                }
            if args.metrics:
                doc["metrics"] = registry.snapshot()
            print(json.dumps(doc, indent=2))
        else:
            print(f"{app.name}: {len(result.results)} transient injections")
            print(result.tally.report(samples=len(result.results)))
            if result.adaptive is not None:
                print(result.adaptive.describe())
            if permanent is not None:
                print(f"{app.name}: {len(permanent.results)} permanent injections "
                      "(one per executed opcode)")
                print(permanent.tally.report())
        from repro.core.engine import EngineMetrics

        print(EngineMetrics(registry=registry).summary(), file=sys.stderr)
        if args.format == "json" and args.metrics:
            # Metrics already embedded in the JSON document; just flush the trace.
            if tracer is not NULL_TRACER:
                tracer.close()
                print(f"trace written to {args.trace}", file=sys.stderr)
        else:
            _finish_obs(args, tracer, registry)
        return 0

    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
