"""Campaign analysis: AVF estimation and vulnerability breakdowns.

The paper motivates fault injection with the architectural vulnerability
factor (AVF, §I): the probability that a fault produces a visible error in
the program output.  This module derives AVF-style metrics from campaign
results, with the breakdowns (per kernel, per opcode, per instruction
group) that real resilience studies built on NVBitFI/SASSIFI report.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.core.campaign import PermanentCampaignResult, TransientCampaignResult
from repro.core.groups import InstructionGroup, in_group
from repro.core.outcomes import Outcome
from repro.core.report import OutcomeTally, confidence_interval
from repro.sass.isa import OPCODES_BY_NAME
from repro.utils.text import format_table


@dataclass(frozen=True)
class AvfEstimate:
    """AVF point estimates with confidence intervals."""

    avf: float  # P(fault -> visible error) = 1 - P(masked)
    sdc_avf: float  # P(fault -> silent data corruption)
    due_avf: float  # P(fault -> detected, unrecoverable error)
    samples: int
    confidence: float = 0.90

    @property
    def avf_interval(self) -> tuple[float, float]:
        return confidence_interval(self.avf, self.samples, self.confidence)

    @property
    def sdc_interval(self) -> tuple[float, float]:
        return confidence_interval(self.sdc_avf, self.samples, self.confidence)

    def __str__(self) -> str:
        low, high = self.avf_interval
        return (
            f"AVF={self.avf * 100:.1f}% [{low * 100:.1f}, {high * 100:.1f}] "
            f"(SDC {self.sdc_avf * 100:.1f}%, DUE {self.due_avf * 100:.1f}%, "
            f"n={self.samples})"
        )


def estimate_avf(tally: OutcomeTally, confidence: float = 0.90) -> AvfEstimate:
    """AVF from an outcome tally: everything that is not masked is visible."""
    if tally.total <= 0:
        raise ValueError("cannot estimate AVF from an empty campaign")
    return AvfEstimate(
        avf=1.0 - tally.fraction(Outcome.MASKED),
        sdc_avf=tally.fraction(Outcome.SDC),
        due_avf=tally.fraction(Outcome.DUE),
        samples=max(int(tally.total), 1),
        confidence=confidence,
    )


def per_kernel_breakdown(
    result: TransientCampaignResult,
) -> dict[str, OutcomeTally]:
    """Outcome tallies keyed by the injected kernel."""
    tallies: dict[str, OutcomeTally] = defaultdict(OutcomeTally)
    for item in result.results:
        tallies[item.params.kernel_name].add(item.outcome)
    return dict(tallies)


def per_opcode_breakdown(
    result: TransientCampaignResult,
) -> dict[str, OutcomeTally]:
    """Outcome tallies keyed by the opcode whose destination was corrupted."""
    tallies: dict[str, OutcomeTally] = defaultdict(OutcomeTally)
    for item in result.results:
        if item.record.injected:
            tallies[item.record.opcode].add(item.outcome)
    return dict(tallies)


def per_group_breakdown(
    result: TransientCampaignResult,
) -> dict[InstructionGroup, OutcomeTally]:
    """Outcome tallies keyed by the *base* group of the injected opcode."""
    tallies: dict[InstructionGroup, OutcomeTally] = defaultdict(OutcomeTally)
    base_groups = (
        InstructionGroup.G_FP64, InstructionGroup.G_FP32,
        InstructionGroup.G_LD, InstructionGroup.G_PR,
        InstructionGroup.G_OTHERS,
    )
    for item in result.results:
        if not item.record.injected:
            continue
        info = OPCODES_BY_NAME[item.record.opcode]
        for group in base_groups:
            if in_group(info, group):
                tallies[group].add(item.outcome)
                break
    return dict(tallies)


def permanent_avf_by_opcode(
    result: PermanentCampaignResult,
) -> list[tuple[str, float, bool]]:
    """(opcode, dynamic weight, visible?) per permanent injection, sorted by
    contribution to the weighted AVF — the Figure 3 weighting scheme."""
    rows = []
    for item in result.results:
        visible = item.outcome.outcome is not Outcome.MASKED
        rows.append((item.opcode, item.weight, visible))
    rows.sort(key=lambda row: -(row[1] if row[2] else 0.0))
    return rows


def format_avf_report(
    name: str,
    result: TransientCampaignResult,
    confidence: float = 0.90,
) -> str:
    """A readable vulnerability report for one campaign."""
    overall = estimate_avf(result.tally, confidence)
    lines = [f"AVF report for {name}", "=" * (15 + len(name)), str(overall), ""]
    rows = []
    for kernel, tally in sorted(
        per_kernel_breakdown(result).items(),
        key=lambda kv: -kv[1].total,
    ):
        estimate = estimate_avf(tally, confidence)
        rows.append([
            kernel,
            int(tally.total),
            f"{estimate.avf * 100:.0f}%",
            f"{estimate.sdc_avf * 100:.0f}%",
            f"{estimate.due_avf * 100:.0f}%",
        ])
    lines.append(
        format_table(
            ["kernel", "faults", "AVF", "SDC", "DUE"], rows,
            title="per-kernel vulnerability",
        )
    )
    group_rows = []
    for group, tally in sorted(per_group_breakdown(result).items()):
        estimate = estimate_avf(tally, confidence)
        group_rows.append(
            [group.name, int(tally.total), f"{estimate.avf * 100:.0f}%"]
        )
    if group_rows:
        lines.append("")
        lines.append(
            format_table(["instruction group", "faults", "AVF"], group_rows,
                         title="per-group vulnerability")
        )
    return "\n".join(lines)
