"""Campaign resilience: retries, quarantine and interrupt checkpoints.

NVBitFI's campaign scripts are robust by construction: every injection
runs in its own monitored process with a wall-clock timeout, so a hung or
crashed run is *data* — a Table V DUE under "Monitor detection" — never a
harness failure.  This module gives :class:`~repro.core.engine.CampaignEngine`
the same shape:

* :class:`RetryPolicy` — how often a failed injection task is re-attempted
  (exponential backoff with deterministic seeded jitter, a parent-side
  wall-clock deadline per task, and the terminal action: quarantine or
  raise);
* :class:`TaskFailure` — the record an executor yields when a task has
  exhausted every attempt; the engine synthesizes a DUE outcome from it
  (:func:`quarantine_outcome`) so the campaign always produces N results
  for N planned injections;
* :class:`CampaignInterrupted` — raised out of the injection loop on
  ``KeyboardInterrupt`` after completed work has been checkpointed, so the
  engine can write a clean partial ``results.csv`` before re-raising.

Everything here is deterministic on purpose: backoff jitter is seeded from
``(seed, task index, attempt)``, and a quarantined result carries no
wall-clock-dependent fields, so serial, parallel and resumed campaigns
containing failures still produce byte-identical ``results.csv`` files.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.outcomes import Outcome, OutcomeRecord
from repro.errors import ReproError

# The Table V row a harness-detected failure maps onto (paper §IV-A: the
# campaign monitor detecting a misbehaving run is a DUE, "Monitor detection").
HARNESS_FAILURE_SYMPTOM = "Harness: worker failure (Monitor detection)"

# Terminal actions for a task that failed every attempt.
ON_FAILURE_QUARANTINE = "quarantine"
ON_FAILURE_RAISE = "raise"
_ON_FAILURE_CHOICES = (ON_FAILURE_QUARANTINE, ON_FAILURE_RAISE)


@dataclass(frozen=True)
class RetryPolicy:
    """How the engine treats injection tasks that fail in the harness.

    ``max_attempts`` counts *total* tries (1 = no retries).  Backoff for
    attempt *n* is ``backoff_base * backoff_factor**(n-1)``, capped at
    ``backoff_max`` and stretched by up to ``jitter`` (a fraction) using a
    generator seeded from ``(seed, task index, attempt)`` — deterministic,
    but de-synchronised across tasks.  ``task_timeout`` is the parent-side
    wall-clock deadline (seconds) per task; it complements the in-sim
    instruction budget by catching workers that hang *outside* simulated
    execution.  ``on_failure`` decides what happens after the final
    attempt: ``"quarantine"`` (synthesize a DUE, keep going — the default)
    or ``"raise"`` (abort the campaign).
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.1
    seed: int = 0
    task_timeout: float | None = None
    on_failure: str = ON_FAILURE_QUARANTINE

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ReproError("RetryPolicy.max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_factor < 1 or self.backoff_max < 0:
            raise ReproError("RetryPolicy backoff knobs must be non-negative "
                             "(factor >= 1)")
        if not 0.0 <= self.jitter <= 1.0:
            raise ReproError("RetryPolicy.jitter must lie in [0, 1]")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ReproError("RetryPolicy.task_timeout must be positive")
        if self.on_failure not in _ON_FAILURE_CHOICES:
            raise ReproError(
                f"RetryPolicy.on_failure must be one of {_ON_FAILURE_CHOICES}, "
                f"got {self.on_failure!r}"
            )

    def should_retry(self, attempt: int) -> bool:
        """May a task that just failed its ``attempt``-th try run again?"""
        return attempt < self.max_attempts

    def delay(self, attempt: int, key: int = 0) -> float:
        """Backoff before re-running a task that failed attempt ``attempt``.

        Deterministic: the jitter draw is seeded from ``(seed, key,
        attempt)``, so a resumed or re-run campaign sleeps the same
        schedule, while distinct tasks never thunder in lockstep.
        """
        base = min(
            self.backoff_base * (self.backoff_factor ** max(attempt - 1, 0)),
            self.backoff_max,
        )
        if not self.jitter or not base:
            return base
        # One integer mixing (seed, key, attempt); random.Random only seeds
        # from scalars, and int hashing is stable across processes.
        rng = random.Random(self.seed * 1_000_003 + key * 1_009 + attempt)
        return base * (1.0 + self.jitter * rng.random())


@dataclass(frozen=True)
class TaskFailure:
    """An injection task that failed all its attempts in the harness.

    ``reason`` is one of ``"exception"`` (the task raised in its worker),
    ``"worker-death"`` (the worker process died and broke the pool) or
    ``"timeout"`` (the parent-side wall-clock deadline expired).  ``error``
    is the formatted terminal error.  Executors yield these in place of an
    :class:`~repro.core.engine.InjectionOutput`; the engine quarantines or
    raises according to the :class:`RetryPolicy`.
    """

    index: int
    attempts: int
    error: str
    reason: str = "exception"


@dataclass
class FailureLog:
    """Per-campaign record of retries and quarantines (engine-owned)."""

    retries: list[TaskFailure] = field(default_factory=list)
    quarantined: list[TaskFailure] = field(default_factory=list)


def quarantine_outcome(failure: TaskFailure) -> OutcomeRecord:
    """The synthesized Table V classification for a quarantined task.

    A run the harness could not complete is exactly what the paper's
    campaign monitor calls a DUE: detected by the monitor, unrecoverable by
    the application.  The symptom string is fixed
    (:data:`HARNESS_FAILURE_SYMPTOM`) so tallies, traces and stored
    outcomes agree byte-for-byte across serial, parallel and resumed runs.
    """
    return OutcomeRecord(Outcome.DUE, HARNESS_FAILURE_SYMPTOM)


class CampaignInterrupted(ReproError):
    """The injection loop was interrupted (SIGINT) after checkpointing.

    Carries the results completed before the interrupt, keyed by site
    index, so callers can persist a clean partial ``results.csv`` and then
    re-raise ``KeyboardInterrupt`` to exit with conventional status.
    """

    def __init__(self, completed: dict[int, object], total: int) -> None:
        super().__init__(
            f"campaign interrupted after {len(completed)}/{total} injections"
        )
        self.completed = dict(completed)
        self.total = total


def format_error(exc: BaseException) -> str:
    """One-line ``Type: message`` rendering used in failure records."""
    return f"{type(exc).__name__}: {exc}"
