"""Campaign statistics: outcome fractions and binomial confidence intervals.

The paper (§IV-B, citing [24], [25]) notes that 100 injections give 90%
confidence with ±8% error margins and 1000 injections give 95% with ±3%;
:func:`confidence_interval` reproduces those margins (normal approximation
at worst-case p = 0.5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.outcomes import Outcome, OutcomeRecord

# Two-sided z values.
_Z = {0.80: 1.2816, 0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def z_value(confidence: float) -> float:
    try:
        return _Z[round(confidence, 2)]
    except KeyError:
        raise ValueError(
            f"unsupported confidence level {confidence}; choose from {sorted(_Z)}"
        ) from None


def confidence_interval(
    p_hat: float, n: int, confidence: float = 0.95
) -> tuple[float, float]:
    """Normal-approximation binomial CI for an outcome fraction."""
    if n <= 0:
        raise ValueError("sample size must be positive")
    if not 0.0 <= p_hat <= 1.0:
        raise ValueError("fraction must lie in [0, 1]")
    margin = z_value(confidence) * math.sqrt(p_hat * (1.0 - p_hat) / n)
    return max(0.0, p_hat - margin), min(1.0, p_hat + margin)


def error_margin(n: int, confidence: float = 0.90, p_hat: float = 0.5) -> float:
    """Worst-case half-width of the CI (the paper's ±8% / ±3% numbers)."""
    if n <= 0:
        raise ValueError("sample size must be positive")
    return z_value(confidence) * math.sqrt(p_hat * (1.0 - p_hat) / n)


@dataclass
class OutcomeTally:
    """Aggregated outcome counts, optionally weighted."""

    counts: dict[Outcome, float] = field(
        default_factory=lambda: {o: 0.0 for o in Outcome}
    )
    potential_due: float = 0.0
    total: float = 0.0

    def add(self, record: OutcomeRecord, weight: float = 1.0) -> None:
        self.counts[record.outcome] += weight
        if record.potential_due:
            self.potential_due += weight
        self.total += weight

    def fraction(self, outcome: Outcome) -> float:
        if self.total == 0:
            return 0.0
        return self.counts[outcome] / self.total

    def fractions(self) -> dict[str, float]:
        return {outcome.value: self.fraction(outcome) for outcome in Outcome}

    def potential_due_fraction(self) -> float:
        return self.potential_due / self.total if self.total else 0.0

    def merge(self, other: "OutcomeTally") -> "OutcomeTally":
        merged = OutcomeTally()
        for outcome in Outcome:
            merged.counts[outcome] = self.counts[outcome] + other.counts[outcome]
        merged.potential_due = self.potential_due + other.potential_due
        merged.total = self.total + other.total
        return merged

    def report(self, confidence: float = 0.90, samples: int | None = None) -> str:
        """One-line report with confidence intervals."""
        n = int(samples if samples is not None else self.total)
        parts = []
        for outcome in Outcome:
            frac = self.fraction(outcome)
            if n > 0:
                low, high = confidence_interval(frac, n, confidence)
                parts.append(
                    f"{outcome.value}={frac * 100:.1f}% "
                    f"[{low * 100:.1f}, {high * 100:.1f}]"
                )
            else:
                parts.append(f"{outcome.value}={frac * 100:.1f}%")
        if self.potential_due:
            parts.append(f"potentialDUE={self.potential_due_fraction() * 100:.1f}%")
        return "  ".join(parts)
