"""Campaign statistics: outcome fractions and binomial confidence intervals.

The paper (§IV-B, citing [24], [25]) notes that 100 injections give 90%
confidence with ±8% error margins and 1000 injections give 95% with ±3%;
:func:`confidence_interval` reproduces those margins (normal approximation
at worst-case p = 0.5).

This module also reads campaign traces (the JSONL files written by
``--trace``): :func:`phase_breakdown` and :func:`render_phase_breakdown`
turn phase spans into a per-phase time table, and :func:`tally_from_trace`
rebuilds the campaign's :class:`OutcomeTally` from its per-injection
events — the two views are defined to agree exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.outcomes import Outcome, OutcomeRecord
from repro.obs import injection_events, load_trace, phase_durations

# Two-sided z values.
_Z = {0.80: 1.2816, 0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def z_value(confidence: float) -> float:
    try:
        return _Z[round(confidence, 2)]
    except KeyError:
        raise ValueError(
            f"unsupported confidence level {confidence}; choose from {sorted(_Z)}"
        ) from None


def confidence_interval(
    p_hat: float, n: int, confidence: float = 0.95
) -> tuple[float, float]:
    """Normal-approximation binomial CI for an outcome fraction."""
    if n <= 0:
        raise ValueError("sample size must be positive")
    if not 0.0 <= p_hat <= 1.0:
        raise ValueError("fraction must lie in [0, 1]")
    margin = z_value(confidence) * math.sqrt(p_hat * (1.0 - p_hat) / n)
    return max(0.0, p_hat - margin), min(1.0, p_hat + margin)


def error_margin(n: int, confidence: float = 0.90, p_hat: float = 0.5) -> float:
    """Worst-case half-width of the CI (the paper's ±8% / ±3% numbers)."""
    if n <= 0:
        raise ValueError("sample size must be positive")
    return z_value(confidence) * math.sqrt(p_hat * (1.0 - p_hat) / n)


@dataclass
class OutcomeTally:
    """Aggregated outcome counts, optionally weighted."""

    counts: dict[Outcome, float] = field(
        default_factory=lambda: {o: 0.0 for o in Outcome}
    )
    potential_due: float = 0.0
    total: float = 0.0

    def add(self, record: OutcomeRecord, weight: float = 1.0) -> None:
        self.counts[record.outcome] += weight
        if record.potential_due:
            self.potential_due += weight
        self.total += weight

    def fraction(self, outcome: Outcome) -> float:
        if self.total == 0:
            return 0.0
        return self.counts[outcome] / self.total

    def fractions(self) -> dict[str, float]:
        return {outcome.value: self.fraction(outcome) for outcome in Outcome}

    def potential_due_fraction(self) -> float:
        return self.potential_due / self.total if self.total else 0.0

    def merge(self, other: "OutcomeTally") -> "OutcomeTally":
        merged = OutcomeTally()
        for outcome in Outcome:
            merged.counts[outcome] = self.counts[outcome] + other.counts[outcome]
        merged.potential_due = self.potential_due + other.potential_due
        merged.total = self.total + other.total
        return merged

    def report(self, confidence: float = 0.90, samples: int | None = None) -> str:
        """One-line report with confidence intervals."""
        n = int(samples if samples is not None else self.total)
        parts = []
        for outcome in Outcome:
            frac = self.fraction(outcome)
            if n > 0:
                low, high = confidence_interval(frac, n, confidence)
                parts.append(
                    f"{outcome.value}={frac * 100:.1f}% "
                    f"[{low * 100:.1f}, {high * 100:.1f}]"
                )
            else:
                parts.append(f"{outcome.value}={frac * 100:.1f}%")
        if self.potential_due:
            parts.append(f"potentialDUE={self.potential_due_fraction() * 100:.1f}%")
        return "  ".join(parts)


# -- trace-file analysis (the JSONL files written by ``--trace``) -------------


def phase_breakdown(trace) -> dict[str, float]:
    """Per-phase wall seconds from a trace (path, or loaded event list).

    Sums every span of each pipeline phase name, so resumed campaigns (two
    ``inject`` spans across two trace files concatenated) aggregate
    naturally.  Phases appear in pipeline order.
    """
    return phase_durations(load_trace(trace))


def tally_from_trace(trace) -> OutcomeTally:
    """Rebuild the campaign's :class:`OutcomeTally` from its trace.

    Every classified injection — including ones resumed from a store —
    emits exactly one ``injection`` event carrying its outcome and weight,
    so this reconstruction matches the campaign result's tally exactly.
    """
    tally = OutcomeTally()
    for event in injection_events(load_trace(trace)):
        attrs = event.get("attrs", {})
        record = OutcomeRecord(
            outcome=Outcome(attrs["outcome"]),
            symptom=attrs.get("symptom", ""),
            potential_due=bool(attrs.get("potential_due", False)),
        )
        tally.add(record, weight=float(attrs.get("weight", 1.0)))
    return tally


def render_phase_breakdown(trace) -> str:
    """Human-readable per-phase time table for a trace file."""
    events = load_trace(trace)
    phases = phase_breakdown(events)
    if not phases:
        return "no phase spans in trace\n"
    total = sum(phases.values())
    width = max(len(name) for name in phases)
    lines = [f"{'phase':<{width}}  {'seconds':>9}  {'share':>6}"]
    for name, seconds in phases.items():
        share = seconds / total if total else 0.0
        lines.append(f"{name:<{width}}  {seconds:>9.3f}  {share:>5.1%}")
    lines.append(f"{'total':<{width}}  {total:>9.3f}  {'':>6}")
    injections = injection_events(events)
    if injections:
        tally = tally_from_trace(events)
        lines.append("")
        lines.append(f"{len(injections)} injection event(s): {tally.report()}")
    return "\n".join(lines) + "\n"
