"""Campaign statistics: outcome fractions and binomial confidence intervals.

The paper (§IV-B, citing [24], [25]) notes that 100 injections give 90%
confidence with ±8% error margins and 1000 injections give 95% with ±3%;
:func:`confidence_interval` reproduces those margins (normal approximation
at worst-case p = 0.5).

This module also reads campaign traces (the JSONL files written by
``--trace``): :func:`phase_breakdown` and :func:`render_phase_breakdown`
turn phase spans into a per-phase time table, and :func:`tally_from_trace`
rebuilds the campaign's :class:`OutcomeTally` from its per-injection
events — the two views are defined to agree exactly.
"""

from __future__ import annotations

import csv
import math
from dataclasses import dataclass, field
from pathlib import Path
from statistics import NormalDist

from repro.core.outcomes import Outcome, OutcomeRecord
from repro.errors import ReproError
from repro.obs import injection_events, load_trace, phase_durations


def z_value(confidence: float) -> float:
    """Two-sided z for any confidence level in (0, 1).

    Historically a four-entry table lookup (0.80/0.90/0.95/0.99) that made
    e.g. 0.85 or 0.975 raise; now the exact inverse normal, pinned against
    the paper's table values (1.6449 at 90%, 1.9600 at 95%, ...) by
    regression tests so the §IV-B ±8%/±3% numbers stay exact.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(
            f"confidence level must lie strictly between 0 and 1, "
            f"got {confidence}"
        )
    return NormalDist().inv_cdf((1.0 + confidence) / 2.0)


def confidence_interval(
    p_hat: float, n: int, confidence: float = 0.95
) -> tuple[float, float]:
    """Normal-approximation binomial CI for an outcome fraction."""
    if n <= 0:
        raise ValueError("sample size must be positive")
    if not 0.0 <= p_hat <= 1.0:
        raise ValueError("fraction must lie in [0, 1]")
    margin = z_value(confidence) * math.sqrt(p_hat * (1.0 - p_hat) / n)
    return max(0.0, p_hat - margin), min(1.0, p_hat + margin)


def error_margin(n: int, confidence: float = 0.90, p_hat: float = 0.5) -> float:
    """Worst-case half-width of the CI (the paper's ±8% / ±3% numbers)."""
    if n <= 0:
        raise ValueError("sample size must be positive")
    return z_value(confidence) * math.sqrt(p_hat * (1.0 - p_hat) / n)


@dataclass
class OutcomeTally:
    """Aggregated outcome counts, optionally weighted."""

    counts: dict[Outcome, float] = field(
        default_factory=lambda: {o: 0.0 for o in Outcome}
    )
    potential_due: float = 0.0
    total: float = 0.0

    def add(self, record: OutcomeRecord, weight: float = 1.0) -> None:
        self.counts[record.outcome] += weight
        if record.potential_due:
            self.potential_due += weight
        self.total += weight

    def fraction(self, outcome: Outcome) -> float:
        if self.total == 0:
            return 0.0
        return self.counts[outcome] / self.total

    def fractions(self) -> dict[str, float]:
        return {outcome.value: self.fraction(outcome) for outcome in Outcome}

    def potential_due_fraction(self) -> float:
        return self.potential_due / self.total if self.total else 0.0

    def merge(self, other: "OutcomeTally") -> "OutcomeTally":
        merged = OutcomeTally()
        for outcome in Outcome:
            merged.counts[outcome] = self.counts[outcome] + other.counts[outcome]
        merged.potential_due = self.potential_due + other.potential_due
        merged.total = self.total + other.total
        return merged

    def report(self, confidence: float = 0.90, samples: int | None = None) -> str:
        """One-line report with confidence intervals.

        A zero-sample tally (an interrupted campaign's empty partial
        results, say) renders ``n/a`` instead of raising out of
        :func:`confidence_interval`.
        """
        n = int(samples if samples is not None else self.total)
        if n <= 0:
            return "  ".join(f"{outcome.value}=n/a" for outcome in Outcome)
        parts = []
        for outcome in Outcome:
            frac = self.fraction(outcome)
            low, high = confidence_interval(frac, n, confidence)
            parts.append(
                f"{outcome.value}={frac * 100:.1f}% "
                f"[{low * 100:.1f}, {high * 100:.1f}]"
            )
        if self.potential_due:
            parts.append(f"potentialDUE={self.potential_due_fraction() * 100:.1f}%")
        return "  ".join(parts)


def summarize_tally(tally: OutcomeTally, confidence: float = 0.95) -> dict:
    """A JSON-friendly summary of a tally: counts, fractions, intervals.

    The ``repro serve`` status endpoint's payload shape — everything a
    client needs to render live campaign progress without parsing the
    human-readable :meth:`OutcomeTally.report` line.  A zero-sample tally
    yields empty intervals rather than raising.
    """
    n = int(tally.total)
    summary = {
        "n": n,
        "counts": {o.value: tally.counts[o] for o in Outcome},
        "fractions": tally.fractions(),
        "potential_due_fraction": tally.potential_due_fraction(),
        "confidence": confidence,
        "ci": {},
    }
    if n > 0:
        for outcome in Outcome:
            low, high = confidence_interval(
                tally.fraction(outcome), n, confidence
            )
            summary["ci"][outcome.value] = [low, high]
    return summary


# -- results.csv analysis (the ``repro report`` surface) ----------------------


def read_results_csv(source: str | Path) -> list[dict]:
    """Rows of a campaign's ``results.csv`` (a store directory or the file).

    Accepts a partial file from an interrupted campaign — any prefix of the
    rows is a valid result set — and an empty (header-only) file, which
    downstream renderers must turn into ``n/a`` rather than a crash.
    """
    path = Path(source)
    if path.is_dir():
        path = path / "results.csv"
    if not path.exists():
        raise ReproError(f"no results.csv under {source}")
    with path.open(newline="") as handle:
        return list(csv.DictReader(handle))


def tally_from_results(rows: list[dict]) -> OutcomeTally:
    """Rebuild an :class:`OutcomeTally` from ``results.csv`` rows."""
    tally = OutcomeTally()
    for row in rows:
        tally.add(
            OutcomeRecord(
                outcome=Outcome(row["outcome"]),
                symptom=row.get("symptom", ""),
                potential_due=row.get("potential_due") == "True",
            )
        )
    return tally


def stratum_tallies_from_results(rows: list[dict]) -> dict[str, OutcomeTally]:
    """Per-stratum (static kernel) tallies from ``results.csv`` rows."""
    tallies: dict[str, OutcomeTally] = {}
    for row in rows:
        tally = tallies.setdefault(row["kernel"], OutcomeTally())
        tally.add(
            OutcomeRecord(
                outcome=Outcome(row["outcome"]),
                symptom=row.get("symptom", ""),
                potential_due=row.get("potential_due") == "True",
            )
        )
    return tallies


def _ci_cell(tally: OutcomeTally, outcome: Outcome, confidence: float) -> str:
    n = int(tally.total)
    if n <= 0:
        return "n/a"
    frac = tally.fraction(outcome)
    low, high = confidence_interval(frac, n, confidence)
    return f"{frac * 100:5.1f}% [{low * 100:5.1f}, {high * 100:5.1f}]"


def render_ci_report(source, confidence: float = 0.95) -> str:
    """The ``repro report ci`` view: per-outcome fractions with intervals,
    overall and per stratum (static kernel), from a campaign's results.csv.

    Zero-sample inputs — a header-only partial file from an interrupted
    campaign — render ``n/a`` cells rather than raising.
    """
    rows = read_results_csv(source) if isinstance(source, (str, Path)) else source
    overall = tally_from_results(rows)
    strata = stratum_tallies_from_results(rows)
    names = ["(all)"] + sorted(strata)
    tallies = {"(all)": overall, **strata}
    width = max(len(name) for name in names)
    header = f"{'stratum':<{width}}  {'n':>5}  " + "  ".join(
        f"{outcome.value:>22}" for outcome in Outcome
    )
    lines = [f"confidence level: {confidence:.0%}", header]
    for name in names:
        tally = tallies[name]
        cells = "  ".join(
            f"{_ci_cell(tally, outcome, confidence):>22}" for outcome in Outcome
        )
        lines.append(f"{name:<{width}}  {int(tally.total):>5}  {cells}")
    if overall.total == 0:
        lines.append(
            "no completed injections yet (partial or empty results.csv)"
        )
    return "\n".join(lines) + "\n"


# -- trace-file analysis (the JSONL files written by ``--trace``) -------------


def phase_breakdown(trace) -> dict[str, float]:
    """Per-phase wall seconds from a trace (path, or loaded event list).

    Sums every span of each pipeline phase name, so resumed campaigns (two
    ``inject`` spans across two trace files concatenated) aggregate
    naturally.  Phases appear in pipeline order.
    """
    return phase_durations(load_trace(trace))


def tally_from_trace(trace) -> OutcomeTally:
    """Rebuild the campaign's :class:`OutcomeTally` from its trace.

    Every classified injection — including ones resumed from a store —
    emits exactly one ``injection`` event carrying its outcome and weight,
    so this reconstruction matches the campaign result's tally exactly.
    """
    tally = OutcomeTally()
    for event in injection_events(load_trace(trace)):
        attrs = event.get("attrs", {})
        record = OutcomeRecord(
            outcome=Outcome(attrs["outcome"]),
            symptom=attrs.get("symptom", ""),
            potential_due=bool(attrs.get("potential_due", False)),
        )
        tally.add(record, weight=float(attrs.get("weight", 1.0)))
    return tally


def render_phase_breakdown(trace) -> str:
    """Human-readable per-phase time table for a trace file."""
    events = load_trace(trace)
    phases = phase_breakdown(events)
    if not phases:
        return "no phase spans in trace\n"
    total = sum(phases.values())
    width = max(len(name) for name in phases)
    lines = [f"{'phase':<{width}}  {'seconds':>9}  {'share':>6}"]
    for name, seconds in phases.items():
        share = seconds / total if total else 0.0
        lines.append(f"{name:<{width}}  {seconds:>9.3f}  {share:>5.1%}")
    lines.append(f"{'total':<{width}}  {total:>9.3f}  {'':>6}")
    injections = injection_events(events)
    if injections:
        tally = tally_from_trace(events)
        lines.append("")
        lines.append(f"{len(injections)} injection event(s): {tally.report()}")
    return "\n".join(lines) + "\n"
