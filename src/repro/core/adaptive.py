"""Adaptive campaign sizing: CI-driven early stopping + stratified sampling.

The paper sizes every campaign with a fixed N (§IV-B: 100 injections give
90% confidence with ±8% margins, 1000 give 95% ±3%) — both numbers are the
worst-case (p = 0.5) inversion of the binomial confidence interval in
:mod:`repro.core.report`.  ZOFI's insight is that the worst case rarely
happens: compute the interval *during* the campaign and stop as soon as the
error bar for the outcome you care about is tight enough.  This module is
that loop's brain; :class:`~repro.core.engine.CampaignEngine` is its body.

Three pieces:

* :class:`StoppingRule` — "stop once the ``confidence`` CI of the
  ``target_outcome`` fraction is narrower than ``half_width``", evaluated
  at batch boundaries from the running tallies via the same
  :func:`~repro.core.report.confidence_interval` machinery the final report
  uses;
* :class:`SamplingPlan` — how each batch's sites are drawn: ``uniform``
  (the paper's Monte Carlo; the default), ``stratified`` (allocate across
  static kernels proportionally to their dynamic instruction share, with a
  cumulative-deficit largest-remainder rule so small strata are never
  starved) or ``importance`` (re-allocate every batch toward the strata
  with the highest observed target-outcome rate, Laplace-smoothed);
* :class:`AdaptiveState` — the deterministic decision sequence: per-stratum
  tallies, batch allocations, the combined (weighted) estimate and the
  per-site weights that keep the final tally unbiased.

Unbiasedness: under stratified *and* importance sampling the estimator is
the classic stratified mean p̂ = Σ_h W_h·p̂_h, where W_h is stratum *h*'s
share of the dynamic instruction population and p̂_h its observed outcome
fraction.  Recording weight ``W_h / n_h`` per site makes the weighted
tally's fractions equal that estimator regardless of how the budget was
steered — allocation changes the variance, never the expectation.  Its
half-width comes from Var(p̂) = Σ_h W_h²·p̂_h(1−p̂_h)/n_h.

Every decision is a pure function of (seed, profile, plan, rule, outcomes
so far), and the simulator is deterministic, so the same seed always stops
at the same injection — serial, parallel or resumed.  See
``docs/statistics.md``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.outcomes import Outcome, OutcomeRecord
from repro.core.report import OutcomeTally, z_value
from repro.errors import ParamError

SAMPLING_MODES = ("uniform", "stratified", "importance")

# A stratum must have this many observations before a stopping rule may
# fire in stratified/importance mode: a variance term estimated from one
# sample says nothing about the stratum.
MIN_STRATUM_SAMPLES = 2


@dataclass(frozen=True)
class StoppingRule:
    """Stop once the target outcome's CI half-width is tight enough.

    ``target_outcome`` accepts an :class:`~repro.core.outcomes.Outcome` or
    its string value (``"SDC"``, ``"DUE"``, ``"Masked"``).
    ``min_injections`` keeps the rule from firing on the degenerate
    intervals of tiny samples (p̂ = 0 at n = 3 has zero width).
    """

    target_outcome: Outcome = Outcome.SDC
    confidence: float = 0.95
    half_width: float = 0.05
    min_injections: int = 20

    def __post_init__(self) -> None:
        object.__setattr__(self, "target_outcome", Outcome(self.target_outcome))
        try:
            z_value(self.confidence)
        except ValueError as exc:
            raise ParamError(str(exc)) from None
        if not 0.0 < self.half_width < 0.5:
            raise ParamError(
                f"half-width must lie in (0, 0.5), got {self.half_width}"
            )
        if self.min_injections < 1:
            raise ParamError("min_injections must be >= 1")

    def fixed_n(self) -> int:
        """The fixed-N equivalent: worst-case (p = 0.5) sample size.

        This is how the paper's §IV-B table is produced (0.90/±8% → ~100,
        0.95/±3% → ~1000); an adaptive campaign can only stop at or under
        it, and stops much earlier whenever the observed rate is far from
        0.5.
        """
        z = z_value(self.confidence)
        return math.ceil((z / self.half_width) ** 2 * 0.25)

    def fingerprint(self) -> dict:
        return {
            "target_outcome": self.target_outcome.value,
            "confidence": self.confidence,
            "half_width": self.half_width,
            "min_injections": self.min_injections,
        }


@dataclass(frozen=True)
class SamplingPlan:
    """How each batch's fault sites are drawn.

    ``uniform`` reproduces the paper's Monte Carlo draw; ``stratified``
    keeps every static kernel sampled proportionally to its dynamic
    instruction share; ``importance`` steers each batch toward the strata
    with the highest observed target-outcome rate (the final estimate
    stays unbiased through per-site weights — see the module docstring).
    """

    mode: str = "uniform"
    batch_size: int = 25

    def __post_init__(self) -> None:
        if self.mode not in SAMPLING_MODES:
            raise ParamError(
                f"unknown sampling mode {self.mode!r}; "
                f"choose from {list(SAMPLING_MODES)}"
            )
        if self.batch_size < 1:
            raise ParamError("batch size must be >= 1")

    def fingerprint(self) -> dict:
        return {"mode": self.mode, "batch_size": self.batch_size}


@dataclass(frozen=True)
class Estimate:
    """A point estimate with its CI half-width (``None`` when n = 0)."""

    p_hat: float
    half_width: float | None
    n: int

    @property
    def low(self) -> float:
        return max(0.0, self.p_hat - (self.half_width or 0.0))

    @property
    def high(self) -> float:
        return min(1.0, self.p_hat + (self.half_width or 0.0))

    def describe(self) -> str:
        if self.half_width is None:
            return "n/a (no samples)"
        return (
            f"{self.p_hat * 100:.1f}% ±{self.half_width * 100:.1f} "
            f"[{self.low * 100:.1f}, {self.high * 100:.1f}] (n={self.n})"
        )


@dataclass
class StratumSummary:
    """One stratum's share of the campaign (for reports and span attrs)."""

    name: str
    weight: float  # population share W_h of the instruction group
    injections: int  # n_h actually drawn
    tally: OutcomeTally
    site_weight: float  # W_h / n_h (0.0 while unsampled)


@dataclass
class AdaptiveSummary:
    """What the adaptive drive loop decided, attached to the campaign result."""

    mode: str
    batch_size: int
    rule: StoppingRule | None
    budget: int
    injections: int
    batches: int
    stopped_early_at: int | None  # injection count at the stop, None if exhausted
    estimate: Estimate | None  # combined estimate of the rule's target outcome
    strata: list[StratumSummary] | None  # None in uniform mode
    weighted_tally: OutcomeTally | None  # stratified estimator; None in uniform

    @property
    def injections_saved(self) -> int:
        return self.budget - self.injections

    def describe(self) -> str:
        lines = [
            f"sampling={self.mode} batch_size={self.batch_size} "
            f"batches={self.batches} injections={self.injections}/{self.budget}"
        ]
        if self.rule is not None:
            verdict = (
                f"stopped early at {self.stopped_early_at} "
                f"({self.injections_saved} injections saved)"
                if self.stopped_early_at is not None
                else "budget exhausted before the rule was satisfied"
            )
            lines.append(
                f"rule: {self.rule.target_outcome.value} half-width "
                f"<= {self.rule.half_width} at {self.rule.confidence:.0%} "
                f"-> {verdict}"
            )
            if self.estimate is not None:
                lines.append(
                    f"{self.rule.target_outcome.value} estimate: "
                    f"{self.estimate.describe()}"
                )
        if self.strata:
            per = "  ".join(
                f"{s.name}={s.injections}" for s in self.strata
            )
            lines.append(f"per-stratum injections: {per}")
        return "\n".join(lines)


def _largest_remainder(quotas: dict[str, float], size: int) -> dict[str, int]:
    """Apportion ``size`` integer slots to real-valued quotas, deterministically.

    Classic largest-remainder: floor everything, then hand the leftover
    slots to the largest fractional parts (ties broken by quota order, which
    callers keep in profile launch order) — so the allocation is a pure
    function of its inputs.
    """
    total = sum(quotas.values())
    if total <= 0:
        names = list(quotas)
        return {
            name: size // len(names) + (1 if i < size % len(names) else 0)
            for i, name in enumerate(names)
        }
    scaled = {name: size * q / total for name, q in quotas.items()}
    alloc = {name: int(s) for name, s in scaled.items()}
    leftover = size - sum(alloc.values())
    order = sorted(
        scaled,
        key=lambda name: (scaled[name] - alloc[name], -list(scaled).index(name)),
        reverse=True,
    )
    for name in order[:leftover]:
        alloc[name] += 1
    return alloc


class AdaptiveState:
    """The deterministic decision sequence of one adaptive campaign.

    ``strata`` maps stratum name (static kernel) → dynamic instruction
    count of the campaign's instruction group, in profile launch order;
    pass ``None`` for uniform sampling.  Feed completed batches through
    :meth:`record` in index order; :meth:`allocate` and :meth:`should_stop`
    then depend only on the seed-deterministic history, so serial, parallel
    and resumed campaigns walk the identical decision sequence.
    """

    def __init__(
        self,
        plan: SamplingPlan,
        rule: StoppingRule | None,
        strata: dict[str, int] | None,
    ) -> None:
        self.plan = plan
        self.rule = rule
        total = sum(strata.values()) if strata else 0
        self.weights: dict[str, float] | None = (
            {name: count / total for name, count in strata.items()}
            if strata
            else None
        )
        self.tallies: dict[str, OutcomeTally] = (
            {name: OutcomeTally() for name in strata} if strata else {}
        )
        self.counts: dict[str, int] = (
            {name: 0 for name in strata} if strata else {}
        )
        self.overall = OutcomeTally()
        self.batches: list[dict] = []

    # -- allocation -------------------------------------------------------------

    @property
    def drawn(self) -> int:
        return int(self.overall.total)

    def allocate(self, size: int) -> dict[str, int] | None:
        """Slots per stratum for the next batch (``None`` = uniform draw)."""
        if self.weights is None:
            return None
        if self.plan.mode == "importance" and self.batches:
            return self._allocate_importance(size)
        return self._allocate_proportional(size)

    def _allocate_proportional(self, size: int) -> dict[str, int]:
        """Cumulative-deficit proportional allocation.

        Targeting ``W_h * (drawn + size)`` cumulative samples per stratum
        (rather than ``W_h * size`` per batch) self-corrects rounding:
        a stratum short-changed in one batch accumulates deficit and is
        repaid in the next, so even tiny strata get sampled eventually.
        """
        target_total = self.drawn + size
        deficits = {
            name: max(0.0, weight * target_total - self.counts[name])
            for name, weight in self.weights.items()
        }
        return _largest_remainder(deficits, size)

    def _allocate_importance(self, size: int) -> dict[str, int]:
        """Steer the batch toward strata with the highest observed rate.

        Score = W_h · (s_h + 1)/(n_h + 2): the Laplace-smoothed observed
        target-outcome rate times the population share, so a stratum twice
        as SDC-prone gets roughly twice the budget while unobserved strata
        keep a non-zero prior.  Unsampled strata are seeded with one slot
        first — an estimator term can't stay unknown forever.
        """
        target = (self.rule or StoppingRule()).target_outcome
        alloc = {name: 0 for name in self.weights}
        remaining = size
        for name in self.weights:
            if remaining == 0:
                break
            if self.counts[name] == 0:
                alloc[name] += 1
                remaining -= 1
        if remaining:
            scores = {}
            for name, weight in self.weights.items():
                n_h = self.counts[name] + alloc[name]
                s_h = self.tallies[name].counts[target]
                scores[name] = weight * (s_h + 1.0) / (n_h + 2.0)
            extra = _largest_remainder(scores, remaining)
            for name, slots in extra.items():
                alloc[name] += slots
        return {name: slots for name, slots in alloc.items()}

    # -- recording --------------------------------------------------------------

    def record(self, kernel_name: str, outcome: OutcomeRecord) -> None:
        """Fold one classified injection (in index order) into the tallies."""
        self.overall.add(outcome)
        if self.weights is not None:
            if kernel_name not in self.tallies:
                raise ParamError(
                    f"injection targeted kernel {kernel_name!r} outside the "
                    "campaign's strata; the profile and plan disagree"
                )
            self.tallies[kernel_name].add(outcome)
            self.counts[kernel_name] += 1

    def record_batch(
        self, start: int, size: int, allocation: dict[str, int] | None
    ) -> dict:
        entry = {"start": start, "size": size, "allocation": allocation}
        self.batches.append(entry)
        return entry

    # -- estimation -------------------------------------------------------------

    def estimate(self, outcome: Outcome, confidence: float) -> Estimate:
        """Combined estimate of ``outcome``'s fraction with its CI half-width."""
        n = self.drawn
        if n == 0:
            return Estimate(p_hat=0.0, half_width=None, n=0)
        z = z_value(confidence)
        if self.weights is None:
            p_hat = self.overall.fraction(outcome)
            half = z * math.sqrt(p_hat * (1.0 - p_hat) / n)
            return Estimate(p_hat=p_hat, half_width=half, n=n)
        # Stratified estimator over the sampled strata; unsampled strata
        # fall back to the overall mean for the point estimate and to the
        # worst case (p(1-p) = 0.25 at one pseudo-sample) for the variance,
        # so an unseen stratum widens the interval instead of vanishing.
        overall_p = self.overall.fraction(outcome)
        p_hat = 0.0
        variance = 0.0
        for name, weight in self.weights.items():
            n_h = self.counts[name]
            if n_h:
                p_h = self.tallies[name].fraction(outcome)
                p_hat += weight * p_h
                variance += weight**2 * p_h * (1.0 - p_h) / n_h
            else:
                p_hat += weight * overall_p
                variance += weight**2 * 0.25
        return Estimate(
            p_hat=p_hat, half_width=z * math.sqrt(variance), n=n
        )

    def should_stop(self) -> bool:
        """Is the stopping rule satisfied at this batch boundary?"""
        if self.rule is None:
            return False
        if self.drawn < self.rule.min_injections:
            return False
        if self.weights is not None and any(
            n_h < MIN_STRATUM_SAMPLES for n_h in self.counts.values()
        ):
            return False
        current = self.estimate(
            self.rule.target_outcome, self.rule.confidence
        )
        return (
            current.half_width is not None
            and current.half_width <= self.rule.half_width
        )

    # -- final accounting -------------------------------------------------------

    def site_weights(self) -> dict[str, float] | None:
        """Per-site weight by stratum: W_h / n_h (``None`` in uniform mode).

        Weighting every site in stratum *h* by ``W_h / n_h`` makes the
        weighted tally's fractions equal the stratified estimator
        Σ_h W_h·p̂_h — the allocation (however steered) cancels out, which
        is what keeps importance sampling unbiased.
        """
        if self.weights is None:
            return None
        return {
            name: (self.weights[name] / n_h if n_h else 0.0)
            for name, n_h in self.counts.items()
        }

    def summary(
        self, budget: int, stopped_early_at: int | None
    ) -> AdaptiveSummary:
        strata = None
        weighted = None
        if self.weights is not None:
            site_weights = self.site_weights() or {}
            strata = [
                StratumSummary(
                    name=name,
                    weight=weight,
                    injections=self.counts[name],
                    tally=self.tallies[name],
                    site_weight=site_weights[name],
                )
                for name, weight in self.weights.items()
            ]
            weighted = OutcomeTally()
            for name, tally in self.tallies.items():
                weight = site_weights[name]
                for outcome in Outcome:
                    weighted.counts[outcome] += weight * tally.counts[outcome]
                weighted.potential_due += weight * tally.potential_due
                weighted.total += weight * tally.total
        estimate = None
        if self.rule is not None and self.drawn:
            estimate = self.estimate(
                self.rule.target_outcome, self.rule.confidence
            )
        return AdaptiveSummary(
            mode=self.plan.mode,
            batch_size=self.plan.batch_size,
            rule=self.rule,
            budget=budget,
            injections=self.drawn,
            batches=len(self.batches),
            stopped_early_at=stopped_early_at,
            estimate=estimate,
            strata=strata,
            weighted_tally=weighted,
        )

    def fingerprint(
        self, budget: int, seed: int, group: str, model: str
    ) -> dict:
        """What a resumed campaign must match to continue this decision tape."""
        return {
            "plan": self.plan.fingerprint(),
            "rule": self.rule.fingerprint() if self.rule else None,
            "budget": budget,
            "seed": seed,
            "group": group,
            "model": model,
            "strata": list(self.weights) if self.weights else None,
        }


@dataclass
class AdaptiveCheckpoint:
    """The persisted adaptive state (``adaptive.json`` in a campaign store).

    Every decision is re-derivable from the seed and the stored outcomes,
    so the checkpoint's role is *verification*: a resumed campaign replays
    its decision sequence and cross-checks each batch against the stored
    tape, failing loudly if the configuration drifted instead of silently
    producing a differently-sized campaign.
    """

    fingerprint: dict
    batches: list[dict] = field(default_factory=list)
    stopped_early_at: int | None = None

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "batches": self.batches,
            "stopped_early_at": self.stopped_early_at,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "AdaptiveCheckpoint":
        return cls(
            fingerprint=doc.get("fingerprint", {}),
            batches=list(doc.get("batches", [])),
            stopped_early_at=doc.get("stopped_early_at"),
        )
