"""Bit-flip models and mask computation — Table II, 'bit-pattern value'.

The mask is XORed into the destination register after the target
instruction executes:

========================= ==============================================
model                     mask
========================= ==============================================
``FLIP_SINGLE_BIT``       ``0x1 << int(32 * value)``
``FLIP_TWO_BITS``         ``0x3 << int(31 * value)``
``RANDOM_VALUE``          ``int(0xffffffff * value)``
``ZERO_VALUE``            the original register value (XOR yields 0x0)
========================= ==============================================

``value`` is the uniform float in [0, 1) selected at campaign time, so one
parameter file line fully determines the corruption.
"""

from __future__ import annotations

import enum

from repro.errors import ParamError
from repro.utils.bits import MASK32


class BitFlipModel(enum.IntEnum):
    """The bit-flip model ids of Table II."""

    FLIP_SINGLE_BIT = 1
    FLIP_TWO_BITS = 2
    RANDOM_VALUE = 3
    ZERO_VALUE = 4


def compute_mask(model: BitFlipModel, value: float, old_value: int) -> int:
    """The 32-bit XOR mask for one injection (Table II formulas, verbatim)."""
    if not 0.0 <= value < 1.0:
        raise ParamError(f"bit-pattern value {value} must lie in [0, 1)")
    model = BitFlipModel(model)
    if model is BitFlipModel.FLIP_SINGLE_BIT:
        return (0x1 << int(32 * value)) & MASK32
    if model is BitFlipModel.FLIP_TWO_BITS:
        return (0x3 << int(31 * value)) & MASK32
    if model is BitFlipModel.RANDOM_VALUE:
        return int(0xFFFFFFFF * value) & MASK32
    # ZERO_VALUE: mask equals the original value so new = old ^ mask = 0.
    return old_value & MASK32


def apply_mask(model: BitFlipModel, value: float, old_value: int) -> int:
    """The corrupted register value after the XOR."""
    return (old_value ^ compute_mask(model, value, old_value)) & MASK32


def corrupt_predicate(old_value: bool) -> bool:
    """Predicate destinations are one bit wide: corruption is a flip."""
    return not old_value
