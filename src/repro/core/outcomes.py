"""Outcome classification — Table V of the paper.

Priority order follows the table: DUE symptoms (hang, crash, non-zero exit)
are checked first; then the application's SDC-check script decides between
SDC and Masked; finally, runs whose outcome is SDC or Masked but which left
a non-handled system anomaly (CUDA error, dmesg/Xid entry) are flagged as
*potential DUEs* — counted within their SDC/Masked bucket, as in §IV-A.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass

from repro.runner.app import Application
from repro.runner.artifacts import RunArtifacts


class Outcome(enum.Enum):
    SDC = "SDC"
    DUE = "DUE"
    MASKED = "Masked"


@dataclass(frozen=True)
class OutcomeRecord:
    """Classification of one injection run."""

    outcome: Outcome
    symptom: str  # the Table V row that fired
    potential_due: bool = False

    def label(self) -> str:
        suffix = " (potential DUE)" if self.potential_due else ""
        return f"{self.outcome.value}: {self.symptom}{suffix}"


def classify(
    app: Application,
    golden: RunArtifacts,
    observed: RunArtifacts,
) -> OutcomeRecord:
    """Classify one run against the golden reference (Table V)."""
    if observed.timed_out:
        return OutcomeRecord(Outcome.DUE, "Timeout, indicating a hang (Monitor detection)")
    if observed.crashed:
        return OutcomeRecord(Outcome.DUE, "Process crash (OS detection)")
    if observed.exit_status != 0:
        return OutcomeRecord(Outcome.DUE, "Non-zero exit status (Application detection)")

    check = app.check(golden, observed)
    anomalous = _has_new_anomalies(golden, observed)
    if not check.passed:
        return OutcomeRecord(Outcome.SDC, check.detail or "SDC check failed",
                             potential_due=anomalous)
    return OutcomeRecord(Outcome.MASKED, "No difference detected",
                         potential_due=anomalous)


def _has_new_anomalies(golden: RunArtifacts, observed: RunArtifacts) -> bool:
    """Anomalies beyond whatever the golden run already produced.

    Compares multiset membership, not just counts: an injected run that
    swaps one CUDA error or dmesg entry for a *different* one (same total)
    still carries a new, non-handled anomaly and must be flagged as a
    potential DUE.
    """
    return bool(
        Counter(observed.cuda_errors) - Counter(golden.cuda_errors)
    ) or bool(Counter(observed.dmesg) - Counter(golden.dmesg))
