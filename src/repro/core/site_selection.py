"""Fault-site selection (Figure 1, step 2).

A transient site is one dynamic instruction drawn uniformly from the
profiled population of the chosen instruction group: pick ``n`` in
``[0, N)`` where ``N`` is the group's total dynamic instruction count, then
translate ``n`` into the ``<kernel_name, kernel_count, instruction_count>``
tuple the injector consumes.  The destination-register and bit-pattern
selectors are independent uniforms in [0, 1).

Adaptive campaigns (:mod:`repro.core.adaptive`) restrict draws to a
*stratum* — the population of one static kernel — via the ``kernels``
argument; :func:`stratum_weights` defines the strata and their population
shares.  The default (unrestricted) path is bit-identical to the historic
uniform draw.
"""

from __future__ import annotations

import numpy as np

from repro.arch.families import DEFAULT_FAMILY, arch_by_name
from repro.core.bitflip import BitFlipModel
from repro.core.groups import InstructionGroup, require_injectable
from repro.core.params import PermanentParams, TransientParams
from repro.core.profile_data import ProgramProfile
from repro.errors import ParamError, ProfileError
from repro.sass.isa import WARP_SIZE, opcode_info


def stratum_weights(
    profile: ProgramProfile, group: InstructionGroup
) -> dict[str, int]:
    """Dynamic instruction count of ``group`` per static kernel.

    Kernels appear in profile launch order (first appearance), so the
    mapping — and everything allocated from it — is deterministic.  Kernels
    with no instructions in the group are omitted: they cannot be sampled.
    """
    counts: dict[str, int] = {}
    for kernel_profile in profile.kernels:
        group_count = kernel_profile.group_count(group)
        if group_count:
            counts[kernel_profile.kernel_name] = (
                counts.get(kernel_profile.kernel_name, 0) + group_count
            )
    if not counts:
        raise ProfileError(
            f"profile contains no {group.name} instructions to stratify"
        )
    return counts


def select_transient_site(
    profile: ProgramProfile,
    group: InstructionGroup,
    model: BitFlipModel,
    rng: np.random.Generator,
    kernels: frozenset[str] | set[str] | None = None,
) -> TransientParams:
    """Draw one uniform transient fault site from a profile.

    With ``kernels`` given, the draw is uniform over the dynamic
    instructions of those static kernels only (a stratum); otherwise over
    the whole profile, exactly as before.
    """
    require_injectable(group)
    selected = [
        kp
        for kp in profile.kernels
        if kernels is None or kp.kernel_name in kernels
    ]
    total = sum(kp.group_count(group) for kp in selected)
    if total == 0:
        where = f" in kernels {sorted(kernels)}" if kernels is not None else ""
        raise ProfileError(
            f"profile contains no {group.name} instructions to inject{where}"
        )
    index = int(rng.integers(total))
    remaining = index
    for kernel_profile in selected:
        group_count = kernel_profile.group_count(group)
        if remaining < group_count:
            return TransientParams(
                group=group,
                model=model,
                kernel_name=kernel_profile.kernel_name,
                kernel_count=kernel_profile.invocation,
                instruction_count=remaining,
                dest_reg_selector=float(rng.random()),
                bit_pattern_value=float(rng.random()),
            )
        remaining -= group_count
    raise ProfileError("site index walked past the end of the profile")


def select_transient_sites(
    profile: ProgramProfile,
    group: InstructionGroup,
    model: BitFlipModel,
    count: int,
    rng: np.random.Generator,
    kernels: frozenset[str] | set[str] | None = None,
) -> list[TransientParams]:
    """Draw ``count`` independent uniform sites (optionally from a stratum)."""
    return [
        select_transient_site(profile, group, model, rng, kernels=kernels)
        for _ in range(count)
    ]


def select_stratified_sites(
    profile: ProgramProfile,
    group: InstructionGroup,
    model: BitFlipModel,
    allocation: dict[str, int],
    rng: np.random.Generator,
) -> list[TransientParams]:
    """Draw ``allocation[kernel]`` sites per stratum, in allocation order.

    The order — strata in the allocation's (launch-order) sequence, draws
    within a stratum sequential — is part of the campaign's deterministic
    decision tape, so serial, parallel and resumed runs reproduce it.
    """
    sites: list[TransientParams] = []
    for kernel_name, count in allocation.items():
        if count:
            sites.extend(
                select_transient_sites(
                    profile, group, model, count, rng,
                    kernels=frozenset((kernel_name,)),
                )
            )
    return sites


def select_permanent_sites(
    profile: ProgramProfile,
    rng: np.random.Generator,
    sm_ids: list[int] | None = None,
    opcodes: list[str] | None = None,
    num_sms: int | None = None,
) -> list[PermanentParams]:
    """One permanent site per executed opcode (paper §IV-B).

    Unused opcodes are pruned via the profile; the SM, lane and single-bit
    XOR mask are drawn uniformly per site.  Without an explicit ``sm_ids``
    list the SM is drawn from the device's actual SM count (``num_sms``,
    defaulting to the default family's), so a selected ``sm_id`` can never
    exceed the device that will run the injection.  An explicit ``sm_ids``
    list is held to the same guarantee (entries must lie in
    ``[0, num_sms)``), and explicit ``opcodes`` must actually have executed
    in the profile — a site for an unexecuted opcode can never activate.
    """
    if num_sms is None:
        num_sms = arch_by_name(DEFAULT_FAMILY).num_sms
    if sm_ids is not None:
        for sm_id in sm_ids:
            if not 0 <= sm_id < num_sms:
                raise ParamError(
                    f"sm_id {sm_id} outside the device's SM range "
                    f"0..{num_sms - 1}"
                )
    if opcodes is not None:
        executed = profile.executed_opcodes()
        for name in opcodes:
            if name not in executed:
                raise ProfileError(
                    f"opcode {name!r} never executed in the profile; a "
                    "permanent fault on it cannot activate"
                )
    names = opcodes if opcodes is not None else sorted(profile.executed_opcodes())
    if not names:
        raise ProfileError("profile contains no executed opcodes")
    sites = []
    for name in names:
        info = opcode_info(name)
        sm_id = int(rng.choice(sm_ids)) if sm_ids else int(rng.integers(0, num_sms))
        sites.append(
            PermanentParams(
                sm_id=sm_id,
                lane_id=int(rng.integers(WARP_SIZE)),
                bit_mask=1 << int(rng.integers(32)),
                opcode_id=info.opcode_id,
            )
        )
    return sites
