"""Fault-site selection (Figure 1, step 2).

A transient site is one dynamic instruction drawn uniformly from the
profiled population of the chosen instruction group: pick ``n`` in
``[0, N)`` where ``N`` is the group's total dynamic instruction count, then
translate ``n`` into the ``<kernel_name, kernel_count, instruction_count>``
tuple the injector consumes.  The destination-register and bit-pattern
selectors are independent uniforms in [0, 1).
"""

from __future__ import annotations

import numpy as np

from repro.arch.families import DEFAULT_FAMILY, arch_by_name
from repro.core.bitflip import BitFlipModel
from repro.core.groups import InstructionGroup, require_injectable
from repro.core.params import PermanentParams, TransientParams
from repro.core.profile_data import ProgramProfile
from repro.errors import ProfileError
from repro.sass.isa import WARP_SIZE, opcode_info


def select_transient_site(
    profile: ProgramProfile,
    group: InstructionGroup,
    model: BitFlipModel,
    rng: np.random.Generator,
) -> TransientParams:
    """Draw one uniform transient fault site from a profile."""
    require_injectable(group)
    total = profile.total_count(group)
    if total == 0:
        raise ProfileError(
            f"profile contains no {group.name} instructions to inject"
        )
    index = int(rng.integers(total))
    remaining = index
    for kernel_profile in profile.kernels:
        group_count = kernel_profile.group_count(group)
        if remaining < group_count:
            return TransientParams(
                group=group,
                model=model,
                kernel_name=kernel_profile.kernel_name,
                kernel_count=kernel_profile.invocation,
                instruction_count=remaining,
                dest_reg_selector=float(rng.random()),
                bit_pattern_value=float(rng.random()),
            )
        remaining -= group_count
    raise ProfileError("site index walked past the end of the profile")


def select_transient_sites(
    profile: ProgramProfile,
    group: InstructionGroup,
    model: BitFlipModel,
    count: int,
    rng: np.random.Generator,
) -> list[TransientParams]:
    """Draw ``count`` independent uniform sites."""
    return [select_transient_site(profile, group, model, rng) for _ in range(count)]


def select_permanent_sites(
    profile: ProgramProfile,
    rng: np.random.Generator,
    sm_ids: list[int] | None = None,
    opcodes: list[str] | None = None,
    num_sms: int | None = None,
) -> list[PermanentParams]:
    """One permanent site per executed opcode (paper §IV-B).

    Unused opcodes are pruned via the profile; the SM, lane and single-bit
    XOR mask are drawn uniformly per site.  Without an explicit ``sm_ids``
    list the SM is drawn from the device's actual SM count (``num_sms``,
    defaulting to the default family's), so a selected ``sm_id`` can never
    exceed the device that will run the injection.
    """
    names = opcodes if opcodes is not None else sorted(profile.executed_opcodes())
    if not names:
        raise ProfileError("profile contains no executed opcodes")
    if num_sms is None:
        num_sms = arch_by_name(DEFAULT_FAMILY).num_sms
    sites = []
    for name in names:
        info = opcode_info(name)
        sm_id = int(rng.choice(sm_ids)) if sm_ids else int(rng.integers(0, num_sms))
        sites.append(
            PermanentParams(
                sm_id=sm_id,
                lane_id=int(rng.integers(WARP_SIZE)),
                bit_mask=1 << int(rng.integers(32)),
                opcode_id=info.opcode_id,
            )
        )
    return sites
