"""Campaign orchestration — the convenience scripts of the NVBitFI package.

A campaign automates Figure 1 end-to-end for one application:

1. golden run (uninstrumented reference, also calibrates the hang watchdog),
2. profiling run (exact or approximate),
3. uniform site selection over the profile,
4. one sandboxed run per injection, each with a fresh device and an
   injector tool attached,
5. Table V classification and aggregation.

The actual pipeline lives in :class:`repro.core.engine.CampaignEngine`;
:class:`Campaign` is the serial-convenience facade over it (as
``run_transient_parallel`` and ``run_resumable_campaign`` are the parallel
and resumable facades).  Timing of every phase is recorded so the overhead
figures (paper Figures 4 and 5) can be regenerated.
"""

from __future__ import annotations

import statistics
import warnings
from dataclasses import dataclass, field, fields, replace

from repro.core.adaptive import AdaptiveSummary, SamplingPlan, StoppingRule
from repro.core.bitflip import BitFlipModel
from repro.core.groups import InstructionGroup
from repro.core.injector import InjectionRecord
from repro.core.outcomes import OutcomeRecord
from repro.core.params import IntermittentParams, PermanentParams, TransientParams
from repro.core.profile_data import ProgramProfile
from repro.core.profiler import ProfilingMode
from repro.core.report import OutcomeTally
from repro.core.resilience import RetryPolicy
from repro.errors import ParamError
from repro.runner.app import Application
from repro.runner.artifacts import RunArtifacts
from repro.runner.sandbox import SandboxConfig


@dataclass
class CampaignConfig:
    """Knobs of one campaign.

    ``workload`` names the registered application to run; it is optional for
    the legacy entry points (which take the application separately) but
    required by :func:`repro.api.run_campaign`.

    ``retry`` governs harness resilience: how often a misbehaving injection
    task (worker raised, died or hung) is re-attempted, and whether
    exhausted tasks are quarantined as synthesized DUEs or abort the
    campaign.  See :class:`~repro.core.resilience.RetryPolicy`.

    ``fast_forward`` enables golden-replay fast-forward (see
    :mod:`repro.gpusim.replay` and ``docs/performance.md``): the golden run
    records every launch's write delta, and transient injection runs apply
    the recorded deltas for launches before the target instead of
    simulating them.  Results are byte-identical either way; the knob only
    trades golden-run recording overhead against injection-run speed.

    ``tail_fast_forward`` extends fast-forward past the target: each
    injection run tracks the set of global-memory pages diverging from the
    golden run and, once the set empties at a launch boundary (the fault
    is architecturally dead), replays the remaining launches from the same
    recording.  Results stay byte-identical.  It is effective only while
    ``fast_forward`` is on — ``fast_forward=False`` is the global kill
    switch that disables recording entirely.

    ``snapshot`` executes grouped transient injections as copy-on-write
    ``os.fork`` children of one replayed checkpoint (see
    :class:`~repro.core.snapshot.SnapshotExecutor`): sites sharing a
    fast-forward stop launch pay for the pre-target replay once instead of
    once per injection.  Results stay byte-identical; on platforms without
    ``os.fork`` the knob silently falls back to the ordinary executors.
    It only takes effect when no explicit ``executor`` is passed.

    ``batch_launch`` goes one step past ``snapshot``: grouped faults that
    target the same dynamic launch are serviced by **one** simulator pass
    of that launch (see :mod:`repro.core.batch_injector`).  The shared
    pass counts group instructions once and takes an in-launch
    copy-on-write checkpoint at each fault's ``instruction_count``; only
    each fault's divergent suffix runs in its own fork.  Results stay
    byte-identical; the same POSIX/fallback rules as ``snapshot`` apply,
    and when both knobs are set, ``batch_launch`` wins (it subsumes
    snapshot grouping).  It only takes effect when no explicit
    ``executor`` is passed.

    ``block_compile`` (default on) runs every sandbox device with the
    block-compiled interpreter (:mod:`repro.gpusim.blockc`): straight-line
    SASS runs are fused into code-generated superhandlers on the
    uninstrumented fast path.  Purely an interpreter-speed knob —
    ``results.csv`` and simulated-cycle totals are byte-identical either
    way — kept switchable for differential testing and benchmarking.  It
    is ANDed with ``sandbox.block_compile``: either knob can turn the
    tier off.

    ``replay_cache`` persists the golden replay tape across campaigns:
    ``True`` uses ``~/.cache/repro/replay`` (or ``$REPRO_REPLAY_CACHE``),
    a path string uses that directory, ``None`` (default) disables
    caching.  A repeated campaign with the same workload + sandbox
    fingerprint + code version replays its golden run from the cached
    tape instead of simulating it; entries are content-hash validated and
    any mismatch falls back to re-recording.  ``repro serve`` defaults
    this to a FaultDB-adjacent directory so all tenants share one cache.

    ``stopping`` / ``sampling`` make the campaign *adaptive* (see
    :mod:`repro.core.adaptive` and ``docs/statistics.md``): sites are drawn
    and injected in batches, the :class:`~repro.core.adaptive.StoppingRule`
    is re-evaluated after each batch, and the campaign stops as soon as the
    target outcome's confidence interval is tight enough — ``num_transient``
    becomes the budget *ceiling* rather than the exact count.  The
    :class:`~repro.core.adaptive.SamplingPlan` chooses between uniform,
    stratified and importance sampling.  With both left at ``None`` the
    campaign is the fixed-N loop of the paper, byte-identical to previous
    releases.
    """

    group: InstructionGroup = InstructionGroup.G_GP
    model: BitFlipModel = BitFlipModel.FLIP_SINGLE_BIT
    num_transient: int = 100  # paper default: 100 injections per program
    seed: int = 0
    profiling: ProfilingMode = ProfilingMode.EXACT
    hang_budget_factor: int = 10
    sandbox: SandboxConfig = field(default_factory=SandboxConfig)
    workload: str | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    fast_forward: bool = True
    tail_fast_forward: bool = True
    snapshot: bool = False
    batch_launch: bool = False
    block_compile: bool = True
    replay_cache: bool | str | None = None
    stopping: StoppingRule | None = None
    sampling: SamplingPlan | None = None  # None == the historic uniform draw

    def with_overrides(self, **overrides) -> "CampaignConfig":
        """A copy of this config with the given knobs replaced.

        The one typed way to layer per-call overrides on a base config —
        used by :func:`repro.api.run_campaign`, the CLI and service
        submissions, replacing the historic pile of ad-hoc keyword
        arguments (``retry=``, ``fast_forward=``, ``tail_fast_forward=``,
        ``stopping=``, ``sampling=``).

        ``None`` values mean "keep the base config's value", matching the
        historic override semantics (an unset CLI flag or API kwarg never
        clobbers the config).  To *clear* an optional knob such as
        ``stopping``, construct the config directly.  Unknown names raise
        :class:`~repro.errors.ParamError` naming the valid fields.
        """
        valid = {f.name for f in fields(self)}
        unknown = sorted(set(overrides) - valid)
        if unknown:
            raise ParamError(
                f"unknown campaign config override(s) {unknown}; "
                f"valid fields: {sorted(valid)}"
            )
        effective = {
            name: value for name, value in overrides.items() if value is not None
        }
        if not effective:
            return self
        return replace(self, **effective)


@dataclass
class TransientResult:
    """One transient injection run."""

    params: TransientParams
    record: InjectionRecord
    outcome: OutcomeRecord
    wall_time: float
    instructions: int = 0  # deterministic simulated duration of the run


@dataclass
class PermanentResult:
    """One permanent injection run (one opcode)."""

    params: PermanentParams
    opcode: str
    weight: float  # dynamic instruction share of this opcode (Fig 3 weighting)
    activations: int
    outcome: OutcomeRecord
    wall_time: float


@dataclass
class TransientCampaignResult:
    results: list[TransientResult]
    tally: OutcomeTally
    golden_time: float
    profile_time: float
    median_injection_time: float
    # Adaptive campaigns attach their decision record: batches, stop point,
    # per-stratum tallies and the weighted (unbiased) combined estimate.
    adaptive: AdaptiveSummary | None = None

    @property
    def total_time(self) -> float:
        """Aggregate campaign time (Fig 5): profile once + all injection runs."""
        return self.profile_time + sum(r.wall_time for r in self.results)


@dataclass
class PermanentCampaignResult:
    results: list[PermanentResult]
    tally: OutcomeTally  # weighted by opcode dynamic counts
    golden_time: float
    median_injection_time: float

    @property
    def total_time(self) -> float:
        return sum(r.wall_time for r in self.results)


class Campaign:
    """Fault-injection campaign for one application (serial engine facade)."""

    def __init__(self, app: Application, config: CampaignConfig | None = None) -> None:
        # Engine imports this module's dataclasses, so import it lazily.
        from repro.core.engine import CampaignEngine

        self.app = app
        self.config = config or CampaignConfig()
        self.engine = CampaignEngine(app, self.config)

    # -- pipeline state (owned by the engine) -------------------------------------

    @property
    def golden(self) -> RunArtifacts | None:
        return self.engine.golden

    @property
    def profile(self) -> ProgramProfile | None:
        return self.engine.profile

    @property
    def golden_time(self) -> float:
        return self.engine.golden_time

    @property
    def profile_time(self) -> float:
        return self.engine.profile_time

    # -- phases -----------------------------------------------------------------

    def run_golden(self) -> RunArtifacts:
        return self.engine.run_golden()

    def run_profile(self, mode: ProfilingMode | None = None) -> ProgramProfile:
        return self.engine.run_profile(mode)

    def select_sites(self, count: int | None = None) -> list[TransientParams]:
        return self.engine.select_sites(count)

    def run_transient(self, sites: list[TransientParams] | None = None) -> TransientCampaignResult:
        """The full transient campaign (Figure 1 for N faults).

        .. deprecated::
            Use :func:`repro.api.run_campaign`, which also covers parallel
            execution, resumable stores and observability.
        """
        warnings.warn(
            "Campaign.run_transient is deprecated; use repro.api.run_campaign",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.engine.run_transient(sites)

    def run_permanent(
        self, sites: list[PermanentParams] | None = None
    ) -> PermanentCampaignResult:
        """One injection per executed opcode, outcomes weighted by dynamic count."""
        return self.engine.run_permanent(sites)

    def run_intermittent(self, params: IntermittentParams) -> PermanentResult:
        """One intermittent-fault run (§V extension)."""
        return self.engine.run_intermittent([params])[0]

    # -- helpers -------------------------------------------------------------------

    def _sandbox_config(self) -> SandboxConfig:
        return self.engine._sandbox_config()

    def _injection_config(self) -> SandboxConfig:
        return self.engine._injection_config()

    def _active_sm_ids(self) -> list[int]:
        return self.engine._active_sm_ids()


def _median(values) -> float:
    values = list(values)
    return statistics.median(values) if values else 0.0
