"""Campaign orchestration — the convenience scripts of the NVBitFI package.

A campaign automates Figure 1 end-to-end for one application:

1. golden run (uninstrumented reference, also calibrates the hang watchdog),
2. profiling run (exact or approximate),
3. uniform site selection over the profile,
4. one sandboxed run per injection, each with a fresh device and an
   injector tool attached,
5. Table V classification and aggregation.

Timing of every phase is recorded so the overhead figures (paper Figures 4
and 5) can be regenerated.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from repro.core.bitflip import BitFlipModel
from repro.core.groups import InstructionGroup
from repro.core.injector import InjectionRecord, TransientInjectorTool
from repro.core.outcomes import OutcomeRecord, classify
from repro.core.params import IntermittentParams, PermanentParams, TransientParams
from repro.core.pf_injector import IntermittentInjectorTool, PermanentInjectorTool
from repro.core.profile_data import ProgramProfile
from repro.core.profiler import ProfilerTool, ProfilingMode
from repro.core.report import OutcomeTally
from repro.core.site_selection import select_permanent_sites, select_transient_sites
from repro.runner.app import Application
from repro.runner.artifacts import RunArtifacts
from repro.runner.golden import capture_golden, hang_budget
from repro.runner.sandbox import SandboxConfig, run_app
from repro.sass.isa import opcode_by_id
from repro.utils.rng import SeedSequenceStream


@dataclass
class CampaignConfig:
    """Knobs of one campaign."""

    group: InstructionGroup = InstructionGroup.G_GP
    model: BitFlipModel = BitFlipModel.FLIP_SINGLE_BIT
    num_transient: int = 100  # paper default: 100 injections per program
    seed: int = 0
    profiling: ProfilingMode = ProfilingMode.EXACT
    hang_budget_factor: int = 10
    sandbox: SandboxConfig = field(default_factory=SandboxConfig)


@dataclass
class TransientResult:
    """One transient injection run."""

    params: TransientParams
    record: InjectionRecord
    outcome: OutcomeRecord
    wall_time: float


@dataclass
class PermanentResult:
    """One permanent injection run (one opcode)."""

    params: PermanentParams
    opcode: str
    weight: float  # dynamic instruction share of this opcode (Fig 3 weighting)
    activations: int
    outcome: OutcomeRecord
    wall_time: float


@dataclass
class TransientCampaignResult:
    results: list[TransientResult]
    tally: OutcomeTally
    golden_time: float
    profile_time: float
    median_injection_time: float

    @property
    def total_time(self) -> float:
        """Aggregate campaign time (Fig 5): profile once + all injection runs."""
        return self.profile_time + sum(r.wall_time for r in self.results)


@dataclass
class PermanentCampaignResult:
    results: list[PermanentResult]
    tally: OutcomeTally  # weighted by opcode dynamic counts
    golden_time: float
    median_injection_time: float

    @property
    def total_time(self) -> float:
        return sum(r.wall_time for r in self.results)


class Campaign:
    """Fault-injection campaign for one application."""

    def __init__(self, app: Application, config: CampaignConfig | None = None) -> None:
        self.app = app
        self.config = config or CampaignConfig()
        self._stream = SeedSequenceStream(self.config.seed, path=app.name)
        self.golden: RunArtifacts | None = None
        self.profile: ProgramProfile | None = None
        self.golden_time = 0.0
        self.profile_time = 0.0

    # -- phases -----------------------------------------------------------------

    def run_golden(self) -> RunArtifacts:
        config = self._sandbox_config()
        self.golden = capture_golden(self.app, config)
        self.golden_time = self.golden.wall_time
        return self.golden

    def run_profile(self, mode: ProfilingMode | None = None) -> ProgramProfile:
        if self.golden is None:
            self.run_golden()
        profiler = ProfilerTool(mode or self.config.profiling)
        artifacts = run_app(self.app, preload=[profiler], config=self._injection_config())
        if artifacts.crashed or artifacts.timed_out:
            raise RuntimeError(
                f"profiling run failed unexpectedly: {artifacts.summary()}"
            )
        self.profile = profiler.profile
        self.profile_time = artifacts.wall_time
        return self.profile

    def select_sites(self, count: int | None = None) -> list[TransientParams]:
        if self.profile is None:
            self.run_profile()
        rng = self._stream.child("sites").generator()
        return select_transient_sites(
            self.profile,
            self.config.group,
            self.config.model,
            count if count is not None else self.config.num_transient,
            rng,
        )

    def run_transient(self, sites: list[TransientParams] | None = None) -> TransientCampaignResult:
        """The full transient campaign (Figure 1 for N faults)."""
        if sites is None:
            sites = self.select_sites()
        tally = OutcomeTally()
        results = []
        for params in sites:
            injector = TransientInjectorTool(params)
            artifacts = run_app(
                self.app, preload=[injector], config=self._injection_config()
            )
            outcome = classify(self.app, self.golden, artifacts)
            tally.add(outcome)
            results.append(
                TransientResult(params, injector.record, outcome, artifacts.wall_time)
            )
        return TransientCampaignResult(
            results=results,
            tally=tally,
            golden_time=self.golden_time,
            profile_time=self.profile_time,
            median_injection_time=_median(r.wall_time for r in results),
        )

    def run_permanent(
        self, sites: list[PermanentParams] | None = None
    ) -> PermanentCampaignResult:
        """One injection per executed opcode, outcomes weighted by dynamic count."""
        if self.profile is None:
            self.run_profile()
        if sites is None:
            rng = self._stream.child("permanent").generator()
            sites = select_permanent_sites(
                self.profile, rng, sm_ids=self._active_sm_ids()
            )
        total_dynamic = max(self.profile.total_count(), 1)
        tally = OutcomeTally()
        results = []
        for params in sites:
            opcode = opcode_by_id(params.opcode_id).name
            weight = self.profile.opcode_count(opcode) / total_dynamic
            injector = PermanentInjectorTool(params)
            artifacts = run_app(
                self.app, preload=[injector], config=self._injection_config()
            )
            outcome = classify(self.app, self.golden, artifacts)
            tally.add(outcome, weight=weight)
            results.append(
                PermanentResult(
                    params=params,
                    opcode=opcode,
                    weight=weight,
                    activations=injector.activations,
                    outcome=outcome,
                    wall_time=artifacts.wall_time,
                )
            )
        return PermanentCampaignResult(
            results=results,
            tally=tally,
            golden_time=self.golden_time,
            median_injection_time=_median(r.wall_time for r in results),
        )

    def run_intermittent(self, params: IntermittentParams) -> PermanentResult:
        """One intermittent-fault run (§V extension)."""
        if self.golden is None:
            self.run_golden()
        injector = IntermittentInjectorTool(params)
        artifacts = run_app(
            self.app, preload=[injector], config=self._injection_config()
        )
        outcome = classify(self.app, self.golden, artifacts)
        opcode = opcode_by_id(params.permanent.opcode_id).name
        return PermanentResult(
            params=params.permanent,
            opcode=opcode,
            weight=1.0,
            activations=injector.activations,
            outcome=outcome,
            wall_time=artifacts.wall_time,
        )

    # -- helpers -------------------------------------------------------------------

    def _sandbox_config(self) -> SandboxConfig:
        base = self.config.sandbox
        return SandboxConfig(
            seed=base.seed,
            instruction_budget=base.instruction_budget,
            family=base.family,
            num_sms=base.num_sms,
            global_mem_bytes=base.global_mem_bytes,
        )

    def _injection_config(self) -> SandboxConfig:
        config = self._sandbox_config()
        if self.golden is not None:
            config.instruction_budget = hang_budget(
                self.golden, factor=self.config.hang_budget_factor
            )
        return config

    def _active_sm_ids(self) -> list[int]:
        """SMs that actually ran blocks in the golden run.

        A permanent fault pinned to an idle SM can never activate; real
        campaigns target populated SMs, so site selection draws from the
        golden run's active set.
        """
        if self.golden is not None and self.golden.active_sms:
            return list(self.golden.active_sms)
        return list(range(self.config.sandbox.num_sms or 8))


def _median(values) -> float:
    values = list(values)
    return statistics.median(values) if values else 0.0
