"""NVBitFI core: profilers, injectors, campaigns, outcome classification."""

from repro.core.adaptive import (
    AdaptiveSummary,
    SamplingPlan,
    StoppingRule,
)
from repro.core.analysis import (
    AvfEstimate,
    estimate_avf,
    format_avf_report,
    per_group_breakdown,
    per_kernel_breakdown,
    per_opcode_breakdown,
    permanent_avf_by_opcode,
)
from repro.core.bitflip import BitFlipModel, apply_mask, compute_mask
from repro.core.campaign import (
    Campaign,
    CampaignConfig,
    PermanentCampaignResult,
    PermanentResult,
    TransientCampaignResult,
    TransientResult,
)
from repro.core.dictionary import DictionaryEntry, FaultDictionary
from repro.core.engine import (
    CampaignEngine,
    EngineHooks,
    EngineMetrics,
    ParallelExecutor,
    SerialExecutor,
)
from repro.core.groups import InstructionGroup, base_group, in_group
from repro.core.injector import InjectionRecord, TransientInjectorTool
from repro.core.kinds import CampaignKind
from repro.core.parallel import run_transient_parallel
from repro.core.propagation import (
    MemoryTraceTool,
    PropagationTrace,
    compare_traces,
    trace_propagation,
)
from repro.core.resilience import (
    HARNESS_FAILURE_SYMPTOM,
    CampaignInterrupted,
    RetryPolicy,
    TaskFailure,
    quarantine_outcome,
)
from repro.core.result_store import (
    RESULTS_CSV_COLUMNS,
    ResultStore,
    render_results_csv,
)
from repro.core.store import CampaignStore, run_resumable_campaign
from repro.core.thread_target import ThreadTarget, ThreadTargetedInjectorTool
from repro.core.outcomes import Outcome, OutcomeRecord, classify
from repro.core.params import IntermittentParams, PermanentParams, TransientParams
from repro.core.pf_injector import IntermittentInjectorTool, PermanentInjectorTool
from repro.core.profile_data import KernelProfile, ProgramProfile
from repro.core.profiler import ProfilerTool, ProfilingMode
from repro.core.report import OutcomeTally, confidence_interval, error_margin
from repro.core.site_selection import (
    select_permanent_sites,
    select_transient_site,
    select_transient_sites,
)

__all__ = [
    "BitFlipModel",
    "compute_mask",
    "apply_mask",
    "InstructionGroup",
    "base_group",
    "in_group",
    "TransientParams",
    "PermanentParams",
    "IntermittentParams",
    "ProgramProfile",
    "KernelProfile",
    "ProfilerTool",
    "ProfilingMode",
    "TransientInjectorTool",
    "InjectionRecord",
    "PermanentInjectorTool",
    "IntermittentInjectorTool",
    "FaultDictionary",
    "DictionaryEntry",
    "Outcome",
    "OutcomeRecord",
    "classify",
    "OutcomeTally",
    "confidence_interval",
    "error_margin",
    "select_transient_site",
    "select_transient_sites",
    "select_permanent_sites",
    "Campaign",
    "CampaignConfig",
    "CampaignEngine",
    "CampaignKind",
    "EngineHooks",
    "EngineMetrics",
    "SerialExecutor",
    "ParallelExecutor",
    "TransientCampaignResult",
    "TransientResult",
    "PermanentCampaignResult",
    "PermanentResult",
    "RetryPolicy",
    "TaskFailure",
    "CampaignInterrupted",
    "HARNESS_FAILURE_SYMPTOM",
    "quarantine_outcome",
    "CampaignStore",
    "ResultStore",
    "RESULTS_CSV_COLUMNS",
    "render_results_csv",
    "run_resumable_campaign",
    "run_transient_parallel",
    "AvfEstimate",
    "estimate_avf",
    "format_avf_report",
    "per_kernel_breakdown",
    "per_opcode_breakdown",
    "per_group_breakdown",
    "permanent_avf_by_opcode",
    "MemoryTraceTool",
    "PropagationTrace",
    "compare_traces",
    "trace_propagation",
    "ThreadTarget",
    "ThreadTargetedInjectorTool",
    "StoppingRule",
    "SamplingPlan",
    "AdaptiveSummary",
]
