"""The campaign engine: the one place the injection-run loop lives.

Historically the per-injection loop existed three times — in
``Campaign.run_transient``, in ``run_transient_parallel`` and in
``run_resumable_campaign`` — and the copies diverged (the parallel worker
rebuilt its sandbox from ``seed`` + ``instruction_budget`` only, silently
dropping ``family``, ``num_sms``, ``global_mem_bytes`` and ``extra_env``).
:class:`CampaignEngine` owns the golden → profile → select → inject →
classify pipeline exactly once; the legacy entry points are thin wrappers
over it, so serial, parallel and resumed campaigns can never drift apart
again.

Orthogonal knobs plug into the engine:

* an **executor** — :class:`SerialExecutor` runs injections in-process;
  :class:`ParallelExecutor` fans frozen, picklable work items out over a
  ``ProcessPoolExecutor`` with configurable chunking, carrying the *full*
  :class:`~repro.runner.sandbox.SandboxSpec` to every worker;
* an optional **store** — a :class:`~repro.core.store.CampaignStore`; each
  injection is persisted the moment it completes (not at campaign end), so
  a killed campaign — serial or parallel — resumes where it stopped;
* **hooks** — :class:`EngineHooks` receives per-phase timings and a
  per-injection progress callback carrying the running
  :class:`~repro.core.report.OutcomeTally`;
* a **tracer** — a :class:`repro.obs.Tracer`; every pipeline phase becomes
  a span, every sandboxed run a nested ``run`` span (parallel workers
  buffer theirs and ship them back with results, so the parent trace stays
  complete), and every classified injection a point event carrying its
  parameters, outcome and instruction count;
* a **metrics registry** — a :class:`repro.obs.MetricsRegistry` collecting
  phase seconds, outcome counters, per-run instruction histograms and the
  GPU simulator's cheap counters (instructions retired, warps launched,
  divergence-stack high-water).  :class:`EngineMetrics` remains as a thin
  compatibility view over the registry.

Prefer the stable facade in :mod:`repro.api` for programmatic use.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, Iterable, Iterator, Sequence

from repro.arch.families import arch_by_name
from repro.core.campaign import (
    CampaignConfig,
    PermanentCampaignResult,
    PermanentResult,
    TransientCampaignResult,
    TransientResult,
    _median,
)
from repro.core.injector import InjectionRecord, TransientInjectorTool
from repro.core.outcomes import classify
from repro.core.params import IntermittentParams, PermanentParams, TransientParams
from repro.core.pf_injector import IntermittentInjectorTool, PermanentInjectorTool
from repro.core.profile_data import ProgramProfile
from repro.core.profiler import ProfilerTool, ProfilingMode
from repro.core.report import OutcomeTally
from repro.core.site_selection import select_permanent_sites, select_transient_sites
from repro.errors import ReproError
from repro.obs import (
    INSTRUCTION_BUCKETS,
    NULL_TRACER,
    MemorySink,
    MetricsRegistry,
    Tracer,
)
from repro.runner.app import Application
from repro.runner.artifacts import RunArtifacts
from repro.runner.golden import capture_golden, hang_budget
from repro.runner.sandbox import SandboxConfig, SandboxSpec, run_app
from repro.sass.isa import opcode_by_id
from repro.utils.rng import SeedSequenceStream
from repro.workloads import WORKLOADS, get_workload

# -- work items (what crosses the process boundary) ---------------------------


from dataclasses import dataclass, field


@dataclass(frozen=True)
class InjectionTask:
    """One injection run, frozen and picklable.

    ``workload`` is a registry name so workers rebuild the application
    without pickling live device state; ``sandbox`` is the *complete*
    sandbox snapshot.
    """

    index: int
    workload: str
    kind: str  # "transient" | "permanent" | "intermittent"
    params: TransientParams | PermanentParams | IntermittentParams
    sandbox: SandboxSpec


@dataclass
class InjectionOutput:
    """What a worker hands back: raw artifacts, classified by the parent.

    ``events`` carries the worker's buffered trace events (run spans);
    the parent tracer adopts them via :meth:`repro.obs.Tracer.ingest`, so
    the campaign trace is complete even when runs execute in other
    processes.
    """

    index: int
    record: InjectionRecord | None
    activations: int
    artifacts: RunArtifacts
    events: list[dict] = field(default_factory=list)


def execute_task(
    task: InjectionTask, app: Application | None = None, tracer: Tracer | None = None
) -> InjectionOutput:
    """Run one injection (the worker body).

    Classification happens in the parent, which holds the golden run; the
    worker only reruns the app with the right injector attached, on a
    sandbox rebuilt from the task's full :class:`SandboxSpec`.  With no
    ``tracer`` (the cross-process case), run spans are buffered into the
    output's ``events`` for the parent to ingest; with a parent tracer
    (serial execution), spans go straight into the live trace.
    """
    buffer = None
    if tracer is None:
        buffer = MemorySink()
        tracer = Tracer(sink=buffer)
    if app is None:
        app = get_workload(task.workload)
    if task.kind == "transient":
        injector: TransientInjectorTool | PermanentInjectorTool = (
            TransientInjectorTool(task.params)
        )
    elif task.kind == "permanent":
        injector = PermanentInjectorTool(task.params)
    elif task.kind == "intermittent":
        injector = IntermittentInjectorTool(task.params)
    else:  # pragma: no cover
        raise ReproError(f"unknown injection kind {task.kind!r}")
    artifacts = run_app(
        app, preload=[injector], config=task.sandbox.config(), tracer=tracer
    )
    return InjectionOutput(
        index=task.index,
        record=getattr(injector, "record", None),
        activations=getattr(injector, "activations", 0),
        artifacts=artifacts,
        events=buffer.events if buffer is not None else [],
    )


def _execute_chunk(tasks: list[InjectionTask]) -> list[InjectionOutput]:
    """Worker entry point for the process pool: one pickled chunk of tasks."""
    return [execute_task(task) for task in tasks]


# -- executors ----------------------------------------------------------------


class SerialExecutor:
    """Runs injections one after another in the calling process."""

    def run(
        self,
        tasks: Sequence[InjectionTask],
        app: Application | None = None,
        tracer: Tracer | None = None,
    ) -> Iterator[InjectionOutput]:
        for task in tasks:
            yield execute_task(task, app, tracer=tracer)


class ParallelExecutor:
    """Fans injections out over a ``ProcessPoolExecutor``.

    ``chunksize`` trades dispatch overhead against checkpoint granularity:
    results are yielded (and therefore persisted) as each chunk completes,
    so ``chunksize=1`` (the default) checkpoints every single injection.
    Workers buffer their trace events and ship them back inside each
    :class:`InjectionOutput` (the ``tracer`` argument is parent-side only).
    """

    def __init__(self, max_workers: int | None = None, chunksize: int = 1) -> None:
        if chunksize < 1:
            raise ValueError("chunksize must be >= 1")
        self.max_workers = max_workers
        self.chunksize = chunksize

    def run(
        self,
        tasks: Sequence[InjectionTask],
        app: Application | None = None,
        tracer: Tracer | None = None,
    ) -> Iterator[InjectionOutput]:
        tasks = list(tasks)
        if not tasks:
            return
        unregistered = {t.workload for t in tasks if t.workload not in WORKLOADS}
        if unregistered:
            raise ReproError(
                "parallel execution needs registry workloads (workers rebuild "
                f"the app by name); unknown: {sorted(unregistered)}"
            )
        chunks = [
            tasks[start : start + self.chunksize]
            for start in range(0, len(tasks), self.chunksize)
        ]
        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            pending = {pool.submit(_execute_chunk, chunk) for chunk in chunks}
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    yield from future.result()


Executor = SerialExecutor | ParallelExecutor


# -- progress hooks and metrics -----------------------------------------------


class EngineHooks:
    """Progress callbacks; override any subset. Default methods do nothing."""

    def on_phase(self, phase: str, seconds: float) -> None:
        """A pipeline phase ("golden", "profile", "select", "inject") ended."""

    def on_injection(
        self,
        index: int,
        outcome,
        completed: int,
        total: int,
        tally: OutcomeTally,
    ) -> None:
        """One injection was classified (``tally`` = outcome counts so far)."""


class EngineMetrics:
    """Compatibility view over the engine's :class:`~repro.obs.MetricsRegistry`.

    Historically a standalone dataclass the engine mutated; the numbers now
    live in the shared metrics registry (``engine.*`` / ``campaign.*``
    names), and this shim keeps the old field API — reads and writes both —
    so existing callers and the observability layer see a single source of
    truth.
    """

    _DONE = "engine.injections.done"
    _LOADED = "engine.injections.loaded"
    _TOTAL = "engine.injections.total"
    _INJECT_SECONDS = "engine.inject.seconds"
    _PHASE_PREFIX = "engine.phase."
    _PHASE_SUFFIX = ".seconds"

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        tally: OutcomeTally | None = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tally = tally if tally is not None else OutcomeTally()

    # -- field compatibility (reads and writes hit the registry) --------------

    @property
    def phase_seconds(self) -> dict[str, float]:
        values = self.registry.counter_values(self._PHASE_PREFIX)
        return {
            name[: -len(self._PHASE_SUFFIX)]: seconds
            for name, seconds in values.items()
            if name.endswith(self._PHASE_SUFFIX)
        }

    def add_phase_seconds(self, name: str, seconds: float) -> None:
        self.registry.counter(
            f"{self._PHASE_PREFIX}{name}{self._PHASE_SUFFIX}"
        ).inc(seconds)

    @property
    def injections_done(self) -> int:
        return int(self.registry.counter(self._DONE).value)

    @injections_done.setter
    def injections_done(self, value: int) -> None:
        self.registry.counter(self._DONE).value = float(value)

    @property
    def injections_loaded(self) -> int:
        return int(self.registry.counter(self._LOADED).value)

    @injections_loaded.setter
    def injections_loaded(self, value: int) -> None:
        self.registry.counter(self._LOADED).value = float(value)

    @property
    def injections_total(self) -> int:
        return int(self.registry.gauge(self._TOTAL).value)

    @injections_total.setter
    def injections_total(self, value: int) -> None:
        self.registry.gauge(self._TOTAL).set(value)

    @property
    def inject_seconds(self) -> float:
        return self.registry.gauge(self._INJECT_SECONDS).value

    @inject_seconds.setter
    def inject_seconds(self, value: float) -> None:
        self.registry.gauge(self._INJECT_SECONDS).set(value)

    # -- derived ---------------------------------------------------------------

    @property
    def injections_per_second(self) -> float:
        if self.inject_seconds <= 0:
            return 0.0
        return self.injections_done / self.inject_seconds

    def summary(self) -> str:
        phases = "  ".join(
            f"{name}={seconds:.2f}s" for name, seconds in self.phase_seconds.items()
        )
        return (
            f"{phases}  "
            f"ran={self.injections_done}/{self.injections_total} "
            f"(resumed {self.injections_loaded})  "
            f"{self.injections_per_second:.1f} inj/s"
        )


# -- the engine ---------------------------------------------------------------


class CampaignEngine:
    """Owns the golden → profile → select → inject → classify pipeline."""

    def __init__(
        self,
        app: Application | str,
        config: CampaignConfig | None = None,
        executor: Executor | None = None,
        store=None,  # CampaignStore | None (kept untyped to avoid an import cycle)
        hooks: EngineHooks | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.app = get_workload(app) if isinstance(app, str) else app
        self.config = config or CampaignConfig()
        self.executor = executor or SerialExecutor()
        self.store = store
        self.hooks = hooks or EngineHooks()
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.registry = metrics if metrics is not None else MetricsRegistry()
        self.metrics = EngineMetrics(registry=self.registry)
        self._stream = SeedSequenceStream(self.config.seed, path=self.app.name)
        self.golden: RunArtifacts | None = None
        self.profile: ProgramProfile | None = None
        self.golden_time = 0.0
        self.profile_time = 0.0

    # -- pipeline phases --------------------------------------------------------

    def run_golden(self) -> RunArtifacts:
        with self.tracer.span("golden", workload=self.app.name):
            self.golden = capture_golden(
                self.app, self._sandbox_config(), tracer=self.tracer
            )
        self.golden_time = self.golden.wall_time
        self._record_run_metrics(self.golden)
        if self.store is not None:
            self.store.save_golden(self.golden)
        self._phase("golden", self.golden_time)
        return self.golden

    def run_profile(self, mode: ProfilingMode | None = None) -> ProgramProfile:
        if self.golden is None:
            self.run_golden()
        mode = mode or self.config.profiling
        profiler = ProfilerTool(mode)
        with self.tracer.span("profile", workload=self.app.name, mode=mode.value):
            artifacts = run_app(
                self.app,
                preload=[profiler],
                config=self._injection_config(),
                tracer=self.tracer,
            )
        if artifacts.crashed or artifacts.timed_out:
            raise RuntimeError(
                f"profiling run failed unexpectedly: {artifacts.summary()}"
            )
        self.profile = profiler.profile
        self.profile.workload = self.app.name
        self.profile_time = artifacts.wall_time
        self._record_run_metrics(artifacts)
        if self.store is not None:
            self.store.save_profile(self.profile)
        self._phase("profile", self.profile_time)
        return self.profile

    def select_sites(self, count: int | None = None) -> list[TransientParams]:
        if self.profile is None:
            self.run_profile()
        count = count if count is not None else self.config.num_transient
        started = time.perf_counter()
        with self.tracer.span(
            "select",
            kind="transient",
            count=count,
            group=self.config.group.name,
            model=self.config.model.name,
        ):
            rng = self._stream.child("sites").generator()
            sites = select_transient_sites(
                self.profile,
                self.config.group,
                self.config.model,
                count,
                rng,
            )
        self._phase("select", time.perf_counter() - started)
        return sites

    def select_permanent(self) -> list[PermanentParams]:
        if self.profile is None:
            self.run_profile()
        with self.tracer.span("select", kind="permanent"):
            rng = self._stream.child("permanent").generator()
            return select_permanent_sites(
                self.profile,
                rng,
                sm_ids=self._active_sm_ids(),
                num_sms=self.device_num_sms(),
            )

    # -- campaigns --------------------------------------------------------------

    def run_transient(
        self, sites: list[TransientParams] | None = None
    ) -> TransientCampaignResult:
        """The full transient campaign (Figure 1 for N faults)."""
        if sites is None:
            sites = self.select_sites()
        if self.golden is None:
            self.run_golden()

        loaded = self._load_completed(
            sites,
            completed=self.store.completed_injections() if self.store else [],
            load=lambda index: self.store.load_injection(index),
        )

        def build(output: InjectionOutput) -> TransientResult:
            outcome = classify(self.app, self.golden, output.artifacts)
            return TransientResult(
                params=sites[output.index],
                record=output.record,
                outcome=outcome,
                wall_time=output.artifacts.wall_time,
                instructions=output.artifacts.instructions_executed,
            )

        results = self._inject(
            sites,
            kind="transient",
            loaded=loaded,
            build=build,
            save=(
                (lambda index, item: self.store.save_injection(index, item))
                if self.store
                else None
            ),
        )
        tally = OutcomeTally()
        for item in results:
            tally.add(item.outcome)
        result = TransientCampaignResult(
            results=results,
            tally=tally,
            golden_time=self.golden_time,
            profile_time=self.profile_time,
            median_injection_time=_median(r.wall_time for r in results),
        )
        if self.store is not None:
            self.store.save_results_csv(result)
        return result

    def run_permanent(
        self, sites: list[PermanentParams] | None = None
    ) -> PermanentCampaignResult:
        """One injection per executed opcode, outcomes weighted by dynamic count."""
        if self.profile is None:
            self.run_profile()
        if sites is None:
            sites = self.select_permanent()
        total_dynamic = max(self.profile.total_count(), 1)

        loaded = self._load_completed(
            sites,
            completed=(
                self.store.completed_permanent_injections() if self.store else []
            ),
            load=lambda index: self.store.load_permanent_injection(index),
        )

        def build(output: InjectionOutput) -> PermanentResult:
            params = sites[output.index]
            opcode = opcode_by_id(params.opcode_id).name
            outcome = classify(self.app, self.golden, output.artifacts)
            return PermanentResult(
                params=params,
                opcode=opcode,
                weight=self.profile.opcode_count(opcode) / total_dynamic,
                activations=output.activations,
                outcome=outcome,
                wall_time=output.artifacts.wall_time,
            )

        results = self._inject(
            sites,
            kind="permanent",
            loaded=loaded,
            build=build,
            save=(
                (lambda index, item: self.store.save_permanent_injection(index, item))
                if self.store
                else None
            ),
        )
        tally = OutcomeTally()
        for item in results:
            tally.add(item.outcome, weight=item.weight)
        return PermanentCampaignResult(
            results=results,
            tally=tally,
            golden_time=self.golden_time,
            median_injection_time=_median(r.wall_time for r in results),
        )

    def run_intermittent(
        self, sites: list[IntermittentParams]
    ) -> list[PermanentResult]:
        """Intermittent-fault runs (§V extension), through the same executor."""
        if self.golden is None:
            self.run_golden()

        def build(output: InjectionOutput) -> PermanentResult:
            params = sites[output.index]
            outcome = classify(self.app, self.golden, output.artifacts)
            return PermanentResult(
                params=params.permanent,
                opcode=opcode_by_id(params.permanent.opcode_id).name,
                weight=1.0,
                activations=output.activations,
                outcome=outcome,
                wall_time=output.artifacts.wall_time,
            )

        return self._inject(
            sites, kind="intermittent", loaded={}, build=build, save=None
        )

    # -- the one injection loop -------------------------------------------------

    def _inject(
        self,
        sites: Sequence,
        kind: str,
        loaded: dict[int, object],
        build: Callable[[InjectionOutput], object],
        save: Callable[[int, object], None] | None,
    ) -> list:
        """Run every site not already in ``loaded``; return results in site order.

        Completed injections are handed to ``save`` the moment they finish
        (chunk-by-chunk under the parallel executor), so an interrupted
        campaign loses at most the in-flight chunk.  Every injection —
        resumed ones included — emits one ``injection`` trace event, so the
        events in a trace sum to the campaign's final tally exactly.
        """
        spec = self._injection_spec()
        tasks = [
            InjectionTask(index, self.app.name, kind, site, spec)
            for index, site in enumerate(sites)
            if index not in loaded
        ]
        by_index: dict[int, object] = dict(loaded)
        self.metrics.injections_total = len(sites)
        self.metrics.injections_loaded = len(loaded)
        started = time.perf_counter()
        with self.tracer.span(
            "inject", kind=kind, total=len(sites), fresh=len(tasks)
        ):
            for index in sorted(loaded):
                item = loaded[index]
                self.metrics.tally.add(item.outcome)
                self._count_outcome(item)
                self._emit_injection_event(index, item, kind, resumed=True)
            for output in self.executor.run(tasks, app=self.app, tracer=self.tracer):
                item = build(output)
                by_index[output.index] = item
                if save is not None:
                    save(output.index, item)
                self.tracer.ingest(output.events)
                self._emit_injection_event(output.index, item, kind, output=output)
                self._count_outcome(item)
                self._record_run_metrics(output.artifacts, injection=True)
                self.metrics.injections_done += 1
                self.metrics.inject_seconds = time.perf_counter() - started
                self.metrics.tally.add(item.outcome)
                self.hooks.on_injection(
                    output.index,
                    item.outcome,
                    len(by_index),
                    len(sites),
                    self.metrics.tally,
                )
        self._phase("inject", time.perf_counter() - started)
        return [by_index[index] for index in range(len(sites))]

    def _load_completed(
        self,
        sites: Sequence,
        completed: Iterable[int],
        load: Callable[[int], object],
    ) -> dict[int, object]:
        """Resume support: pull stored results whose params match the plan."""
        loaded: dict[int, object] = {}
        for index in completed:
            if index >= len(sites):
                continue
            stored = load(index)
            if stored.params != sites[index]:
                raise ReproError(
                    f"stored injection {index} was produced by different "
                    "campaign parameters; use a fresh study directory"
                )
            loaded[index] = stored
        return loaded

    # -- observability plumbing --------------------------------------------------

    def _emit_injection_event(
        self,
        index: int,
        item,
        kind: str,
        output: InjectionOutput | None = None,
        resumed: bool = False,
    ) -> None:
        """One point event per classified injection (params + outcome + count)."""
        if not self.tracer.enabled:
            return
        instructions = getattr(item, "instructions", None)
        if instructions is None:
            instructions = (
                output.artifacts.instructions_executed if output is not None else 0
            )
        attrs = {
            "index": index,
            "kind": kind,
            "resumed": resumed,
            "outcome": item.outcome.outcome.value,
            "symptom": item.outcome.symptom,
            "potential_due": item.outcome.potential_due,
            "weight": getattr(item, "weight", 1.0),
            "instructions": instructions,
        }
        attrs.update(_params_attrs(getattr(item, "params", None)))
        record = getattr(item, "record", None)
        if record is not None:
            attrs["injected"] = record.injected
            if record.injected:
                attrs["opcode"] = record.opcode
                attrs["sm_id"] = record.sm_id
                attrs["pc"] = record.pc
        self.tracer.event("injection", **attrs)

    def _count_outcome(self, item) -> None:
        weight = getattr(item, "weight", 1.0)
        self.registry.counter(
            f"campaign.outcome.{item.outcome.outcome.value}"
        ).inc(weight)
        if item.outcome.potential_due:
            self.registry.counter("campaign.outcome.potential_due").inc(weight)

    def _record_run_metrics(self, artifacts: RunArtifacts, injection: bool = False) -> None:
        """Fold one sandboxed run's device counters into the registry."""
        reg = self.registry
        reg.counter("sandbox.runs").inc()
        reg.counter("gpusim.instructions_retired").inc(
            artifacts.instructions_executed
        )
        reg.counter("gpusim.cycles").inc(artifacts.cycles)
        reg.counter("gpusim.warps_launched").inc(artifacts.warps_launched)
        reg.gauge("gpusim.divergence_depth_high_water").set_max(
            artifacts.divergence_depth_high_water
        )
        if injection:
            reg.histogram(
                "campaign.injection.instructions", INSTRUCTION_BUCKETS
            ).observe(artifacts.instructions_executed)
            reg.histogram("campaign.injection.seconds").observe(artifacts.wall_time)

    # -- configuration helpers --------------------------------------------------

    def device_num_sms(self) -> int:
        """SM count of the configured device (explicit or the family's)."""
        sandbox = self.config.sandbox
        if sandbox.num_sms is not None:
            return sandbox.num_sms
        return arch_by_name(sandbox.family).num_sms

    def _sandbox_config(self) -> SandboxConfig:
        return self.config.sandbox.clone()

    def _injection_config(self) -> SandboxConfig:
        config = self._sandbox_config()
        if self.golden is not None:
            config.instruction_budget = hang_budget(
                self.golden, factor=self.config.hang_budget_factor
            )
        return config

    def _injection_spec(self) -> SandboxSpec:
        return self._injection_config().spec()

    def _active_sm_ids(self) -> list[int]:
        """SMs that actually ran blocks in the golden run.

        A permanent fault pinned to an idle SM can never activate; real
        campaigns target populated SMs, so site selection draws from the
        golden run's active set, falling back to every SM of the configured
        device.
        """
        if self.golden is not None and self.golden.active_sms:
            return list(self.golden.active_sms)
        return list(range(self.device_num_sms()))

    def _phase(self, name: str, seconds: float) -> None:
        self.metrics.add_phase_seconds(name, seconds)
        self.hooks.on_phase(name, seconds)


def _params_attrs(params) -> dict:
    """Flatten an injection-parameter record into JSON-friendly event attrs."""
    if isinstance(params, TransientParams):
        return {
            "group": params.group.name,
            "model": params.model.name,
            "kernel": params.kernel_name,
            "kernel_count": params.kernel_count,
            "instruction_count": params.instruction_count,
        }
    if isinstance(params, PermanentParams):
        return {
            "sm_id_target": params.sm_id,
            "lane_id": params.lane_id,
            "bit_mask": params.bit_mask,
            "opcode_id": params.opcode_id,
        }
    if isinstance(params, IntermittentParams):
        attrs = _params_attrs(params.permanent)
        attrs.update(process=params.process,
                     activation_probability=params.activation_probability)
        return attrs
    return {}
