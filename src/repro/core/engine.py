"""The campaign engine: the one place the injection-run loop lives.

Historically the per-injection loop existed three times — in
``Campaign.run_transient``, in ``run_transient_parallel`` and in
``run_resumable_campaign`` — and the copies diverged (the parallel worker
rebuilt its sandbox from ``seed`` + ``instruction_budget`` only, silently
dropping ``family``, ``num_sms``, ``global_mem_bytes`` and ``extra_env``).
:class:`CampaignEngine` owns the golden → profile → select → inject →
classify pipeline exactly once; the legacy entry points are thin wrappers
over it, so serial, parallel and resumed campaigns can never drift apart
again.

Orthogonal knobs plug into the engine:

* an **executor** — :class:`SerialExecutor` runs injections in-process;
  :class:`ParallelExecutor` fans frozen, picklable work items out over a
  ``ProcessPoolExecutor`` with configurable chunking, carrying the *full*
  :class:`~repro.runner.sandbox.SandboxSpec` to every worker;
* an optional **store** — a :class:`~repro.core.store.CampaignStore`; each
  injection is persisted the moment it completes (not at campaign end), so
  a killed campaign — serial or parallel — resumes where it stopped;
* **hooks** — :class:`EngineHooks` receives per-phase timings and a
  per-injection progress callback carrying the running
  :class:`~repro.core.report.OutcomeTally`;
* a **tracer** — a :class:`repro.obs.Tracer`; every pipeline phase becomes
  a span, every sandboxed run a nested ``run`` span (parallel workers
  buffer theirs and ship them back with results, so the parent trace stays
  complete), and every classified injection a point event carrying its
  parameters, outcome and instruction count;
* a **metrics registry** — a :class:`repro.obs.MetricsRegistry` collecting
  phase seconds, outcome counters, per-run instruction histograms and the
  GPU simulator's cheap counters (instructions retired, warps launched,
  divergence-stack high-water).  :class:`EngineMetrics` remains as a thin
  compatibility view over the registry;
* a **retry policy** — a :class:`~repro.core.resilience.RetryPolicy`
  (``CampaignConfig.retry``); a task whose worker raises, dies or hangs is
  retried with deterministic backoff and, once attempts are exhausted,
  *quarantined* as a synthesized Table V DUE ("Monitor detection") instead
  of aborting the campaign — K misbehaving tasks out of N still produce N
  results, in every executor.

Prefer the stable facade in :mod:`repro.api` for programmatic use.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
import time
import weakref
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Iterator, Sequence

from repro.arch.families import arch_by_name
from repro.core.adaptive import (
    AdaptiveCheckpoint,
    AdaptiveState,
    SamplingPlan,
)
from repro.core.campaign import (
    CampaignConfig,
    PermanentCampaignResult,
    PermanentResult,
    TransientCampaignResult,
    TransientResult,
    _median,
)
from repro.core.injector import InjectionRecord, TransientInjectorTool
from repro.core.kinds import CampaignKind
from repro.core.outcomes import classify
from repro.core.params import IntermittentParams, PermanentParams, TransientParams
from repro.core.pf_injector import IntermittentInjectorTool, PermanentInjectorTool
from repro.core.profile_data import ProgramProfile
from repro.core.profiler import ProfilerTool, ProfilingMode
from repro.core.report import OutcomeTally
from repro.core.resilience import (
    CampaignInterrupted,
    RetryPolicy,
    TaskFailure,
    format_error,
    quarantine_outcome,
)
from repro.core.result_store import ResultStore
from repro.core.site_selection import (
    select_permanent_sites,
    select_stratified_sites,
    select_transient_sites,
    stratum_weights,
)
from repro.errors import ReproError
from repro.gpusim.replay import (
    ReplayCursor,
    ReplayRecorder,
    ReplayRef,
    save_replay_log,
)
from repro.obs import (
    INSTRUCTION_BUCKETS,
    LAUNCH_BUCKETS,
    NULL_TRACER,
    MemorySink,
    MetricsRegistry,
    Tracer,
)
from repro.runner.app import Application
from repro.runner.artifacts import RunArtifacts
from repro.runner.golden import capture_golden, hang_budget
from repro.runner.sandbox import SandboxConfig, SandboxSpec, run_app
from repro.sass.isa import opcode_by_id
from repro.utils.rng import SeedSequenceStream
from repro.workloads import WORKLOADS, get_workload

# -- work items (what crosses the process boundary) ---------------------------


from dataclasses import dataclass, field


@dataclass(frozen=True)
class InjectionTask:
    """One injection run, frozen and picklable.

    ``workload`` is a registry name so workers rebuild the application
    without pickling live device state; ``sandbox`` is the *complete*
    sandbox snapshot.  ``replay`` (when fast-forward is on) points at the
    campaign's golden replay log and the task's target launch; workers thaw
    it into a live cursor through a shared per-process cache.
    """

    index: int
    workload: str
    kind: str  # "transient" | "permanent" | "intermittent"
    params: TransientParams | PermanentParams | IntermittentParams
    sandbox: SandboxSpec
    replay: ReplayRef | None = None


@dataclass
class InjectionOutput:
    """What a worker hands back: raw artifacts, classified by the parent.

    ``events`` carries the worker's buffered trace events (run spans);
    the parent tracer adopts them via :meth:`repro.obs.Tracer.ingest`, so
    the campaign trace is complete even when runs execute in other
    processes.
    """

    index: int
    record: InjectionRecord | None
    activations: int
    artifacts: RunArtifacts
    events: list[dict] = field(default_factory=list)
    #: True when the run was serviced by a snapshot fork child (a
    #: copy-on-write resume from a shared replayed checkpoint); feeds the
    #: ``engine.snapshot.forks`` counter.
    forked: bool = False
    #: True when the fork was an *in-launch* overlay checkpoint (batched
    #: multi-fault pass, see :mod:`repro.core.batch_injector`); feeds the
    #: ``engine.batch.checkpoints`` counter.
    batch: bool = False
    #: Tagged on exactly one sibling per batch group, marking "this
    #: group's target launch was simulated once for all its faults";
    #: feeds the ``engine.batch.launches_shared`` counter.
    batch_shared: bool = False


def execute_task(
    task: InjectionTask, app: Application | None = None, tracer: Tracer | None = None
) -> InjectionOutput:
    """Run one injection (the worker body).

    Classification happens in the parent, which holds the golden run; the
    worker only reruns the app with the right injector attached, on a
    sandbox rebuilt from the task's full :class:`SandboxSpec`.  With no
    ``tracer`` (the cross-process case), run spans are buffered into the
    output's ``events`` for the parent to ingest; with a parent tracer
    (serial execution), spans go straight into the live trace.
    """
    buffer = None
    if tracer is None:
        buffer = MemorySink()
        tracer = Tracer(sink=buffer)
    if app is None:
        app = get_workload(task.workload)
    if task.kind == "transient":
        injector: TransientInjectorTool | PermanentInjectorTool = (
            TransientInjectorTool(task.params)
        )
    elif task.kind == "permanent":
        injector = PermanentInjectorTool(task.params)
    elif task.kind == "intermittent":
        injector = IntermittentInjectorTool(task.params)
    else:  # pragma: no cover
        raise ReproError(f"unknown injection kind {task.kind!r}")
    # Thaw the fast-forward reference (if any) into a live cursor.  The
    # underlying log is loaded once per process and shared read-only; an
    # unreadable log degrades to full simulation rather than failing the run.
    cursor = task.replay.cursor() if task.replay is not None else None
    artifacts = run_app(
        app,
        preload=[injector],
        config=task.sandbox.config(),
        tracer=tracer,
        replay=cursor,
    )
    return InjectionOutput(
        index=task.index,
        record=getattr(injector, "record", None),
        activations=getattr(injector, "activations", 0),
        artifacts=artifacts,
        events=buffer.events if buffer is not None else [],
    )


def _execute_chunk(tasks: list[InjectionTask]) -> list[InjectionOutput]:
    """Worker entry point for the process pool: one pickled chunk of tasks."""
    return [execute_task(task) for task in tasks]


# -- executors ----------------------------------------------------------------

# What executors yield: a completed injection, or a task that exhausted its
# retry budget (the engine quarantines or raises, per the policy).
ExecutorItem = "InjectionOutput | TaskFailure"

# A retry notification: (failure so far, backoff seconds before the re-run).
OnRetry = Callable[[TaskFailure, float], None]


def _noop_retry(failure: TaskFailure, delay: float) -> None:
    return None


class SerialExecutor:
    """Runs injections one after another in the calling process.

    Failures follow the same retry/quarantine path as the parallel
    executor: a task that raises is re-attempted under the
    :class:`~repro.core.resilience.RetryPolicy` and yielded as a
    :class:`~repro.core.resilience.TaskFailure` once attempts are
    exhausted.  (``task_timeout`` cannot preempt an in-process run; the
    in-sim instruction budget is the hang detector here.)
    """

    def __init__(self, retry: RetryPolicy | None = None) -> None:
        self.retry = retry

    def run(
        self,
        tasks: Sequence[InjectionTask],
        app: Application | None = None,
        tracer: Tracer | None = None,
        retry: RetryPolicy | None = None,
        on_retry: OnRetry | None = None,
    ) -> Iterator[InjectionOutput | TaskFailure]:
        policy = self.retry if self.retry is not None else (retry or RetryPolicy())
        notify = on_retry or _noop_retry
        for task in tasks:
            attempt = 0
            while True:
                attempt += 1
                try:
                    output = execute_task(task, app, tracer=tracer)
                except Exception as exc:
                    failure = TaskFailure(task.index, attempt, format_error(exc))
                    if policy.should_retry(attempt):
                        delay = policy.delay(attempt, key=task.index)
                        notify(failure, delay)
                        if delay:
                            time.sleep(delay)
                        continue
                    yield failure
                    break
                else:
                    yield output
                    break


class _Flight:
    """One chunk in the air: which chunk, its deadline, and whether it flew
    alone (solo flights give exact blame when the pool breaks)."""

    __slots__ = ("chunk_id", "deadline", "solo")

    def __init__(self, chunk_id: int, deadline: float | None, solo: bool) -> None:
        self.chunk_id = chunk_id
        self.deadline = deadline
        self.solo = solo


def _kill_pool_processes(pool: ProcessPoolExecutor) -> None:
    """Terminate a pool's workers (hung-task recovery).

    ``ProcessPoolExecutor`` has no public kill switch — ``shutdown`` waits
    for running tasks, which is exactly what a hung worker never finishes.
    Killing the processes flips the pool into its broken state, failing
    every in-flight future with ``BrokenProcessPool``, which the run loop
    then classifies via its deadline bookkeeping.
    """
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:  # racing a worker that already exited
            pass


class ParallelExecutor:
    """Fans injections out over a ``ProcessPoolExecutor``.

    ``chunksize`` trades dispatch overhead against checkpoint granularity:
    results are yielded (and therefore persisted) as each chunk completes,
    so ``chunksize=1`` (the default) checkpoints every single injection.
    Workers buffer their trace events and ship them back inside each
    :class:`InjectionOutput` (the ``tracer`` argument is parent-side only).

    Failure handling (the campaign-monitor role of the paper's scripts):

    * a chunk whose worker **raises** fails only itself; it is retried with
      deterministic backoff and yielded as
      :class:`~repro.core.resilience.TaskFailure` records once the
      :class:`~repro.core.resilience.RetryPolicy` is exhausted;
    * a worker **death** breaks the whole pool (every in-flight future gets
      ``BrokenProcessPool``); the pool is respawned and the victims are
      re-flown *one at a time*, so blame lands exactly on the chunk that
      kills its worker — innocent co-flights are re-run without being
      charged an attempt;
    * a chunk that exceeds the policy's parent-side **wall-clock deadline**
      (``task_timeout`` seconds per task) has its workers killed and is
      charged a ``"timeout"`` failure — the process-level complement of the
      in-sim instruction budget.  The charge lands only once the chunk has
      hung *solo*: a chunk merely queued behind a stalled neighbour shares
      its wall-clock and is re-flown alone, uncharged.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        chunksize: int = 1,
        retry: RetryPolicy | None = None,
    ) -> None:
        if chunksize < 1:
            raise ValueError("chunksize must be >= 1")
        self.max_workers = max_workers
        self.chunksize = chunksize
        self.retry = retry

    def run(
        self,
        tasks: Sequence[InjectionTask],
        app: Application | None = None,
        tracer: Tracer | None = None,
        retry: RetryPolicy | None = None,
        on_retry: OnRetry | None = None,
    ) -> Iterator[InjectionOutput | TaskFailure]:
        policy = self.retry if self.retry is not None else (retry or RetryPolicy())
        notify = on_retry or _noop_retry
        tasks = list(tasks)
        if not tasks:
            return
        unregistered = {t.workload for t in tasks if t.workload not in WORKLOADS}
        if unregistered:
            raise ReproError(
                "parallel execution needs registry workloads (workers rebuild "
                f"the app by name); unknown: {sorted(unregistered)}"
            )
        chunks = [
            tasks[start : start + self.chunksize]
            for start in range(0, len(tasks), self.chunksize)
        ]

        queue: deque[int] = deque(range(len(chunks)))  # awaiting first/clean flight
        suspects: deque[int] = deque()  # re-flown solo after a pool break
        delayed: list[tuple[float, int]] = []  # (ready time, chunk) backoff retries
        failures: dict[int, int] = {cid: 0 for cid in range(len(chunks))}
        expired: set[int] = set()  # chunks whose deadline we killed the pool for
        flights: dict = {}  # Future -> _Flight
        respawns = 0
        # A poison chunk costs at most ~2 respawns per attempt (one mass
        # break + one solo break); anything past this bound is a harness bug.
        respawn_cap = 2 * policy.max_attempts * len(chunks) + 4

        def deadline_for(cid: int) -> float | None:
            if not policy.task_timeout:
                return None
            return time.monotonic() + policy.task_timeout * len(chunks[cid])

        def charge(cid: int, reason: str, error: str) -> Iterator[TaskFailure]:
            """Count one failed attempt; schedule a retry or yield failures."""
            failures[cid] += 1
            attempt = failures[cid]
            if policy.should_retry(attempt):
                delay = policy.delay(attempt, key=chunks[cid][0].index)
                for task in chunks[cid]:
                    notify(TaskFailure(task.index, attempt, error, reason), delay)
                delayed.append((time.monotonic() + delay, cid))
            else:
                for task in chunks[cid]:
                    yield TaskFailure(task.index, attempt, error, reason)

        def respawn_pool() -> ProcessPoolExecutor:
            nonlocal respawns
            respawns += 1
            if respawns > respawn_cap:
                raise ReproError(
                    f"worker pool broke {respawns} times; giving up "
                    "(harness failure, not a target failure)"
                )
            return ProcessPoolExecutor(max_workers=self.max_workers)

        def settle_broken_pool(extra_victim: int | None = None) -> Iterator[TaskFailure]:
            """The pool died: blame what can be blamed, re-fly the rest solo."""
            victims = sorted(flights.values(), key=lambda f: f.chunk_id)
            flights.clear()
            if extra_victim is not None:
                queue.appendleft(extra_victim)
            for flight in victims:
                cid = flight.chunk_id
                if flight.solo and cid in expired:
                    expired.discard(cid)
                    yield from charge(
                        cid,
                        "timeout",
                        "worker exceeded the wall-clock deadline "
                        f"({policy.task_timeout}s per task)",
                    )
                elif flight.solo:
                    # Flying alone: this chunk killed its worker, full stop.
                    yield from charge(
                        cid, "worker-death",
                        "worker process died before finishing (broken pool)",
                    )
                else:
                    # A shared flight proves nothing — a chunk queued behind
                    # a hung or dying neighbour shares its wall-clock.  Only
                    # a *solo* expiry or death is charged; everyone else is
                    # re-flown alone, uncharged.
                    expired.discard(cid)
                    suspects.append(cid)

        pool = ProcessPoolExecutor(max_workers=self.max_workers)
        try:
            while queue or suspects or delayed or flights:
                now = time.monotonic()
                if delayed:
                    due = [entry for entry in delayed if entry[0] <= now]
                    for entry in due:
                        delayed.remove(entry)
                        queue.append(entry[1])
                # Submission: while suspects exist, fly exactly one chunk at
                # a time (exact blame); otherwise fan the queue out.
                broken_on_submit: int | None = None
                try:
                    if suspects:
                        if not flights:
                            cid = suspects.popleft()
                            flights[pool.submit(_execute_chunk, chunks[cid])] = (
                                _Flight(cid, deadline_for(cid), solo=True)
                            )
                    elif queue:
                        while queue:
                            cid = queue.popleft()
                            flights[pool.submit(_execute_chunk, chunks[cid])] = (
                                _Flight(cid, deadline_for(cid), solo=False)
                            )
                except BrokenProcessPool:
                    broken_on_submit = cid
                if broken_on_submit is not None:
                    yield from settle_broken_pool(extra_victim=broken_on_submit)
                    pool = respawn_pool()
                    continue
                if not flights:
                    if delayed:  # everything left is backing off; sleep it out
                        time.sleep(
                            max(0.0, min(r for r, _ in delayed) - time.monotonic())
                        )
                    continue
                timeout = None
                wakeups = [f.deadline for f in flights.values() if f.deadline]
                wakeups += [ready for ready, _ in delayed]
                if wakeups:
                    timeout = max(0.01, min(wakeups) - time.monotonic())
                done, _ = wait(
                    list(flights), timeout=timeout, return_when=FIRST_COMPLETED
                )
                broken = False
                for future in done:
                    flight = flights.pop(future)
                    try:
                        outputs = future.result()
                    except BrokenProcessPool:
                        flights[future] = flight  # hand back for settlement
                        broken = True
                        # Keep draining ``done``: a sibling that *completed*
                        # in the same batch must be yielded, not re-flown.
                        continue
                    except Exception as exc:  # the chunk raised in its worker
                        yield from charge(
                            flight.chunk_id, "exception", format_error(exc)
                        )
                    else:
                        expired.discard(flight.chunk_id)
                        yield from outputs
                if broken:
                    yield from settle_broken_pool()
                    pool = respawn_pool()
                    continue
                # Watchdog: kill the pool under chunks that blew their
                # wall-clock deadline; the break is settled next iteration.
                now = time.monotonic()
                hung = [
                    f for f in flights.values() if f.deadline and f.deadline <= now
                ]
                if hung:
                    for flight in hung:
                        expired.add(flight.chunk_id)
                    _kill_pool_processes(pool)
        finally:
            # Never block on a wedged worker during unwind (SIGINT included).
            pool.shutdown(wait=False, cancel_futures=True)


Executor = SerialExecutor | ParallelExecutor


# -- progress hooks and metrics -----------------------------------------------


class EngineHooks:
    """Progress callbacks; override any subset. Default methods do nothing."""

    def on_phase(self, phase: str, seconds: float) -> None:
        """A pipeline phase ("golden", "profile", "select", "inject") ended."""

    def on_injection(
        self,
        index: int,
        outcome,
        completed: int,
        total: int,
        tally: OutcomeTally,
    ) -> None:
        """One injection was classified (``tally`` = outcome counts so far)."""


class EngineMetrics:
    """Compatibility view over the engine's :class:`~repro.obs.MetricsRegistry`.

    Historically a standalone dataclass the engine mutated; the numbers now
    live in the shared metrics registry (``engine.*`` / ``campaign.*``
    names), and this shim keeps the old field API — reads and writes both —
    so existing callers and the observability layer see a single source of
    truth.
    """

    _DONE = "engine.injections.done"
    _LOADED = "engine.injections.loaded"
    _TOTAL = "engine.injections.total"
    _RETRIES = "engine.retries"
    _QUARANTINED = "engine.quarantined"
    _INJECT_SECONDS = "engine.inject.seconds"
    _PHASE_PREFIX = "engine.phase."
    _PHASE_SUFFIX = ".seconds"

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        tally: OutcomeTally | None = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tally = tally if tally is not None else OutcomeTally()

    # -- field compatibility (reads and writes hit the registry) --------------

    @property
    def phase_seconds(self) -> dict[str, float]:
        values = self.registry.counter_values(self._PHASE_PREFIX)
        return {
            name[: -len(self._PHASE_SUFFIX)]: seconds
            for name, seconds in values.items()
            if name.endswith(self._PHASE_SUFFIX)
        }

    def add_phase_seconds(self, name: str, seconds: float) -> None:
        self.registry.counter(
            f"{self._PHASE_PREFIX}{name}{self._PHASE_SUFFIX}"
        ).inc(seconds)

    @property
    def injections_done(self) -> int:
        return int(self.registry.counter(self._DONE).value)

    @injections_done.setter
    def injections_done(self, value: int) -> None:
        self.registry.counter(self._DONE).value = float(value)

    @property
    def injections_loaded(self) -> int:
        return int(self.registry.counter(self._LOADED).value)

    @injections_loaded.setter
    def injections_loaded(self, value: int) -> None:
        self.registry.counter(self._LOADED).value = float(value)

    @property
    def injections_total(self) -> int:
        return int(self.registry.gauge(self._TOTAL).value)

    @injections_total.setter
    def injections_total(self, value: int) -> None:
        self.registry.gauge(self._TOTAL).set(value)

    @property
    def retries(self) -> int:
        """Failed attempts that were re-run under the retry policy."""
        return int(self.registry.counter(self._RETRIES).value)

    @property
    def quarantined(self) -> int:
        """Tasks that exhausted every attempt and became harness DUEs."""
        return int(self.registry.counter(self._QUARANTINED).value)

    @property
    def inject_seconds(self) -> float:
        return self.registry.gauge(self._INJECT_SECONDS).value

    @inject_seconds.setter
    def inject_seconds(self, value: float) -> None:
        self.registry.gauge(self._INJECT_SECONDS).set(value)

    # -- derived ---------------------------------------------------------------

    @property
    def injections_per_second(self) -> float:
        if self.inject_seconds <= 0:
            return 0.0
        return self.injections_done / self.inject_seconds

    def summary(self) -> str:
        phases = "  ".join(
            f"{name}={seconds:.2f}s" for name, seconds in self.phase_seconds.items()
        )
        resilience = ""
        if self.retries or self.quarantined:
            resilience = (
                f"  retries={self.retries} quarantined={self.quarantined}"
            )
        return (
            f"{phases}  "
            f"ran={self.injections_done}/{self.injections_total} "
            f"(resumed {self.injections_loaded})  "
            f"{self.injections_per_second:.1f} inj/s"
            f"{resilience}"
        )


def _stop_when(
    results: Iterable, stop: threading.Event
) -> Iterator:
    """Pass executor results through until ``stop`` is set.

    Checked before the first item and after each yielded one: a completed
    result is never dropped (it is already checkpointed downstream), but
    no further task starts once the signal fires.
    """
    if stop.is_set():
        return
    for item in results:
        yield item
        if stop.is_set():
            return


# -- the engine ---------------------------------------------------------------


class CampaignEngine:
    """Owns the golden → profile → select → inject → classify pipeline."""

    def __init__(
        self,
        app: Application | str,
        config: CampaignConfig | None = None,
        executor: Executor | None = None,
        store: ResultStore | None = None,
        hooks: EngineHooks | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.app = get_workload(app) if isinstance(app, str) else app
        self.config = config or CampaignConfig()
        self.executor = executor or self._default_executor()
        self.store = store
        self.hooks = hooks or EngineHooks()
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.registry = metrics if metrics is not None else MetricsRegistry()
        self.metrics = EngineMetrics(registry=self.registry)
        self._stream = SeedSequenceStream(self.config.seed, path=self.app.name)
        self.golden: RunArtifacts | None = None
        self.profile: ProgramProfile | None = None
        # The cached fixed-N transient site plan (the v2 pump API draws
        # batches against it; selection is deterministic, so caching it
        # cannot perturb the RNG stream).
        self._plan: list[TransientParams] | None = None
        self.golden_time = 0.0
        self.profile_time = 0.0
        # Golden-replay fast-forward state (config.fast_forward): the golden
        # run's replay log, held in-process for stop-launch lookups, and the
        # on-disk copy every worker loads lazily (once per process).
        self._replay_log = None  # repro.gpusim.replay.ReplayLog | None
        self._replay_path: str | None = None

    def _default_executor(self) -> "Executor":
        """Serial unless ``config.batch_launch``/``config.snapshot`` ask
        for fork-based execution.

        ``batch_launch`` wins when both are set: the batch executor *is*
        a snapshot executor whose groups additionally share the target
        launch's counting pass, so "snapshot + batch" means batch.
        """
        if getattr(self.config, "batch_launch", False):
            from repro.core.batch_injector import BatchExecutor
            from repro.core.snapshot import snapshot_supported

            if snapshot_supported():
                return BatchExecutor()
        if getattr(self.config, "snapshot", False):
            from repro.core.snapshot import SnapshotExecutor, snapshot_supported

            if snapshot_supported():
                return SnapshotExecutor()
        return SerialExecutor()

    def _replay_cache(self):
        """The persistent cross-campaign replay cache, if configured.

        Only meaningful with fast-forward on: the cache stores replay
        tapes, and without a recorder there is nothing to cache.
        """
        if not self.config.fast_forward:
            return None
        from repro.core.snapshot import ReplayCache

        return ReplayCache.resolve(getattr(self.config, "replay_cache", None))

    # -- pipeline phases --------------------------------------------------------

    def run_golden(self) -> RunArtifacts:
        cache = self._replay_cache()
        if cache is not None and self._run_golden_cached(cache):
            return self.golden
        recorder = ReplayRecorder() if self.config.fast_forward else None
        with self.tracer.span("golden", workload=self.app.name) as span:
            if span is not None and cache is not None:
                span.attrs["replay_cache"] = "miss"
            self.golden = capture_golden(
                self.app, self._sandbox_config(), tracer=self.tracer,
                recorder=recorder,
            )
        self.golden_time = self.golden.wall_time
        self._record_run_metrics(self.golden)
        if self.store is not None:
            self.store.save_golden(self.golden)
        self._phase("golden", self.golden_time)
        if recorder is not None:
            self._save_replay_log(recorder, cache=cache)
        return self.golden

    def _run_golden_cached(self, cache) -> bool:
        """Service the golden run from the persistent replay cache.

        On a hit the host program still runs, but every launch replays
        from the cached tape — reference artifacts (reads come from
        restored memory) and device counters (recorded deltas) are
        identical to a simulated golden run at a fraction of the cost.  A
        missing, invalid (content hash) or stale (launch mismatch — the
        cursor disarms and the run simulates) entry counts a miss and
        falls back to the recording path.
        """
        log = cache.lookup(self.app.name, self._sandbox_config())
        if log is None:
            self.registry.counter("engine.cache.misses").inc()
            return False
        cursor = ReplayCursor(log, stop_launch=len(log), pre=True, tail=False)
        with self.tracer.span("golden", workload=self.app.name) as span:
            if span is not None:
                span.attrs["replay_cache"] = "hit"
            golden = capture_golden(
                self.app, self._sandbox_config(), tracer=self.tracer,
                replay=cursor,
            )
        if cursor.skipped != len(log):
            # The tape no longer describes this run (e.g. an edited
            # workload under an unchanged cache key); the artifacts are
            # still correct — the cursor degraded to simulation — but the
            # tape must be re-recorded, so treat the lookup as a miss.
            self.registry.counter("engine.cache.misses").inc()
            return False
        self.registry.counter("engine.cache.hits").inc()
        self.golden = golden
        self.golden_time = golden.wall_time
        self._record_run_metrics(golden)
        if self.store is not None:
            self.store.save_golden(golden)
        self._phase("golden", self.golden_time)
        self._replay_log = log
        self._replay_path = str(cache.path_for(self.app.name, self._sandbox_config()))
        return True

    def _save_replay_log(self, recorder: ReplayRecorder, cache=None) -> None:
        """Serialize the golden run's replay log where every worker can read it.

        With a persistent :class:`~repro.core.snapshot.ReplayCache`
        configured, the log lands in the cache (shared across campaigns —
        and across ``repro serve`` tenants when the cache dir is
        DB-adjacent).  Otherwise stored campaigns put it under the study
        directory (next to the golden artifacts) and store-less campaigns
        use a private temp directory cleaned up when the engine is
        collected.  A recorder that aborted (or taped nothing) simply
        leaves fast-forward off.
        """
        log = recorder.log()
        if log is None or not log.launches:
            return
        started = time.perf_counter()
        if self.store is not None:
            path = str(self.store.replay_path())
        else:
            tmpdir = tempfile.mkdtemp(prefix="repro-replay-")
            weakref.finalize(self, shutil.rmtree, tmpdir, ignore_errors=True)
            path = os.path.join(tmpdir, "replay.bin")
        with self.tracer.span(
            "replay",
            workload=self.app.name,
            launches=len(log.launches),
            pages=log.total_pages,
        ) as span:
            if cache is not None:
                path = str(
                    cache.store(self.app.name, self._sandbox_config(), log)
                )
                if span is not None:
                    span.attrs["replay_cache"] = "store"
            else:
                save_replay_log(log, path)
        self._replay_log = log
        self._replay_path = path
        self._phase("replay", time.perf_counter() - started)

    def _replay_ref_for(self, site) -> ReplayRef | None:
        """The fast-forward reference for one transient site (or None).

        ``stop_launch`` is the golden sequence number of the targeted
        launch: everything strictly before it replays (``pre``), the target
        simulates, and — with ``tail_fast_forward`` — the launches after it
        replay again once the run's memory re-converges with golden.  A
        site targeting the very first launch has no pre window but still
        carries a tail-only reference; sites absent from the log carry
        none.
        """
        if self._replay_log is None or self._replay_path is None:
            return None
        stop = self._replay_log.stop_launch_for(
            site.kernel_name, site.kernel_count
        )
        if stop is None:
            return None
        pre = stop > 0
        tail = self.config.tail_fast_forward
        if not pre and not tail:
            return None
        return ReplayRef(
            path=self._replay_path, stop_launch=stop, pre=pre, tail=tail
        )

    def run_profile(self, mode: ProfilingMode | None = None) -> ProgramProfile:
        if self.golden is None:
            self.run_golden()
        mode = mode or self.config.profiling
        cache = self._replay_cache()
        if cache is not None and self._cached_profile(cache, mode):
            return self.profile
        profiler = ProfilerTool(mode)
        with self.tracer.span(
            "profile", workload=self.app.name, mode=mode.value
        ) as span:
            if span is not None and cache is not None:
                span.attrs["replay_cache"] = "miss"
            artifacts = run_app(
                self.app,
                preload=[profiler],
                config=self._injection_config(),
                tracer=self.tracer,
            )
        if artifacts.crashed or artifacts.timed_out:
            raise RuntimeError(
                f"profiling run failed unexpectedly: {artifacts.summary()}"
            )
        self.profile = profiler.profile
        self.profile.workload = self.app.name
        self.profile_time = artifacts.wall_time
        self._record_run_metrics(artifacts)
        if self.store is not None:
            self.store.save_profile(self.profile)
        self._phase("profile", self.profile_time)
        if cache is not None and self._replay_log is not None:
            cache.store_profile(
                self.app.name,
                self._sandbox_config(),
                mode.value,
                self._replay_log.content_hash,
                self.profile,
                counters={
                    "gpusim.instructions_retired": artifacts.instructions_executed,
                    "gpusim.cycles": artifacts.cycles,
                    "gpusim.warps_launched": artifacts.warps_launched,
                },
            )
        return self.profile

    def _cached_profile(self, cache, mode: ProfilingMode) -> bool:
        """Service the profiling pass from the persistent replay cache.

        Profiling is the one plan phase a cached tape cannot speed up
        (instruction counting must simulate under instrumentation), so
        its output is cached alongside the tape and validated against the
        tape's content hash — a profile counted over a different golden
        run never matches.  The restored profile round-trips through the
        same text codec the store artifact uses, so site selection (and
        therefore ``results.csv``) is byte-identical to a freshly
        profiled run.
        """
        if self._replay_log is None:
            return False
        started = time.perf_counter()
        cached = cache.lookup_profile(
            self.app.name,
            self._sandbox_config(),
            mode.value,
            self._replay_log.content_hash,
        )
        if cached is None:
            return False
        profile, counters = cached
        with self.tracer.span(
            "profile", workload=self.app.name, mode=mode.value
        ) as span:
            if span is not None:
                span.attrs["replay_cache"] = "hit"
        self.registry.counter("engine.cache.profile_hits").inc()
        # Re-report the profiling run's recorded device totals, exactly as
        # replayed launches fold their recorded cycle deltas back in: the
        # simulated-cycle trajectory stays identical whether the profile
        # was counted or restored.
        for name, value in counters.items():
            self.registry.counter(name).inc(value)
        self.profile = profile
        self.profile.workload = self.app.name
        self.profile_time = time.perf_counter() - started
        if self.store is not None:
            self.store.save_profile(self.profile)
        self._phase("profile", self.profile_time)
        return True

    def select_sites(self, count: int | None = None) -> list[TransientParams]:
        if self.profile is None:
            self.run_profile()
        count = count if count is not None else self.config.num_transient
        started = time.perf_counter()
        with self.tracer.span(
            "select",
            kind="transient",
            count=count,
            group=self.config.group.name,
            model=self.config.model.name,
        ):
            rng = self._stream.child("sites").generator()
            sites = select_transient_sites(
                self.profile,
                self.config.group,
                self.config.model,
                count,
                rng,
            )
        self._phase("select", time.perf_counter() - started)
        return sites

    def select_permanent(self) -> list[PermanentParams]:
        if self.profile is None:
            self.run_profile()
        with self.tracer.span("select", kind="permanent"):
            rng = self._stream.child("permanent").generator()
            return select_permanent_sites(
                self.profile,
                rng,
                sm_ids=self._active_sm_ids(),
                num_sms=self.device_num_sms(),
            )

    # -- campaigns --------------------------------------------------------------

    def _transient_builders(self, sites: Sequence[TransientParams]):
        """The classify/quarantine result builders for a transient site plan.

        ``sites`` is captured by reference, so the adaptive drive loop's
        growing plan stays visible to builders created before a batch was
        appended.  Quarantined runs carry only deterministic fields, so
        campaigns containing failures still produce byte-identical
        results.csv files across serial, parallel and resumed execution.
        """

        def build(output: InjectionOutput) -> TransientResult:
            outcome = classify(self.app, self.golden, output.artifacts)
            return TransientResult(
                params=sites[output.index],
                record=output.record,
                outcome=outcome,
                wall_time=output.artifacts.wall_time,
                instructions=output.artifacts.instructions_executed,
            )

        def build_failure(failure: TaskFailure) -> TransientResult:
            return TransientResult(
                params=sites[failure.index],
                record=InjectionRecord(injected=False),
                outcome=quarantine_outcome(failure),
                wall_time=0.0,
                instructions=0,
            )

        return build, build_failure

    def run_transient(
        self, sites: list[TransientParams] | None = None
    ) -> TransientCampaignResult:
        """The full transient campaign (Figure 1 for N faults)."""
        if sites is None:
            if self._adaptive_enabled():
                return self._run_transient_adaptive()
            sites = self.plan_transient()
        if self.golden is None:
            self.run_golden()

        loaded = self._load_completed(
            sites,
            completed=self.store.completed_injections() if self.store else [],
            load=lambda index: self.store.load_injection(index),
        )
        build, build_failure = self._transient_builders(sites)

        try:
            results = self._inject(
                sites,
                kind="transient",
                loaded=loaded,
                build=build,
                save=(
                    (lambda index, item: self.store.save_injection(index, item))
                    if self.store
                    else None
                ),
                build_failure=build_failure,
            )
        except CampaignInterrupted as interrupt:
            if self.store is not None:
                self.store.save_partial_results_csv(interrupt.completed)
            raise KeyboardInterrupt from None
        tally = OutcomeTally()
        for item in results:
            tally.add(item.outcome)
        result = TransientCampaignResult(
            results=results,
            tally=tally,
            golden_time=self.golden_time,
            profile_time=self.profile_time,
            median_injection_time=_median(r.wall_time for r in results),
        )
        if self.store is not None:
            self.store.save_results_csv(result)
        return result

    # -- the v2 pump API (external drivers, e.g. the service scheduler) --------

    def plan_transient(self) -> list[TransientParams]:
        """The fixed-N transient site plan (golden + profile + select), cached.

        Site selection is a pure function of the campaign seed and the
        workload, so every process that plans the same config derives the
        same plan — the property the service scheduler's sharded workers
        rest on: N workers each call :meth:`plan_transient` independently
        and then execute disjoint index ranges of the *same* plan.
        """
        if self._plan is None:
            self._plan = self.select_sites()
            if self.golden is None:
                self.run_golden()
        return self._plan

    def draw_batch(
        self, indices: Iterable[int] | None = None
    ) -> list[InjectionTask]:
        """Frozen, executor-ready tasks for the given plan indices.

        Defaults to the whole plan.  Indices whose results are already in
        the store are skipped (exactly the resume rule of
        :meth:`run_transient`), and tasks are grouped by fast-forward
        target launch so neighbours share the replay log's page cache.
        Results are keyed by index, so the ordering cannot change
        ``results.csv``.
        """
        sites = self.plan_transient()
        if indices is None:
            indices = range(len(sites))
        wanted = list(indices)
        for index in wanted:
            if not 0 <= index < len(sites):
                raise ReproError(
                    f"site index {index} outside the plan "
                    f"(0..{len(sites) - 1})"
                )
        completed = (
            set(self.store.completed_injections()) if self.store else set()
        )
        spec = self._injection_spec()
        fast_forward = self._replay_path is not None
        tasks = [
            InjectionTask(
                index,
                self.app.name,
                CampaignKind.TRANSIENT.value,
                sites[index],
                spec,
                replay=(
                    self._replay_ref_for(sites[index]) if fast_forward else None
                ),
            )
            for index in wanted
            if index not in completed
        ]
        tasks.sort(
            key=lambda t: (
                t.replay.stop_launch if t.replay is not None else -1,
                t.index,
            )
        )
        return tasks

    def ingest_results(
        self, results: Iterable[InjectionOutput | TaskFailure]
    ) -> dict[int, TransientResult]:
        """Classify, persist and account raw executor output, as it arrives.

        The streaming half of the pump API: an external driver runs
        :meth:`draw_batch` tasks through any executor (in-process or not)
        and feeds the outputs here.  Each result is checkpointed the moment
        it is ingested, emits the same ``injection`` trace event and
        counters as :meth:`run_transient`, and failures follow the
        configured retry policy's terminal action (quarantine or raise).
        Returns results keyed by plan index, in completion order.
        """
        sites = self.plan_transient()
        build, build_failure = self._transient_builders(sites)
        policy = self.config.retry
        kind = CampaignKind.TRANSIENT.value
        ingested: dict[int, TransientResult] = {}
        for output in results:
            if isinstance(output, TaskFailure):
                if policy.on_failure == "raise":
                    raise ReproError(
                        f"injection task {output.index} failed after "
                        f"{output.attempts} attempt(s) "
                        f"[{output.reason}]: {output.error}"
                    )
                item = self._quarantine(output, build_failure, kind)
            else:
                item = build(output)
                self.tracer.ingest(output.events)
                self._record_run_metrics(
                    output.artifacts,
                    injection=True,
                    forked=output.forked,
                    batch=output.batch,
                    batch_shared=output.batch_shared,
                )
            index = output.index
            ingested[index] = item
            if self.store is not None:
                self.store.save_injection(index, item)
            self._emit_injection_event(
                index,
                item,
                kind,
                output=output if isinstance(output, InjectionOutput) else None,
            )
            self._count_outcome(item)
            self.metrics.injections_done += 1
            self.metrics.tally.add(item.outcome)
            self.hooks.on_injection(
                index,
                item.outcome,
                self.metrics.injections_done,
                len(sites),
                self.metrics.tally,
            )
        return ingested

    def run_batch(
        self,
        indices: Iterable[int] | None = None,
        stop: "threading.Event | None" = None,
    ) -> dict[int, TransientResult]:
        """Draw the given plan indices and pump them through the executor.

        ``draw_batch`` + ``executor.run`` + ``ingest_results`` in one call —
        what a scheduler worker runs per leased shard.  Already-completed
        indices are skipped; everything else flows through the engine's
        normal retry, fast-forward and checkpoint machinery.

        ``stop`` is a cooperative abandon signal (a ``threading.Event``):
        once set, the completed result in flight is still ingested (it is
        already checkpointed) but no further task starts.  The scheduler
        sets it when a worker's unit lease is lost, so the worker stops
        burning duplicate work the moment it is presumed dead.
        """
        tasks = self.draw_batch(indices)
        self.metrics.injections_total = len(self.plan_transient())
        started = time.perf_counter()
        with self.tracer.span(
            "inject",
            kind=CampaignKind.TRANSIENT.value,
            total=len(tasks),
            fresh=len(tasks),
            snapshot=getattr(self.executor, "snapshot_executor", False),
            batch=getattr(self.executor, "batch_executor", False),
        ):
            runs = self.executor.run(
                tasks,
                app=self.app,
                tracer=self.tracer,
                retry=self.config.retry,
                on_retry=self._make_on_retry(CampaignKind.TRANSIENT.value),
            )
            if stop is not None:
                runs = _stop_when(runs, stop)
            results = self.ingest_results(runs)
        self._phase("inject", time.perf_counter() - started)
        return results

    def snapshot_order(self, indices: Iterable[int]) -> list[int]:
        """Order plan indices so launch-coherent sites sit contiguously.

        The scheduler shards this ordering into units, so every leased
        unit's sites cluster around the same fast-forward stop launches —
        the grouping :class:`~repro.core.snapshot.SnapshotExecutor` turns
        into shared fork checkpoints.  Without a replay log (fast-forward
        off, or the golden run taped nothing) the order is unchanged.
        Pure reordering: results are keyed by index, so unit composition
        never changes ``results.csv``.
        """
        sites = self.plan_transient()
        log = self._replay_log

        def key(index: int) -> tuple[int, int]:
            stop = None
            if log is not None and 0 <= index < len(sites):
                site = sites[index]
                stop = log.stop_launch_for(site.kernel_name, site.kernel_count)
            return (stop if stop is not None else -1, index)

        return sorted(indices, key=key)

    def _adaptive_enabled(self) -> bool:
        """Any adaptive knob set? Both ``None`` keeps the fixed-N fast path."""
        return (
            self.config.stopping is not None or self.config.sampling is not None
        )

    def _run_transient_adaptive(self) -> TransientCampaignResult:
        """The adaptive transient campaign: draw a batch, inject it, re-evaluate.

        ``config.num_transient`` becomes the budget *ceiling*: each batch is
        drawn per the :class:`~repro.core.adaptive.SamplingPlan`, injected
        through the normal executor path (checkpoint/resume included), and
        the :class:`~repro.core.adaptive.StoppingRule` is re-evaluated at
        the batch boundary.  Every decision is a pure function of the seed
        and the outcomes so far; the per-batch decision tape is persisted
        (``adaptive.json``) so a resumed campaign verifies it is walking the
        same sequence instead of silently re-sizing the campaign.

        Uniform adaptive draws consume the same ``sites`` RNG stream as the
        fixed-N path, so the sites injected are a prefix of the fixed-N
        plan's — an adaptive campaign that exhausts its budget runs exactly
        the fixed-N campaign.
        """
        config = self.config
        plan = config.sampling or SamplingPlan()
        rule = config.stopping
        budget = config.num_transient
        if self.profile is None:
            self.run_profile()  # golden runs first, as in the fixed path
        strata = (
            stratum_weights(self.profile, config.group)
            if plan.mode != "uniform"
            else None
        )
        state = AdaptiveState(plan, rule, strata)
        fingerprint = state.fingerprint(
            budget, config.seed, config.group.name, config.model.name
        )
        checkpoint = AdaptiveCheckpoint(fingerprint)
        checkpoint.batches = state.batches  # shared: grows with the tape
        tape: AdaptiveCheckpoint | None = None
        completed: list[int] = []
        if self.store is not None:
            stored = self.store.load_adaptive_state()
            if stored is not None:
                tape = AdaptiveCheckpoint.from_dict(stored)
                if tape.fingerprint != fingerprint:
                    raise ReproError(
                        "stored adaptive campaign used different parameters "
                        "(plan, rule, budget or seed); use a fresh study "
                        "directory"
                    )
            completed = self.store.completed_injections()

        rng = self._stream.child("sites").generator()
        sites: list[TransientParams] = []
        results: list[TransientResult] = []
        total_loaded = 0
        stopped_early_at: int | None = None

        build, build_failure = self._transient_builders(sites)

        with self.tracer.span(
            "campaign",
            kind="transient",
            adaptive=True,
            mode=plan.mode,
            budget=budget,
        ) as run_span:
            while len(sites) < budget:
                batch_no = len(state.batches)
                size = min(plan.batch_size, budget - len(sites))
                allocation = state.allocate(size)
                start = len(sites)
                started = time.perf_counter()
                with self.tracer.span(
                    "select",
                    kind="transient",
                    count=size,
                    batch=batch_no,
                    mode=plan.mode,
                ):
                    if allocation is None:
                        batch = select_transient_sites(
                            self.profile, config.group, config.model, size, rng
                        )
                    else:
                        batch = select_stratified_sites(
                            self.profile, config.group, config.model,
                            allocation, rng,
                        )
                self._phase("select", time.perf_counter() - started)
                sites.extend(batch)
                entry = state.record_batch(start, len(batch), allocation)
                if tape is not None and batch_no < len(tape.batches):
                    if tape.batches[batch_no] != entry:
                        raise ReproError(
                            f"stored adaptive batch {batch_no} diverges from "
                            "the re-derived decision sequence; use a fresh "
                            "study directory"
                        )
                loaded = self._load_completed(
                    sites,
                    completed=[i for i in completed if i >= start],
                    load=lambda index: self.store.load_injection(index),
                )
                total_loaded += len(loaded)
                try:
                    batch_results = self._inject(
                        sites,
                        kind="transient",
                        loaded=loaded,
                        build=build,
                        save=(
                            (lambda index, item:
                             self.store.save_injection(index, item))
                            if self.store
                            else None
                        ),
                        build_failure=build_failure,
                        start=start,
                    )
                except CampaignInterrupted as interrupt:
                    if self.store is not None:
                        by_index = dict(enumerate(results))
                        by_index.update(interrupt.completed)
                        self.store.save_partial_results_csv(by_index)
                        self.store.save_adaptive_state(checkpoint.to_dict())
                    raise KeyboardInterrupt from None
                self.metrics.injections_loaded = total_loaded
                results.extend(batch_results)
                for site, item in zip(batch, batch_results):
                    state.record(site.kernel_name, item.outcome)
                self.registry.counter("engine.adaptive.batches").inc()
                estimate = (
                    state.estimate(rule.target_outcome, rule.confidence)
                    if rule is not None
                    else None
                )
                if self.tracer.enabled:
                    attrs = {
                        "batch": batch_no,
                        "start": start,
                        "size": len(batch),
                        "injections": state.drawn,
                    }
                    if allocation is not None:
                        attrs["allocation"] = allocation
                    if estimate is not None and estimate.half_width is not None:
                        attrs["p_hat"] = estimate.p_hat
                        attrs["half_width"] = estimate.half_width
                    self.tracer.event("adaptive_batch", **attrs)
                should_stop = state.should_stop()
                if should_stop and len(sites) < budget:
                    stopped_early_at = len(sites)
                checkpoint.stopped_early_at = stopped_early_at
                if self.store is not None:
                    self.store.save_adaptive_state(checkpoint.to_dict())
                if should_stop:
                    break
            saved = budget - len(sites)
            if saved:
                self.registry.counter(
                    "engine.adaptive.injections_saved"
                ).inc(saved)
            summary = state.summary(budget, stopped_early_at)
            if run_span is not None:
                run_span.attrs.update(
                    batches=summary.batches,
                    injections=summary.injections,
                    stopped_early_at=stopped_early_at,
                    injections_saved=saved,
                )
                if summary.strata:
                    run_span.attrs["strata"] = {
                        s.name: s.injections for s in summary.strata
                    }
                if summary.estimate is not None:
                    run_span.attrs["estimate_p_hat"] = summary.estimate.p_hat
                    run_span.attrs["estimate_half_width"] = (
                        summary.estimate.half_width
                    )

        tally = OutcomeTally()
        for item in results:
            tally.add(item.outcome)
        result = TransientCampaignResult(
            results=results,
            tally=tally,
            golden_time=self.golden_time,
            profile_time=self.profile_time,
            median_injection_time=_median(r.wall_time for r in results),
            adaptive=summary,
        )
        if self.store is not None:
            self.store.save_results_csv(result)
        return result

    def run_permanent(
        self, sites: list[PermanentParams] | None = None
    ) -> PermanentCampaignResult:
        """One injection per executed opcode, outcomes weighted by dynamic count."""
        if self.profile is None:
            self.run_profile()
        if sites is None:
            sites = self.select_permanent()
        total_dynamic = max(self.profile.total_count(), 1)

        loaded = self._load_completed(
            sites,
            completed=(
                self.store.completed_permanent_injections() if self.store else []
            ),
            load=lambda index: self.store.load_permanent_injection(index),
        )

        def build(output: InjectionOutput) -> PermanentResult:
            params = sites[output.index]
            opcode = opcode_by_id(params.opcode_id).name
            outcome = classify(self.app, self.golden, output.artifacts)
            return PermanentResult(
                params=params,
                opcode=opcode,
                weight=self.profile.opcode_count(opcode) / total_dynamic,
                activations=output.activations,
                outcome=outcome,
                wall_time=output.artifacts.wall_time,
            )

        def build_failure(failure: TaskFailure) -> PermanentResult:
            params = sites[failure.index]
            opcode = opcode_by_id(params.opcode_id).name
            return PermanentResult(
                params=params,
                opcode=opcode,
                weight=self.profile.opcode_count(opcode) / total_dynamic,
                activations=0,
                outcome=quarantine_outcome(failure),
                wall_time=0.0,
            )

        try:
            results = self._inject(
                sites,
                kind="permanent",
                loaded=loaded,
                build=build,
                save=(
                    (lambda index, item: self.store.save_permanent_injection(index, item))
                    if self.store
                    else None
                ),
                build_failure=build_failure,
            )
        except CampaignInterrupted:
            # Per-injection checkpoints are already on disk; exit cleanly.
            raise KeyboardInterrupt from None
        tally = OutcomeTally()
        for item in results:
            tally.add(item.outcome, weight=item.weight)
        return PermanentCampaignResult(
            results=results,
            tally=tally,
            golden_time=self.golden_time,
            median_injection_time=_median(r.wall_time for r in results),
        )

    def run_intermittent(
        self, sites: list[IntermittentParams]
    ) -> list[PermanentResult]:
        """Intermittent-fault runs (§V extension), through the same executor."""
        if self.golden is None:
            self.run_golden()

        def build(output: InjectionOutput) -> PermanentResult:
            params = sites[output.index]
            outcome = classify(self.app, self.golden, output.artifacts)
            return PermanentResult(
                params=params.permanent,
                opcode=opcode_by_id(params.permanent.opcode_id).name,
                weight=1.0,
                activations=output.activations,
                outcome=outcome,
                wall_time=output.artifacts.wall_time,
            )

        def build_failure(failure: TaskFailure) -> PermanentResult:
            params = sites[failure.index]
            return PermanentResult(
                params=params.permanent,
                opcode=opcode_by_id(params.permanent.opcode_id).name,
                weight=1.0,
                activations=0,
                outcome=quarantine_outcome(failure),
                wall_time=0.0,
            )

        return self._inject(
            sites,
            kind="intermittent",
            loaded={},
            build=build,
            save=None,
            build_failure=build_failure,
        )

    # -- the one injection loop -------------------------------------------------

    def _inject(
        self,
        sites: Sequence,
        kind: str,
        loaded: dict[int, object],
        build: Callable[[InjectionOutput], object],
        save: Callable[[int, object], None] | None,
        build_failure: Callable[[TaskFailure], object] | None = None,
        start: int = 0,
    ) -> list:
        """Run every site not already in ``loaded``; return results in site order.

        ``start`` supports the adaptive drive loop: ``sites`` is the full
        accumulated plan, but only indices ``>= start`` (the current batch)
        are run — everything before was completed by earlier batches.  The
        returned list covers exactly ``sites[start:]``.

        Completed injections are handed to ``save`` the moment they finish
        (chunk-by-chunk under the parallel executor), so an interrupted
        campaign loses at most the in-flight chunk.  Every injection —
        resumed and quarantined ones included — emits one ``injection``
        trace event, so the events in a trace sum to the campaign's final
        tally exactly.

        Tasks the harness could not complete (worker raised, died or hung
        past every retry) arrive as :class:`TaskFailure` records; per
        ``config.retry.on_failure`` they either abort the campaign or are
        *quarantined* — turned into synthesized DUE results by
        ``build_failure``, persisted like any other result (so a resume
        skips them) and surfaced via ``injection_quarantined`` events and
        the ``engine.quarantined`` counter.  ``KeyboardInterrupt`` raises
        :class:`CampaignInterrupted` carrying everything completed so far.
        """
        policy = self.config.retry
        spec = self._injection_spec()
        fast_forward = kind == "transient" and self._replay_path is not None
        tasks = [
            InjectionTask(
                index,
                self.app.name,
                kind,
                site,
                spec,
                replay=self._replay_ref_for(site) if fast_forward else None,
            )
            for index, site in enumerate(sites)
            if index >= start and index not in loaded
        ]
        if fast_forward:
            # Group tasks by target launch: neighbours share the replay
            # log's page cache and (under the parallel executor) chunks stay
            # launch-coherent.  Results are keyed by index, so the ordering
            # cannot change results.csv.
            tasks.sort(
                key=lambda t: (
                    t.replay.stop_launch if t.replay is not None else -1,
                    t.index,
                )
            )
        by_index: dict[int, object] = dict(loaded)
        self.metrics.injections_total = len(sites)
        self.metrics.injections_loaded = len(loaded)
        started = time.perf_counter()
        on_retry = self._make_on_retry(kind)

        with self.tracer.span(
            "inject",
            kind=kind,
            total=len(sites),
            fresh=len(tasks),
            snapshot=getattr(self.executor, "snapshot_executor", False),
            batch=getattr(self.executor, "batch_executor", False),
        ):
            for index in sorted(loaded):
                item = loaded[index]
                self.metrics.tally.add(
                    item.outcome, weight=getattr(item, "weight", 1.0)
                )
                self._count_outcome(item)
                self._emit_injection_event(index, item, kind, resumed=True)
            runs = self.executor.run(
                tasks,
                app=self.app,
                tracer=self.tracer,
                retry=policy,
                on_retry=on_retry,
            )
            try:
                for output in runs:
                    if isinstance(output, TaskFailure):
                        if policy.on_failure == "raise" or build_failure is None:
                            raise ReproError(
                                f"injection task {output.index} failed after "
                                f"{output.attempts} attempt(s) "
                                f"[{output.reason}]: {output.error}"
                            )
                        item = self._quarantine(output, build_failure, kind)
                    else:
                        item = build(output)
                        self.tracer.ingest(output.events)
                        self._record_run_metrics(
                            output.artifacts,
                            injection=True,
                            forked=getattr(output, "forked", False),
                            batch=getattr(output, "batch", False),
                            batch_shared=getattr(output, "batch_shared", False),
                        )
                    index = output.index
                    by_index[index] = item
                    if save is not None:
                        save(index, item)
                    self._emit_injection_event(
                        index,
                        item,
                        kind,
                        output=output if isinstance(output, InjectionOutput) else None,
                    )
                    self._count_outcome(item)
                    self.metrics.injections_done += 1
                    self.metrics.inject_seconds = time.perf_counter() - started
                    self.metrics.tally.add(
                        item.outcome, weight=getattr(item, "weight", 1.0)
                    )
                    self.hooks.on_injection(
                        index,
                        item.outcome,
                        start + len(by_index),
                        len(sites),
                        self.metrics.tally,
                    )
            except KeyboardInterrupt:
                # Everything in ``by_index`` is already checkpointed (``save``
                # runs per completion); hand the partial state to the caller
                # so it can write a clean partial results.csv and re-raise.
                raise CampaignInterrupted(by_index, len(sites)) from None
        self._phase("inject", time.perf_counter() - started)
        return [by_index[index] for index in range(start, len(sites))]

    def _make_on_retry(self, kind: str) -> OnRetry:
        """The retry-accounting callback handed to the executor."""

        def on_retry(failure: TaskFailure, delay: float) -> None:
            self.registry.counter("engine.retries").inc()
            if self.tracer.enabled:
                self.tracer.event(
                    "injection_retry",
                    index=failure.index,
                    kind=kind,
                    attempt=failure.attempts,
                    reason=failure.reason,
                    error=failure.error,
                    delay=delay,
                )

        return on_retry

    def _quarantine(
        self,
        failure: TaskFailure,
        build_failure: Callable[[TaskFailure], object],
        kind: str,
    ) -> object:
        """Synthesize the quarantined (harness-DUE) result for a failed task."""
        self.registry.counter("engine.quarantined").inc()
        if self.tracer.enabled:
            self.tracer.event(
                "injection_quarantined",
                index=failure.index,
                kind=kind,
                attempts=failure.attempts,
                reason=failure.reason,
                error=failure.error,
            )
        return build_failure(failure)

    def _load_completed(
        self,
        sites: Sequence,
        completed: Iterable[int],
        load: Callable[[int], object],
    ) -> dict[int, object]:
        """Resume support: pull stored results whose params match the plan."""
        loaded: dict[int, object] = {}
        for index in completed:
            if index >= len(sites):
                continue
            stored = load(index)
            if stored.params != sites[index]:
                raise ReproError(
                    f"stored injection {index} was produced by different "
                    "campaign parameters; use a fresh study directory"
                )
            loaded[index] = stored
        return loaded

    # -- observability plumbing --------------------------------------------------

    def _emit_injection_event(
        self,
        index: int,
        item,
        kind: str,
        output: InjectionOutput | None = None,
        resumed: bool = False,
    ) -> None:
        """One point event per classified injection (params + outcome + count)."""
        if not self.tracer.enabled:
            return
        instructions = getattr(item, "instructions", None)
        if instructions is None:
            instructions = (
                output.artifacts.instructions_executed if output is not None else 0
            )
        attrs = {
            "index": index,
            "kind": kind,
            "resumed": resumed,
            "outcome": item.outcome.outcome.value,
            "symptom": item.outcome.symptom,
            "potential_due": item.outcome.potential_due,
            "weight": getattr(item, "weight", 1.0),
            "instructions": instructions,
        }
        attrs.update(_params_attrs(getattr(item, "params", None)))
        record = getattr(item, "record", None)
        if record is not None:
            attrs["injected"] = record.injected
            if record.injected:
                attrs["opcode"] = record.opcode
                attrs["sm_id"] = record.sm_id
                attrs["pc"] = record.pc
        self.tracer.event("injection", **attrs)

    def _count_outcome(self, item) -> None:
        weight = getattr(item, "weight", 1.0)
        self.registry.counter(
            f"campaign.outcome.{item.outcome.outcome.value}"
        ).inc(weight)
        if item.outcome.potential_due:
            self.registry.counter("campaign.outcome.potential_due").inc(weight)

    def _record_run_metrics(
        self,
        artifacts: RunArtifacts,
        injection: bool = False,
        forked: bool = False,
        batch: bool = False,
        batch_shared: bool = False,
    ) -> None:
        """Fold one sandboxed run's device counters into the registry."""
        reg = self.registry
        reg.counter("sandbox.runs").inc()
        if forked:
            # The run was serviced by a snapshot fork child resuming from
            # a shared replayed checkpoint.
            reg.counter("engine.snapshot.forks").inc()
        if batch:
            # ... and the fork was an in-launch overlay checkpoint: the
            # batched pass counted this run's target launch and forked at
            # its instruction_count instead of re-simulating the prefix.
            reg.counter("engine.batch.checkpoints").inc()
        if batch_shared:
            # One per batch group: its target launch was simulated once
            # for every sibling fault.
            reg.counter("engine.batch.launches_shared").inc()
        reg.counter("gpusim.instructions_retired").inc(
            artifacts.instructions_executed
        )
        reg.counter("gpusim.cycles").inc(artifacts.cycles)
        reg.counter("gpusim.warps_launched").inc(artifacts.warps_launched)
        reg.gauge("gpusim.divergence_depth_high_water").set_max(
            artifacts.divergence_depth_high_water
        )
        if artifacts.replay_launches_skipped:
            reg.counter("engine.replay.hits").inc()
            reg.counter("engine.replay.launches_skipped").inc(
                artifacts.replay_launches_skipped
            )
        if artifacts.replay_tail_skipped:
            # Tail fast-forward: this run's fault went architecturally dead
            # and the remaining launches replayed from the golden tape.
            reg.counter("engine.replay.tail_hits").inc()
            reg.counter("engine.replay.tail_launches_skipped").inc(
                artifacts.replay_tail_skipped
            )
        if artifacts.replay_converged_at >= 0:
            reg.histogram(
                "engine.replay.converged_at_launch", LAUNCH_BUCKETS
            ).observe(artifacts.replay_converged_at)
        if getattr(artifacts, "blockc_blocks_compiled", 0):
            reg.counter("engine.blockc.blocks_compiled").inc(
                artifacts.blockc_blocks_compiled
            )
            reg.counter("engine.blockc.compile_seconds").inc(
                artifacts.blockc_compile_seconds
            )
        if getattr(artifacts, "blockc_block_hits", 0):
            reg.counter("engine.blockc.block_hits").inc(
                artifacts.blockc_block_hits
            )
        if injection:
            reg.histogram(
                "campaign.injection.instructions", INSTRUCTION_BUCKETS
            ).observe(artifacts.instructions_executed)
            reg.histogram("campaign.injection.seconds").observe(artifacts.wall_time)

    # -- configuration helpers --------------------------------------------------

    def device_num_sms(self) -> int:
        """SM count of the configured device (explicit or the family's)."""
        sandbox = self.config.sandbox
        if sandbox.num_sms is not None:
            return sandbox.num_sms
        return arch_by_name(sandbox.family).num_sms

    def _sandbox_config(self) -> SandboxConfig:
        sandbox = self.config.sandbox.clone()
        # Either knob disables the block-compiled interpreter; getattr
        # tolerates configs pickled before the field existed.
        if not getattr(self.config, "block_compile", True):
            sandbox.block_compile = False
        return sandbox

    def _injection_config(self) -> SandboxConfig:
        config = self._sandbox_config()
        if self.golden is not None:
            config.instruction_budget = hang_budget(
                self.golden, factor=self.config.hang_budget_factor
            )
        return config

    def _injection_spec(self) -> SandboxSpec:
        return self._injection_config().spec()

    def _active_sm_ids(self) -> list[int]:
        """SMs that actually ran blocks in the golden run.

        A permanent fault pinned to an idle SM can never activate; real
        campaigns target populated SMs, so site selection draws from the
        golden run's active set, falling back to every SM of the configured
        device.
        """
        if self.golden is not None and self.golden.active_sms:
            return list(self.golden.active_sms)
        return list(range(self.device_num_sms()))

    def _phase(self, name: str, seconds: float) -> None:
        self.metrics.add_phase_seconds(name, seconds)
        self.hooks.on_phase(name, seconds)


def _params_attrs(params) -> dict:
    """Flatten an injection-parameter record into JSON-friendly event attrs."""
    if isinstance(params, TransientParams):
        return {
            "group": params.group.name,
            "model": params.model.name,
            "kernel": params.kernel_name,
            "kernel_count": params.kernel_count,
            "instruction_count": params.instruction_count,
        }
    if isinstance(params, PermanentParams):
        return {
            "sm_id_target": params.sm_id,
            "lane_id": params.lane_id,
            "bit_mask": params.bit_mask,
            "opcode_id": params.opcode_id,
        }
    if isinstance(params, IntermittentParams):
        attrs = _params_attrs(params.permanent)
        attrs.update(process=params.process,
                     activation_probability=params.activation_probability)
        return attrs
    return {}
