"""Instruction profiles: the output of the profiling step (Figure 1, step 1).

A profile holds one record per *dynamic kernel* (each launch of each static
kernel) with the total dynamic instruction count of every opcode across all
threads — predicated-off instructions excluded.  The profile defines the
uniform population that transient fault sites are drawn from, and the
executed-opcode set that prunes permanent-fault campaigns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.groups import InstructionGroup, in_group
from repro.errors import ProfileError
from repro.sass.isa import OPCODES_BY_NAME


@dataclass
class KernelProfile:
    """Dynamic instruction histogram of one dynamic kernel."""

    kernel_name: str
    invocation: int  # 0-based dynamic instance index of this kernel name
    counts: dict[str, int] = field(default_factory=dict)
    approximated: bool = False  # True if copied from the first instance
    # Per-group sums, memoized against a snapshot of ``counts`` — site
    # selection evaluates group_count once per (kernel, site) and the
    # opcode→group test dominates otherwise.  Excluded from equality.
    _group_counts: dict = field(
        default_factory=dict, repr=False, compare=False
    )

    def add(self, opcode: str, executed_threads: int) -> None:
        if executed_threads:
            self.counts[opcode] = self.counts.get(opcode, 0) + executed_threads

    def total(self) -> int:
        return sum(self.counts.values())

    def group_count(self, group: InstructionGroup) -> int:
        token = tuple(self.counts.items())
        cached = self._group_counts.get(group)
        if cached is not None and cached[0] == token:
            return cached[1]
        value = sum(
            count
            for opcode, count in self.counts.items()
            if in_group(OPCODES_BY_NAME[opcode], group)
        )
        self._group_counts[group] = (token, value)
        return value

    def to_line(self) -> str:
        pairs = ",".join(
            f"{opcode}:{count}" for opcode, count in sorted(self.counts.items())
        )
        flag = "~" if self.approximated else "="
        return f"{self.kernel_name};{self.invocation};{flag};{pairs}"

    @classmethod
    def from_line(cls, line: str) -> "KernelProfile":
        try:
            name, invocation, flag, pairs = line.strip().split(";")
        except ValueError:
            raise ProfileError(f"malformed profile line: {line!r}") from None
        counts: dict[str, int] = {}
        if pairs:
            for pair in pairs.split(","):
                opcode, _, count = pair.partition(":")
                if opcode not in OPCODES_BY_NAME:
                    raise ProfileError(f"unknown opcode {opcode!r} in profile")
                counts[opcode] = int(count)
        return cls(
            kernel_name=name,
            invocation=int(invocation),
            counts=counts,
            approximated=flag == "~",
        )


@dataclass
class ProgramProfile:
    """All dynamic kernels of one program run, in launch order.

    ``workload`` records which registered workload produced the profile so
    downstream consumers (notably :func:`repro.api.select_sites`) can
    reproduce the engine's per-workload RNG stream.  It is excluded from
    equality: a profile's identity is its kernel histograms.
    """

    kernels: list[KernelProfile] = field(default_factory=list)
    workload: str = field(default="", compare=False)

    def append(self, kernel_profile: KernelProfile) -> None:
        self.kernels.append(kernel_profile)

    def total_count(self, group: InstructionGroup | None = None) -> int:
        if group is None:
            return sum(kp.total() for kp in self.kernels)
        return sum(kp.group_count(group) for kp in self.kernels)

    def executed_opcodes(self) -> set[str]:
        """Opcodes with a non-zero dynamic count (prunes permanent campaigns)."""
        opcodes: set[str] = set()
        for kp in self.kernels:
            opcodes.update(op for op, count in kp.counts.items() if count)
        return opcodes

    def opcode_count(self, opcode: str) -> int:
        return sum(kp.counts.get(opcode, 0) for kp in self.kernels)

    @property
    def num_dynamic_kernels(self) -> int:
        return len(self.kernels)

    @property
    def num_static_kernels(self) -> int:
        return len({kp.kernel_name for kp in self.kernels})

    def to_text(self) -> str:
        header = f"# workload: {self.workload}\n" if self.workload else ""
        return header + "\n".join(kp.to_line() for kp in self.kernels) + "\n"

    @classmethod
    def from_text(cls, text: str) -> "ProgramProfile":
        profile = cls()
        for line in text.splitlines():
            stripped = line.strip()
            if not stripped:
                continue
            if stripped.startswith("#"):
                _, _, value = stripped.partition("workload:")
                if value.strip():
                    profile.workload = value.strip()
                continue
            profile.append(KernelProfile.from_line(line))
        return profile
