"""Thread-targeted injection (paper §III-B future directions).

The stock transient injector counts dynamic instructions *across all
threads*; the paper lists "targeting a specified thread" as a future
extension.  This tool implements it: the instruction count is interpreted
within the dynamic instruction stream of one specific thread (given by its
CTA and thread index), which is what a researcher reproducing a
field-observed corruption of a known thread needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.injector import TransientInjectorTool
from repro.core.params import TransientParams
from repro.errors import ParamError
from repro.gpusim.context import InstrSite


@dataclass(frozen=True)
class ThreadTarget:
    """The CUDA coordinates of the victim thread."""

    ctaid: tuple[int, int, int]
    tid: tuple[int, int, int]

    def __post_init__(self) -> None:
        for axis in (*self.ctaid, *self.tid):
            if axis < 0:
                raise ParamError("thread coordinates must be non-negative")


class ThreadTargetedInjectorTool(TransientInjectorTool):
    """Injects into the N-th group instruction executed by one thread."""

    name = "thread_injector"

    def __init__(self, params: TransientParams, target: ThreadTarget) -> None:
        super().__init__(params)
        self.target = target

    def _visit(self, site: InstrSite) -> None:
        if not self._armed or self.record.injected:
            return
        if site.ctaid != self.target.ctaid:
            return
        lane = self._target_lane(site)
        if lane is None or not site.exec_mask[lane]:
            return
        # This instruction instance was executed by the victim thread:
        # it counts exactly once toward the per-thread instruction count.
        if self._instr_counter == self.params.instruction_count:
            self._inject(site, lane)
            self._armed = False
        self._instr_counter += 1

    def _target_lane(self, site: InstrSite) -> int | None:
        """The warp lane holding the victim thread, if it is in this warp."""
        warp = site.warp
        tx, ty, tz = self.target.tid
        import numpy as np

        matches = np.nonzero(
            (warp.tid_x == tx) & (warp.tid_y == ty) & (warp.tid_z == tz)
            & warp.valid  # padding lanes of partial warps replicate tid 0
        )[0]
        if matches.size == 0:
            return None
        return int(matches[0])
