"""The permanent-fault injector (``pf_injector.so`` in the real package).

A permanent fault is pinned to a physical location — an SM and a hardware
lane — and corrupts *every* dynamic instance of one opcode executing there
with the same XOR mask (Table III).  Unlike the transient injector, every
kernel of the program is instrumented (only at instructions of the target
opcode), which is why the paper measures higher overhead for permanent
injection runs (§IV-C).

The intermittent injector (paper §V future work) reuses the same site but
gates each corruption through an activation process.
"""

from __future__ import annotations

import numpy as np

from repro.core.params import IntermittentParams, PermanentParams
from repro.cuda.driver import CudaEvent, CudaFunction
from repro.gpusim.context import InstrSite
from repro.nvbit.instr import IPoint
from repro.nvbit.tool import NVBitTool
from repro.sass.isa import opcode_by_id


class PermanentInjectorTool(NVBitTool):
    """Corrupts all dynamic instances of one opcode on one SM/lane."""

    name = "pf_injector"

    def __init__(self, params: PermanentParams, extra_opcode_ids: list[int] | None = None) -> None:
        super().__init__()
        self.params = params
        # §V extension: one physical fault may affect multiple opcodes that
        # share the faulty unit (e.g. an ALU used by IADD and ISETP).
        opcode_ids = [params.opcode_id] + list(extra_opcode_ids or [])
        self.target_opcodes = {opcode_by_id(i).name for i in opcode_ids}
        self.activations = 0
        self.opportunities = 0
        self._instrumented: set[CudaFunction] = set()

    def nvbit_at_cuda_event(self, driver, event, payload, is_exit) -> None:
        if event is not CudaEvent.LAUNCH_KERNEL or is_exit:
            return
        func = payload.func
        if func not in self._instrumented:
            matched = False
            for instr in self.nvbit.get_instrs(func):
                if instr.get_opcode_short() in self.target_opcodes:
                    instr.insert_call(self._visit, IPoint.AFTER)
                    matched = True
            self._instrumented.add(func)
            self.nvbit.enable_instrumented(func, matched)
        # Every launch of a matching kernel runs instrumented (the permanent
        # fault never goes away), so the enable flag set above persists.

    # -- the corruption instrumentation function ---------------------------------

    def _visit(self, site: InstrSite) -> None:
        if site.sm_id != self.params.sm_id:
            return
        lane = self.params.lane_id
        if not site.exec_mask[lane]:
            return
        self.opportunities += 1
        if not self._activate():
            return
        self.activations += 1
        instr = site.instr
        for reg in instr.dest_regs:
            before = site.read_reg(lane, reg)
            site.write_reg(lane, reg, before ^ self.params.bit_mask)
        pred = instr.dest_pred
        if pred is not None and self.params.bit_mask & 1:
            site.write_pred(lane, pred, not site.read_pred(lane, pred))

    def _activate(self) -> bool:
        """Permanent faults are always active; subclasses override."""
        return True


class IntermittentInjectorTool(PermanentInjectorTool):
    """Paper §V: a permanent-fault site active only part of the time."""

    name = "intermittent_injector"

    def __init__(self, params: IntermittentParams) -> None:
        super().__init__(params.permanent)
        self.intermittent = params
        self._rng = np.random.default_rng(params.seed)
        self._bursty_on = False

    def _activate(self) -> bool:
        cfg = self.intermittent
        if cfg.process == "random":
            return bool(self._rng.random() < cfg.activation_probability)
        # Bursty: a two-state process.  Mean ON-burst length is
        # ``burst_length``; the OFF->ON rate is chosen so the stationary
        # active fraction equals ``activation_probability``.
        p_exit_on = 1.0 / cfg.burst_length
        if cfg.activation_probability >= 1.0:
            return True
        p_enter_on = min(
            1.0,
            p_exit_on
            * cfg.activation_probability
            / (1.0 - cfg.activation_probability),
        )
        if self._bursty_on:
            if self._rng.random() < p_exit_on:
                self._bursty_on = False
        else:
            if self._rng.random() < p_enter_on:
                self._bursty_on = True
        return self._bursty_on
