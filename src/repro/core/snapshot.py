"""Snapshot-resume execution: fork injection runs from a replayed checkpoint.

The replay tape (PRs 4-5) makes the launches *before* an injection target
nearly free, but every injection still pays for re-running the host
program and re-applying the tape from launch zero.  This module removes
that cost the way ZOFI does — fork the process at the injection point —
generalised to groups:

* :class:`SnapshotExecutor` groups transient tasks by their fast-forward
  stop launch.  Per group it runs the workload **once**, replaying the
  tape up to the target boundary; at that boundary the
  :class:`_SnapshotCursor` forks one copy-on-write child per sibling task
  (plain ``os.fork``, POSIX only).  Each child swaps in its own injection
  parameters — instrumentation depends only on the shared opcode group and
  target instance, both identical across siblings — finishes the run on
  the inherited Python stack, and ships its pickled
  :class:`~repro.core.engine.InjectionOutput` back over a pipe.  The
  parent then unwinds via :class:`_ForkParentDone` and moves to the next
  group.  Results are byte-identical to :class:`SerialExecutor` /
  :class:`ParallelExecutor` because both paths reconstruct exactly the
  same pre-target state and classification uses deterministic artifacts
  (instructions, not wall-clock).

* :class:`ReplayCache` is the persistent cross-campaign tape cache
  (default ``~/.cache/repro/replay/``, override with the
  ``replay_cache`` knob or ``$REPRO_REPLAY_CACHE``).  Keys combine the
  workload id, the sandbox config fingerprint and the code version; the
  tape format embeds a sha256 content hash that is validated on load, so
  a corrupt or stale entry degrades to re-recording instead of wrong
  results.  ``repro serve`` points every scheduler worker at a
  DB-adjacent cache dir, so one worker records golden and the rest replay
  it.

Fallbacks keep the executor safe everywhere: platforms without
``os.fork`` delegate to the existing executors, tasks without a usable
tape run through :func:`~repro.core.engine.execute_task`, and a child
that dies re-runs in-process under the normal
:class:`~repro.core.resilience.RetryPolicy` (the fork counts as the first
attempt).  ``task_timeout`` is not enforced for in-group runs — as with
:class:`SerialExecutor`, the in-sim instruction budget is the hang
detector.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import pickle
import queue as queue_mod
import threading
import time
from pathlib import Path
from typing import Iterator, Sequence

from repro.core.engine import (
    InjectionOutput,
    InjectionTask,
    ParallelExecutor,
    SerialExecutor,
    execute_task,
)
from repro.core.injector import TransientInjectorTool
from repro.core.resilience import RetryPolicy, TaskFailure, format_error
from repro.errors import ReproError
from repro.gpusim.replay import (
    PAGE_SIZE,
    ReplayCursor,
    ReplayLog,
    load_replay_log,
    save_replay_log,
)
from repro.obs.sink import MemorySink
from repro.obs.trace import Tracer
from repro.runner.app import Application
from repro.runner.sandbox import SandboxConfig, run_app
from repro.workloads import get_workload

#: Exit status a fork child uses when it cannot produce a result; the
#: parent charges the fork as attempt 1 and retries in-process.
_CHILD_FAILED = 70

#: Bump when the cache key derivation or tape semantics change in a way
#: that must invalidate previously cached entries.
_CACHE_FORMAT = 1


def snapshot_supported() -> bool:
    """Fork-based snapshots need a POSIX ``os.fork``."""
    return hasattr(os, "fork")


def default_cache_root() -> Path:
    """``$REPRO_REPLAY_CACHE`` or ``~/.cache/repro/replay``."""
    env = os.environ.get("REPRO_REPLAY_CACHE")
    if env:
        return Path(env).expanduser()
    return Path("~/.cache/repro/replay").expanduser()


class ReplayCache:
    """Persistent cross-campaign replay-tape cache.

    One entry per (workload, sandbox fingerprint, code version): the tape
    itself as ``<key>.bin`` (the standard replay-log format, whose header
    embeds a sha256 over the blob section) plus a human-readable
    ``<key>.json`` sidecar.  Entries are written atomically; concurrent
    writers racing on the same key produce identical bytes (recording is
    deterministic), so last-rename-wins is safe.

    Invalidation is entirely key- and content-driven: changing the
    workload, any outcome-relevant sandbox knob, the tape page size, the
    package version, or :data:`_CACHE_FORMAT` derives a different key;
    a tampered or torn file fails its embedded content hash and is
    treated as a miss.
    """

    def __init__(self, root: str | os.PathLike | None = None) -> None:
        self.root = Path(root).expanduser() if root else default_cache_root()

    @staticmethod
    def resolve(setting: bool | str | os.PathLike | None) -> "ReplayCache | None":
        """Build a cache from a config knob value.

        ``None``/``False`` disable caching, ``True`` selects the default
        root, a string/path selects an explicit directory.
        """
        if setting is None or setting is False:
            return None
        if setting is True:
            return ReplayCache()
        return ReplayCache(setting)

    def key(self, workload: str, config: SandboxConfig) -> str:
        """Cache key: workload id + sandbox fingerprint + code version."""
        from repro import __version__

        parts = [
            "replay-cache",
            str(_CACHE_FORMAT),
            __version__,
            str(PAGE_SIZE),
            workload,
            str(config.seed),
            str(config.instruction_budget),
            config.family,
            str(config.num_sms),
            str(config.global_mem_bytes),
            json.dumps(sorted((config.extra_env or {}).items())),
        ]
        return hashlib.sha256("\x1f".join(parts).encode()).hexdigest()[:32]

    def path_for(self, workload: str, config: SandboxConfig) -> Path:
        return self.root / f"{self.key(workload, config)}.bin"

    def lookup(self, workload: str, config: SandboxConfig) -> ReplayLog | None:
        """The cached tape for this (workload, config), or ``None``.

        The load validates the embedded content hash and the recorded
        workload id; any failure is a miss, never an error.
        """
        path = self.path_for(workload, config)
        try:
            log = load_replay_log(path)
        except (OSError, ReproError):
            return None
        if log.workload and log.workload != workload:
            return None
        return log

    def store(self, workload: str, config: SandboxConfig, log: ReplayLog) -> Path:
        """Persist ``log`` for this (workload, config); returns the path."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(workload, config)
        save_replay_log(log, path)
        meta = {
            "workload": workload,
            "seed": config.seed,
            "family": config.family,
            "num_sms": config.num_sms,
            "launches": len(log),
            "sha256": log.content_hash,
            "created": time.time(),
        }
        self._write_json(path.with_suffix(".json"), meta)
        return path

    # -- instruction profiles ----------------------------------------------------
    #
    # The profiling pass is the one plan phase a cached tape cannot
    # fast-forward: counting dynamic instructions requires simulating
    # every launch under instrumentation.  Its output is a pure function
    # of the same key the tape hashes to, so it is cached alongside the
    # tape — validated against the tape's content hash, because a profile
    # is only as good as the golden run it counted.

    def profile_path_for(
        self, workload: str, config: SandboxConfig, mode: str
    ) -> Path:
        return self.root / f"{self.key(workload, config)}.{mode}.profile"

    def lookup_profile(
        self, workload: str, config: SandboxConfig, mode: str, tape_sha: str | None
    ):
        """The cached instruction profile, or ``None``.

        A profile recorded against a different tape (``sha256`` mismatch),
        an unreadable file, or a malformed payload is a miss, never an
        error.
        """
        from repro.core.profile_data import ProgramProfile
        from repro.errors import ProfileError

        if not tape_sha:
            return None
        path = self.profile_path_for(workload, config, mode)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            if payload.get("workload") != workload:
                return None
            if payload.get("tape_sha256") != tape_sha:
                return None
            profile = ProgramProfile.from_text(payload["profile"])
            counters = {
                str(k): int(v)
                for k, v in dict(payload.get("counters", {})).items()
            }
            return profile, counters
        except (OSError, ValueError, KeyError, TypeError, ProfileError):
            return None

    def store_profile(
        self,
        workload: str,
        config: SandboxConfig,
        mode: str,
        tape_sha: str | None,
        profile,
        counters: dict[str, int] | None = None,
    ) -> Path | None:
        """Persist ``profile`` next to the tape it was counted against.

        ``counters`` carries the profiling run's device totals (cycles,
        instructions, warps) so a cache hit can fold the same numbers
        into the metrics registry — mirroring how replayed launches
        re-report recorded cycle deltas instead of dropping them.
        """
        if not tape_sha:
            return None
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.profile_path_for(workload, config, mode)
        self._write_json(
            path,
            {
                "workload": workload,
                "mode": mode,
                "tape_sha256": tape_sha,
                "profile": profile.to_text(),
                "counters": counters or {},
                "created": time.time(),
            },
        )
        return path

    @staticmethod
    def _write_json(path: Path, payload: dict) -> None:
        # Unique per process *and* thread: `repro serve` coordinators
        # write shared-cache entries concurrently from threads of one
        # process.
        tmp = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        os.replace(tmp, path)


class _ForkParentDone(BaseException):
    """Unwinds the parent out of ``run_app`` after all children forked.

    Derives from ``BaseException`` so no handler between the fork point
    (``cuLaunchKernel`` → cursor consult) and the group runner can swallow
    it; ``run_app``'s ``finally`` still runs, so the interceptor is torn
    down cleanly.
    """


class _ForkGroup:
    """Shared mutable state between a group run's cursor and its runner."""

    def __init__(self, tasks: Sequence[InjectionTask]) -> None:
        self.tasks = list(tasks)
        self.injector: TransientInjectorTool | None = None
        self.in_child = False
        self.child_task: InjectionTask | None = None
        self.child_fd = -1
        self.outputs: list[InjectionOutput] = []
        self.failures: list[tuple[InjectionTask, str]] = []

    def fork_children(self) -> None:
        """Fork one COW child per sibling; parent reaps each in turn.

        Called from the cursor at the target-launch boundary, where device
        state equals golden.  Children are serviced sequentially so every
        fork sees the pristine parent state (the parent is paused here).
        Only a *child* returns from this method; the parent raises
        :class:`_ForkParentDone` once every sibling has been reaped.
        """
        for task in self.tasks:
            read_fd, write_fd = os.pipe()
            pid = os.fork()
            if pid == 0:
                os.close(read_fd)
                self.in_child = True
                self.child_task = task
                self.child_fd = write_fd
                # Instrumentation (already armed at launch entry) depends
                # only on the opcode group and target instance — identical
                # across siblings; the per-run fields (instruction_count,
                # register selector, bit pattern, model) are read lazily
                # at visit/inject time, so swapping params here retargets
                # this child's injection.
                self.injector.params = task.params
                return
            os.close(write_fd)
            payload = b""
            try:
                with os.fdopen(read_fd, "rb") as pipe:
                    payload = pipe.read()
            except OSError:
                payload = b""
            _, status = os.waitpid(pid, 0)
            exitcode = os.waitstatus_to_exitcode(status)
            output = None
            if exitcode == 0 and payload:
                try:
                    output = pickle.loads(payload)
                except Exception:
                    output = None
            if isinstance(output, InjectionOutput) and output.index == task.index:
                self.outputs.append(output)
            else:
                self.failures.append(
                    (task, f"snapshot fork child exited with status {exitcode}")
                )
        raise _ForkParentDone()


class _SnapshotCursor(ReplayCursor):
    """A replay cursor that forks the process at the target boundary.

    Behaves exactly like :class:`ReplayCursor` (same replay, tracking and
    disarm semantics) except that reaching the target launch with the tape
    still armed first triggers the group fork.  If the cursor disarms
    before the target (off-tape launch, early instrumentation), no fork
    happens and the group runner falls back to per-task execution.
    """

    def __init__(
        self,
        log: ReplayLog,
        stop_launch: int,
        pre: bool,
        tail: bool,
        group: _ForkGroup,
    ) -> None:
        super().__init__(log, stop_launch, pre=pre, tail=tail)
        self._group = group

    def _reach_target(
        self, device, seq, kernel_name, grid, block, args, shared_bytes
    ):
        group = self._group
        if group is not None and not group.in_child and seq == self.stop_launch:
            self._group = None  # fork exactly once per group run
            group.fork_children()  # raises _ForkParentDone in the parent
            # only a forked child reaches here; it proceeds through the
            # normal target-boundary transition (shadow snapshot, tail
            # tracking) on its own copy-on-write state.
        return super()._reach_target(
            device, seq, kernel_name, grid, block, args, shared_bytes
        )


def _group_tasks(
    tasks: Sequence[InjectionTask],
) -> tuple[list[list[InjectionTask]], list[InjectionTask]]:
    """Partition tasks into fork groups and pass-through singles.

    Groupable tasks are transient, carry a pre-target replay window, and
    share (tape, stop launch, target kernel instance, opcode group) — the
    preconditions for the post-fork params swap.  Everything else runs
    through the plain per-task path.
    """
    groups: dict[tuple, list[InjectionTask]] = {}
    solo: list[InjectionTask] = []
    for task in tasks:
        ref = task.replay
        if task.kind != "transient" or ref is None:
            solo.append(task)
            continue
        key = (
            ref.path,
            ref.stop_launch,
            ref.pre,
            ref.tail,
            task.params.kernel_name,
            task.params.kernel_count,
            task.params.group,
            task.sandbox,
        )
        groups.setdefault(key, []).append(task)
    ordered = sorted(
        groups.values(), key=lambda grp: (grp[0].replay.stop_launch, grp[0].index)
    )
    return ordered, solo


def _write_all(fd: int, payload: bytes) -> None:
    view = memoryview(payload)
    while view:
        written = os.write(fd, view)
        view = view[written:]


class SnapshotExecutor:
    """Runs grouped injections as COW forks of one replayed checkpoint.

    Implements the standard executor protocol (``run(tasks, app=,
    tracer=, retry=, on_retry=)`` yielding ``InjectionOutput`` |
    ``TaskFailure``).  ``max_workers >= 2`` shards the fork groups across
    that many processes (results stream back over a queue; a dead worker's
    unfinished tasks re-run in the parent); otherwise groups run serially
    in the calling process.  On platforms without ``os.fork`` the run
    delegates wholesale to :class:`ParallelExecutor` /
    :class:`SerialExecutor`.
    """

    #: Marker the engine checks (without importing this module) to tag
    #: inject spans with ``snapshot=True``.
    snapshot_executor = True

    def __init__(
        self, max_workers: int = 0, retry: RetryPolicy | None = None
    ) -> None:
        self.max_workers = max_workers
        self.retry = retry

    def run(
        self,
        tasks: Sequence[InjectionTask],
        app: Application | None = None,
        tracer: Tracer | None = None,
        retry: RetryPolicy | None = None,
        on_retry=None,
    ) -> Iterator[InjectionOutput | TaskFailure]:
        policy = self.retry if self.retry is not None else (retry or RetryPolicy())
        notify = on_retry or (lambda failure, delay: None)
        tasks = list(tasks)
        if not tasks:
            return
        if not snapshot_supported():
            fallback = (
                ParallelExecutor(max_workers=self.max_workers)
                if self.max_workers and self.max_workers > 1
                else SerialExecutor()
            )
            yield from fallback.run(
                tasks, app=app, tracer=tracer, retry=policy, on_retry=notify
            )
            return
        if self.max_workers and self.max_workers > 1:
            yield from self._run_sharded(tasks, policy, notify)
        else:
            yield from self._run_local(tasks, app, tracer, policy, notify)

    # -- serial (in-process) path -------------------------------------------

    def _run_local(self, tasks, app, tracer, policy, notify):
        groups, solo = _group_tasks(tasks)
        for task in solo:
            yield from self._run_with_retries(task, app, tracer, policy, notify)
        for group in groups:
            outputs, leftover, failures = self._run_group(group, app)
            yield from outputs
            for task in leftover:
                # The group aborted before any fork (unreadable tape,
                # early disarm): nothing ran for this task, so no attempt
                # is charged.
                yield from self._run_with_retries(
                    task, app, tracer, policy, notify
                )
            for task, error in failures:
                yield from self._run_with_retries(
                    task, app, tracer, policy, notify,
                    first_error=error, first_reason="fork-child",
                )

    def _run_group(self, group, app):
        """One workload pass servicing every sibling via forks.

        Returns ``(outputs, leftover_tasks, failed_tasks)``:
        ``leftover_tasks`` never ran (fall back uncharged),
        ``failed_tasks`` are ``(task, error)`` pairs whose fork child died
        (charged as attempt 1).
        """
        ref = group[0].replay
        try:
            log = load_replay_log(ref.path)
        except (OSError, ReproError):
            return [], list(group), []
        if app is None:
            app = get_workload(group[0].workload)
        ctx = _ForkGroup(group)
        cursor = _SnapshotCursor(
            log, ref.stop_launch, pre=ref.pre, tail=ref.tail, group=ctx
        )
        injector = TransientInjectorTool(group[0].params)
        ctx.injector = injector
        buffer = MemorySink()
        try:
            artifacts = run_app(
                app,
                preload=[injector],
                config=group[0].sandbox.config(),
                tracer=Tracer(sink=buffer),
                replay=cursor,
            )
        except _ForkParentDone:
            return (
                ctx.outputs,
                [],
                [(task, error) for task, error in ctx.failures],
            )
        except BaseException:
            if ctx.in_child:
                # A child crashed past the fork point; die without
                # touching inherited fds — the parent charges the attempt
                # and retries in-process.
                os._exit(_CHILD_FAILED)
            # The parent failed before reaching the fork point; nothing
            # ran to completion, so every task falls back uncharged (a
            # genuinely broken task will fail its own attempts there).
            return [], list(group), []
        if ctx.in_child:
            try:
                output = InjectionOutput(
                    index=ctx.child_task.index,
                    record=getattr(injector, "record", None),
                    activations=getattr(injector, "activations", 0),
                    artifacts=artifacts,
                    events=buffer.events,
                    forked=True,
                )
                _write_all(ctx.child_fd, pickle.dumps(output))
                os.close(ctx.child_fd)
            except BaseException:
                os._exit(_CHILD_FAILED)
            os._exit(0)
        # Parent completed without forking (cursor disarmed before the
        # target): this run *is* the first sibling's injection run — the
        # cursor degraded exactly like a plain ReplayCursor would — and
        # the remaining siblings fall back to per-task execution.
        first = InjectionOutput(
            index=group[0].index,
            record=getattr(injector, "record", None),
            activations=getattr(injector, "activations", 0),
            artifacts=artifacts,
            events=buffer.events,
        )
        return [first], list(group[1:]), []

    def _run_with_retries(
        self,
        task,
        app,
        tracer,
        policy,
        notify,
        first_error: str | None = None,
        first_reason: str = "exception",
    ):
        """SerialExecutor's retry loop, optionally pre-charged one attempt."""
        attempt = 0
        failure = None
        if first_error is not None:
            attempt = 1
            failure = TaskFailure(task.index, attempt, first_error, first_reason)
        while True:
            if failure is not None:
                if not policy.should_retry(attempt):
                    yield failure
                    return
                delay = policy.delay(attempt, key=task.index)
                notify(failure, delay)
                if delay:
                    time.sleep(delay)
            attempt += 1
            try:
                output = execute_task(task, app, tracer=tracer)
            except Exception as exc:
                failure = TaskFailure(task.index, attempt, format_error(exc))
                continue
            yield output
            return

    # -- sharded (multi-process) path ---------------------------------------

    def _run_sharded(self, tasks, policy, notify):
        groups, solo = _group_tasks(tasks)
        units: list[list[InjectionTask]] = groups + [[task] for task in solo]
        workers = min(self.max_workers, len(units)) or 1
        shards: list[list[InjectionTask]] = [[] for _ in range(workers)]
        for n, unit in enumerate(units):
            shards[n % workers].extend(unit)
        result_queue: multiprocessing.Queue = multiprocessing.Queue()
        procs = [
            multiprocessing.Process(
                target=_snapshot_worker_main,
                args=(shard, policy, result_queue, type(self)),
                daemon=True,
            )
            for shard in shards
            if shard
        ]
        for proc in procs:
            proc.start()
        pending = {task.index for task in tasks}
        done = 0
        try:
            while done < len(procs):
                try:
                    kind, payload = result_queue.get(timeout=0.2)
                except queue_mod.Empty:
                    if not any(proc.is_alive() for proc in procs):
                        break
                    continue
                if kind == "done":
                    done += 1
                elif kind == "retry":
                    failure, delay = payload
                    notify(failure, delay)
                else:
                    pending.discard(payload.index)
                    yield payload
            while True:  # drain anything raced in after the last "done"
                try:
                    kind, payload = result_queue.get_nowait()
                except queue_mod.Empty:
                    break
                if kind == "retry":
                    failure, delay = payload
                    notify(failure, delay)
                elif kind != "done":
                    pending.discard(payload.index)
                    yield payload
        finally:
            for proc in procs:
                proc.join(timeout=5.0)
                if proc.is_alive():
                    proc.terminate()
                    proc.join()
        if pending:
            # A worker died mid-shard; its checkpointed siblings already
            # streamed back, so only the unfinished tasks re-run here.
            leftovers = [task for task in tasks if task.index in pending]
            yield from self._run_local(leftovers, None, None, policy, notify)


def _snapshot_worker_main(
    tasks: list[InjectionTask],
    policy: RetryPolicy,
    result_queue: multiprocessing.Queue,
    executor_cls: type["SnapshotExecutor"] = SnapshotExecutor,
) -> None:
    """One shard worker: serial fork-group execution, queued results.

    ``executor_cls`` is the sharding executor's own class, so subclasses
    (the batch executor) shard into workers running *their* group logic.
    """
    executor = executor_cls()

    def notify(failure: TaskFailure, delay: float) -> None:
        result_queue.put(("retry", (failure, delay)))

    try:
        for item in executor.run(tasks, retry=policy, on_retry=notify):
            kind = "failure" if isinstance(item, TaskFailure) else "output"
            result_queue.put((kind, item))
    finally:
        result_queue.put(("done", None))
        result_queue.close()
        result_queue.join_thread()
