"""Batched multi-fault injection: one simulator pass per fault *chain*.

:class:`MultiFaultInjectorTool` arms N sorted
:class:`~repro.core.params.TransientParams` for one
``(kernel_name, kernel_count)`` launch and counts group instructions
exactly once, with the profiler-compatible lane ordering of
:meth:`TransientInjectorTool._visit <repro.core.injector.TransientInjectorTool._visit>`.
When the count crosses a fault's ``instruction_count`` the tool takes an
in-launch checkpoint (a copy-on-write :class:`OverlayForker` fork): the
overlay child applies *its* fault to the live instruction site and runs
the divergent suffix — the rest of the launch, the host program's tail,
tail fast-forward re-arming on reconvergence — on inherited state, while
the clean counting pass continues toward the next checkpoint.  Faults
whose count the launch never reaches are forked at launch exit and
complete as not-injected runs, exactly like their serial counterparts.

Sharing one counting pass per launch is not where most of the duplicated
cost lives, though: campaigns spread faults across many launches, so the
expensive duplicate is the per-group host run and tape replay.  The tool
therefore services a whole **chain** of fault groups from one pass.
Because the clean pass never injects, its memory after cleanly
simulating a target launch still equals golden; a
:class:`~repro.gpusim.multifault.SweepCursor` re-arms tape replay at the
next boundary and retargets the *next* group's stop launch, while the
tool swaps in that group's params and checkpoint plan at the previous
target's exit.  One host run and one pass over the tape then service
every fault group that shares a tape, an opcode group and a sandbox.

:class:`BatchExecutor` wires the tool into the engine's executor
protocol.  It *is* a :class:`~repro.core.snapshot.SnapshotExecutor` —
same grouping by fast-forward stop launch, same sharded mode, same
fallbacks (no ``os.fork`` → plain executors, unreadable tape →
per-task runs, dead child → in-process retry charged as attempt 1) —
but where a snapshot group forks every child at the launch *boundary*
and each child then re-simulates the whole target launch, a batch chain
simulates the shared prefix of every targeted launch once for all
siblings.  The amortization model and measurements live in
``docs/performance.md``; ``results.csv`` and simulated-cycle totals are
byte-identical to the serial path (asserted in
``benchmarks/bench_campaign.py`` and ``tests/core/test_batch_injector.py``).
"""

from __future__ import annotations

import os
import pickle
from typing import Sequence

from repro.core.engine import InjectionOutput, InjectionTask
from repro.core.injector import TransientInjectorTool
from repro.core.snapshot import (
    _CHILD_FAILED,
    SnapshotExecutor,
    _ForkParentDone,
    _group_tasks,
)
from repro.cuda.driver import CudaEvent
from repro.errors import ReproError
from repro.gpusim.context import InstrSite
from repro.gpusim.multifault import (
    CheckpointPlan,
    FaultPoint,
    OverlayForker,
    SweepCursor,
)
from repro.gpusim.replay import ReplayCursor, load_replay_log
from repro.obs.sink import MemorySink
from repro.obs.trace import Tracer
from repro.runner.sandbox import run_app
from repro.workloads import get_workload


class MultiFaultInjectorTool(TransientInjectorTool):
    """Services a chain of same-launch fault groups from one counting pass.

    Instrumentation depends only on the opcode group and target instance
    — identical across a group's siblings by the executor's grouping key
    — so the tool arms exactly like the single-fault injector and
    replaces only the per-site visit: instead of comparing the counter
    against one target, it drains a :class:`CheckpointPlan` of all
    siblings' targets and forks an overlay per due point.  Inside an
    overlay child the tool *becomes* the single-fault injector for that
    sibling: params are swapped, the fault is applied to the live site,
    and the normal disarm/record semantics take over.

    At a non-final group's target-launch exit the parent forks the
    group's never-reached leftovers, then retargets: next group's params
    and plan swap in, and the launch-instance counting — kept per kernel
    name across the *whole* run, since later groups may target different
    kernels — arms the next target when it arrives.  Only after the final
    group does the parent unwind with :class:`_ForkParentDone`.
    """

    name = "batch-injector"

    def __init__(
        self,
        chain: Sequence[Sequence[InjectionTask]],
        forker: OverlayForker,
        cursor: SweepCursor | None = None,
    ) -> None:
        groups = [list(group) for group in chain]
        super().__init__(groups[0][0].params)
        self._groups = groups
        self._plans = [
            CheckpointPlan(
                FaultPoint(
                    count=task.params.instruction_count,
                    order=task.index,
                    payload=task,
                )
                for task in group
            )
            for group in groups
        ]
        self._group_index = 0
        self._plan = self._plans[0]
        self._forker = forker
        self._cursor = cursor
        self._recompile_pending = False

    def nvbit_at_cuda_event(self, driver, event, payload, is_exit) -> None:
        if event is not CudaEvent.LAUNCH_KERNEL:
            return
        func = payload.func
        name = func.name
        if not is_exit:
            if (
                name == self.params.kernel_name
                and self._instance_counter.get(name, 0) == self.params.kernel_count
                and not self.record.injected
            ):
                if self._recompile_pending and func in self._instrumented:
                    # A later chain group re-arms a kernel an earlier group
                    # already instrumented: a serial run of this group
                    # would JIT its clone fresh at this launch, so force
                    # the same (cycle-charged) recompile here.
                    self.nvbit.invalidate_instrumented(func)
                self._recompile_pending = False
                self._instrument(func)
                self.nvbit.enable_instrumented(func, True)
                self._armed = True
                self._instr_counter = 0
                if self._cursor is not None:
                    # Counter snapshot before this launch's JIT charge, so
                    # the sweep's post-launch fixup can rebase onto it.
                    self._cursor.begin_target_launch(driver.device)
            else:
                self.nvbit.enable_instrumented(func, False)
            return
        was_armed = self._armed
        self._instance_counter[name] = self._instance_counter.get(name, 0) + 1
        self._armed = False
        if was_armed and not self._forker.in_child:
            # The counting pass finished this group's target launch with
            # targets never reached (instruction_count beyond the launch's
            # group instructions).  Fork one overlay per leftover so each
            # completes the host suffix as a not-injected run — byte-
            # identical to its serial counterpart — then retarget the next
            # group, or unwind after the last.
            for point in self._plan.take_rest():
                if self._forker.fork_overlay(point.payload):
                    self._become_child(point.payload)
                    return
            if self._group_index + 1 >= len(self._groups):
                raise _ForkParentDone()
            self._next_group()

    def _become_child(self, task: InjectionTask) -> None:
        """Turn a freshly forked overlay into ``task``'s serial run."""
        self.params = task.params
        if self._cursor is not None:
            self._cursor.collapse_to_current_target()

    def _next_group(self) -> None:
        self._group_index += 1
        self.params = self._groups[self._group_index][0].params
        self._plan = self._plans[self._group_index]
        self._instr_counter = 0
        self._recompile_pending = True

    def _visit(self, site: InstrSite) -> None:
        if not self._armed or self.record.injected:
            return
        executed = site.num_executed
        counter = self._instr_counter
        end = counter + executed
        self._instr_counter = end
        plan = self._plan
        next_count = plan.next_count
        if next_count is None or next_count >= end:
            return
        lanes = site.active_lanes
        for point in plan.due(counter, end):
            if self._forker.fork_overlay(point.payload):
                # The overlay child: inject this sibling's fault into the
                # live site — same lane-offset arithmetic as the serial
                # `target - _instr_counter` — and finish its run.
                self._become_child(point.payload)
                self._inject(site, int(lanes[point.count - counter]))
                self._armed = False
                return
        if plan.exhausted and self._group_index + 1 >= len(self._groups):
            # Every sibling's suffix runs in its own overlay and no later
            # group needs this launch's end state: nothing left to count.
            # (A non-final group's launch must finish cleanly instead —
            # its memory is the next target's golden prefix.)
            raise _ForkParentDone()


def _chain_groups(
    groups: Sequence[Sequence[InjectionTask]],
) -> list[list[list[InjectionTask]]]:
    """Merge fork groups into sweep chains.

    Groups sharing a tape, an opcode group and a sandbox — with both the
    pre-target window and the tail enabled, which the sweep's retarget
    relies on — chain in stop-launch order so one parent pass services
    all of them.  Everything else stays a single-group chain.
    """
    chains: dict[tuple, list[list[InjectionTask]]] = {}
    ordered: list[list[list[InjectionTask]]] = []
    for group in groups:
        ref = group[0].replay
        if not (ref.pre and ref.tail):
            ordered.append([list(group)])
            continue
        key = (ref.path, group[0].params.group, group[0].sandbox)
        chain = chains.get(key)
        if chain is None:
            chains[key] = chain = []
            ordered.append(chain)
        chain.append(list(group))
    for chain in ordered:
        chain.sort(key=lambda grp: grp[0].replay.stop_launch)
    return ordered


class BatchExecutor(SnapshotExecutor):
    """Snapshot execution with the chained shared counting pass.

    ``max_workers >= 2`` shards fork groups across processes exactly as
    the snapshot executor does (each shard worker is a serial
    ``BatchExecutor`` chaining *its* groups); the scheduler's
    ``snapshot_order`` keeps leased units launch-coherent, so sharded
    batch chains stay long.
    """

    #: Marker the engine checks (without importing this module) to tag
    #: inject spans with ``batch=True``.
    batch_executor = True

    def _run_local(self, tasks, app, tracer, policy, notify):
        groups, solo = _group_tasks(tasks)
        for task in solo:
            yield from self._run_with_retries(task, app, tracer, policy, notify)
        for chain in _chain_groups(groups):
            outputs, leftover, failures = self._run_chain(chain, app)
            yield from outputs
            for task in leftover:
                # Never ran (unreadable tape, early disarm, a target that
                # never armed): fall back uncharged.
                yield from self._run_with_retries(
                    task, app, tracer, policy, notify
                )
            for task, error in failures:
                yield from self._run_with_retries(
                    task, app, tracer, policy, notify,
                    first_error=error, first_reason="fork-child",
                )

    def _run_chain(self, chain, app):
        """One counting pass servicing every chained sibling via forks.

        Returns ``(outputs, leftover_tasks, failed_tasks)``: leftovers
        never ran (fall back uncharged), failures are ``(task, error)``
        pairs whose fork child died (charged as attempt 1).
        """
        tasks = [task for group in chain for task in group]
        ref = chain[0][0].replay
        try:
            log = load_replay_log(ref.path)
        except (OSError, ReproError):
            return [], tasks, []
        if app is None:
            app = get_workload(chain[0][0].workload)
        forker = OverlayForker()
        if ref.pre and ref.tail:
            cursor = SweepCursor(
                log, [group[0].replay.stop_launch for group in chain]
            )
            injector = MultiFaultInjectorTool(chain, forker, cursor=cursor)
        else:
            cursor = ReplayCursor(
                log, ref.stop_launch, pre=ref.pre, tail=ref.tail
            )
            injector = MultiFaultInjectorTool(chain, forker)
        buffer = MemorySink()
        try:
            artifacts = run_app(
                app,
                preload=[injector],
                config=chain[0][0].sandbox.config(),
                tracer=Tracer(sink=buffer),
                replay=cursor,
            )
        except _ForkParentDone:
            forker.drain()
            outputs, failures = self._collect(forker)
            return outputs, _left_over(tasks, outputs, failures), failures
        except BaseException:
            if forker.in_child:
                # A child crashed past its checkpoint; die without
                # touching inherited fds — the parent charges the attempt
                # and retries in-process.
                os._exit(_CHILD_FAILED)
            # The counting pass died mid-sweep: results shipped by earlier
            # checkpoints (including children still running — drain waits
            # for them) are valid serial-identical runs, so keep them;
            # only the unfinished tasks fall back.
            forker.drain()
            outputs, failures = self._collect(forker)
            return outputs, _left_over(tasks, outputs, failures), failures
        if forker.in_child:
            task = forker.child_payload
            try:
                output = InjectionOutput(
                    index=task.index,
                    record=getattr(injector, "record", None),
                    activations=getattr(injector, "activations", 0),
                    artifacts=artifacts,
                    events=buffer.events,
                    forked=True,
                    batch=True,
                )
                forker.ship(pickle.dumps(output))
            except BaseException:
                os._exit(_CHILD_FAILED)
            os._exit(0)
        # The counting pass completed without unwinding: the cursor
        # disarmed or a later group's target never armed.
        forker.drain()
        outputs, failures = self._collect(forker)
        if outputs or failures:
            return outputs, _left_over(tasks, outputs, failures), failures
        if len(chain) == 1:
            # Nothing ever forked and the chain was a single group: this
            # run *is* the first sibling's injection run, exactly as in
            # the snapshot executor's degraded path; the rest fall back
            # per task.  (A multi-group chain's parent run mixes replayed
            # and instrumented launches, so it stands in for no task.)
            first = InjectionOutput(
                index=chain[0][0].index,
                record=getattr(injector, "record", None),
                activations=getattr(injector, "activations", 0),
                artifacts=artifacts,
                events=buffer.events,
            )
            return [first], tasks[1:], []
        return [], tasks, []

    @staticmethod
    def _collect(forker):
        """Validate shipped child results; failures charge as attempt 1."""
        outputs: list[InjectionOutput] = []
        failures: list[tuple[InjectionTask, str]] = []
        shared: set[tuple[str, int]] = set()
        for task, exitcode, data in forker.results:
            output = None
            if exitcode == 0 and data:
                try:
                    output = pickle.loads(data)
                except Exception:
                    output = None
            if isinstance(output, InjectionOutput) and output.index == task.index:
                # One shared counting pass serviced each group's target
                # launch: tag a single sibling per target so the engine's
                # ``engine.batch.launches_shared`` counter counts passes,
                # not faults (``engine.batch.checkpoints`` counts faults).
                key = (task.params.kernel_name, task.params.kernel_count)
                if key not in shared:
                    shared.add(key)
                    output.batch_shared = True
                outputs.append(output)
            else:
                failures.append(
                    (task, f"batch fork child exited with status {exitcode}")
                )
        return outputs, failures


def _left_over(tasks, outputs, failures):
    done = {output.index for output in outputs}
    done.update(task.index for task, _ in failures)
    return [task for task in tasks if task.index not in done]
