"""The profiler tool (``profiler.so`` in the real package).

Two modes, as in paper §III-A:

* **exact** — every dynamic kernel is instrumented and every dynamic
  instruction counted;
* **approximate** — only the *first* dynamic instance of each static kernel
  is instrumented; later instances run uninstrumented and are assumed to
  execute the same instruction mix (their profile records are copies,
  flagged ``approximated``).

Counting uses an after-instruction callback that adds the number of lanes
that actually executed (``InstrSite.num_executed``), so predicated-off
instructions contribute nothing — the paper's profiling rule.
"""

from __future__ import annotations

import enum

from repro.core.profile_data import KernelProfile, ProgramProfile
from repro.cuda.driver import CudaEvent, CudaFunction
from repro.gpusim.context import InstrSite
from repro.nvbit.instr import IPoint
from repro.nvbit.tool import NVBitTool


class ProfilingMode(enum.Enum):
    EXACT = "exact"
    APPROXIMATE = "approximate"


class ProfilerTool(NVBitTool):
    """Builds a :class:`ProgramProfile` for the program it is attached to."""

    name = "profiler"

    def __init__(self, mode: ProfilingMode = ProfilingMode.EXACT) -> None:
        super().__init__()
        self.mode = mode
        self.profile = ProgramProfile()
        self._instrumented: set[CudaFunction] = set()
        self._invocations: dict[str, int] = {}
        self._first_instance: dict[CudaFunction, KernelProfile] = {}
        self._current: KernelProfile | None = None
        self._current_func: CudaFunction | None = None

    # -- NVBit callbacks ------------------------------------------------------

    def nvbit_at_cuda_event(self, driver, event, payload, is_exit) -> None:
        if event is not CudaEvent.LAUNCH_KERNEL:
            return
        if not is_exit:
            self._on_launch_enter(payload.func)
        else:
            self._on_launch_exit(payload.func)

    def _on_launch_enter(self, func: CudaFunction) -> None:
        invocation = self._invocations.get(func.name, 0)
        profile_record = KernelProfile(func.name, invocation)
        instrument = (
            self.mode is ProfilingMode.EXACT or func not in self._first_instance
        )
        if instrument:
            if func not in self._instrumented:
                for instr in self.nvbit.get_instrs(func):
                    instr.insert_call(self._count, IPoint.AFTER)
                self._instrumented.add(func)
            self.nvbit.enable_instrumented(func, True)
            self._current = profile_record
            self._current_func = func
        else:
            # Approximate mode, later instance: run uninstrumented.
            self.nvbit.enable_instrumented(func, False)
            first = self._first_instance[func]
            profile_record.counts = dict(first.counts)
            profile_record.approximated = True
            self.profile.append(profile_record)
            self._current = None
            self._current_func = None

    def _on_launch_exit(self, func: CudaFunction) -> None:
        self._invocations[func.name] = self._invocations.get(func.name, 0) + 1
        if self._current is not None and self._current_func is func:
            self.profile.append(self._current)
            if func not in self._first_instance:
                self._first_instance[func] = self._current
            self._current = None
            self._current_func = None

    # -- the counting instrumentation function ------------------------------------

    def _count(self, site: InstrSite) -> None:
        if self._current is not None:
            self._current.add(site.instr.opcode, site.num_executed)
