"""Fault dictionary (paper §V, future directions — implemented here).

A fault dictionary replaces the single campaign-wide bit-flip model with a
per-opcode distribution of error patterns, e.g. derived from circuit-level
simulation: an FADD whose adder is faulty mostly corrupts low mantissa
bits, a faulty multiplier corrupts wide swathes.  The dictionary is
consulted by the injectors at injection time, conditioned on the opcode
that produced the destination value.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bitflip import BitFlipModel
from repro.errors import ParamError
from repro.sass.isa import OPCODES_BY_NAME


@dataclass(frozen=True)
class DictionaryEntry:
    """One weighted error pattern for an opcode."""

    model: BitFlipModel
    weight: float
    # Optional sub-range of the bit-pattern selector, letting an entry pin
    # corruption to, say, low mantissa bits (value in [lo, hi)).
    value_low: float = 0.0
    value_high: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ParamError("dictionary entry weight must be positive")
        if not 0.0 <= self.value_low < self.value_high <= 1.0:
            raise ParamError("dictionary entry value range must be within [0, 1)")


class FaultDictionary:
    """Per-opcode error-pattern distributions."""

    def __init__(self, seed: int = 0) -> None:
        self._entries: dict[str, list[DictionaryEntry]] = {}
        self._default: list[DictionaryEntry] = [
            DictionaryEntry(BitFlipModel.FLIP_SINGLE_BIT, 1.0)
        ]
        self._rng = np.random.default_rng(seed)

    def add(self, opcode: str, entry: DictionaryEntry) -> None:
        if opcode not in OPCODES_BY_NAME:
            raise ParamError(f"unknown opcode {opcode!r} in fault dictionary")
        self._entries.setdefault(opcode, []).append(entry)

    def set_default(self, entries: list[DictionaryEntry]) -> None:
        if not entries:
            raise ParamError("default entry list must be non-empty")
        self._default = list(entries)

    def entries_for(self, opcode: str) -> list[DictionaryEntry]:
        return self._entries.get(opcode, self._default)

    def draw(self, opcode: str) -> tuple[BitFlipModel, float]:
        """Sample (model, bit-pattern value) conditioned on the opcode."""
        entries = self.entries_for(opcode)
        weights = np.array([e.weight for e in entries], dtype=float)
        weights /= weights.sum()
        entry = entries[int(self._rng.choice(len(entries), p=weights))]
        span = entry.value_high - entry.value_low
        value = entry.value_low + float(self._rng.random()) * span
        # Guard the half-open upper bound against float rounding.
        return entry.model, min(value, np.nextafter(entry.value_high, 0.0))

    @classmethod
    def low_mantissa_fp(cls, seed: int = 0) -> "FaultDictionary":
        """A ready-made example: FP arithmetic corrupts mostly low mantissa bits."""
        dictionary = cls(seed=seed)
        for opcode in ("FADD", "FMUL", "FFMA", "DADD", "DMUL", "DFMA"):
            dictionary.add(
                opcode,
                DictionaryEntry(BitFlipModel.FLIP_SINGLE_BIT, 0.8, 0.0, 0.5),
            )
            dictionary.add(
                opcode,
                DictionaryEntry(BitFlipModel.FLIP_TWO_BITS, 0.2, 0.0, 0.5),
            )
        return dictionary
