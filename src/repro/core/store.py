"""Campaign persistence: the on-disk layout of a fault-injection study.

Mirrors the real package's campaign directory (``logs/``, golden outputs,
one parameter file + one outcome record per injection) so a campaign can
be stopped, resumed, audited or re-analysed later:

    <campaign_dir>/
      golden/stdout.txt           the fault-free reference
      golden/files/<name>         golden output files
      profile.txt                 the instruction profile
      injections/run_00042/
        params.txt                the 7-line Table II parameter file
        record.txt                what the injector actually did (round-trips)
        outcome.txt               the Table V classification
      permanent/run_00003/        same layout for permanent-fault runs
      results.csv                 one row per completed injection

``results.csv`` contains only deterministic fields (simulated instruction
counts rather than host wall-clock), so serial, parallel and resumed runs
of the same campaign produce byte-identical files.  Unrecognised entries
under ``injections/`` are skipped with a warning instead of crashing the
resume scan.
"""

from __future__ import annotations

import json
import re
import warnings
from pathlib import Path

from repro.core.campaign import (
    PermanentResult,
    TransientCampaignResult,
    TransientResult,
)
from repro.core.injector import InjectionRecord
from repro.core.kinds import CampaignKind
from repro.core.result_store import render_results_csv
from repro.core.outcomes import Outcome, OutcomeRecord
from repro.core.params import PermanentParams, TransientParams
from repro.core.profile_data import ProgramProfile
from repro.core.report import OutcomeTally
from repro.errors import ReproError
from repro.runner.artifacts import RunArtifacts

_RUN_DIR = re.compile(r"^run_(\d+)$")


class CampaignStore:
    """Reads and writes one campaign directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # -- golden ------------------------------------------------------------

    def save_golden(self, golden: RunArtifacts) -> None:
        golden_dir = self.root / "golden"
        (golden_dir / "files").mkdir(parents=True, exist_ok=True)
        (golden_dir / "stdout.txt").write_text(golden.stdout)
        for name, payload in golden.files.items():
            (golden_dir / "files" / name).write_bytes(payload)

    def load_golden(self) -> RunArtifacts:
        golden_dir = self.root / "golden"
        if not golden_dir.exists():
            raise ReproError(f"no golden run stored under {self.root}")
        files = {
            path.name: path.read_bytes()
            for path in sorted((golden_dir / "files").iterdir())
        }
        return RunArtifacts(
            stdout=(golden_dir / "stdout.txt").read_text(), files=files
        )

    # -- replay log ----------------------------------------------------------

    def replay_path(self) -> Path:
        """Where the golden run's replay log lives (``replay.bin``).

        The log rides next to the golden artifacts so a resumed campaign
        re-records it with the (deterministic) golden re-run; see
        :mod:`repro.gpusim.replay`.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        return self.root / "replay.bin"

    # -- adaptive state --------------------------------------------------------

    def save_adaptive_state(self, state: dict) -> None:
        """Persist the adaptive drive loop's decision tape (``adaptive.json``).

        Written after every batch, next to the injections it covers, so a
        resumed campaign can verify it is continuing the *same* decision
        sequence (same plan, rule, seed and batch allocations) instead of
        silently re-sizing the campaign.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / "adaptive.json").write_text(
            json.dumps(state, indent=2) + "\n"
        )

    def load_adaptive_state(self) -> dict | None:
        """The stored decision tape, or ``None`` for non-adaptive campaigns."""
        path = self.root / "adaptive.json"
        if not path.exists():
            return None
        try:
            return json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ReproError(
                f"malformed adaptive state in {path}: {exc}"
            ) from None

    # -- profile -------------------------------------------------------------

    def save_profile(self, profile: ProgramProfile) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / "profile.txt").write_text(profile.to_text())

    def load_profile(self) -> ProgramProfile:
        path = self.root / "profile.txt"
        if not path.exists():
            raise ReproError(f"no profile stored under {self.root}")
        return ProgramProfile.from_text(path.read_text())

    # -- transient injections ----------------------------------------------------

    def save_injection(self, index: int, result: TransientResult) -> None:
        run_dir = self.root / "injections" / f"run_{index:05d}"
        run_dir.mkdir(parents=True, exist_ok=True)
        (run_dir / "params.txt").write_text(result.params.to_text())
        (run_dir / "record.txt").write_text(result.record.to_text())
        (run_dir / "outcome.txt").write_text(
            f"{result.outcome.outcome.value}\n{result.outcome.symptom}\n"
            f"kind={CampaignKind.TRANSIENT.value}\n"
            f"potential_due={result.outcome.potential_due}\n"
            f"wall_time={result.wall_time!r}\n"
            f"instructions={result.instructions}\n"
        )

    def completed_injections(self) -> list[int]:
        return self._scan_runs(self.root / "injections")

    def load_injection(self, index: int) -> TransientResult:
        run_dir = self.root / "injections" / f"run_{index:05d}"
        if not run_dir.exists():
            raise ReproError(f"injection {index} not stored under {self.root}")
        params = TransientParams.from_text((run_dir / "params.txt").read_text())
        outcome, wall_time, instructions, _ = self._read_outcome(run_dir)
        record = InjectionRecord.from_text((run_dir / "record.txt").read_text())
        return TransientResult(params, record, outcome, wall_time, instructions)

    # -- permanent injections ----------------------------------------------------

    def save_permanent_injection(self, index: int, result: PermanentResult) -> None:
        run_dir = self.root / "permanent" / f"run_{index:05d}"
        run_dir.mkdir(parents=True, exist_ok=True)
        (run_dir / "params.txt").write_text(result.params.to_text())
        (run_dir / "outcome.txt").write_text(
            f"{result.outcome.outcome.value}\n{result.outcome.symptom}\n"
            f"kind={CampaignKind.PERMANENT.value}\n"
            f"potential_due={result.outcome.potential_due}\n"
            f"wall_time={result.wall_time!r}\n"
            f"opcode={result.opcode}\n"
            f"weight={result.weight!r}\n"
            f"activations={result.activations}\n"
        )

    def completed_permanent_injections(self) -> list[int]:
        return self._scan_runs(self.root / "permanent")

    def load_permanent_injection(self, index: int) -> PermanentResult:
        run_dir = self.root / "permanent" / f"run_{index:05d}"
        if not run_dir.exists():
            raise ReproError(
                f"permanent injection {index} not stored under {self.root}"
            )
        params = PermanentParams.from_text((run_dir / "params.txt").read_text())
        outcome, wall_time, _, extras = self._read_outcome(run_dir)
        return PermanentResult(
            params=params,
            opcode=extras.get("opcode", ""),
            weight=float(extras.get("weight", "1.0")),
            activations=int(extras.get("activations", "0")),
            outcome=outcome,
            wall_time=wall_time,
        )

    # -- shared run-directory plumbing -------------------------------------------

    @staticmethod
    def _scan_runs(runs_dir: Path) -> list[int]:
        """Indices of completed runs, skipping (with a warning) stray entries."""
        if not runs_dir.exists():
            return []
        indices = []
        for run_dir in sorted(runs_dir.iterdir()):
            match = _RUN_DIR.match(run_dir.name)
            if match is None or not run_dir.is_dir():
                warnings.warn(
                    f"ignoring unrecognised entry {run_dir} in campaign store",
                    stacklevel=3,
                )
                continue
            if (run_dir / "outcome.txt").exists():
                indices.append(int(match.group(1)))
        return indices

    @staticmethod
    def _read_outcome(
        run_dir: Path,
    ) -> tuple[OutcomeRecord, float, int, dict[str, str]]:
        """Parse ``outcome.txt``: two positional lines, then ``key=value``."""
        lines = (run_dir / "outcome.txt").read_text().splitlines()
        if len(lines) < 2:
            raise ReproError(f"malformed outcome record in {run_dir}")
        extras: dict[str, str] = {}
        for line in lines[2:]:
            if "=" in line:
                key, value = line.split("=", 1)
                extras[key] = value
        outcome = OutcomeRecord(
            outcome=Outcome(lines[0]),
            symptom=lines[1],
            potential_due=extras.get("potential_due") == "True",
        )
        wall_time = float(extras.get("wall_time", "0.0"))
        instructions = int(extras.get("instructions", "0"))
        return outcome, wall_time, instructions, extras

    # -- aggregate results ----------------------------------------------------------

    def save_results_csv(self, result: TransientCampaignResult) -> None:
        """One deterministic row per injection.

        Durations are reported as simulated instruction counts, not host
        wall-clock (see DESIGN.md): the simulator is deterministic, so
        serial, parallel and resumed campaigns write identical bytes.
        Quarantined injections (harness DUEs) carry only deterministic
        fields too, so campaigns containing failures keep this property.
        """
        self._write_results_csv(enumerate(result.results))

    def save_partial_results_csv(self, by_index: dict[int, TransientResult]) -> None:
        """A clean, sorted ``results.csv`` for an interrupted campaign.

        Rows cover exactly the injections completed (and therefore
        checkpointed) before the interrupt; re-running the campaign against
        the same store resumes past them and rewrites the full file.
        """
        self._write_results_csv(sorted(by_index.items()))

    def _write_results_csv(self, rows) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / "results.csv").write_text(render_results_csv(rows))

    def load_tally(self) -> OutcomeTally:
        """Rebuild the outcome tally from stored per-injection records."""
        tally = OutcomeTally()
        for index in self.completed_injections():
            tally.add(self.load_injection(index).outcome)
        return tally

    def save_campaign(
        self,
        golden: RunArtifacts,
        profile: ProgramProfile,
        result: TransientCampaignResult,
    ) -> None:
        """Persist everything in one call."""
        self.save_golden(golden)
        self.save_profile(profile)
        for index, item in enumerate(result.results):
            self.save_injection(index, item)
        self.save_results_csv(result)


def run_resumable_campaign(
    campaign, store: CampaignStore
) -> TransientCampaignResult:
    """Run (or resume) a transient campaign against a study directory.

    A thin facade over :class:`~repro.core.engine.CampaignEngine`: the
    campaign's engine is pointed at ``store``, which makes it persist each
    injection as it completes and load completed injections instead of
    re-running them — a crashed or interrupted campaign continues where it
    stopped, exactly like restarting the real package's
    ``run_injections.py`` over an existing ``logs/`` tree.  Site selection
    is deterministic from the campaign seed, so stored and fresh runs line
    up index-for-index; a parallel engine resumes the same way.

    .. deprecated::
        Use :func:`repro.api.run_campaign` with ``store=...``.
    """
    warnings.warn(
        "run_resumable_campaign is deprecated; use repro.api.run_campaign "
        "with store=CampaignStore(...)",
        DeprecationWarning,
        stacklevel=2,
    )
    campaign.engine.store = store
    return campaign.engine.run_transient()
