"""Campaign persistence: the on-disk layout of a fault-injection study.

Mirrors the real package's campaign directory (``logs/``, golden outputs,
one parameter file + one outcome record per injection) so a campaign can
be stopped, resumed, audited or re-analysed later:

    <campaign_dir>/
      golden/stdout.txt           the fault-free reference
      golden/files/<name>         golden output files
      profile.txt                 the instruction profile
      injections/run_00042/
        params.txt                the 7-line Table II parameter file
        record.txt                what the injector actually did
        outcome.txt               the Table V classification
      results.csv                 one row per completed injection
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

from repro.core.campaign import TransientCampaignResult, TransientResult
from repro.core.outcomes import Outcome, OutcomeRecord
from repro.core.params import TransientParams
from repro.core.profile_data import ProgramProfile
from repro.core.report import OutcomeTally
from repro.errors import ReproError
from repro.runner.artifacts import RunArtifacts


class CampaignStore:
    """Reads and writes one campaign directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # -- golden ------------------------------------------------------------

    def save_golden(self, golden: RunArtifacts) -> None:
        golden_dir = self.root / "golden"
        (golden_dir / "files").mkdir(parents=True, exist_ok=True)
        (golden_dir / "stdout.txt").write_text(golden.stdout)
        for name, payload in golden.files.items():
            (golden_dir / "files" / name).write_bytes(payload)

    def load_golden(self) -> RunArtifacts:
        golden_dir = self.root / "golden"
        if not golden_dir.exists():
            raise ReproError(f"no golden run stored under {self.root}")
        files = {
            path.name: path.read_bytes()
            for path in sorted((golden_dir / "files").iterdir())
        }
        return RunArtifacts(
            stdout=(golden_dir / "stdout.txt").read_text(), files=files
        )

    # -- profile -------------------------------------------------------------

    def save_profile(self, profile: ProgramProfile) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / "profile.txt").write_text(profile.to_text())

    def load_profile(self) -> ProgramProfile:
        path = self.root / "profile.txt"
        if not path.exists():
            raise ReproError(f"no profile stored under {self.root}")
        return ProgramProfile.from_text(path.read_text())

    # -- injections -------------------------------------------------------------

    def save_injection(self, index: int, result: TransientResult) -> None:
        run_dir = self.root / "injections" / f"run_{index:05d}"
        run_dir.mkdir(parents=True, exist_ok=True)
        (run_dir / "params.txt").write_text(result.params.to_text())
        (run_dir / "record.txt").write_text(result.record.describe() + "\n")
        (run_dir / "outcome.txt").write_text(
            f"{result.outcome.outcome.value}\n{result.outcome.symptom}\n"
            f"potential_due={result.outcome.potential_due}\n"
            f"wall_time={result.wall_time!r}\n"
        )

    def completed_injections(self) -> list[int]:
        injections_dir = self.root / "injections"
        if not injections_dir.exists():
            return []
        indices = []
        for run_dir in sorted(injections_dir.iterdir()):
            if (run_dir / "outcome.txt").exists():
                indices.append(int(run_dir.name.split("_")[1]))
        return indices

    def load_injection(self, index: int) -> TransientResult:
        run_dir = self.root / "injections" / f"run_{index:05d}"
        if not run_dir.exists():
            raise ReproError(f"injection {index} not stored under {self.root}")
        params = TransientParams.from_text((run_dir / "params.txt").read_text())
        lines = (run_dir / "outcome.txt").read_text().splitlines()
        outcome = OutcomeRecord(
            outcome=Outcome(lines[0]),
            symptom=lines[1],
            potential_due=lines[2] == "potential_due=True",
        )
        wall_time = float(lines[3].split("=", 1)[1])
        from repro.core.injector import InjectionRecord

        record_text = (run_dir / "record.txt").read_text().strip()
        record = InjectionRecord(injected=record_text.startswith("injected"))
        result = TransientResult(params, record, outcome, wall_time)
        return result

    # -- aggregate results ----------------------------------------------------------

    def save_results_csv(self, result: TransientCampaignResult) -> None:
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(
            ["index", "kernel", "kernel_count", "instruction_count",
             "group", "model", "outcome", "symptom", "potential_due",
             "injected", "wall_time_s"]
        )
        for index, item in enumerate(result.results):
            writer.writerow([
                index,
                item.params.kernel_name,
                item.params.kernel_count,
                item.params.instruction_count,
                item.params.group.name,
                item.params.model.name,
                item.outcome.outcome.value,
                item.outcome.symptom,
                item.outcome.potential_due,
                item.record.injected,
                f"{item.wall_time:.4f}",
            ])
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / "results.csv").write_text(buffer.getvalue())

    def load_tally(self) -> OutcomeTally:
        """Rebuild the outcome tally from stored per-injection records."""
        tally = OutcomeTally()
        for index in self.completed_injections():
            tally.add(self.load_injection(index).outcome)
        return tally

    def save_campaign(
        self,
        golden: RunArtifacts,
        profile: ProgramProfile,
        result: TransientCampaignResult,
    ) -> None:
        """Persist everything in one call."""
        self.save_golden(golden)
        self.save_profile(profile)
        for index, item in enumerate(result.results):
            self.save_injection(index, item)
        self.save_results_csv(result)


def run_resumable_campaign(
    campaign, store: CampaignStore
) -> TransientCampaignResult:
    """Run (or resume) a transient campaign against a study directory.

    Completed injections found in the store are loaded instead of re-run —
    a crashed or interrupted campaign continues where it stopped, exactly
    like restarting the real package's ``run_injections.py`` over an
    existing ``logs/`` tree.  Site selection is deterministic from the
    campaign seed, so stored and fresh runs line up index-for-index.
    """
    import statistics

    golden = campaign.run_golden()
    profile = campaign.run_profile()
    store.save_golden(golden)
    store.save_profile(profile)

    sites = campaign.select_sites()
    completed = set(store.completed_injections())
    tally = OutcomeTally()
    results: list[TransientResult] = []
    for index, site in enumerate(sites):
        if index in completed:
            stored = store.load_injection(index)
            if stored.params != site:
                raise ReproError(
                    f"stored injection {index} was produced by different "
                    "campaign parameters; use a fresh study directory"
                )
            item = stored
        else:
            item = campaign.run_transient([site]).results[0]
            store.save_injection(index, item)
        tally.add(item.outcome)
        results.append(item)

    result = TransientCampaignResult(
        results=results,
        tally=tally,
        golden_time=campaign.golden_time,
        profile_time=campaign.profile_time,
        median_injection_time=(
            statistics.median(r.wall_time for r in results) if results else 0.0
        ),
    )
    store.save_results_csv(result)
    return result
