"""Campaign kinds: the one enum naming what a campaign injects.

Historically ``repro.api.run_campaign`` took a stringly ``kind="transient"``
parameter and every layer (CLI, store records, engine tasks) spelled the
same three strings by hand.  :class:`CampaignKind` is the typed replacement,
accepted *and* serialized uniformly: it is a ``str`` subclass, so existing
``"transient"`` / ``"permanent"`` literals keep working wherever a kind is
compared or persisted, and ``.value`` is the canonical wire/on-disk form
(store ``outcome.txt`` records, the FaultDB ``kind`` columns, service
submissions).
"""

from __future__ import annotations

import enum

from repro.errors import ReproError


class CampaignKind(str, enum.Enum):
    """What a campaign (or one injection task) injects."""

    TRANSIENT = "transient"
    PERMANENT = "permanent"
    INTERMITTENT = "intermittent"

    @classmethod
    def coerce(cls, value: "CampaignKind | str") -> "CampaignKind":
        """Accept an enum member or its string value; reject anything else.

        The error names the offending value and the accepted set, so a bad
        ``kind`` in an API call or service submission is immediately
        diagnosable.
        """
        try:
            return cls(value)
        except ValueError:
            raise ReproError(
                f"unknown campaign kind {value!r}; expected one of "
                f"{[member.value for member in cls]}"
            ) from None
