"""Fault-injection parameter records (Tables II and III) and their files.

The on-disk format matches the paper's Figure 1 workflow: one parameter per
line, written by the site-selection step and read by the injector attached
to the next run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bitflip import BitFlipModel
from repro.core.groups import InstructionGroup, require_injectable
from repro.errors import ParamError
from repro.sass.isa import NUM_OPCODES, WARP_SIZE
from repro.utils.bits import MASK32


@dataclass(frozen=True)
class TransientParams:
    """One transient fault: the seven parameters of Table II."""

    group: InstructionGroup  # arch state id
    model: BitFlipModel  # bit-flip model
    kernel_name: str
    kernel_count: int  # n => the (n+1)th dynamic instance of the kernel
    instruction_count: int  # n => the (n+1)th dynamic instruction in the group
    dest_reg_selector: float  # [0,1): picks among multiple destinations
    bit_pattern_value: float  # [0,1): drives the bit-flip mask

    def __post_init__(self) -> None:
        # Accept raw Table II integers as well as the enums.
        object.__setattr__(self, "group", InstructionGroup(self.group))
        object.__setattr__(self, "model", BitFlipModel(self.model))
        require_injectable(self.group)
        if self.kernel_count < 0 or self.instruction_count < 0:
            raise ParamError("kernel/instruction counts must be non-negative")
        if not 0.0 <= self.dest_reg_selector < 1.0:
            raise ParamError("destination-register selector must lie in [0, 1)")
        if not 0.0 <= self.bit_pattern_value < 1.0:
            raise ParamError("bit-pattern value must lie in [0, 1)")
        if not self.kernel_name:
            raise ParamError("kernel name must be non-empty")

    def to_text(self) -> str:
        """Serialise in the one-parameter-per-line injection file format."""
        return "\n".join(
            [
                f"{int(self.group)} # arch state id: {self.group.name}",
                f"{int(self.model)} # bit flip model: {self.model.name}",
                f"{self.kernel_name} # kernel name",
                f"{self.kernel_count} # kernel count",
                f"{self.instruction_count} # instruction count",
                f"{self.dest_reg_selector!r} # destination register selector",
                f"{self.bit_pattern_value!r} # bit pattern value",
            ]
        )

    @classmethod
    def from_text(cls, text: str) -> "TransientParams":
        values = _numbered_lines(text)
        if len(values) != 7:
            raise ParamError(
                f"transient parameter file needs 7 lines, found {len(values)}"
            )
        return cls(
            group=_convert(
                values[0],
                lambda v: InstructionGroup(int(v)),
                "arch state id (Table II group)",
            ),
            model=_convert(
                values[1], lambda v: BitFlipModel(int(v)), "bit-flip model"
            ),
            kernel_name=values[2][1],
            kernel_count=_convert(values[3], int, "kernel count"),
            instruction_count=_convert(values[4], int, "instruction count"),
            dest_reg_selector=_convert(
                values[5], float, "destination-register selector"
            ),
            bit_pattern_value=_convert(values[6], float, "bit-pattern value"),
        )


@dataclass(frozen=True)
class PermanentParams:
    """One permanent fault: the four parameters of Table III."""

    sm_id: int
    lane_id: int
    bit_mask: int  # the XOR mask applied to every dynamic instance
    opcode_id: int  # index into the ISA table

    def __post_init__(self) -> None:
        if self.sm_id < 0:
            raise ParamError("SM id must be non-negative")
        if not 0 <= self.lane_id < WARP_SIZE:
            raise ParamError(f"lane id must lie in 0..{WARP_SIZE - 1}")
        if not 0 <= self.bit_mask <= MASK32:
            raise ParamError("bit mask must be a 32-bit value")
        if not 0 <= self.opcode_id < NUM_OPCODES:
            raise ParamError(
                f"opcode id must lie in 0..{NUM_OPCODES - 1}, got {self.opcode_id}"
            )

    def to_text(self) -> str:
        return "\n".join(
            [
                f"{self.sm_id} # SM id",
                f"{self.lane_id} # lane id",
                f"0x{self.bit_mask:08x} # XOR bit mask",
                f"{self.opcode_id} # opcode id",
            ]
        )

    @classmethod
    def from_text(cls, text: str) -> "PermanentParams":
        values = _numbered_lines(text)
        if len(values) != 4:
            raise ParamError(
                f"permanent parameter file needs 4 lines, found {len(values)}"
            )
        return cls(
            sm_id=_convert(values[0], int, "SM id"),
            lane_id=_convert(values[1], int, "lane id"),
            bit_mask=_convert(values[2], lambda v: int(v, 0), "XOR bit mask"),
            opcode_id=_convert(values[3], int, "opcode id"),
        )


@dataclass(frozen=True)
class IntermittentParams:
    """Paper §V extension: a permanent-fault site with an activation process.

    ``process`` is ``"random"`` (each dynamic instance independently active
    with probability ``activation_probability``) or ``"bursty"`` (a two-state
    on/off process with geometric burst lengths of mean ``burst_length``).
    """

    permanent: PermanentParams
    process: str = "random"
    activation_probability: float = 0.5
    burst_length: float = 8.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.process not in ("random", "bursty"):
            raise ParamError(f"unknown activation process {self.process!r}")
        if not 0.0 < self.activation_probability <= 1.0:
            raise ParamError("activation probability must lie in (0, 1]")
        if self.burst_length < 1.0:
            raise ParamError("mean burst length must be >= 1")


def _numbered_lines(text: str) -> list[tuple[int, str]]:
    """Strip comments and blanks; keep 1-based line numbers for errors."""
    values = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        bare = line.split("#", 1)[0].strip()
        if bare:
            values.append((lineno, bare))
    return values


def _convert(numbered: tuple[int, str], conv, what: str):
    """Apply ``conv`` to one parameter-file value, blaming its line on error."""
    lineno, value = numbered
    try:
        return conv(value)
    except ValueError as exc:
        raise ParamError(f"line {lineno}: bad {what} {value!r}: {exc}") from None
