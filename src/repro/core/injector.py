"""The transient-fault injector (``injector.so`` in the real package).

Given a :class:`~repro.core.params.TransientParams` record, the tool

1. watches kernel launches until the ``(kernel_count+1)``-th dynamic
   instance of ``kernel_name`` — only that launch runs instrumented; every
   other kernel (and every other instance) runs the unmodified fast path,
   which is the selective-instrumentation property the paper's overhead
   numbers rest on;
2. counts executed group instructions thread-by-thread (lane order within
   a warp instruction, matching the profiler's counting);
3. at ``instruction_count``, XORs the selected destination register of the
   selected thread with the Table II mask, records the event, and disarms.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bitflip import BitFlipModel, compute_mask
from repro.core.dictionary import FaultDictionary
from repro.core.groups import instruction_in_group
from repro.core.params import TransientParams
from repro.cuda.driver import CudaEvent, CudaFunction
from repro.errors import ReproError
from repro.gpusim.context import InstrSite
from repro.nvbit.instr import IPoint
from repro.nvbit.tool import NVBitTool


@dataclass
class InjectionRecord:
    """What actually happened — the injector's log line."""

    injected: bool
    kernel_name: str = ""
    pc: int = -1
    opcode: str = ""
    sm_id: int = -1
    ctaid: tuple[int, int, int] = (-1, -1, -1)
    thread_idx: tuple[int, int, int] = (-1, -1, -1)
    lane: int = -1
    dest_kind: str = ""  # "reg" or "pred"
    dest_index: int = -1
    value_before: int = 0
    value_after: int = 0
    mask: int = 0
    num_regs_corrupted: int = 0

    def describe(self) -> str:
        if not self.injected:
            return "no injection performed (target instruction never reached)"
        dest = (
            f"R{self.dest_index}" if self.dest_kind == "reg" else f"P{self.dest_index}"
        )
        return (
            f"injected {self.opcode} pc={self.pc} kernel={self.kernel_name} "
            f"sm={self.sm_id} cta={self.ctaid} thread={self.thread_idx} "
            f"{dest}: 0x{self.value_before:08x} -> 0x{self.value_after:08x} "
            f"(mask 0x{self.mask:08x})"
        )

    def to_text(self) -> str:
        """Serialise every field (the human-readable line rides as a comment)."""
        return "\n".join(
            [
                f"# {self.describe()}",
                f"injected={self.injected}",
                f"kernel_name={self.kernel_name}",
                f"pc={self.pc}",
                f"opcode={self.opcode}",
                f"sm_id={self.sm_id}",
                f"ctaid={self.ctaid[0]},{self.ctaid[1]},{self.ctaid[2]}",
                f"thread_idx={self.thread_idx[0]},{self.thread_idx[1]},{self.thread_idx[2]}",
                f"lane={self.lane}",
                f"dest_kind={self.dest_kind}",
                f"dest_index={self.dest_index}",
                f"value_before={self.value_before}",
                f"value_after={self.value_after}",
                f"mask={self.mask}",
                f"num_regs_corrupted={self.num_regs_corrupted}",
            ]
        ) + "\n"

    @classmethod
    def from_text(cls, text: str) -> "InjectionRecord":
        """Rebuild a record from :meth:`to_text` output.

        Legacy stores kept only the ``describe()`` line; those fall back to
        a record carrying nothing but the injected/not-injected bit.
        Malformed values raise :class:`~repro.errors.ReproError` naming the
        offending line, so a corrupted store entry is diagnosable instead of
        surfacing as a bare ``ValueError`` deep in the resume scan.
        """
        fields: dict[str, tuple[int, str]] = {}
        for lineno, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line or line.startswith("#") or "=" not in line:
                continue
            key, value = line.split("=", 1)
            fields[key] = (lineno, value)
        if "injected" not in fields:
            return cls(injected=text.strip().startswith("injected"))

        def dim3(value: str) -> tuple[int, int, int]:
            parts = value.split(",")
            if len(parts) != 3:
                raise ValueError(f"expected 3 comma-separated ints, got {value!r}")
            x, y, z = (int(part) for part in parts)
            return (x, y, z)

        def get(key: str, conv, default):
            if key not in fields:
                return default
            lineno, value = fields[key]
            try:
                return conv(value)
            except ValueError as exc:
                raise ReproError(
                    f"injection record line {lineno}: bad {key}={value!r}: {exc}"
                ) from None

        return cls(
            injected=get("injected", _parse_bool, False),
            kernel_name=get("kernel_name", str, ""),
            pc=get("pc", int, -1),
            opcode=get("opcode", str, ""),
            sm_id=get("sm_id", int, -1),
            ctaid=get("ctaid", dim3, (-1, -1, -1)),
            thread_idx=get("thread_idx", dim3, (-1, -1, -1)),
            lane=get("lane", int, -1),
            dest_kind=get("dest_kind", str, ""),
            dest_index=get("dest_index", int, -1),
            value_before=get("value_before", int, 0),
            value_after=get("value_after", int, 0),
            mask=get("mask", int, 0),
            num_regs_corrupted=get("num_regs_corrupted", int, 0),
        )


def _parse_bool(value: str) -> bool:
    """Strict but drift-tolerant booleans for record fields.

    Our own ``to_text`` writes ``True``/``False``, but hand-edited or
    foreign stores drift to ``true``/``1`` — which ``v == "True"`` used to
    parse silently as ``False``, flipping an injected run into a
    never-injected one.  Accept the common spellings; anything else raises
    ``ValueError`` so ``from_text`` reports a line-numbered
    :class:`~repro.errors.ReproError` instead of corrupting the record.
    """
    norm = value.strip().lower()
    if norm in ("true", "1"):
        return True
    if norm in ("false", "0"):
        return False
    raise ValueError(f"expected True/False/true/false/1/0, got {value!r}")


class TransientInjectorTool(NVBitTool):
    """Injects exactly one fault into one dynamic instruction."""

    name = "injector"

    def __init__(
        self,
        params: TransientParams,
        dictionary: FaultDictionary | None = None,
        num_regs_to_corrupt: int = 1,
    ) -> None:
        super().__init__()
        if num_regs_to_corrupt < 1:
            raise ValueError("must corrupt at least one register")
        self.params = params
        self.dictionary = dictionary
        self.num_regs_to_corrupt = num_regs_to_corrupt
        self.record = InjectionRecord(injected=False)
        self._instance_counter: dict[str, int] = {}
        self._instrumented: set[CudaFunction] = set()
        self._armed = False
        self._instr_counter = 0

    @property
    def params(self) -> TransientParams:
        return self._params

    @params.setter
    def params(self, value: TransientParams) -> None:
        # `_visit` runs once per instrumented site — the hottest Python
        # path in an injection run — so the target count is cached here
        # instead of chasing `self.params.instruction_count` per site.
        # Assignment keeps the cache coherent: the snapshot and batch
        # executors retarget forked children by swapping `params` on the
        # already-armed tool.
        self._params = value
        self._target_count = getattr(value, "instruction_count", 0)

    # -- NVBit event handling ---------------------------------------------------

    def nvbit_at_cuda_event(self, driver, event, payload, is_exit) -> None:
        if event is not CudaEvent.LAUNCH_KERNEL:
            return
        func = payload.func
        if func.name != self.params.kernel_name:
            return
        if not is_exit:
            instance = self._instance_counter.get(func.name, 0)
            if instance == self.params.kernel_count and not self.record.injected:
                self._instrument(func)
                self.nvbit.enable_instrumented(func, True)
                self._armed = True
                self._instr_counter = 0
            else:
                self.nvbit.enable_instrumented(func, False)
        else:
            self._instance_counter[func.name] = (
                self._instance_counter.get(func.name, 0) + 1
            )
            self._armed = False

    def _instrument(self, func: CudaFunction) -> None:
        if func in self._instrumented:
            return
        for instr in self.nvbit.get_instrs(func):
            if instruction_in_group(instr.raw, self.params.group):
                instr.insert_call(self._visit, IPoint.AFTER)
        self._instrumented.add(func)

    # -- the injection instrumentation function ------------------------------------

    def _visit(self, site: InstrSite) -> None:
        if not self._armed or self.record.injected:
            return
        executed = site.num_executed
        counter = self._instr_counter
        target = self._target_count
        if counter + executed <= target:
            self._instr_counter = counter + executed
            return
        self._instr_counter = counter + executed
        lane = int(site.active_lanes[target - counter])
        self._inject(site, lane)
        self._armed = False

    def _inject(self, site: InstrSite, lane: int) -> None:
        instr = site.instr
        model, pattern_value = self._effective_model(instr.opcode)
        dest_regs = instr.dest_regs
        record = InjectionRecord(
            injected=True,
            kernel_name=self.params.kernel_name,
            pc=instr.pc,
            opcode=instr.opcode,
            sm_id=site.sm_id,
            ctaid=site.ctaid,
            thread_idx=site.thread_index(lane),
            lane=lane,
        )
        if dest_regs:
            chosen = int(self.params.dest_reg_selector * len(dest_regs))
            corrupted = 0
            for step in range(self.num_regs_to_corrupt):
                reg = dest_regs[(chosen + step) % len(dest_regs)]
                before = site.read_reg(lane, reg)
                mask = compute_mask(model, pattern_value, before)
                after = (before ^ mask) & 0xFFFFFFFF
                site.write_reg(lane, reg, after)
                corrupted += 1
                if step == 0:
                    record.dest_kind = "reg"
                    record.dest_index = reg
                    record.value_before = before
                    record.value_after = after
                    record.mask = mask
                if corrupted >= len(dest_regs):
                    break
            record.num_regs_corrupted = corrupted
        else:
            pred = instr.dest_pred
            if pred is None:
                # e.g. a PT-destination compare: architecturally a no-op write.
                record.dest_kind = "none"
                self.record = record
                return
            before = site.read_pred(lane, pred)
            after = _corrupt_pred(model, pattern_value, before)
            site.write_pred(lane, pred, after)
            record.dest_kind = "pred"
            record.dest_index = pred
            record.value_before = int(before)
            record.value_after = int(after)
            record.mask = 1
            record.num_regs_corrupted = 1
        self.record = record

    def _effective_model(self, opcode: str) -> tuple[BitFlipModel, float]:
        if self.dictionary is not None:
            return self.dictionary.draw(opcode)
        return self.params.model, self.params.bit_pattern_value


def _corrupt_pred(model: BitFlipModel, value: float, before: bool) -> bool:
    """Predicate destinations are 1 bit wide; map each model onto that bit."""
    if model is BitFlipModel.ZERO_VALUE:
        return False
    if model is BitFlipModel.RANDOM_VALUE:
        return value >= 0.5
    return not before  # single/double bit flip both flip the one bit
