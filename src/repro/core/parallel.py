"""Parallel campaign execution.

Real NVBitFI campaigns farm injection runs out across processes/GPUs (the
package's ``run_injections.py -p``).  Here each injection runs on its own
fresh simulated device, so runs are embarrassingly parallel; this module
fans them out over a process pool.

Workloads are addressed *by registry name* so that workers can rebuild the
application without pickling live device state.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.core.campaign import Campaign, CampaignConfig, TransientCampaignResult, TransientResult
from repro.core.injector import TransientInjectorTool
from repro.core.outcomes import OutcomeRecord, classify
from repro.core.params import TransientParams
from repro.core.report import OutcomeTally
from repro.runner.sandbox import SandboxConfig, run_app
from repro.workloads import get_workload


@dataclass(frozen=True)
class _WorkItem:
    workload_name: str
    params: TransientParams
    seed: int
    instruction_budget: int


def _run_one(item: _WorkItem) -> tuple[TransientParams, object, OutcomeRecord, float]:
    """Worker: one golden-free injection run (golden compared by the parent).

    The worker reruns the app with the injector attached and returns raw
    artifacts; classification happens in the parent, which holds the golden.
    """
    app = get_workload(item.workload_name)
    injector = TransientInjectorTool(item.params)
    config = SandboxConfig(
        seed=item.seed, instruction_budget=item.instruction_budget
    )
    artifacts = run_app(app, preload=[injector], config=config)
    return item.params, injector.record, artifacts, artifacts.wall_time


def run_transient_parallel(
    workload_name: str,
    config: CampaignConfig | None = None,
    max_workers: int | None = None,
) -> TransientCampaignResult:
    """A full transient campaign with injection runs spread over processes.

    Produces the same deterministic site list (and therefore, given the
    deterministic simulator, the same outcomes) as
    :meth:`repro.core.campaign.Campaign.run_transient`.
    """
    config = config or CampaignConfig()
    campaign = Campaign(get_workload(workload_name), config)
    campaign.run_golden()
    campaign.run_profile()
    sites = campaign.select_sites()
    budget = campaign._injection_config().instruction_budget

    items = [
        _WorkItem(workload_name, site, config.sandbox.seed, budget)
        for site in sites
    ]
    tally = OutcomeTally()
    results: list[TransientResult] = []
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        for params, record, artifacts, wall_time in pool.map(_run_one, items):
            outcome = classify(campaign.app, campaign.golden, artifacts)
            tally.add(outcome)
            results.append(TransientResult(params, record, outcome, wall_time))

    import statistics

    return TransientCampaignResult(
        results=results,
        tally=tally,
        golden_time=campaign.golden_time,
        profile_time=campaign.profile_time,
        median_injection_time=(
            statistics.median(r.wall_time for r in results) if results else 0.0
        ),
    )
