"""Parallel campaign execution.

Real NVBitFI campaigns farm injection runs out across processes/GPUs (the
package's ``run_injections.py -p``).  Here each injection runs on its own
fresh simulated device, so runs are embarrassingly parallel.

This module is a thin facade: the loop itself lives in
:class:`repro.core.engine.CampaignEngine`, driven by a
:class:`repro.core.engine.ParallelExecutor` whose frozen work items carry
the *complete* :class:`~repro.runner.sandbox.SandboxSpec` (family, SM
count, memory size and extra environment included) to every worker —
parallel campaigns are bit-for-bit equivalent to serial ones.
"""

from __future__ import annotations

import warnings

from repro.core.campaign import CampaignConfig, TransientCampaignResult
from repro.core.engine import CampaignEngine, EngineHooks, ParallelExecutor


def run_transient_parallel(
    workload_name: str,
    config: CampaignConfig | None = None,
    max_workers: int | None = None,
    chunksize: int = 1,
    store=None,
    hooks: EngineHooks | None = None,
) -> TransientCampaignResult:
    """A full transient campaign with injection runs spread over processes.

    Produces the same deterministic site list — and, because the engine
    propagates the full sandbox configuration to workers, the exact same
    records and outcomes — as :meth:`repro.core.campaign.Campaign.run_transient`.
    Pass a :class:`~repro.core.store.CampaignStore` as ``store`` to
    checkpoint each injection as it completes.

    .. deprecated::
        Use :func:`repro.api.run_campaign` with
        ``executor=ParallelExecutor(...)``.
    """
    warnings.warn(
        "run_transient_parallel is deprecated; use repro.api.run_campaign "
        "with executor=ParallelExecutor(...)",
        DeprecationWarning,
        stacklevel=2,
    )
    engine = CampaignEngine(
        workload_name,
        config,
        executor=ParallelExecutor(max_workers=max_workers, chunksize=chunksize),
        store=store,
        hooks=hooks,
    )
    return engine.run_transient()
