"""Error-propagation tracking.

The paper's subject is *error propagation* — how an injected fault spreads
through live state until it reaches (or fails to reach) program outputs.
This module makes propagation observable: a tool snapshots the device's
live global-memory contents after every dynamic kernel, and comparing the
faulty run's trace against the golden run's yields the corruption front —
when the error first reached memory, how many bytes it occupies after each
kernel, and whether it grew, shrank or was overwritten away (the
architectural-masking mechanism behind Table V's Masked outcomes).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.cuda.driver import CudaEvent
from repro.nvbit.tool import NVBitTool
from repro.runner.app import Application
from repro.runner.sandbox import SandboxConfig, run_app


@dataclass
class MemorySnapshot:
    """Live global memory after one dynamic kernel."""

    kernel_name: str
    launch_index: int
    regions: dict[int, bytes]  # allocation start -> contents

    def digest(self) -> str:
        hasher = hashlib.sha256()
        for start in sorted(self.regions):
            hasher.update(start.to_bytes(8, "little"))
            hasher.update(self.regions[start])
        return hasher.hexdigest()[:16]


class MemoryTraceTool(NVBitTool):
    """Snapshots live allocations after every kernel launch."""

    name = "memory_trace"

    def __init__(self) -> None:
        super().__init__()
        self.snapshots: list[MemorySnapshot] = []

    def nvbit_at_cuda_event(self, driver, event, payload, is_exit) -> None:
        if event is not CudaEvent.LAUNCH_KERNEL or not is_exit:
            return
        memory = driver.device.global_mem
        regions = {}
        for start, size in memory.allocator._allocated.items():
            regions[start] = memory.read_bytes(start, size)
        self.snapshots.append(
            MemorySnapshot(
                kernel_name=payload.func.name,
                launch_index=len(self.snapshots),
                regions=regions,
            )
        )


@dataclass
class PropagationPoint:
    """Corruption state after one dynamic kernel."""

    launch_index: int
    kernel_name: str
    corrupt_bytes: int
    corrupt_regions: int


@dataclass
class PropagationTrace:
    """The corruption front over the whole run."""

    points: list[PropagationPoint] = field(default_factory=list)

    @property
    def first_divergence(self) -> PropagationPoint | None:
        for point in self.points:
            if point.corrupt_bytes:
                return point
        return None

    @property
    def final_corruption(self) -> int:
        return self.points[-1].corrupt_bytes if self.points else 0

    @property
    def peak_corruption(self) -> int:
        return max((p.corrupt_bytes for p in self.points), default=0)

    @property
    def was_overwritten(self) -> bool:
        """True if corruption appeared and later vanished (architectural
        masking: the corrupted state was dead or rewritten)."""
        return self.peak_corruption > 0 and self.final_corruption == 0

    def describe(self) -> str:
        if self.peak_corruption == 0:
            return "no memory corruption ever observed"
        first = self.first_divergence
        lines = [
            f"first divergence: launch {first.launch_index} "
            f"({first.kernel_name}), {first.corrupt_bytes} byte(s)",
            f"peak corruption : {self.peak_corruption} byte(s)",
            f"final corruption: {self.final_corruption} byte(s)"
            + (" — overwritten (architecturally masked)" if self.was_overwritten else ""),
        ]
        return "\n".join(lines)


def compare_traces(
    golden: list[MemorySnapshot], faulty: list[MemorySnapshot]
) -> PropagationTrace:
    """Diff two memory traces launch-by-launch."""
    trace = PropagationTrace()
    for index in range(min(len(golden), len(faulty))):
        reference = golden[index]
        observed = faulty[index]
        corrupt_bytes = 0
        corrupt_regions = 0
        for start, payload in reference.regions.items():
            other = observed.regions.get(start)
            if other is None or len(other) != len(payload):
                corrupt_regions += 1
                corrupt_bytes += len(payload)
                continue
            diff = int(
                np.count_nonzero(
                    np.frombuffer(payload, np.uint8)
                    != np.frombuffer(other, np.uint8)
                )
            )
            if diff:
                corrupt_regions += 1
                corrupt_bytes += diff
        trace.points.append(
            PropagationPoint(
                launch_index=index,
                kernel_name=observed.kernel_name,
                corrupt_bytes=corrupt_bytes,
                corrupt_regions=corrupt_regions,
            )
        )
    return trace


def trace_propagation(
    app: Application,
    injector: NVBitTool,
    config: SandboxConfig | None = None,
) -> PropagationTrace:
    """Convenience: golden trace + faulty trace + diff in one call.

    Both runs must be deterministic (same seed/config), which the sandbox
    guarantees for registry workloads.
    """
    golden_tracer = MemoryTraceTool()
    run_app(app, preload=[golden_tracer], config=config)
    faulty_tracer = MemoryTraceTool()
    run_app(app, preload=[injector, faulty_tracer], config=config)
    return compare_traces(golden_tracer.snapshots, faulty_tracer.snapshots)
