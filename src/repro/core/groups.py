"""Instruction groups — the ``arch state id`` parameter of Table II.

Groups 1..6 partition the ISA; groups 7..8 are the aggregates
``G_GPPR = all - G_NODEST`` and ``G_GP = all - G_NODEST - G_PR`` that
campaigns typically inject (they cover every instruction that writes a
general-purpose register, with or without predicate writers).
"""

from __future__ import annotations

import enum

from repro.errors import ParamError
from repro.sass.instruction import Instruction
from repro.sass.isa import Category, DestKind, OpcodeInfo


class InstructionGroup(enum.IntEnum):
    """The eight arch-state-id values of Table II."""

    G_FP64 = 1
    G_FP32 = 2
    G_LD = 3
    G_PR = 4
    G_NODEST = 5
    G_OTHERS = 6
    G_GPPR = 7
    G_GP = 8


_FP32_CATEGORIES = frozenset({Category.FP32, Category.CONVERSION, Category.FP16})
_LD_CATEGORIES = frozenset({Category.LOAD, Category.ATOMIC})


def base_group(info: OpcodeInfo) -> InstructionGroup:
    """Classify an opcode into its *base* group (1..6).

    Destination kind takes priority (matching the paper's definitions of
    G_PR and G_NODEST), then the functional category decides between FP64,
    FP32, LD and OTHERS.
    """
    if info.dest_kind is DestKind.NONE:
        return InstructionGroup.G_NODEST
    if info.dest_kind is DestKind.PRED:
        return InstructionGroup.G_PR
    if info.category is Category.FP64:
        return InstructionGroup.G_FP64
    if info.category in _LD_CATEGORIES:
        return InstructionGroup.G_LD
    if info.category in _FP32_CATEGORIES:
        return InstructionGroup.G_FP32
    return InstructionGroup.G_OTHERS


def in_group(info: OpcodeInfo, group: InstructionGroup) -> bool:
    """True if an opcode belongs to ``group`` (handles the aggregates)."""
    base = base_group(info)
    if group is InstructionGroup.G_GPPR:
        return base is not InstructionGroup.G_NODEST
    if group is InstructionGroup.G_GP:
        return base not in (InstructionGroup.G_NODEST, InstructionGroup.G_PR)
    return base is group


def instruction_in_group(instr: Instruction, group: InstructionGroup) -> bool:
    return in_group(instr.info, group)


def injectable(group: InstructionGroup) -> bool:
    """Whether the group has destinations a transient injector can corrupt."""
    return group is not InstructionGroup.G_NODEST


def require_injectable(group: InstructionGroup) -> None:
    if not injectable(group):
        raise ParamError(
            f"{group.name} instructions have no destination register to corrupt"
        )
