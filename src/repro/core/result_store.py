"""The :class:`ResultStore` protocol: what the engine needs from persistence.

Historically :class:`~repro.core.engine.CampaignEngine` typed its store as
``store=None  # CampaignStore | None`` — a comment, not a contract.  Two
implementations now exist (the directory-backed
:class:`~repro.core.store.CampaignStore` and the SQLite-backed
:class:`~repro.service.faultdb.FaultDB` campaign store), so the contract is
explicit: any object satisfying this protocol can back a campaign —
checkpoint-per-injection, resume, partial results and adaptive decision
tapes included.

This module also owns :func:`render_results_csv`, the one place the
``results.csv`` byte format is defined.  Both store implementations call
it, so "the DB export is byte-identical to the directory store's file" is
true by construction (and pinned by parity tests, not just construction).
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Protocol, runtime_checkable

if TYPE_CHECKING:  # import cycle guard: campaign.py never imports us back
    from repro.core.campaign import (
        PermanentResult,
        TransientCampaignResult,
        TransientResult,
    )
    from repro.core.profile_data import ProgramProfile
    from repro.runner.artifacts import RunArtifacts

#: Column order of ``results.csv`` — deterministic fields only (simulated
#: instruction counts, never host wall-clock), so serial, parallel and
#: resumed campaigns produce byte-identical files.
RESULTS_CSV_COLUMNS = (
    "index", "kernel", "kernel_count", "instruction_count",
    "group", "model", "outcome", "symptom", "potential_due",
    "injected", "instructions",
)


def render_results_csv(rows: Iterable[tuple[int, "TransientResult"]]) -> str:
    """The canonical ``results.csv`` text for ``(index, result)`` rows."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(list(RESULTS_CSV_COLUMNS))
    for index, item in rows:
        writer.writerow([
            index,
            item.params.kernel_name,
            item.params.kernel_count,
            item.params.instruction_count,
            item.params.group.name,
            item.params.model.name,
            item.outcome.outcome.value,
            item.outcome.symptom,
            item.outcome.potential_due,
            item.record.injected,
            item.instructions,
        ])
    return buffer.getvalue()


@runtime_checkable
class ResultStore(Protocol):
    """Durable campaign state, as the engine consumes it.

    Implementations persist each injection the moment it completes (the
    engine calls ``save_injection`` per result, not per campaign), report
    which indices are already done so a resumed campaign skips them, and
    export the deterministic ``results.csv``.  ``replay_path`` names a
    filesystem location for the golden run's fast-forward tape — workers
    load it by path, so even database-backed stores hand out a real file.
    """

    # -- golden + profile -----------------------------------------------------

    def save_golden(self, golden: "RunArtifacts") -> None: ...

    def save_profile(self, profile: "ProgramProfile") -> None: ...

    def replay_path(self) -> Path: ...

    # -- adaptive decision tape ----------------------------------------------

    def save_adaptive_state(self, state: dict) -> None: ...

    def load_adaptive_state(self) -> dict | None: ...

    # -- transient injections -------------------------------------------------

    def save_injection(self, index: int, result: "TransientResult") -> None: ...

    def load_injection(self, index: int) -> "TransientResult": ...

    def completed_injections(self) -> list[int]: ...

    # -- permanent injections -------------------------------------------------

    def save_permanent_injection(
        self, index: int, result: "PermanentResult"
    ) -> None: ...

    def load_permanent_injection(self, index: int) -> "PermanentResult": ...

    def completed_permanent_injections(self) -> list[int]: ...

    # -- aggregate results -----------------------------------------------------

    def save_results_csv(self, result: "TransientCampaignResult") -> None: ...

    def save_partial_results_csv(
        self, by_index: dict[int, "TransientResult"]
    ) -> None: ...
