"""The stable programmatic facade of the package.

Four functions cover the NVBitFI pipeline end-to-end; everything else
(engines, executors, stores, tracers) plugs in through keyword arguments:

* :func:`profile` — golden + profiling runs → :class:`ProgramProfile`;
* :func:`select_sites` — deterministic uniform site selection over a
  profile (bit-for-bit the engine's own selection for the same seed);
* :func:`inject` — one injection run, classified against a fresh golden;
* :func:`run_campaign` — the full golden → profile → select → inject →
  classify campaign, serial or parallel, resumable, observable.

Example::

    import repro

    prof = repro.profile("303.ostencil")
    sites = repro.select_sites(prof, count=100, seed=1)
    result = repro.run_campaign(
        repro.CampaignConfig(workload="303.ostencil", num_transient=100, seed=1)
    )
    print(result.tally.report())

The legacy entry points (:meth:`repro.core.Campaign.run_transient`,
:func:`repro.core.parallel.run_transient_parallel`,
:func:`repro.core.store.run_resumable_campaign`) remain as deprecated
shims over the same engine.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace

from repro.core.adaptive import SamplingPlan, StoppingRule
from repro.core.bitflip import BitFlipModel
from repro.core.campaign import (
    CampaignConfig,
    PermanentCampaignResult,
    TransientCampaignResult,
)
from repro.core.engine import (
    CampaignEngine,
    EngineHooks,
    Executor,
    InjectionOutput,
    InjectionTask,
    execute_task,
)
from repro.core.groups import InstructionGroup
from repro.core.injector import InjectionRecord
from repro.core.kinds import CampaignKind
from repro.core.outcomes import OutcomeRecord, classify
from repro.core.params import IntermittentParams, PermanentParams, TransientParams
from repro.core.profile_data import ProgramProfile
from repro.core.profiler import ProfilingMode
from repro.core.resilience import RetryPolicy
from repro.core.result_store import ResultStore
from repro.core.site_selection import select_transient_sites
from repro.errors import ParamError, ReproError
from repro.obs import MetricsRegistry, Tracer
from repro.runner.app import Application
from repro.runner.artifacts import RunArtifacts
from repro.runner.sandbox import SandboxConfig
from repro.utils.rng import SeedSequenceStream


def profile(
    workload: Application | str,
    *,
    mode: ProfilingMode = ProfilingMode.EXACT,
    sandbox: SandboxConfig | None = None,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> ProgramProfile:
    """Profile a workload: golden run, then an instrumented profiling run.

    Returns the :class:`ProgramProfile` with its ``workload`` field stamped,
    so :func:`select_sites` reproduces the engine's RNG stream.
    """
    engine = _engine(workload, sandbox=sandbox, tracer=tracer, metrics=metrics)
    return engine.run_profile(mode)


def select_sites(
    program_profile: ProgramProfile,
    *,
    count: int = 100,
    group: InstructionGroup = InstructionGroup.G_GP,
    model: BitFlipModel = BitFlipModel.FLIP_SINGLE_BIT,
    seed: int = 0,
) -> list[TransientParams]:
    """Draw ``count`` transient fault sites uniformly over a profile.

    Selection is deterministic from ``seed`` and the profile's ``workload``
    stamp, and matches the engine's own selection bit-for-bit: a campaign
    run with the same knobs injects exactly these sites in this order.

    An unstamped profile (``workload`` empty) raises
    :class:`~repro.errors.ParamError` immediately: silently seeding the RNG
    from a placeholder would produce sites that *look* valid but can never
    match any campaign's, which historically surfaced only as a downstream
    parity mismatch.
    """
    if not program_profile.workload:
        raise ParamError(
            "profile has no workload stamp; site selection seeds its RNG "
            "from (seed, workload), so an unstamped profile cannot "
            "reproduce any campaign's sites. Use repro.profile(...) (which "
            "stamps the profile) or set profile.workload to the registered "
            "workload name."
        )
    stream = SeedSequenceStream(seed, path=program_profile.workload)
    rng = stream.child("sites").generator()
    return select_transient_sites(program_profile, group, model, count, rng)


@dataclass
class InjectResult:
    """One standalone injection run, classified against a fresh golden."""

    params: TransientParams | PermanentParams | IntermittentParams
    record: InjectionRecord | None
    outcome: OutcomeRecord
    artifacts: RunArtifacts

    @property
    def masked(self) -> bool:
        from repro.core.outcomes import Outcome

        return self.outcome.outcome is Outcome.MASKED


def inject(
    workload: Application | str,
    params: TransientParams | PermanentParams | IntermittentParams,
    *,
    sandbox: SandboxConfig | None = None,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> InjectResult:
    """Run one injection: golden run, injection run, Table V classification.

    The injection run inherits the engine's hang-budget watchdog (scaled
    from the golden run) and the full sandbox configuration, exactly as a
    campaign injection would.
    """
    engine = _engine(workload, sandbox=sandbox, tracer=tracer, metrics=metrics)
    engine.run_golden()
    kind = _kind(params)
    task = InjectionTask(
        index=0,
        workload=engine.app.name,
        kind=kind,
        params=params,
        sandbox=engine._injection_spec(),
    )
    with engine.tracer.span("inject", kind=kind, total=1, fresh=1):
        output: InjectionOutput = execute_task(
            task, app=engine.app, tracer=engine.tracer
        )
    outcome = classify(engine.app, engine.golden, output.artifacts)
    return InjectResult(
        params=params,
        record=output.record,
        outcome=outcome,
        artifacts=output.artifacts,
    )


#: The historic ad-hoc override kwargs of :func:`run_campaign`, now shims
#: over :meth:`~repro.core.campaign.CampaignConfig.with_overrides`.
_LEGACY_OVERRIDE_KWARGS = (
    "retry",
    "fast_forward",
    "tail_fast_forward",
    "stopping",
    "sampling",
)


def run_campaign(
    config: CampaignConfig,
    *,
    executor: Executor | None = None,
    store: ResultStore | None = None,
    hooks: EngineHooks | None = None,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    kind: CampaignKind | str = CampaignKind.TRANSIENT,
    retry: RetryPolicy | None = None,
    fast_forward: bool | None = None,
    tail_fast_forward: bool | None = None,
    stopping: StoppingRule | None = None,
    sampling: SamplingPlan | None = None,
) -> TransientCampaignResult | PermanentCampaignResult:
    """Run (or resume) a full campaign described by ``config``.

    ``config.workload`` names the registered application.  Plug in a
    :class:`~repro.core.engine.ParallelExecutor` for multi-process runs,
    any :class:`~repro.core.result_store.ResultStore` for
    checkpoint/resume (the directory-backed
    :class:`~repro.core.store.CampaignStore` or a
    :class:`~repro.service.faultdb.FaultDB` campaign store), and a
    :class:`~repro.obs.Tracer` / :class:`~repro.obs.MetricsRegistry` for
    observability.

    ``kind`` selects what the campaign injects — a
    :class:`~repro.CampaignKind` member or its string value
    (``"transient"`` / ``"permanent"``); anything else raises
    :class:`~repro.errors.ReproError` naming the accepted set.

    Per-call config overrides belong in the config itself::

        run_campaign(config.with_overrides(retry=policy, stopping=rule))

    The historic override kwargs (``retry=``, ``fast_forward=``,
    ``tail_fast_forward=``, ``stopping=``, ``sampling=``) still work but
    emit :class:`DeprecationWarning` and are routed through
    :meth:`~repro.core.campaign.CampaignConfig.with_overrides`, so their
    semantics are identical.  See the stability policy in ``DESIGN.md``
    for the removal timeline.
    """
    if not config.workload:
        raise ReproError(
            "run_campaign needs CampaignConfig.workload to name a "
            "registered workload"
        )
    legacy = {
        "retry": retry,
        "fast_forward": fast_forward,
        "tail_fast_forward": tail_fast_forward,
        "stopping": stopping,
        "sampling": sampling,
    }
    used = sorted(name for name, value in legacy.items() if value is not None)
    if used:
        warnings.warn(
            f"run_campaign override kwarg(s) {used} are deprecated; use "
            "config.with_overrides("
            + ", ".join(f"{name}=..." for name in used)
            + ") instead",
            DeprecationWarning,
            stacklevel=2,
        )
        config = config.with_overrides(**legacy)
    campaign_kind = CampaignKind.coerce(kind)
    engine = CampaignEngine(
        config.workload,
        config,
        executor=executor,
        store=store,
        hooks=hooks,
        tracer=tracer,
        metrics=metrics,
    )
    if campaign_kind is CampaignKind.TRANSIENT:
        return engine.run_transient()
    if campaign_kind is CampaignKind.PERMANENT:
        return engine.run_permanent()
    raise ReproError(
        f"campaign kind {campaign_kind.value!r} has no campaign entry "
        "point; use repro.inject for single intermittent runs"
    )


# -- helpers -------------------------------------------------------------------


def _engine(
    workload: Application | str,
    sandbox: SandboxConfig | None,
    tracer: Tracer | None,
    metrics: MetricsRegistry | None = None,
) -> CampaignEngine:
    config = CampaignConfig()
    if sandbox is not None:
        config = replace(config, sandbox=sandbox)
    return CampaignEngine(workload, config, tracer=tracer, metrics=metrics)


def _kind(params) -> str:
    if isinstance(params, TransientParams):
        return CampaignKind.TRANSIENT.value
    if isinstance(params, IntermittentParams):
        return CampaignKind.INTERMITTENT.value
    if isinstance(params, PermanentParams):
        return CampaignKind.PERMANENT.value
    raise ReproError(f"unsupported parameter type {type(params).__name__}")
