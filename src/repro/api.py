"""The stable programmatic facade of the package.

Four functions cover the NVBitFI pipeline end-to-end; everything else
(engines, executors, stores, tracers) plugs in through keyword arguments:

* :func:`profile` — golden + profiling runs → :class:`ProgramProfile`;
* :func:`select_sites` — deterministic uniform site selection over a
  profile (bit-for-bit the engine's own selection for the same seed);
* :func:`inject` — one injection run, classified against a fresh golden;
* :func:`run_campaign` — the full golden → profile → select → inject →
  classify campaign, serial or parallel, resumable, observable.

Example::

    import repro

    prof = repro.profile("303.ostencil")
    sites = repro.select_sites(prof, count=100, seed=1)
    result = repro.run_campaign(
        repro.CampaignConfig(workload="303.ostencil", num_transient=100, seed=1)
    )
    print(result.tally.report())

The legacy entry points (:meth:`repro.core.Campaign.run_transient`,
:func:`repro.core.parallel.run_transient_parallel`,
:func:`repro.core.store.run_resumable_campaign`) remain as deprecated
shims over the same engine.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.adaptive import SamplingPlan, StoppingRule
from repro.core.bitflip import BitFlipModel
from repro.core.campaign import (
    CampaignConfig,
    PermanentCampaignResult,
    TransientCampaignResult,
)
from repro.core.engine import (
    CampaignEngine,
    EngineHooks,
    Executor,
    InjectionOutput,
    InjectionTask,
    execute_task,
)
from repro.core.groups import InstructionGroup
from repro.core.injector import InjectionRecord
from repro.core.outcomes import OutcomeRecord, classify
from repro.core.params import IntermittentParams, PermanentParams, TransientParams
from repro.core.profile_data import ProgramProfile
from repro.core.profiler import ProfilingMode
from repro.core.resilience import RetryPolicy
from repro.core.site_selection import select_transient_sites
from repro.errors import ReproError
from repro.obs import MetricsRegistry, Tracer
from repro.runner.app import Application
from repro.runner.artifacts import RunArtifacts
from repro.runner.sandbox import SandboxConfig
from repro.utils.rng import SeedSequenceStream


def profile(
    workload: Application | str,
    *,
    mode: ProfilingMode = ProfilingMode.EXACT,
    sandbox: SandboxConfig | None = None,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> ProgramProfile:
    """Profile a workload: golden run, then an instrumented profiling run.

    Returns the :class:`ProgramProfile` with its ``workload`` field stamped,
    so :func:`select_sites` reproduces the engine's RNG stream.
    """
    engine = _engine(workload, sandbox=sandbox, tracer=tracer, metrics=metrics)
    return engine.run_profile(mode)


def select_sites(
    program_profile: ProgramProfile,
    *,
    count: int = 100,
    group: InstructionGroup = InstructionGroup.G_GP,
    model: BitFlipModel = BitFlipModel.FLIP_SINGLE_BIT,
    seed: int = 0,
) -> list[TransientParams]:
    """Draw ``count`` transient fault sites uniformly over a profile.

    Selection is deterministic from ``seed`` and the profile's ``workload``
    stamp, and matches the engine's own selection bit-for-bit: a campaign
    run with the same knobs injects exactly these sites in this order.
    """
    stream = SeedSequenceStream(
        seed, path=program_profile.workload or "root"
    )
    rng = stream.child("sites").generator()
    return select_transient_sites(program_profile, group, model, count, rng)


@dataclass
class InjectResult:
    """One standalone injection run, classified against a fresh golden."""

    params: TransientParams | PermanentParams | IntermittentParams
    record: InjectionRecord | None
    outcome: OutcomeRecord
    artifacts: RunArtifacts

    @property
    def masked(self) -> bool:
        from repro.core.outcomes import Outcome

        return self.outcome.outcome is Outcome.MASKED


def inject(
    workload: Application | str,
    params: TransientParams | PermanentParams | IntermittentParams,
    *,
    sandbox: SandboxConfig | None = None,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> InjectResult:
    """Run one injection: golden run, injection run, Table V classification.

    The injection run inherits the engine's hang-budget watchdog (scaled
    from the golden run) and the full sandbox configuration, exactly as a
    campaign injection would.
    """
    engine = _engine(workload, sandbox=sandbox, tracer=tracer, metrics=metrics)
    engine.run_golden()
    kind = _kind(params)
    task = InjectionTask(
        index=0,
        workload=engine.app.name,
        kind=kind,
        params=params,
        sandbox=engine._injection_spec(),
    )
    with engine.tracer.span("inject", kind=kind, total=1, fresh=1):
        output: InjectionOutput = execute_task(
            task, app=engine.app, tracer=engine.tracer
        )
    outcome = classify(engine.app, engine.golden, output.artifacts)
    return InjectResult(
        params=params,
        record=output.record,
        outcome=outcome,
        artifacts=output.artifacts,
    )


def run_campaign(
    config: CampaignConfig,
    *,
    executor: Executor | None = None,
    store=None,  # CampaignStore | None
    hooks: EngineHooks | None = None,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    retry: RetryPolicy | None = None,
    kind: str = "transient",
    fast_forward: bool | None = None,
    tail_fast_forward: bool | None = None,
    stopping: StoppingRule | None = None,
    sampling: SamplingPlan | None = None,
) -> TransientCampaignResult | PermanentCampaignResult:
    """Run (or resume) a full campaign described by ``config``.

    ``config.workload`` names the registered application.  Plug in a
    :class:`~repro.core.engine.ParallelExecutor` for multi-process runs, a
    :class:`~repro.core.store.CampaignStore` for checkpoint/resume, and a
    :class:`~repro.obs.Tracer` / :class:`~repro.obs.MetricsRegistry` for
    observability.

    ``retry`` overrides ``config.retry``: the
    :class:`~repro.core.resilience.RetryPolicy` deciding how injection
    tasks whose worker raises, dies or hangs are re-attempted, and whether
    exhausted tasks are quarantined as synthesized DUE outcomes (the
    default) or abort the campaign (``on_failure="raise"``).

    ``fast_forward`` overrides ``config.fast_forward``: golden-replay
    fast-forward, which skips simulating launches before each injection
    target by applying write deltas recorded during the golden run.
    ``tail_fast_forward`` overrides ``config.tail_fast_forward``: once an
    injection run's state re-converges with the golden run at a launch
    boundary, the remaining launches replay from the same recording
    (effective only while ``fast_forward`` is on).  ``results.csv`` is
    byte-identical either way (see ``docs/performance.md``).

    ``stopping`` / ``sampling`` override ``config.stopping`` /
    ``config.sampling`` and make a transient campaign *adaptive* (see
    :mod:`repro.core.adaptive` and ``docs/statistics.md``): sites are
    drawn and injected in batches, the
    :class:`~repro.core.adaptive.StoppingRule` is re-evaluated after each
    batch, and the campaign stops as soon as the target outcome's
    confidence interval is tight enough — ``num_transient`` becomes the
    budget ceiling.  With both left unset the campaign is the fixed-N loop,
    byte-identical to previous releases.
    """
    if not config.workload:
        raise ReproError(
            "run_campaign needs CampaignConfig.workload to name a "
            "registered workload"
        )
    if retry is not None:
        config = replace(config, retry=retry)
    if fast_forward is not None:
        config = replace(config, fast_forward=fast_forward)
    if tail_fast_forward is not None:
        config = replace(config, tail_fast_forward=tail_fast_forward)
    if stopping is not None:
        config = replace(config, stopping=stopping)
    if sampling is not None:
        config = replace(config, sampling=sampling)
    engine = CampaignEngine(
        config.workload,
        config,
        executor=executor,
        store=store,
        hooks=hooks,
        tracer=tracer,
        metrics=metrics,
    )
    if kind == "transient":
        return engine.run_transient()
    if kind == "permanent":
        return engine.run_permanent()
    raise ReproError(f"unknown campaign kind {kind!r}")


# -- helpers -------------------------------------------------------------------


def _engine(
    workload: Application | str,
    sandbox: SandboxConfig | None,
    tracer: Tracer | None,
    metrics: MetricsRegistry | None = None,
) -> CampaignEngine:
    config = CampaignConfig()
    if sandbox is not None:
        config = replace(config, sandbox=sandbox)
    return CampaignEngine(workload, config, tracer=tracer, metrics=metrics)


def _kind(params) -> str:
    if isinstance(params, TransientParams):
        return "transient"
    if isinstance(params, IntermittentParams):
        return "intermittent"
    if isinstance(params, PermanentParams):
        return "permanent"
    raise ReproError(f"unsupported parameter type {type(params).__name__}")
