"""Simulated device memory: allocator, global/shared/constant spaces."""

from repro.mem.allocator import Allocator
from repro.mem.memory import ConstantBank, GlobalMemory, SharedMemory

__all__ = ["Allocator", "GlobalMemory", "SharedMemory", "ConstantBank"]
