"""First-fit free-list allocator for simulated device memory.

Address 0 is never handed out (it plays the role of a NULL device pointer,
so that zeroed address registers fault like they do on real hardware).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AllocationError

_ALIGN = 256  # CUDA malloc alignment


@dataclass
class _Block:
    start: int
    size: int


class Allocator:
    """First-fit allocator over a ``[base, base+size)`` address range."""

    def __init__(self, size: int, base: int = _ALIGN) -> None:
        if size <= base:
            raise AllocationError(f"heap size {size} too small for base {base}")
        self.base = base
        self.size = size
        self._free: list[_Block] = [_Block(base, size - base)]
        self._allocated: dict[int, int] = {}  # start -> size

    def alloc(self, nbytes: int) -> int:
        """Allocate ``nbytes``; returns the device address."""
        if nbytes <= 0:
            raise AllocationError(f"allocation size must be positive, got {nbytes}")
        rounded = (nbytes + _ALIGN - 1) // _ALIGN * _ALIGN
        for idx, block in enumerate(self._free):
            if block.size >= rounded:
                start = block.start
                if block.size == rounded:
                    del self._free[idx]
                else:
                    block.start += rounded
                    block.size -= rounded
                self._allocated[start] = rounded
                return start
        raise AllocationError(
            f"out of device memory: requested {nbytes} bytes "
            f"({self.free_bytes()} free, fragmented)"
        )

    def free(self, address: int) -> None:
        """Release a previous allocation; coalesces adjacent free blocks."""
        size = self._allocated.pop(address, None)
        if size is None:
            raise AllocationError(f"free of unallocated address 0x{address:x}")
        self._free.append(_Block(address, size))
        self._free.sort(key=lambda b: b.start)
        merged: list[_Block] = []
        for block in self._free:
            if merged and merged[-1].start + merged[-1].size == block.start:
                merged[-1].size += block.size
            else:
                merged.append(block)
        self._free = merged

    def owns(self, address: int) -> bool:
        """True if ``address`` falls inside any live allocation."""
        for start, size in self._allocated.items():
            if start <= address < start + size:
                return True
        return False

    def allocation_of(self, address: int) -> tuple[int, int] | None:
        """Return (start, size) of the allocation containing ``address``."""
        for start, size in self._allocated.items():
            if start <= address < start + size:
                return start, size
        return None

    def free_bytes(self) -> int:
        return sum(block.size for block in self._free)

    def allocated_bytes(self) -> int:
        return sum(self._allocated.values())

    def __len__(self) -> int:
        return len(self._allocated)
