"""Simulated memory spaces with per-lane vectorised access and MMU checks.

A faulty address register produced by an injected error must behave like it
does on a real GPU: misaligned or unmapped accesses raise
:class:`~repro.errors.MemoryViolation`, which the device turns into an
early kernel termination plus a CUDA error + dmesg (Xid) record — the
"potential DUE" path of the paper's Table V.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MemoryViolation
from repro.mem.allocator import Allocator

# Dirty-page tracking granularity (see repro.gpusim.replay): word-aligned
# stores never straddle a 256-byte page, so tracking is one shift per store.
PAGE_SIZE = 256
PAGE_SHIFT = 8

# The widest device store is 8 bytes (store64); an aligned W-byte store at
# address A has A % W == 0, so A // PAGE_SIZE == (A + W - 1) // PAGE_SIZE
# whenever PAGE_SIZE % W == 0.  That is why note_stores / store32 / store64
# may page-index only the *starting* address of each lane's access — host
# write_bytes has no alignment contract and must span first..last page.
assert PAGE_SIZE % 8 == 0 and PAGE_SIZE == 1 << PAGE_SHIFT


class GlobalMemory:
    """Device global memory: a flat byte array plus an allocation map."""

    def __init__(self, size: int = 64 * 1024 * 1024) -> None:
        self.size = size
        self.data = np.zeros(size, dtype=np.uint8)
        self.allocator = Allocator(size)
        self._starts = np.empty(0, dtype=np.int64)
        self._ends = np.empty(0, dtype=np.int64)
        # Dirty-page tracking (repro.gpusim.replay): while a tracking window
        # is open, every write records the 256-byte pages it touches.  None
        # means tracking is off and the stores pay nothing.
        self._dirty: set[int] | None = None

    # -- write tracking (golden-replay recording) ----------------------------

    def begin_write_tracking(self) -> None:
        """Start collecting the pages every subsequent write touches."""
        self._dirty = set()

    def end_write_tracking(self) -> np.ndarray:
        """Stop tracking; return the sorted dirty page indices."""
        dirty, self._dirty = self._dirty, None
        if not dirty:
            return np.empty(0, dtype=np.int64)
        pages = np.fromiter(dirty, dtype=np.int64, count=len(dirty))
        pages.sort()
        return pages

    def note_stores(self, addresses: np.ndarray, mask: np.ndarray) -> None:
        """Record word stores done by mutating ``data`` directly (atomics)."""
        if self._dirty is None:
            return
        active = addresses[mask]
        if active.size:
            self._dirty.update(np.unique(active >> PAGE_SHIFT).tolist())

    def shadow_copy(self) -> np.ndarray:
        """A same-sized golden-memory mirror, copying only allocated spans.

        Tail fast-forward snapshots this at the injection-target boundary.
        Untouched memory is zero on both sides (``data`` starts zeroed), so
        skipping unallocated ranges is exact for every page the allocator
        has never handed out.  Pages of *freed* allocations may hold stale
        bytes the zeroed mirror lacks — but a page only ever enters the
        divergence comparison after a post-target write, and the recorded
        golden delta (applied to the mirror first) carries full-page
        contents, stale bytes included.  A freed-stale page the tape never
        rewrites can therefore only report a false *divergence* — which
        merely keeps the tail disarmed, never replays wrong state.
        """
        out = np.zeros(self.size, dtype=np.uint8)
        for start, end in zip(self._starts.tolist(), self._ends.tolist()):
            out[start:end] = self.data[start:end]
        return out

    def diff_pages(self, shadow: np.ndarray, pages: np.ndarray) -> np.ndarray:
        """Among ``pages``, those whose live contents differ from ``shadow``.

        Tail fast-forward (:mod:`repro.gpusim.replay`) maintains its
        divergence set with this: ``shadow`` is a same-sized golden-memory
        mirror and the comparison is one vectorised per-page reduction over
        only the candidate pages.
        """
        if pages.size == 0:
            return pages
        mine = self.data.reshape(-1, PAGE_SIZE)[pages]
        theirs = shadow.reshape(-1, PAGE_SIZE)[pages]
        return pages[(mine != theirs).any(axis=1)]

    # -- allocation ---------------------------------------------------------

    def alloc(self, nbytes: int) -> int:
        address = self.allocator.alloc(nbytes)
        self._rebuild_ranges()
        return address

    def free(self, address: int) -> None:
        self.allocator.free(address)
        self._rebuild_ranges()

    def _rebuild_ranges(self) -> None:
        spans = sorted(
            (start, start + size)
            for start, size in self.allocator._allocated.items()
        )
        self._starts = np.array([s for s, _ in spans], dtype=np.int64)
        self._ends = np.array([e for _, e in spans], dtype=np.int64)

    # -- host (memcpy) access -----------------------------------------------

    def write_bytes(self, address: int, payload: bytes | np.ndarray) -> None:
        payload = np.frombuffer(bytes(payload), dtype=np.uint8)
        if address < 0 or address + len(payload) > self.size:
            raise MemoryViolation(address, len(payload), "global", "out-of-range host")
        self.data[address : address + len(payload)] = payload
        if self._dirty is not None and len(payload):
            first = address >> PAGE_SHIFT
            last = (address + len(payload) - 1) >> PAGE_SHIFT
            self._dirty.update(range(first, last + 1))

    def read_bytes(self, address: int, nbytes: int) -> bytes:
        if address < 0 or address + nbytes > self.size:
            raise MemoryViolation(address, nbytes, "global", "out-of-range host")
        return self.data[address : address + nbytes].tobytes()

    # -- device (warp) access -------------------------------------------------

    def validate(self, addresses: np.ndarray, mask: np.ndarray, width: int) -> None:
        """MMU check: alignment and membership in a live allocation."""
        active = addresses[mask]
        if active.size == 0:
            return
        misaligned = active % width != 0
        if misaligned.any():
            bad = int(active[misaligned][0])
            raise MemoryViolation(bad, width, "global", "misaligned")
        if self._starts.size == 0:
            raise MemoryViolation(int(active[0]), width, "global", "unmapped")
        slot = np.searchsorted(self._starts, active, side="right") - 1
        in_range = (slot >= 0) & (active + width <= self._ends[np.clip(slot, 0, None)])
        if not in_range.all():
            bad = int(active[~in_range][0])
            raise MemoryViolation(bad, width, "global", "unmapped")

    def load32(self, addresses: np.ndarray, mask: np.ndarray) -> np.ndarray:
        self.validate(addresses, mask, 4)
        out = np.zeros(addresses.shape, dtype=np.uint32)
        idx = addresses[mask] // 4
        out[mask] = self.data.view(np.uint32)[idx]
        return out

    def store32(self, addresses: np.ndarray, mask: np.ndarray, values: np.ndarray) -> None:
        self.validate(addresses, mask, 4)
        active = addresses[mask]
        idx = active // 4
        self.data.view(np.uint32)[idx] = values[mask].astype(np.uint32)
        if self._dirty is not None and active.size:
            self._dirty.update(np.unique(active >> PAGE_SHIFT).tolist())

    def load64(self, addresses: np.ndarray, mask: np.ndarray) -> np.ndarray:
        self.validate(addresses, mask, 8)
        out = np.zeros(addresses.shape, dtype=np.uint64)
        idx = addresses[mask] // 8
        out[mask] = self.data.view(np.uint64)[idx]
        return out

    def store64(self, addresses: np.ndarray, mask: np.ndarray, values: np.ndarray) -> None:
        self.validate(addresses, mask, 8)
        active = addresses[mask]
        idx = active // 8
        self.data.view(np.uint64)[idx] = values[mask].astype(np.uint64)
        if self._dirty is not None and active.size:
            self._dirty.update(np.unique(active >> PAGE_SHIFT).tolist())


class SharedMemory:
    """Per-block scratchpad; sized from the kernel's ``.shared`` directive."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.data = np.zeros(max(size, 4), dtype=np.uint8)

    def _validate(self, addresses: np.ndarray, mask: np.ndarray, width: int) -> None:
        active = addresses[mask]
        if active.size == 0:
            return
        misaligned = active % width != 0
        if misaligned.any():
            raise MemoryViolation(int(active[misaligned][0]), width, "shared", "misaligned")
        oob = (active < 0) | (active + width > self.size)
        if oob.any():
            raise MemoryViolation(int(active[oob][0]), width, "shared", "out-of-bounds")

    def load32(self, addresses: np.ndarray, mask: np.ndarray) -> np.ndarray:
        self._validate(addresses, mask, 4)
        out = np.zeros(addresses.shape, dtype=np.uint32)
        out[mask] = self.data.view(np.uint32)[addresses[mask] // 4]
        return out

    def store32(self, addresses: np.ndarray, mask: np.ndarray, values: np.ndarray) -> None:
        self._validate(addresses, mask, 4)
        self.data.view(np.uint32)[addresses[mask] // 4] = values[mask].astype(np.uint32)

    def load64(self, addresses: np.ndarray, mask: np.ndarray) -> np.ndarray:
        self._validate(addresses, mask, 8)
        out = np.zeros(addresses.shape, dtype=np.uint64)
        out[mask] = self.data.view(np.uint64)[addresses[mask] // 8]
        return out

    def store64(self, addresses: np.ndarray, mask: np.ndarray, values: np.ndarray) -> None:
        self._validate(addresses, mask, 8)
        self.data.view(np.uint64)[addresses[mask] // 8] = values[mask].astype(np.uint64)


class ConstantBank:
    """Read-only constant bank; bank 0 holds the 32-bit kernel parameters."""

    def __init__(self, size: int = 4096) -> None:
        self.size = size
        self.data = np.zeros(size, dtype=np.uint8)

    def write_params(self, words: list[int]) -> None:
        """Host-side: install kernel parameters at offset 0."""
        if 4 * len(words) > self.size:
            raise MemoryViolation(4 * len(words), 4, "constant", "out-of-bounds")
        arr = np.array(words, dtype=np.uint64).astype(np.uint32)
        self.data.view(np.uint32)[: len(words)] = arr

    def read32(self, offset: int) -> int:
        if offset % 4 != 0 or offset < 0 or offset + 4 > self.size:
            raise MemoryViolation(offset, 4, "constant", "out-of-bounds")
        return int(self.data.view(np.uint32)[offset // 4])

    def load32(self, offsets: np.ndarray, mask: np.ndarray) -> np.ndarray:
        active = offsets[mask]
        if active.size:
            if (active % 4 != 0).any() or (active < 0).any() or (active + 4 > self.size).any():
                raise MemoryViolation(int(active[0]), 4, "constant", "out-of-bounds")
        out = np.zeros(offsets.shape, dtype=np.uint32)
        out[mask] = self.data.view(np.uint32)[offsets[mask] // 4]
        return out
