"""NVBit tool base class and the attachment mechanism.

A *tool* is a dynamic library in real NVBit, attached to an unmodified
process via ``LD_PRELOAD``.  Here a tool is an :class:`NVBitTool` subclass,
attached to a sandboxed run via the ``preload=[...]`` argument — the same
late-binding property: the target program never knows it is instrumented.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.cuda.driver import CudaEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.nvbit.api import NVBitRuntime


class NVBitTool:
    """Base class for instrumentation tools (profilers, injectors)."""

    name = "nvbit-tool"

    def __init__(self) -> None:
        self.nvbit: "NVBitRuntime | None" = None

    # -- lifecycle callbacks (mirroring nvbit_at_* entry points) -------------

    def nvbit_at_init(self) -> None:
        """Called once when the tool is attached, before any CUDA activity."""

    def nvbit_at_cuda_event(
        self,
        driver: Any,
        event: CudaEvent,
        payload: Any,
        is_exit: bool,
    ) -> None:
        """Called on entry and exit of every intercepted driver API call."""

    def nvbit_at_term(self) -> None:
        """Called once when the target program finishes."""
