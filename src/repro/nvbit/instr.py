"""The ``Instr`` inspection/instrumentation handle given to NVBit tools.

Mirrors the parts of NVBit's C++ ``Instr`` class that NVBitFI uses:
opcode inspection, operand inspection, and ``insert_call`` to attach an
instrumentation function before or after the instruction.  Attached calls
are compiled into the kernel's hook table by the JIT
(:mod:`repro.nvbit.jit`) the next time the kernel launches instrumented.
"""

from __future__ import annotations

import enum
from typing import Callable

from repro.gpusim.context import InstrSite
from repro.sass.instruction import Instruction
from repro.sass.isa import DestKind
from repro.sass.operands import Pred, Reg

InstrumentationFn = Callable[[InstrSite], None]


class IPoint(enum.Enum):
    """Where an instrumentation call is inserted relative to the instruction."""

    BEFORE = "before"
    AFTER = "after"


class Instr:
    """NVBit-style view of one static instruction inside a function."""

    def __init__(self, owner: "object", instruction: Instruction) -> None:
        self._owner = owner  # the InstrumentedFunction record in the runtime
        self._instruction = instruction
        self.before_calls: list[InstrumentationFn] = []
        self.after_calls: list[InstrumentationFn] = []

    # -- inspection (NVBit Instr API) ---------------------------------------

    @property
    def raw(self) -> Instruction:
        return self._instruction

    def get_idx(self) -> int:
        """Index of this instruction within its function (the PC)."""
        return self._instruction.pc

    def get_opcode(self) -> str:
        """Full mnemonic including modifiers, e.g. ``ISETP.GE.U32``."""
        return ".".join((self._instruction.opcode,) + self._instruction.modifiers)

    def get_opcode_short(self) -> str:
        """Base mnemonic, e.g. ``ISETP``."""
        return self._instruction.opcode

    def get_sass(self) -> str:
        return str(self._instruction)

    def has_guard_pred(self) -> bool:
        return self._instruction.guard is not None

    def get_num_dest_regs(self) -> int:
        return len(self._instruction.dest_regs)

    def get_dest_regs(self) -> tuple[int, ...]:
        return self._instruction.dest_regs

    def get_dest_pred(self) -> int | None:
        return self._instruction.dest_pred

    def has_dest(self) -> bool:
        return self._instruction.info.dest_kind is not DestKind.NONE

    def get_src_regs(self) -> tuple[int, ...]:
        regs = []
        for op in self._instruction.sources:
            if isinstance(op, Reg) and not op.is_rz:
                regs.append(op.index)
        return tuple(regs)

    def get_src_preds(self) -> tuple[int, ...]:
        preds = []
        for op in self._instruction.sources:
            if isinstance(op, Pred) and not op.is_pt:
                preds.append(op.index)
        return tuple(preds)

    # -- instrumentation -----------------------------------------------------

    def insert_call(self, fn: InstrumentationFn, where: IPoint = IPoint.AFTER) -> None:
        """Attach an instrumentation function at this instruction."""
        if where is IPoint.BEFORE:
            self.before_calls.append(fn)
        else:
            self.after_calls.append(fn)
        self._owner.mark_dirty()

    def remove_calls(self) -> None:
        """Detach all instrumentation from this instruction."""
        if self.before_calls or self.after_calls:
            self.before_calls.clear()
            self.after_calls.clear()
            self._owner.mark_dirty()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Instr({self.get_idx()}: {self.get_sass()})"
