"""Instrumentation JIT: compiles inserted calls into per-PC hook tables.

Real NVBit recompiles an instrumented kernel once and caches the clone so
subsequent launches pay nothing (paper §III-C).  Our "compilation" builds
the ``{pc: (before, after)}`` hook table the simulator consumes; the cache
is invalidated only when a tool inserts or removes calls (the dirty bit),
so the selective-instrumentation performance story is preserved: kernels
launched with instrumentation disabled run the original, hook-free path.
"""

from __future__ import annotations

from repro.gpusim.sm import Hooks
from repro.nvbit.instr import Instr


class JitCache:
    """Per-function compiled hook tables with dirty-bit invalidation."""

    def __init__(self) -> None:
        self._cache: dict[int, Hooks] = {}  # id(function record) -> hooks
        self.compile_count = 0  # exposed for tests / overhead accounting

    def compile(self, record: "object", instrs: list[Instr]) -> Hooks:
        """Return the hook table for a function, rebuilding if dirty."""
        key = id(record)
        if not record.dirty and key in self._cache:
            return self._cache[key]
        hooks: Hooks = {}
        for instr in instrs:
            if instr.before_calls or instr.after_calls:
                hooks[instr.get_idx()] = (
                    list(instr.before_calls),
                    list(instr.after_calls),
                )
        self._cache[key] = hooks
        record.dirty = False
        self.compile_count += 1
        return hooks

    def invalidate(self, record: "object") -> None:
        self._cache.pop(id(record), None)
