"""NVBit-style dynamic binary instrumentation framework."""

from repro.nvbit.api import NVBitRuntime
from repro.nvbit.instr import Instr, IPoint
from repro.nvbit.jit import JitCache
from repro.nvbit.tool import NVBitTool

__all__ = ["NVBitRuntime", "Instr", "IPoint", "JitCache", "NVBitTool"]
