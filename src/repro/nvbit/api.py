"""The NVBit runtime: event dispatch, instruction inspection, selective JIT.

This is the substrate NVBitFI is built on (paper §III-C).  The runtime

* receives every CUDA driver event from :class:`repro.cuda.CudaDriver` and
  forwards it to attached tools (``nvbit_at_cuda_event``),
* hands tools per-function :class:`~repro.nvbit.instr.Instr` lists for
  inspection and ``insert_call`` instrumentation,
* maintains the per-function *enable* flag: a launch only runs the
  instrumented clone when the tool enabled it for that launch
  (``nvbit_enable_instrumented``), otherwise the unmodified kernel runs —
  the mechanism behind NVBitFI's minimal-overhead claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.cuda.driver import CudaDriver, CudaEvent, CudaFunction
from repro.gpusim import blockc
from repro.gpusim.sm import Hooks
from repro.nvbit.instr import Instr
from repro.nvbit.jit import JitCache
from repro.nvbit.tool import NVBitTool


@dataclass
class _FunctionRecord:
    """Instrumentation state for one loaded kernel."""

    func: CudaFunction
    instrs: list[Instr] = field(default_factory=list)
    enabled: bool = False
    dirty: bool = True

    def mark_dirty(self) -> None:
        self.dirty = True


class NVBitRuntime:
    """One NVBit instance, shared by all tools attached to a process."""

    def __init__(self, tools: list[NVBitTool] | None = None) -> None:
        self.tools: list[NVBitTool] = []
        self._records: dict[CudaFunction, _FunctionRecord] = {}
        self._jit = JitCache()
        self.events_seen = 0
        for tool in tools or []:
            self.attach(tool)

    # -- attachment -------------------------------------------------------------

    def attach(self, tool: NVBitTool) -> None:
        tool.nvbit = self
        self.tools.append(tool)
        tool.nvbit_at_init()

    def terminate(self) -> None:
        for tool in self.tools:
            tool.nvbit_at_term()

    # -- tool-facing API (nvbit_* functions) ---------------------------------------

    def get_instrs(self, func: CudaFunction) -> list[Instr]:
        """Inspect a function's instructions (cached per function)."""
        record = self._record(func)
        return record.instrs

    def enable_instrumented(self, func: CudaFunction, enable: bool) -> None:
        """Choose whether the next launches of ``func`` run instrumented."""
        self._record(func).enabled = enable

    def is_instrumented_enabled(self, func: CudaFunction) -> bool:
        return self._record(func).enabled

    def invalidate_instrumented(self, func: CudaFunction) -> None:
        """Force the next enabled launch of ``func`` to JIT a fresh clone.

        A long-lived tool that re-arms a function it already instrumented
        (the batch injector's cross-launch sweep) uses this so the re-armed
        launch pays the same simulated JIT-compile charge a fresh process
        would — keeping cycle totals identical to a serial run.

        The kernel's block-compiled execution tables are dropped alongside:
        a tool forcing a fresh clone may have rewritten instructions, and
        the next uninstrumented launch must not dispatch stale code.
        """
        self._record(func).mark_dirty()
        blockc.invalidate(func.kernel)

    @property
    def jit_compile_count(self) -> int:
        return self._jit.compile_count

    # -- driver-facing API ------------------------------------------------------------

    def dispatch_event(
        self, driver: CudaDriver, event: CudaEvent, payload: Any, is_exit: bool
    ) -> None:
        self.events_seen += 1
        for tool in self.tools:
            tool.nvbit_at_cuda_event(driver, event, payload, is_exit)

    def active_hooks(self, func: CudaFunction) -> Hooks | None:
        """Hook table for a launch, or None for the uninstrumented fast path."""
        record = self._records.get(func)
        if record is None or not record.enabled:
            return None
        hooks = self._jit.compile(record, record.instrs)
        return hooks if hooks else None

    # -- internals -----------------------------------------------------------------------

    def _record(self, func: CudaFunction) -> _FunctionRecord:
        record = self._records.get(func)
        if record is None:
            record = _FunctionRecord(func=func)
            record.instrs = [Instr(record, i) for i in func.kernel.instructions]
            self._records[func] = record
        return record
