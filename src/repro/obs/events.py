"""Trace analysis: pure-dict helpers over recorded span/event streams.

These work on the tracer's wire format only (lists of dicts, or a JSONL
file path) and deliberately import nothing from :mod:`repro.core`, so the
obs layer stays a leaf the rest of the stack can depend on.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.obs.sink import load_jsonl

# The engine's pipeline phases, in execution order.  ("replay" is the
# golden-replay log serialization; absent when fast-forward is off.)
PHASE_SPANS = ("golden", "replay", "profile", "select", "inject")

# The per-injection point event emitted by the engine.
INJECTION_EVENT = "injection"


def load_trace(source) -> list[dict]:
    """Accept a JSONL path or an already-loaded event list."""
    if isinstance(source, (str, Path)):
        return load_jsonl(source)
    return list(source)


def spans(events: Iterable[dict], name: str | None = None) -> list[dict]:
    return [
        e
        for e in load_trace(events)
        if e.get("type") == "span" and (name is None or e.get("name") == name)
    ]


def phase_durations(events) -> dict[str, float]:
    """Total seconds per engine phase, in pipeline order."""
    totals: dict[str, float] = {}
    for event in spans(events):
        if event.get("name") in PHASE_SPANS:
            totals[event["name"]] = (
                totals.get(event["name"], 0.0) + (event.get("duration") or 0.0)
            )
    return {
        name: totals[name] for name in PHASE_SPANS if name in totals
    }


def injection_events(events) -> list[dict]:
    """Per-injection events (one per classified injection, resumed included)."""
    return [
        e
        for e in load_trace(events)
        if e.get("type") == "event" and e.get("name") == INJECTION_EVENT
    ]
