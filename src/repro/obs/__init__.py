"""repro.obs — campaign observability: span tracing + metrics + JSONL events.

A self-contained leaf layer (no :mod:`repro.core` imports) providing:

* :class:`Tracer` / :class:`NullTracer` — nested spans with monotonic
  timestamps, point events, and cross-process event adoption (``ingest``);
* sinks — :class:`JsonlSink` (one JSON object per line), :class:`MemorySink`
  (buffering; the worker transport), :class:`NullSink`;
* :class:`MetricsRegistry` — counters, gauges and fixed-bucket histograms
  with ``snapshot()`` plus text/JSON renderers;
* trace analysis — :func:`load_trace`, :func:`phase_durations`,
  :func:`injection_events`.

The campaign engine, sandbox and GPU simulator are instrumented against
this layer; see ``docs/observability.md`` for the end-to-end picture.
"""

from repro.obs.events import (
    INJECTION_EVENT,
    PHASE_SPANS,
    injection_events,
    load_trace,
    phase_durations,
    spans,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    INSTRUCTION_BUCKETS,
    LAUNCH_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.sink import JsonlSink, MemorySink, NullSink, load_jsonl
from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "JsonlSink",
    "MemorySink",
    "NullSink",
    "load_jsonl",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "INSTRUCTION_BUCKETS",
    "LAUNCH_BUCKETS",
    "load_trace",
    "spans",
    "phase_durations",
    "injection_events",
    "PHASE_SPANS",
    "INJECTION_EVENT",
]
