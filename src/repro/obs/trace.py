"""A lightweight span tracer: nested spans and point events over one clock.

The tracer keeps a stack of open spans, so ``span()`` context managers nest
naturally — a span opened inside another records the outer span as its
parent, and point events attach to whatever span is innermost.  Timestamps
come from a monotonic clock (``time.perf_counter``) rebased to the tracer's
creation, so a trace reads as seconds since campaign start.

Two details matter for campaigns:

* :class:`NullTracer` is the disabled path — ``span()`` hands out a shared
  no-op context manager and ``event()`` returns immediately, so an engine
  built without a tracer pays essentially nothing;
* :meth:`Tracer.ingest` adopts events recorded by *another* tracer (a
  campaign worker in a different process, with its own clock and id space):
  span ids are remapped into the parent's id space, orphan parents are
  re-pointed at the current span, and timestamps are shifted so the batch
  ends at the moment of ingestion — the parent trace stays complete and
  self-consistent even when runs execute elsewhere.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.obs.sink import MemorySink, NullSink


@dataclass
class Span:
    """One named interval; emitted to the sink when it finishes."""

    name: str
    span_id: int
    parent_id: int | None
    start: float
    attrs: dict = field(default_factory=dict)
    end: float | None = None

    @property
    def duration(self) -> float | None:
        return None if self.end is None else self.end - self.start

    def to_event(self) -> dict:
        return {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attrs": self.attrs,
        }


class Tracer:
    """Records nested spans and events into a sink (default: in-memory)."""

    enabled = True

    def __init__(
        self, sink=None, clock: Callable[[], float] = time.perf_counter
    ) -> None:
        self.sink = MemorySink() if sink is None else sink
        self._clock = clock
        self._epoch = clock()
        self._stack: list[Span] = []
        self._next_id = 1

    # -- clock and stack ----------------------------------------------------

    def now(self) -> float:
        """Monotonic seconds since this tracer was created."""
        return self._clock() - self._epoch

    @property
    def current_span(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    @property
    def current_span_id(self) -> int | None:
        span = self.current_span
        return None if span is None else span.span_id

    # -- spans ---------------------------------------------------------------

    def start_span(self, name: str, **attrs) -> Span:
        """Open a span explicitly (prefer the ``span()`` context manager)."""
        span = Span(
            name=name,
            span_id=self._next_id,
            parent_id=self.current_span_id,
            start=self.now(),
            attrs=dict(attrs),
        )
        self._next_id += 1
        self._stack.append(span)
        return span

    def finish_span(self, span: Span) -> None:
        span.end = self.now()
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # out-of-order finish; tolerate it
            self._stack.remove(span)
        self.sink.emit(span.to_event())

    @contextmanager
    def span(self, name: str, **attrs):
        """``with tracer.span("golden", workload=...) as span: ...``

        Attributes added to ``span.attrs`` inside the block are included in
        the emitted event (spans are written when they *finish*).
        """
        span = self.start_span(name, **attrs)
        try:
            yield span
        finally:
            self.finish_span(span)

    # -- point events --------------------------------------------------------

    def event(self, name: str, **attrs) -> dict | None:
        """Emit a point event attached to the innermost open span."""
        event = {
            "type": "event",
            "name": name,
            "ts": self.now(),
            "parent_id": self.current_span_id,
            "attrs": attrs,
        }
        self.sink.emit(event)
        return event

    # -- foreign events (parallel workers) ------------------------------------

    def ingest(self, events: Iterable[dict], parent_id: int | None = None) -> None:
        """Adopt events recorded by a worker-process tracer.

        Worker tracers run on their own clock and id space; this remaps span
        ids into ours, re-parents root-level entries onto ``parent_id``
        (default: the current span), and shifts timestamps so the batch ends
        at our "now" — the earliest faithful placement given that the worker
        clock's offset from ours is unknowable.
        """
        events = [dict(e) for e in events or () if isinstance(e, dict)]
        if not events:
            return
        if parent_id is None:
            parent_id = self.current_span_id
        latest = max(
            (e.get("end") if e.get("end") is not None else e.get("ts", 0.0)) or 0.0
            for e in events
        )
        offset = self.now() - latest
        mapping: dict[int, int] = {}
        for event in events:
            old_id = event.get("span_id")
            if old_id is not None:
                mapping[old_id] = self._next_id
                self._next_id += 1
        for event in events:
            if event.get("span_id") in mapping:
                event["span_id"] = mapping[event["span_id"]]
            event["parent_id"] = mapping.get(event.get("parent_id"), parent_id)
            for key in ("start", "end", "ts"):
                if event.get(key) is not None:
                    event[key] = event[key] + offset
            self.sink.emit(event)

    def close(self) -> None:
        self.sink.close()


_NULL_CONTEXT = nullcontext()


class NullTracer(Tracer):
    """Tracing disabled: every operation is a no-op.

    ``span()`` yields ``None`` (callers that set attributes must guard), and
    a single shared instance — :data:`NULL_TRACER` — serves every untraced
    engine, so disabling tracing costs one attribute check per call site.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(sink=NullSink())

    def span(self, name: str, **attrs):
        return _NULL_CONTEXT

    def start_span(self, name: str, **attrs) -> Span:
        return Span(name=name, span_id=0, parent_id=None, start=0.0)

    def finish_span(self, span: Span) -> None:
        pass

    def event(self, name: str, **attrs) -> None:
        return None

    def ingest(self, events, parent_id=None) -> None:
        return None


NULL_TRACER = NullTracer()
