"""Event sinks: where trace spans and events go, one JSON object per line.

A sink consumes plain dicts (the tracer's wire format) and never interprets
them — :class:`JsonlSink` appends each to a file as one JSON line,
:class:`MemorySink` buffers them (the parallel-worker transport and the
test double), :class:`NullSink` drops them.
"""

from __future__ import annotations

import json
from pathlib import Path


class NullSink:
    """Discards every event (the disabled-tracing sink)."""

    def emit(self, event: dict) -> None:
        pass

    def close(self) -> None:
        pass


class MemorySink:
    """Buffers events in order; workers ship ``.events`` back to the parent."""

    def __init__(self) -> None:
        self.events: list[dict] = []

    def emit(self, event: dict) -> None:
        self.events.append(event)

    def close(self) -> None:
        pass


class JsonlSink:
    """Writes one JSON object per line to ``path`` (created eagerly)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        if self.path.parent != Path():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("w", encoding="utf-8")

    def emit(self, event: dict) -> None:
        # default=str keeps exotic attr values (enums, paths) from killing
        # the whole trace; numbers and strings pass through untouched.
        self._handle.write(json.dumps(event, default=str) + "\n")

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def load_jsonl(path: str | Path) -> list[dict]:
    """Read a JSONL trace file back into a list of event dicts."""
    events = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        if line.strip():
            events.append(json.loads(line))
    return events
