"""A metrics registry: counters, gauges and fixed-bucket histograms.

The registry is the campaign's numeric dashboard — the engine, the sandbox
and the GPU simulator all write into one :class:`MetricsRegistry`, and
``snapshot()`` / ``render_text()`` / ``render_json()`` read it back out.
Histograms use fixed upper-bound buckets with cumulative counts (the
Prometheus convention), so snapshots from different runs are mergeable by
plain addition.
"""

from __future__ import annotations

import json
from bisect import bisect_left

# Default histogram buckets: wall-clock-ish seconds.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

# Decade buckets for dynamic instruction counts per run.
INSTRUCTION_BUCKETS = (
    1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8,
)

# 1-2-5 buckets for launch-sequence indices (e.g. the launch at which a
# tail-fast-forwarded run re-converged with the golden recording).
LAUNCH_BUCKETS = (
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1000,
)


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} can only increase")
        self.value += amount


class Gauge:
    """A point-in-time value; ``set_max`` keeps a high-water mark."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def set_max(self, value: float) -> None:
        if float(value) > self.value:
            self.value = float(value)


class Histogram:
    """Fixed-bucket histogram; buckets are sorted upper bounds plus +Inf."""

    __slots__ = ("name", "buckets", "counts", "count", "sum")

    def __init__(self, name: str, buckets=DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"histogram {name!r} buckets must be sorted, unique upper bounds"
            )
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot is the +Inf bucket
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value

    def snapshot(self) -> dict:
        cumulative = 0
        buckets = {}
        for bound, count in zip(self.buckets + (None,), self.counts):
            cumulative += count
            buckets["+Inf" if bound is None else str(bound)] = cumulative
        return {"count": self.count, "sum": self.sum, "buckets": buckets}


class MetricsRegistry:
    """Creates-or-returns named metrics; one namespace across all kinds."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _check_kind(self, name: str, kind: dict) -> None:
        for registered in (self._counters, self._gauges, self._histograms):
            if registered is not kind and name in registered:
                raise ValueError(
                    f"metric {name!r} already registered as a different kind"
                )

    def counter(self, name: str) -> Counter:
        self._check_kind(name, self._counters)
        return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        self._check_kind(name, self._gauges)
        return self._gauges.setdefault(name, Gauge(name))

    def histogram(self, name: str, buckets=None) -> Histogram:
        self._check_kind(name, self._histograms)
        if name not in self._histograms:
            self._histograms[name] = Histogram(
                name, DEFAULT_BUCKETS if buckets is None else buckets
            )
        return self._histograms[name]

    def counter_values(self, prefix: str = "") -> dict[str, float]:
        """Counter values whose names start with ``prefix`` (prefix stripped)."""
        return {
            name[len(prefix):]: counter.value
            for name, counter in self._counters.items()
            if name.startswith(prefix)
        }

    # -- output -------------------------------------------------------------

    def snapshot(self) -> dict:
        """Everything, as one JSON-serialisable dict (insertion order kept)."""
        return {
            "counters": {n: c.value for n, c in self._counters.items()},
            "gauges": {n: g.value for n, g in self._gauges.items()},
            "histograms": {n: h.snapshot() for n, h in self._histograms.items()},
        }

    def render_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def render_text(self) -> str:
        """Prometheus-exposition-style text, one value per line."""
        lines = []
        for name, counter in self._counters.items():
            lines.append(f"{name} {_fmt(counter.value)}")
        for name, gauge in self._gauges.items():
            lines.append(f"{name} {_fmt(gauge.value)}")
        for name, histogram in self._histograms.items():
            snap = histogram.snapshot()
            for le, count in snap["buckets"].items():
                lines.append(f'{name}_bucket{{le="{le}"}} {count}')
            lines.append(f"{name}_sum {_fmt(snap['sum'])}")
            lines.append(f"{name}_count {snap['count']}")
        return "\n".join(lines) + "\n" if lines else ""


def _fmt(value: float) -> str:
    return str(int(value)) if float(value).is_integer() else f"{value:.6g}"
