"""Exception hierarchy for the repro package.

Two distinct families exist on purpose:

* ``ReproError`` subclasses signal misuse of the library itself (bad
  assembly, invalid parameters, out-of-memory on the simulated device, ...).
  They propagate to the caller like any Python error.
* ``DeviceException`` subclasses model *GPU-side* anomalies (illegal
  address, trap, watchdog timeout).  The CUDA layer converts them into
  sticky CUDA error codes — mirroring real GPUs, where a kernel fault is
  non-fatal to the host process unless the host checks for it.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-usage errors."""


class AssemblyError(ReproError):
    """Malformed SASS assembly text."""

    def __init__(self, message: str, line_no: int | None = None) -> None:
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)
        self.line_no = line_no


class EncodingError(ReproError):
    """Instruction cannot be encoded into, or decoded from, binary form."""


class LaunchError(ReproError):
    """Invalid kernel launch configuration."""


class AllocationError(ReproError):
    """Simulated device memory exhausted or invalid free."""


class ParamError(ReproError):
    """Invalid fault-injection parameters (Tables II/III)."""


class ProfileError(ReproError):
    """Malformed or inconsistent instruction profile."""


class RegisterAllocationError(ReproError):
    """Kernel builder ran out of physical registers."""


class DeviceException(Exception):
    """Base class for GPU-side anomalies raised during kernel execution."""


class MemoryViolation(DeviceException):
    """Out-of-bounds or misaligned access detected by the simulated MMU."""

    def __init__(self, address: int, width: int, space: str, reason: str) -> None:
        super().__init__(
            f"{reason} {space} access of width {width} at 0x{address:x}"
        )
        self.address = address
        self.width = width
        self.space = space
        self.reason = reason


class DeviceTrap(DeviceException):
    """A trap instruction (BPT) or unimplementable opcode was executed."""


class WatchdogTimeout(DeviceException):
    """The device instruction budget was exhausted (hang detection)."""

    def __init__(self, executed: int, budget: int) -> None:
        super().__init__(
            f"watchdog: {executed} warp-instructions executed, budget {budget}"
        )
        self.executed = executed
        self.budget = budget
