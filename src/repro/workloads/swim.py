"""363.swim — weather: shallow-water equations.

Five static kernels (the classic SWIM structure): CALC1 (compute fluxes),
CALC2 (update velocities/height), CALC3/time-smoothing, a periodic
boundary pass, and a diagnostics reduction.
"""

from __future__ import annotations

import numpy as np

from repro.runner.app import AppContext
from repro.workloads import kernels as kf
from repro.workloads.base import WorkloadApp, ceil_div

_WIDTH = 16
_HEIGHT = 16
_CELLS = _WIDTH * _HEIGHT
_STEPS = 18


def _build_module() -> str:
    calc1 = kf.ewise2(
        "swim_calc1",
        lambda kb, u, h: kb.fmul(u, kb.ffma(h, kb.const_f32(0.5), kb.const_f32(1.0))),
    )
    calc2 = kf.ewise3(
        "swim_calc2",
        lambda kb, u, flux, h: kb.ffma(
            kb.fsub(flux, h), kb.const_f32(0.05), u
        ),
    )
    smooth = kf.ewise3(
        "swim_smooth",
        lambda kb, old, cur, new: kb.ffma(
            kb.fadd(old, new), kb.const_f32(0.05),
            kb.fmul(cur, kb.const_f32(0.9)),
        ),
    )
    boundary = kf.stencil5("swim_boundary", center=0.8, neighbour=0.05, width=_WIDTH)
    diag = kf.reduce_sum("swim_diag")
    return "\n".join((calc1, calc2, smooth, boundary, diag))


class Swim(WorkloadApp):
    name = "363.swim"
    description = "Weather (shallow water)"
    paper_static_kernels = 22
    paper_dynamic_kernels = 11999
    check_rtol = 5e-3

    _module_cache: str | None = None

    @classmethod
    def module_text(cls) -> str:
        if cls._module_cache is None:
            cls._module_cache = _build_module()
        return cls._module_cache

    def run(self, ctx: AppContext) -> None:
        rt = ctx.cuda
        module = rt.load_module(self.module_text(), self.name)
        get = lambda name: rt.get_function(module, name)  # noqa: E731

        rng = ctx.rng()
        u = rt.to_device((rng.random(_CELLS) - 0.5).astype(np.float32))
        u_old = rt.to_device(np.zeros(_CELLS, np.float32))
        h = rt.to_device((rng.random(_CELLS) * 0.2 + 1.0).astype(np.float32))
        flux = rt.alloc(_CELLS, np.float32)
        smoothed = rt.alloc(_CELLS, np.float32)
        diag = rt.to_device(np.zeros(_STEPS, np.float32))

        grid = ceil_div(_CELLS, 64)
        for step in range(_STEPS):
            rt.launch(get("swim_calc1"), grid, 64, _CELLS, u, h, flux)
            rt.launch(get("swim_calc2"), grid, 64, _CELLS, u, flux, h, smoothed)
            rt.launch(get("swim_smooth"), grid, 64, _CELLS, u_old, u, smoothed, u_old)
            rt.launch(get("swim_boundary"), grid, 64, _HEIGHT, smoothed, u)
            rt.launch(get("swim_diag"), grid, 64, _CELLS, u, diag.address + 4 * step)

        self.finalize(ctx, np.concatenate([u.to_host(), diag.to_host()]))
