"""Parameterised kernel factories shared by the workload suite.

Each factory returns SASS text built with the
:class:`~repro.kbuild.KernelBuilder`.  Workloads compose these with their
own custom kernels; the lambdas passed to the element-wise factories are
*code generators* (they run at build time and emit instructions), so every
workload still gets its own distinct instruction mix.
"""

from __future__ import annotations

from typing import Callable

from repro.kbuild.builder import KernelBuilder, VReg

BodyFn = Callable[..., VReg]


def ewise1(name: str, body: BodyFn, kind: str = "f32") -> str:
    """``out[i] = body(x[i])`` over ``n`` elements.

    Params: 0=n, 1=x, 2=out.
    """
    kb = KernelBuilder(name, num_params=3)
    i = kb.global_tid_x()
    oob = kb.isetp("GE", i, kb.param(0), unsigned=True)
    kb.exit_if(oob)
    x = kb.ldg(kb.index(kb.param(1), i, _size(kind)), kind=kind)
    result = body(kb, x)
    kb.stg(kb.index(kb.param(2), i, _size(result.kind)), result)
    kb.exit()
    return kb.finish()


def ewise2(name: str, body: BodyFn, kind: str = "f32") -> str:
    """``out[i] = body(x[i], y[i])``.  Params: 0=n, 1=x, 2=y, 3=out."""
    kb = KernelBuilder(name, num_params=4)
    i = kb.global_tid_x()
    oob = kb.isetp("GE", i, kb.param(0), unsigned=True)
    kb.exit_if(oob)
    x = kb.ldg(kb.index(kb.param(1), i, _size(kind)), kind=kind)
    y = kb.ldg(kb.index(kb.param(2), i, _size(kind)), kind=kind)
    result = body(kb, x, y)
    kb.stg(kb.index(kb.param(3), i, _size(result.kind)), result)
    kb.exit()
    return kb.finish()


def ewise3(name: str, body: BodyFn, kind: str = "f32") -> str:
    """``out[i] = body(x[i], y[i], z[i])``.  Params: 0=n, 1..3=x,y,z, 4=out."""
    kb = KernelBuilder(name, num_params=5)
    i = kb.global_tid_x()
    oob = kb.isetp("GE", i, kb.param(0), unsigned=True)
    kb.exit_if(oob)
    x = kb.ldg(kb.index(kb.param(1), i, _size(kind)), kind=kind)
    y = kb.ldg(kb.index(kb.param(2), i, _size(kind)), kind=kind)
    z = kb.ldg(kb.index(kb.param(3), i, _size(kind)), kind=kind)
    result = body(kb, x, y, z)
    kb.stg(kb.index(kb.param(4), i, _size(result.kind)), result)
    kb.exit()
    return kb.finish()


def ewise2_scalar(name: str, body: BodyFn, kind: str = "f32") -> str:
    """``out[i] = body(x[i], y[i], s)`` with FP32 scalar ``s``.

    Params: 0=n, 1=x, 2=y, 3=out, 4=s.
    """
    kb = KernelBuilder(name, num_params=5)
    i = kb.global_tid_x()
    oob = kb.isetp("GE", i, kb.param(0), unsigned=True)
    kb.exit_if(oob)
    x = kb.ldg(kb.index(kb.param(1), i, _size(kind)), kind=kind)
    y = kb.ldg(kb.index(kb.param(2), i, _size(kind)), kind=kind)
    s = kb.param_f32(4)
    result = body(kb, x, y, s)
    kb.stg(kb.index(kb.param(3), i, _size(result.kind)), result)
    kb.exit()
    return kb.finish()


def stencil5(
    name: str,
    center: float,
    neighbour: float,
    width: int,
) -> str:
    """2D 5-point stencil on a ``width``-wide field with fixed boundary.

    ``out[y][x] = center*in[y][x] + neighbour*(N+S+E+W)``; boundary cells are
    copied through.  Params: 0=height, 1=in, 2=out.  Launch with one thread
    per cell (1D, row-major).
    """
    kb = KernelBuilder(name, num_params=3)
    i = kb.global_tid_x()
    height = kb.param(0)
    total = kb.imul(height, kb.const_u32(width))
    oob = kb.isetp("GE", i, total, unsigned=True)
    kb.exit_if(oob)
    x = kb.land(i, width - 1) if _is_pow2(width) else None
    if x is None:
        raise ValueError("stencil width must be a power of two")
    y = kb.shr(i, _log2(width))
    addr_in = kb.index(kb.param(1), i, 4)
    addr_out = kb.index(kb.param(2), i, 4)
    value = kb.ldg_f32(addr_in)
    # Interior predicate: 0 < x < width-1 and 0 < y < height-1.
    height_m1 = kb.iadd(height, -1)
    p_interior = kb.isetp("GT", x, 0)
    p2 = kb.isetp("LT", x, width - 1)
    p3 = kb.isetp("GT", y, 0)
    p4 = kb.isetp("LT", y, height_m1)
    # Combine via PSETP chain.
    pall = kb.psetp_and(kb.psetp_and(p_interior, p2), kb.psetp_and(p3, p4))
    result = kb.mov(value)
    with kb.if_then(pall):
        north = kb.ldg_f32(addr_in, -4 * width)
        south = kb.ldg_f32(addr_in, 4 * width)
        west = kb.ldg_f32(addr_in, -4)
        east = kb.ldg_f32(addr_in, 4)
        ring = kb.fadd(kb.fadd(north, south), kb.fadd(west, east))
        updated = kb.ffma(ring, kb.const_f32(neighbour),
                          kb.fmul(value, kb.const_f32(center)))
        kb.assign(result, updated)
    kb.stg(addr_out, result)
    kb.exit()
    return kb.finish()


def reduce_sum(name: str) -> str:
    """Partial-sum reduction: warp SHFL tree + one RED.ADD per warp.

    Params: 0=n, 1=x, 2=out (single f32 accumulator, pre-zeroed).
    """
    kb = KernelBuilder(name, num_params=3)
    i = kb.global_tid_x()
    n = kb.param(0)
    value = kb.mov(kb.const_f32(0.0))
    inb = kb.isetp("LT", i, n, unsigned=True)
    with kb.if_then(inb):
        kb.assign(value, kb.ldg_f32(kb.index(kb.param(1), i, 4)))
    for delta in (16, 8, 4, 2, 1):
        kb.assign(value, kb.fadd(value, kb.shfl_down(value, delta)))
    lane = kb.lane_id()
    is_lane0 = kb.isetp("EQ", lane, 0)
    with kb.if_then(is_lane0):
        kb.red_add_f32(kb.param(2), value)
    kb.exit()
    return kb.finish()


def dot_product(name: str) -> str:
    """Dot-product partial reduction.  Params: 0=n, 1=x, 2=y, 3=out."""
    kb = KernelBuilder(name, num_params=4)
    i = kb.global_tid_x()
    n = kb.param(0)
    value = kb.mov(kb.const_f32(0.0))
    inb = kb.isetp("LT", i, n, unsigned=True)
    with kb.if_then(inb):
        x = kb.ldg_f32(kb.index(kb.param(1), i, 4))
        y = kb.ldg_f32(kb.index(kb.param(2), i, 4))
        kb.assign(value, kb.fmul(x, y))
    for delta in (16, 8, 4, 2, 1):
        kb.assign(value, kb.fadd(value, kb.shfl_down(value, delta)))
    lane = kb.lane_id()
    is_lane0 = kb.isetp("EQ", lane, 0)
    with kb.if_then(is_lane0):
        kb.red_add_f32(kb.param(3), value)
    kb.exit()
    return kb.finish()


def tridiag_sweep(name: str, forward: bool, width: int, coef: float) -> str:
    """A line-solver sweep: each thread owns one row and scans along it.

    Params: 0=height, 1=field (in-place).  Mimics the per-line recurrences
    of the SP/CSP/BT solvers (sequential loop per thread => long-latency
    dynamic kernels).
    """
    kb = KernelBuilder(name, num_params=2)
    row = kb.global_tid_x()
    height = kb.param(0)
    oob = kb.isetp("GE", row, height, unsigned=True)
    kb.exit_if(oob)
    # base = field + 4 * width * row
    base = kb.iscadd(kb.imul(row, kb.const_u32(width)), kb.param(1), 2)
    carry = kb.mov(kb.const_f32(0.0))
    position = kb.mov(kb.const_u32(1 if forward else width - 2))
    with kb.for_range(width - 2) as _:
        offset = kb.shl(position, 2)
        addr = kb.iadd(base, offset)
        value = kb.ldg_f32(addr)
        updated = kb.ffma(carry, kb.const_f32(coef), value)
        kb.stg(addr, updated)
        kb.assign(carry, updated)
        kb.assign(position, kb.iadd(position, 1 if forward else -1))
    kb.exit()
    return kb.finish()


def _size(kind: str) -> int:
    return 8 if kind == "f64" else 4


def _is_pow2(value: int) -> bool:
    return value > 0 and value & (value - 1) == 0


def _log2(value: int) -> int:
    return value.bit_length() - 1
