"""314.omriq — medicine: MRI Q-matrix computation.

Exactly two static, two dynamic kernels (matching Table IV): computePhiMag
over the K-space samples, then computeQ with a per-voxel inner loop over
all samples doing sin/cos accumulation (MUFU-heavy FP32).
"""

from __future__ import annotations

import numpy as np

from repro.kbuild.builder import KernelBuilder
from repro.runner.app import AppContext
from repro.workloads import kernels as kf
from repro.workloads.base import WorkloadApp, ceil_div

_VOXELS = 192
_SAMPLES = 24


def _compute_q_kernel() -> str:
    """Q[i] = sum_k phiMag[k] * (cos(k*x_i) + sin(k*x_i)).

    Params: 0=numVoxels, 1=numSamples, 2=phiMag, 3=x, 4=Q.
    """
    kb = KernelBuilder("computeQ", num_params=5)
    i = kb.global_tid_x()
    oob = kb.isetp("GE", i, kb.param(0), unsigned=True)
    kb.exit_if(oob)
    x = kb.ldg_f32(kb.index(kb.param(3), i, 4))
    phi_base = kb.param(2)
    accum = kb.mov(kb.const_f32(0.0))
    with kb.for_range(kb.param(1)) as k:
        phi = kb.ldg_f32(kb.index(phi_base, k, 4))
        kf32 = kb.i2f(k, unsigned=True)
        angle = kb.fmul(kf32, x)
        contribution = kb.fadd(kb.mufu("COS", angle), kb.mufu("SIN", angle))
        kb.assign(accum, kb.ffma(phi, contribution, accum))
    kb.stg(kb.index(kb.param(4), i, 4), accum)
    kb.exit()
    return kb.finish()


def _module_text() -> str:
    phi_mag = kf.ewise2(
        "computePhiMag",
        lambda kb, re, im: kb.fadd(kb.fmul(re, re), kb.fmul(im, im)),
    )
    return phi_mag + "\n" + _compute_q_kernel()


class OMriq(WorkloadApp):
    name = "314.omriq"
    description = "Medicine (MRI-Q)"
    paper_static_kernels = 2
    paper_dynamic_kernels = 2

    _module_cache: str | None = None

    @classmethod
    def module_text(cls) -> str:
        if cls._module_cache is None:
            cls._module_cache = _module_text()
        return cls._module_cache

    def run(self, ctx: AppContext) -> None:
        rt = ctx.cuda
        module = rt.load_module(self.module_text(), self.name)
        phi_mag = rt.get_function(module, "computePhiMag")
        compute_q = rt.get_function(module, "computeQ")

        rng = ctx.rng()
        phi_re = rt.to_device((rng.random(_SAMPLES) - 0.5).astype(np.float32))
        phi_im = rt.to_device((rng.random(_SAMPLES) - 0.5).astype(np.float32))
        mag = rt.alloc(_SAMPLES, np.float32)
        x = rt.to_device((rng.random(_VOXELS) * 3.0).astype(np.float32))
        q = rt.alloc(_VOXELS, np.float32)

        rt.launch(phi_mag, ceil_div(_SAMPLES, 32), 32, _SAMPLES, phi_re, phi_im, mag)
        rt.launch(compute_q, ceil_div(_VOXELS, 64), 64, _VOXELS, _SAMPLES, mag, x, q)

        self.finalize(ctx, q.to_host())
