"""The SpecACCEL-style workload suite plus the AV-pipeline case study."""

from repro.workloads.av_pipeline import AvPipeline
from repro.workloads.base import WorkloadApp, ceil_div
from repro.workloads.registry import (
    WORKLOAD_CLASSES,
    WORKLOADS,
    all_workloads,
    get_workload,
)

__all__ = [
    "WorkloadApp",
    "ceil_div",
    "WORKLOADS",
    "WORKLOAD_CLASSES",
    "get_workload",
    "all_workloads",
    "AvPipeline",
]
