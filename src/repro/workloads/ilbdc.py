"""360.ilbdc — fluid mechanics: a single lattice kernel, launched repeatedly.

The only program in Table IV with exactly one static kernel (1 static /
1000 dynamic): one fused collide-and-relax lattice kernel in a long time
loop.  Scaled to 40 dynamic instances.
"""

from __future__ import annotations

import numpy as np

from repro.kbuild.builder import KernelBuilder
from repro.runner.app import AppContext
from repro.workloads.base import WorkloadApp, ceil_div

_CELLS = 256
_STEPS = 40


def _lattice_kernel() -> str:
    """Fused propagate+collide on a 1D ring.  Params: 0=n, 1=src, 2=dst.

    The collision includes a per-cell iterative equilibrium refinement whose
    trip count depends on the local residual.  As the lattice relaxes over
    timesteps, later dynamic instances execute fewer instructions — which is
    exactly the data-dependent behaviour that makes *approximate* profiling
    an approximation (paper §III-A / Figure 2).
    """
    kb = KernelBuilder("ilbdc_lattice", num_params=3)
    i = kb.global_tid_x()
    n = kb.param(0)
    oob = kb.isetp("GE", i, n, unsigned=True)
    kb.exit_if(oob)
    # Pull from the west neighbour (periodic).
    is_zero = kb.isetp("EQ", i, 0)
    west = kb.sel(kb.iadd(n, -1), kb.iadd(i, -1), is_zero)
    pulled = kb.ldg_f32(kb.index(kb.param(1), west, 4))
    own = kb.ldg_f32(kb.index(kb.param(1), i, 4))
    # Iteratively relax toward the neighbour mean until the residual is
    # small (max 6 refinement steps).
    mean = kb.fmul(kb.fadd(own, pulled), kb.const_f32(0.5))
    relaxed = kb.mov(own)
    threshold = kb.const_f32(0.01)
    steps = kb.mov(kb.const_u32(0))
    with kb.loop() as loop:
        residual = kb.fabs(kb.fsub(mean, relaxed))
        converged = kb.fsetp("LT", residual, threshold)
        loop.break_if(converged)
        too_many = kb.isetp("GE", steps, 6)
        loop.break_if(too_many)
        kb.assign(relaxed, kb.ffma(kb.fsub(mean, relaxed), kb.const_f32(0.7), relaxed))
        kb.assign(steps, kb.iadd(steps, 1))
    kb.stg(kb.index(kb.param(2), i, 4), relaxed)
    kb.exit()
    return kb.finish()


class Ilbdc(WorkloadApp):
    name = "360.ilbdc"
    description = "Fluid mechanics"
    paper_static_kernels = 1
    paper_dynamic_kernels = 1000

    _module_cache: str | None = None

    @classmethod
    def module_text(cls) -> str:
        if cls._module_cache is None:
            cls._module_cache = _lattice_kernel()
        return cls._module_cache

    def run(self, ctx: AppContext) -> None:
        rt = ctx.cuda
        module = rt.load_module(self.module_text(), self.name)
        lattice = rt.get_function(module, "ilbdc_lattice")

        rng = ctx.rng()
        src = rt.to_device((rng.random(_CELLS) * 2.0).astype(np.float32))
        dst = rt.alloc(_CELLS, np.float32)

        grid = ceil_div(_CELLS, 64)
        for _ in range(_STEPS):
            rt.launch(lattice, grid, 64, _CELLS, src, dst)
            src, dst = dst, src

        self.finalize(ctx, src.to_host())
