"""352.ep — NAS EP: embarrassingly parallel pseudo-random deviates.

Seven static kernels: LCG seed setup, batch generation, a Box-Muller-like
transform, histogram binning with atomics, per-warp partial maxima, a scale
pass and a finalise pass.  Integer-heavy (LCG) plus atomics — a very
different group mix from the stencil codes.
"""

from __future__ import annotations

import numpy as np

from repro.kbuild.builder import KernelBuilder
from repro.runner.app import AppContext
from repro.workloads import kernels as kf
from repro.workloads.base import WorkloadApp, ceil_div

_STREAMS = 128
_BATCHES = 4
_BINS = 16
_LCG_A = 1664525
_LCG_C = 1013904223


def _seed_kernel() -> str:
    """seeds[i] = base_seed ^ (i * GOLDEN).  Params: 0=n, 1=seeds, 2=base."""
    kb = KernelBuilder("ep_seed", num_params=3)
    i = kb.global_tid_x()
    oob = kb.isetp("GE", i, kb.param(0), unsigned=True)
    kb.exit_if(oob)
    mixed = kb.lxor(kb.imul(i, kb.const_u32(0x9E3779B9)), kb.param(2))
    kb.stg(kb.index(kb.param(1), i, 4), mixed)
    kb.exit()
    return kb.finish()


def _generate_kernel() -> str:
    """Advance each LCG stream 8 steps, store final state and a uniform.

    Params: 0=n, 1=seeds (in/out), 2=uniforms (f32 out).
    """
    kb = KernelBuilder("ep_generate", num_params=3)
    i = kb.global_tid_x()
    oob = kb.isetp("GE", i, kb.param(0), unsigned=True)
    kb.exit_if(oob)
    state_addr = kb.index(kb.param(1), i, 4)
    state = kb.ldg_u32(state_addr)
    with kb.for_range(8) as _:
        kb.assign(state, kb.imad(state, kb.const_u32(_LCG_A), kb.const_u32(_LCG_C)))
    kb.stg(state_addr, state)
    # uniform in [0,1): top 24 bits / 2^24
    top = kb.shr(state, 8)
    uniform = kb.fmul(kb.i2f(top, unsigned=True), kb.const_f32(1.0 / (1 << 24)))
    kb.stg(kb.index(kb.param(2), i, 4), uniform)
    kb.exit()
    return kb.finish()


def _bin_kernel() -> str:
    """Histogram the uniforms with atomic increments.

    Params: 0=n, 1=uniforms, 2=bins (u32 x _BINS).
    """
    kb = KernelBuilder("ep_bin", num_params=3)
    i = kb.global_tid_x()
    oob = kb.isetp("GE", i, kb.param(0), unsigned=True)
    kb.exit_if(oob)
    u = kb.ldg_f32(kb.index(kb.param(1), i, 4))
    bin_f = kb.fmul(u, kb.const_f32(float(_BINS)))
    bin_index = kb.imnmx(kb.f2i(bin_f), kb.const_u32(_BINS - 1))
    one = kb.const_u32(1)
    kb.red_add_u32(kb.index(kb.param(2), bin_index, 4), one)
    kb.exit()
    return kb.finish()


def _partial_max_kernel() -> str:
    """Warp-shuffle maximum of the uniforms.  Params: 0=n, 1=x, 2=out/warp."""
    kb = KernelBuilder("ep_partial_max", num_params=3)
    i = kb.global_tid_x()
    value = kb.mov(kb.const_f32(0.0))
    inb = kb.isetp("LT", i, kb.param(0), unsigned=True)
    with kb.if_then(inb):
        kb.assign(value, kb.ldg_f32(kb.index(kb.param(1), i, 4)))
    for delta in (16, 8, 4, 2, 1):
        kb.assign(value, kb.fmnmx(value, kb.shfl_down(value, delta), maximum=True))
    lane0 = kb.isetp("EQ", kb.lane_id(), 0)
    with kb.if_then(lane0):
        warp = kb.shr(i, 5)
        kb.stg(kb.index(kb.param(2), warp, 4), value)
    kb.exit()
    return kb.finish()


class Ep(WorkloadApp):
    name = "352.ep"
    description = "Embarrassingly parallel"
    paper_static_kernels = 7
    paper_dynamic_kernels = 187
    # Integer LCG + histogram: bit-exact, so the check is exact equality.
    check_rtol = 0.0
    check_atol = 0.0

    _module_cache: str | None = None

    @classmethod
    def module_text(cls) -> str:
        if cls._module_cache is None:
            scale = kf.ewise1(
                "ep_scale", lambda kb, x: kb.fmul(x, kb.const_f32(2.0))
            )
            shift = kf.ewise2(
                "ep_shift", lambda kb, x, y: kb.fadd(x, kb.fmul(y, kb.const_f32(-1.0)))
            )
            finalize = kf.ewise1(
                "ep_finalize",
                lambda kb, x: kb.fmnmx(x, kb.const_f32(0.0), maximum=True),
            )
            cls._module_cache = "\n".join(
                (
                    _seed_kernel(),
                    _generate_kernel(),
                    _bin_kernel(),
                    _partial_max_kernel(),
                    scale,
                    shift,
                    finalize,
                )
            )
        return cls._module_cache

    def run(self, ctx: AppContext) -> None:
        rt = ctx.cuda
        module = rt.load_module(self.module_text(), self.name)
        get = lambda name: rt.get_function(module, name)  # noqa: E731
        seed_k, gen_k, bin_k = get("ep_seed"), get("ep_generate"), get("ep_bin")
        pmax_k, scale_k = get("ep_partial_max"), get("ep_scale")
        shift_k, final_k = get("ep_shift"), get("ep_finalize")

        seeds = rt.alloc(_STREAMS, np.uint32)
        uniforms = rt.alloc(_STREAMS, np.float32)
        bins = rt.to_device(np.zeros(_BINS, np.uint32))
        warp_max = rt.to_device(np.zeros(_STREAMS // 32, np.float32))
        scratch = rt.alloc(_STREAMS, np.float32)

        grid = ceil_div(_STREAMS, 64)
        base_seed = int(ctx.rng().integers(1, 2**31))
        rt.launch(seed_k, grid, 64, _STREAMS, seeds, base_seed)
        for _ in range(_BATCHES):
            rt.launch(gen_k, grid, 64, _STREAMS, seeds, uniforms)
            rt.launch(bin_k, grid, 64, _STREAMS, uniforms, bins)
            rt.launch(pmax_k, grid, 64, _STREAMS, uniforms, warp_max)
            rt.launch(scale_k, grid, 64, _STREAMS, uniforms, scratch)
            rt.launch(shift_k, grid, 64, _STREAMS, scratch, uniforms, scratch)
            rt.launch(final_k, grid, 64, _STREAMS, scratch, scratch)

        histogram = bins.to_host().astype(np.float32)
        ctx.print(f"ep: histogram total {int(histogram.sum())}")
        self.finalize(
            ctx,
            np.concatenate([histogram, warp_max.to_host(), scratch.to_host()]),
        )
