"""303.ostencil — thermodynamics: iterative 2D heat-diffusion stencil.

Two static kernels (stencil step + field copy), launched alternately for a
fixed number of iterations plus one final copy — the structure behind
Table IV's 2 static / 101 dynamic kernels, scaled to 21 dynamic.
"""

from __future__ import annotations

import numpy as np

from repro.runner.app import AppContext
from repro.workloads import kernels as kf
from repro.workloads.base import WorkloadApp, ceil_div

_WIDTH = 32
_HEIGHT = 24
_ITERATIONS = 10


def _module_text() -> str:
    stencil = kf.stencil5("heat_step", center=0.6, neighbour=0.1, width=_WIDTH)
    copy = kf.ewise1("field_copy", lambda kb, x: kb.mov(x))
    return stencil + "\n" + copy


class OStencil(WorkloadApp):
    name = "303.ostencil"
    description = "Thermodynamics"
    paper_static_kernels = 2
    paper_dynamic_kernels = 101

    _module_cache: str | None = None

    @classmethod
    def module_text(cls) -> str:
        if cls._module_cache is None:
            cls._module_cache = _module_text()
        return cls._module_cache

    def run(self, ctx: AppContext) -> None:
        rt = ctx.cuda
        module = rt.load_module(self.module_text(), self.name)
        heat_step = rt.get_function(module, "heat_step")
        field_copy = rt.get_function(module, "field_copy")

        cells = _WIDTH * _HEIGHT
        rng = ctx.rng()
        field = (rng.random((_HEIGHT, _WIDTH)) * 10.0).astype(np.float32)
        field[0, :] = 100.0  # hot boundary
        dev_a = rt.to_device(field)
        dev_b = rt.alloc(cells, np.float32)

        grid = ceil_div(cells, 64)
        for _ in range(_ITERATIONS):
            rt.launch(heat_step, grid, 64, _HEIGHT, dev_a, dev_b)
            rt.launch(field_copy, grid, 64, cells, dev_b, dev_a)
        rt.launch(field_copy, grid, 64, cells, dev_a, dev_b)

        self.finalize(ctx, dev_b.to_host())
