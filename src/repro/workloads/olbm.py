"""304.olbm — computational fluid dynamics, Lattice Boltzmann Method.

A D2Q5-style lattice: three static kernels (collide, stream, boundary)
iterated over timesteps; the paper's 3 static / 900 dynamic kernels scaled
to 46 dynamic.
"""

from __future__ import annotations

import numpy as np

from repro.kbuild.builder import KernelBuilder
from repro.runner.app import AppContext
from repro.workloads import kernels as kf
from repro.workloads.base import WorkloadApp, ceil_div

_WIDTH = 16
_HEIGHT = 16
_CELLS = _WIDTH * _HEIGHT
_ITERATIONS = 15
_OMEGA = 0.8


def _collide_kernel() -> str:
    """BGK collision: relax each population toward the local density mean.

    Params: 0=cells, 1..5 = f0..f4 (in-place).
    """
    kb = KernelBuilder("lbm_collide", num_params=6)
    i = kb.global_tid_x()
    oob = kb.isetp("GE", i, kb.param(0), unsigned=True)
    kb.exit_if(oob)
    addrs = [kb.index(kb.param(1 + q), i, 4) for q in range(5)]
    pops = [kb.ldg_f32(a) for a in addrs]
    rho = kb.fadd(kb.fadd(pops[0], pops[1]), kb.fadd(kb.fadd(pops[2], pops[3]), pops[4]))
    feq = kb.fmul(rho, kb.const_f32(0.2))
    for q in range(5):
        # f_new = f + omega * (feq - f)
        diff = kb.fsub(feq, pops[q])
        kb.stg(addrs[q], kb.ffma(diff, kb.const_f32(_OMEGA), pops[q]))
    kb.exit()
    return kb.finish()


def _stream_kernel() -> str:
    """Streaming along +x with periodic wrap for population f1 -> f1'.

    Params: 0=cells, 1=src, 2=dst, 3=shift (element delta).
    """
    kb = KernelBuilder("lbm_stream", num_params=4)
    i = kb.global_tid_x()
    cells = kb.param(0)
    oob = kb.isetp("GE", i, cells, unsigned=True)
    kb.exit_if(oob)
    shifted = kb.iadd(i, kb.param(3))
    # Wrap: if shifted >= cells subtract cells; if negative add cells.
    over = kb.isetp("GE", shifted, cells, unsigned=True)
    wrapped = kb.isub(shifted, cells)
    target = kb.sel(wrapped, shifted, over)
    value = kb.ldg_f32(kb.index(kb.param(1), i, 4))
    kb.stg(kb.index(kb.param(2), target, 4), value)
    kb.exit()
    return kb.finish()


def _module_text() -> str:
    boundary = kf.ewise1(
        "lbm_boundary",
        lambda kb, x: kb.fmnmx(kb.fmnmx(x, kb.const_f32(0.0), maximum=True),
                               kb.const_f32(10.0)),
    )
    return _collide_kernel() + "\n" + _stream_kernel() + "\n" + boundary


class OLbm(WorkloadApp):
    name = "304.olbm"
    description = "CFD, Lattice Boltzmann Method"
    paper_static_kernels = 3
    paper_dynamic_kernels = 900

    _module_cache: str | None = None

    @classmethod
    def module_text(cls) -> str:
        if cls._module_cache is None:
            cls._module_cache = _module_text()
        return cls._module_cache

    def run(self, ctx: AppContext) -> None:
        rt = ctx.cuda
        module = rt.load_module(self.module_text(), self.name)
        collide = rt.get_function(module, "lbm_collide")
        stream = rt.get_function(module, "lbm_stream")
        boundary = rt.get_function(module, "lbm_boundary")

        rng = ctx.rng()
        pops = [
            rt.to_device((rng.random(_CELLS) * 0.5 + 0.1).astype(np.float32))
            for _ in range(5)
        ]
        scratch = rt.alloc(_CELLS, np.float32)
        grid = ceil_div(_CELLS, 64)

        shifts = [0, 1, _CELLS - 1, _WIDTH, _CELLS - _WIDTH]
        for _ in range(_ITERATIONS):
            rt.launch(collide, grid, 64, _CELLS, *pops)
            # Stream the east-moving population with periodic wrap.
            rt.launch(stream, grid, 64, _CELLS, pops[1], scratch, shifts[1])
            pops[1], scratch = scratch, pops[1]
            rt.launch(boundary, grid, 64, _CELLS, pops[1], pops[1])

        # Output: density field.
        density = sum(p.to_host() for p in pops)
        self.finalize(ctx, density)
