"""350.md — molecular dynamics: 1D Lennard-Jones-style chain.

Three static kernels (forces with an O(n^2) inner loop, Verlet integration,
kinetic-energy reduction).  The host checks the CUDA error state after the
time loop and aborts on failure — one of the workloads exercising Table V's
"Application detection" DUE path.
"""

from __future__ import annotations

import numpy as np

from repro.cuda.errorcodes import CudaError
from repro.kbuild.builder import KernelBuilder
from repro.runner.app import AppContext
from repro.workloads.base import WorkloadApp, ceil_div

_PARTICLES = 96
_STEPS = 6
_DT = 1e-3
_SOFTENING = 0.5


def _forces_kernel() -> str:
    """Pairwise softened inverse-square force along a line.

    Params: 0=n, 1=pos, 2=force.
    """
    kb = KernelBuilder("md_forces", num_params=3)
    i = kb.global_tid_x()
    n = kb.param(0)
    oob = kb.isetp("GE", i, n, unsigned=True)
    kb.exit_if(oob)
    xi = kb.ldg_f32(kb.index(kb.param(1), i, 4))
    total = kb.mov(kb.const_f32(0.0))
    with kb.for_range(n) as j:
        xj = kb.ldg_f32(kb.index(kb.param(1), j, 4))
        dx = kb.fsub(xj, xi)
        dist2 = kb.ffma(dx, dx, kb.const_f32(_SOFTENING))
        inv = kb.mufu("RCP", dist2)
        kb.assign(total, kb.ffma(dx, inv, total))
    kb.stg(kb.index(kb.param(2), i, 4), total)
    kb.exit()
    return kb.finish()


def _integrate_kernel() -> str:
    """Velocity Verlet step.  Params: 0=n, 1=pos, 2=vel, 3=force."""
    kb = KernelBuilder("md_integrate", num_params=4)
    i = kb.global_tid_x()
    oob = kb.isetp("GE", i, kb.param(0), unsigned=True)
    kb.exit_if(oob)
    pos_addr = kb.index(kb.param(1), i, 4)
    vel_addr = kb.index(kb.param(2), i, 4)
    force = kb.ldg_f32(kb.index(kb.param(3), i, 4))
    vel = kb.ldg_f32(vel_addr)
    new_vel = kb.ffma(force, kb.const_f32(_DT), vel)
    pos = kb.ldg_f32(pos_addr)
    new_pos = kb.ffma(new_vel, kb.const_f32(_DT), pos)
    kb.stg(vel_addr, new_vel)
    kb.stg(pos_addr, new_pos)
    kb.exit()
    return kb.finish()


def _energy_kernel() -> str:
    """Kinetic energy partial reduction.  Params: 0=n, 1=vel, 2=accumulator."""
    kb = KernelBuilder("md_energy", num_params=3)
    i = kb.global_tid_x()
    value = kb.mov(kb.const_f32(0.0))
    inb = kb.isetp("LT", i, kb.param(0), unsigned=True)
    with kb.if_then(inb):
        v = kb.ldg_f32(kb.index(kb.param(1), i, 4))
        kb.assign(value, kb.fmul(kb.fmul(v, v), kb.const_f32(0.5)))
    for delta in (16, 8, 4, 2, 1):
        kb.assign(value, kb.fadd(value, kb.shfl_down(value, delta)))
    lane0 = kb.isetp("EQ", kb.lane_id(), 0)
    with kb.if_then(lane0):
        kb.red_add_f32(kb.param(2), value)
    kb.exit()
    return kb.finish()


class Md(WorkloadApp):
    name = "350.md"
    description = "Molecular dynamics"
    paper_static_kernels = 3
    paper_dynamic_kernels = 53
    check_rtol = 5e-3

    _module_cache: str | None = None

    @classmethod
    def module_text(cls) -> str:
        if cls._module_cache is None:
            cls._module_cache = "\n".join(
                (_forces_kernel(), _integrate_kernel(), _energy_kernel())
            )
        return cls._module_cache

    def run(self, ctx: AppContext) -> None:
        rt = ctx.cuda
        module = rt.load_module(self.module_text(), self.name)
        forces = rt.get_function(module, "md_forces")
        integrate = rt.get_function(module, "md_integrate")
        energy = rt.get_function(module, "md_energy")

        rng = ctx.rng()
        pos = rt.to_device((rng.random(_PARTICLES) * 8.0).astype(np.float32))
        vel = rt.to_device(np.zeros(_PARTICLES, np.float32))
        force = rt.alloc(_PARTICLES, np.float32)
        energy_acc = rt.to_device(np.zeros(_STEPS, np.float32))

        grid = ceil_div(_PARTICLES, 32)
        for step in range(_STEPS):
            rt.launch(forces, grid, 32, _PARTICLES, pos, force)
            rt.launch(integrate, grid, 32, _PARTICLES, pos, vel, force)
            rt.launch(
                energy, grid, 32, _PARTICLES, vel,
                # accumulator slot for this step
                _offset(energy_acc, step),
            )

        if rt.synchronize() is not CudaError.SUCCESS:
            ctx.print("md: CUDA failure detected")
            ctx.exit(1)

        energies = energy_acc.to_host()
        ctx.print(f"md: final kinetic energy {energies[-1]:.3e}")
        self.finalize(ctx, np.concatenate([pos.to_host(), energies]))


def _offset(array, elements: int) -> int:
    """Raw device address of ``array[elements]`` (pointer arithmetic)."""
    return array.address + 4 * elements
