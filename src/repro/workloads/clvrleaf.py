"""353.clvrleaf — weather / hydrodynamics (CloverLeaf-style).

CloverLeaf is a structured Eulerian hydro code with many small field
kernels; Table IV shows 116 static / 12,528 dynamic.  Scaled: 12 static
kernels (EOS, viscosity, PdV, fluxes, advection, acceleration, halo,
summary) over 10 timesteps — 120 dynamic.
"""

from __future__ import annotations

import numpy as np

from repro.runner.app import AppContext
from repro.workloads import kernels as kf
from repro.workloads.base import WorkloadApp, ceil_div

_WIDTH = 16
_HEIGHT = 16
_CELLS = _WIDTH * _HEIGHT
_TIMESTEPS = 10
_GAMMA = 1.4


def _build_module() -> str:
    parts = [
        # Equation of state: p = (gamma-1) * density * energy
        kf.ewise2(
            "ideal_gas",
            lambda kb, d, e: kb.fmul(kb.fmul(d, e), kb.const_f32(_GAMMA - 1.0)),
        ),
        # Artificial viscosity: q = c * |dv| * dv
        kf.ewise2(
            "viscosity",
            lambda kb, dv, d: kb.fmul(kb.fmul(kb.fabs(dv), dv),
                                      kb.fmul(d, kb.const_f32(0.25))),
        ),
        # PdV work: e' = e - p * dvol
        kf.ewise3(
            "pdv",
            lambda kb, e, p, dvol: kb.ffma(p, kb.fmul(dvol, kb.const_f32(-1.0)), e),
        ),
        kf.stencil5("flux_calc_x", center=0.0, neighbour=0.25, width=_WIDTH),
        kf.stencil5("flux_calc_y", center=0.5, neighbour=0.125, width=_WIDTH),
        # Cell advection: field += c * flux
        kf.ewise2_scalar(
            "advec_cell_x",
            lambda kb, f, flux, c: kb.ffma(flux, c, f),
        ),
        kf.ewise2_scalar(
            "advec_cell_y",
            lambda kb, f, flux, c: kb.ffma(flux, kb.fmul(c, kb.const_f32(0.5)), f),
        ),
        # Momentum advection (fused multiply chains).
        kf.ewise3(
            "advec_mom",
            lambda kb, m, f, d: kb.ffma(f, d, kb.fmul(m, kb.const_f32(0.98))),
        ),
        # Acceleration: v' = v + dt * p_gradient
        kf.ewise2_scalar(
            "acceleration",
            lambda kb, v, grad, dt: kb.ffma(grad, dt, v),
        ),
        # Halo update: clamp boundary ring (element-wise stand-in).
        kf.ewise1(
            "update_halo",
            lambda kb, x: kb.fmnmx(
                kb.fmnmx(x, kb.const_f32(-1e6), maximum=True), kb.const_f32(1e6)
            ),
        ),
        kf.reduce_sum("field_summary"),
        kf.ewise1("reset_field", lambda kb, x: kb.mov(x)),
    ]
    return "\n".join(parts)


class Clvrleaf(WorkloadApp):
    name = "353.clvrleaf"
    description = "Weather (hydrodynamics)"
    paper_static_kernels = 116
    paper_dynamic_kernels = 12528
    check_rtol = 5e-3

    _module_cache: str | None = None

    @classmethod
    def module_text(cls) -> str:
        if cls._module_cache is None:
            cls._module_cache = _build_module()
        return cls._module_cache

    def run(self, ctx: AppContext) -> None:
        rt = ctx.cuda
        module = rt.load_module(self.module_text(), self.name)
        get = lambda name: rt.get_function(module, name)  # noqa: E731

        rng = ctx.rng()
        density = rt.to_device((rng.random(_CELLS) * 0.5 + 1.0).astype(np.float32))
        energy = rt.to_device((rng.random(_CELLS) * 0.5 + 1.0).astype(np.float32))
        pressure = rt.alloc(_CELLS, np.float32)
        velocity = rt.to_device(np.zeros(_CELLS, np.float32))
        q = rt.alloc(_CELLS, np.float32)
        flux = rt.alloc(_CELLS, np.float32)
        summary = rt.to_device(np.zeros(_TIMESTEPS, np.float32))

        grid = ceil_div(_CELLS, 64)
        dt = 0.01
        for step in range(_TIMESTEPS):
            rt.launch(get("ideal_gas"), grid, 64, _CELLS, density, energy, pressure)
            rt.launch(get("viscosity"), grid, 64, _CELLS, velocity, density, q)
            rt.launch(get("pdv"), grid, 64, _CELLS, energy, pressure, q, energy)
            rt.launch(get("flux_calc_x"), grid, 64, _HEIGHT, pressure, flux)
            rt.launch(get("advec_cell_x"), grid, 64, _CELLS, density, flux, density, dt)
            rt.launch(get("flux_calc_y"), grid, 64, _HEIGHT, energy, flux)
            rt.launch(get("advec_cell_y"), grid, 64, _CELLS, energy, flux, energy, dt)
            rt.launch(get("advec_mom"), grid, 64, _CELLS, velocity, flux, density, velocity)
            rt.launch(get("acceleration"), grid, 64, _CELLS, velocity, pressure, velocity, dt)
            rt.launch(get("update_halo"), grid, 64, _CELLS, velocity, velocity)
            rt.launch(
                get("field_summary"), grid, 64, _CELLS, energy,
                summary.address + 4 * step,
            )
            rt.launch(get("reset_field"), grid, 64, _CELLS, q, flux)

        self.finalize(
            ctx, np.concatenate([energy.to_host(), summary.to_host()])
        )
