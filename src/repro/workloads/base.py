"""Shared infrastructure for the SpecACCEL-style workload suite.

Every workload is an :class:`~repro.runner.app.Application` whose ``run``
drives GPU kernels through the CUDA runtime and whose ``check`` is the
SpecACCEL-style tolerance comparison of the output file (paper §IV-A: the
suite "conveniently includes a program-specific checking script with each
program").
"""

from __future__ import annotations

import numpy as np

from repro.runner.app import AppContext, Application
from repro.runner.artifacts import CheckResult, RunArtifacts


def ceil_div(a: int, b: int) -> int:
    return -(-a // b)


class WorkloadApp(Application):
    """Base class for the 15 SpecACCEL-style programs."""

    # Table IV reference values (the paper's counts).
    paper_static_kernels: int = 0
    paper_dynamic_kernels: int = 0
    # Our scaled targets (documented in DESIGN.md / EXPERIMENTS.md).
    description = ""

    # SpecACCEL-style tolerances for the output comparison.
    check_rtol: float = 1e-3
    check_atol: float = 1e-5

    @property
    def output_file(self) -> str:
        return f"{self.name}.out"

    # -- host-program helpers --------------------------------------------------

    def finalize(self, ctx: AppContext, result: np.ndarray) -> None:
        """Standard epilogue: write the raw output file + a rounded summary."""
        result = np.ascontiguousarray(result, dtype=np.float32)
        ctx.write_file(self.output_file, result.tobytes())
        finite = result[np.isfinite(result)]
        checksum = float(finite.sum()) if finite.size else float("nan")
        ctx.print(f"{self.name}: n={result.size} checksum={checksum:.3e}")

    # -- the SDC-check script -----------------------------------------------------

    def check(self, golden: RunArtifacts, observed: RunArtifacts) -> CheckResult:
        if observed.stdout != golden.stdout:
            return CheckResult.fail("Standard output is different")
        if self.output_file not in observed.files:
            return CheckResult.fail(f"Output file missing: {self.output_file}")
        expected = np.frombuffer(golden.files[self.output_file], dtype=np.float32)
        actual = np.frombuffer(observed.files[self.output_file], dtype=np.float32)
        if expected.size != actual.size:
            return CheckResult.fail("Output file is different: size mismatch")
        if not np.allclose(
            actual, expected, rtol=self.check_rtol, atol=self.check_atol, equal_nan=True
        ):
            worst = float(np.nanmax(np.abs(actual.astype(np.float64) - expected)))
            return CheckResult.fail(
                f"Output file is different: max abs error {worst:.3e}"
            )
        return CheckResult.ok()
