"""356.sp — NAS SP: scalar penta-diagonal solver.

Nine static kernels: RHS computation, forward/backward line sweeps in x and
y (per-thread sequential recurrences, like the real ADI solver), the
inverse-transform, halo clamp and a solution-add pass, iterated over
timesteps.
"""

from __future__ import annotations

import numpy as np

from repro.runner.app import AppContext
from repro.workloads import kernels as kf
from repro.workloads.base import WorkloadApp, ceil_div

_WIDTH = 16
_HEIGHT = 16
_CELLS = _WIDTH * _HEIGHT
_TIMESTEPS = 14


def _build_module() -> str:
    parts = [
        # compute_rhs: rhs = forcing - 0.2 * u
        kf.ewise2(
            "sp_compute_rhs",
            lambda kb, f, u: kb.ffma(u, kb.const_f32(-0.2), f),
        ),
        kf.tridiag_sweep("sp_x_forward", forward=True, width=_WIDTH, coef=0.4),
        kf.tridiag_sweep("sp_x_backward", forward=False, width=_WIDTH, coef=0.4),
        kf.tridiag_sweep("sp_y_forward", forward=True, width=_WIDTH, coef=0.3),
        kf.tridiag_sweep("sp_y_backward", forward=False, width=_WIDTH, coef=0.3),
        # txinvr: block-diagonal inverse approximation
        kf.ewise2(
            "sp_txinvr",
            lambda kb, r, u: kb.fmul(r, kb.mufu("RCP", kb.ffma(u, u, kb.const_f32(1.0)))),
        ),
        # add: u += rhs
        kf.ewise2("sp_add", lambda kb, u, r: kb.fadd(u, r)),
        kf.ewise1(
            "sp_halo",
            lambda kb, x: kb.fmnmx(
                kb.fmnmx(x, kb.const_f32(-1e5), maximum=True), kb.const_f32(1e5)
            ),
        ),
        kf.reduce_sum("sp_rhs_norm"),
    ]
    return "\n".join(parts)


class Sp(WorkloadApp):
    name = "356.sp"
    description = "Scalar penta-diagonal solver"
    paper_static_kernels = 71
    paper_dynamic_kernels = 27692
    check_rtol = 5e-3

    _module_cache: str | None = None
    _kernel_prefix = "sp"
    _timesteps = _TIMESTEPS

    @classmethod
    def module_text(cls) -> str:
        if cls._module_cache is None:
            cls._module_cache = _build_module()
        return cls._module_cache

    def run(self, ctx: AppContext) -> None:
        rt = ctx.cuda
        module = rt.load_module(self.module_text(), self.name)
        prefix = self._kernel_prefix
        get = lambda name: rt.get_function(module, f"{prefix}_{name}")  # noqa: E731

        rng = ctx.rng()
        u = rt.to_device((rng.random(_CELLS) * 0.2 + 1.0).astype(np.float32))
        forcing = rt.to_device((rng.random(_CELLS) * 0.1).astype(np.float32))
        rhs = rt.alloc(_CELLS, np.float32)
        norms = rt.to_device(np.zeros(self._timesteps, np.float32))

        grid = ceil_div(_CELLS, 64)
        line_grid = ceil_div(_HEIGHT, 32)
        for step in range(self._timesteps):
            rt.launch(get("compute_rhs"), grid, 64, _CELLS, forcing, u, rhs)
            rt.launch(get("txinvr"), grid, 64, _CELLS, rhs, u, rhs)
            rt.launch(get("x_forward"), line_grid, 32, _HEIGHT, rhs)
            rt.launch(get("x_backward"), line_grid, 32, _HEIGHT, rhs)
            rt.launch(get("y_forward"), line_grid, 32, _HEIGHT, rhs)
            rt.launch(get("y_backward"), line_grid, 32, _HEIGHT, rhs)
            rt.launch(get("add"), grid, 64, _CELLS, u, rhs, u)
            rt.launch(get("halo"), grid, 64, _CELLS, u, u)
            rt.launch(get("rhs_norm"), grid, 64, _CELLS, rhs, norms.address + 4 * step)

        self.finalize(ctx, np.concatenate([u.to_host(), norms.to_host()]))
