"""Registry of the 15 SpecACCEL-style workloads (Table IV)."""

from __future__ import annotations

from repro.workloads.base import WorkloadApp
from repro.workloads.bt import Bt
from repro.workloads.cg import Cg
from repro.workloads.clvrleaf import Clvrleaf
from repro.workloads.csp import Csp
from repro.workloads.ep import Ep
from repro.workloads.ilbdc import Ilbdc
from repro.workloads.md import Md
from repro.workloads.minighost import MiniGhost
from repro.workloads.olbm import OLbm
from repro.workloads.omriq import OMriq
from repro.workloads.ostencil import OStencil
from repro.workloads.palm import Palm
from repro.workloads.seismic import Seismic
from repro.workloads.sp import Sp
from repro.workloads.swim import Swim

WORKLOAD_CLASSES: tuple[type[WorkloadApp], ...] = (
    OStencil,
    OLbm,
    OMriq,
    Md,
    Palm,
    Ep,
    Clvrleaf,
    Cg,
    Seismic,
    Sp,
    Csp,
    MiniGhost,
    Ilbdc,
    Swim,
    Bt,
)

WORKLOADS: dict[str, type[WorkloadApp]] = {
    cls.name: cls for cls in WORKLOAD_CLASSES
}


def get_workload(name: str) -> WorkloadApp:
    """Instantiate a workload by its SpecACCEL name (e.g. ``"303.ostencil"``)."""
    try:
        return WORKLOADS[name]()
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(WORKLOADS)}"
        ) from None


def all_workloads() -> list[WorkloadApp]:
    """Fresh instances of all 15 programs, in Table IV order."""
    return [cls() for cls in WORKLOAD_CLASSES]
