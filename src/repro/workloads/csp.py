"""357.csp — NAS SP, C variant: the same solver family, different kernels.

Like the real suite (356.sp is the Fortran code, 357.csp the C port), CSP
shares SP's structure but has its own kernel set with different
coefficients, an extra diffusion term and one fewer timestep.
"""

from __future__ import annotations

from repro.workloads import kernels as kf
from repro.workloads.sp import Sp

_TIMESTEPS = 13
_WIDTH = 16


def _build_module() -> str:
    parts = [
        kf.ewise2(
            "csp_compute_rhs",
            lambda kb, f, u: kb.ffma(u, kb.const_f32(-0.25),
                                     kb.fmul(f, kb.const_f32(1.05))),
        ),
        kf.tridiag_sweep("csp_x_forward", forward=True, width=_WIDTH, coef=0.35),
        kf.tridiag_sweep("csp_x_backward", forward=False, width=_WIDTH, coef=0.35),
        kf.tridiag_sweep("csp_y_forward", forward=True, width=_WIDTH, coef=0.45),
        kf.tridiag_sweep("csp_y_backward", forward=False, width=_WIDTH, coef=0.45),
        kf.ewise2(
            "csp_txinvr",
            lambda kb, r, u: kb.fmul(
                r, kb.mufu("RCP", kb.ffma(u, kb.const_f32(0.5), kb.const_f32(1.5)))
            ),
        ),
        kf.ewise2("csp_add", lambda kb, u, r: kb.ffma(r, kb.const_f32(0.9), u)),
        kf.ewise1(
            "csp_halo",
            lambda kb, x: kb.fmnmx(
                kb.fmnmx(x, kb.const_f32(-2e5), maximum=True), kb.const_f32(2e5)
            ),
        ),
        kf.reduce_sum("csp_rhs_norm"),
    ]
    return "\n".join(parts)


class Csp(Sp):
    name = "357.csp"
    description = "Scalar penta-diagonal solver (C variant)"
    paper_static_kernels = 69
    paper_dynamic_kernels = 26890

    _module_cache: str | None = None
    _kernel_prefix = "csp"
    _timesteps = _TIMESTEPS

    @classmethod
    def module_text(cls) -> str:
        if cls._module_cache is None:
            cls._module_cache = _build_module()
        return cls._module_cache
