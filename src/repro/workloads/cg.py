"""354.cg — conjugate gradient on a banded SPD matrix.

Six static kernels (banded SpMV, dot-product reduction, two AXPY variants,
copy, residual norm).  The host reads the scalar reduction results back
each iteration — faithful to real CG — and checks for CUDA errors at the
end (Application-detection DUE path).
"""

from __future__ import annotations

import numpy as np

from repro.cuda.errorcodes import CudaError
from repro.kbuild.builder import KernelBuilder
from repro.runner.app import AppContext
from repro.workloads import kernels as kf
from repro.workloads.base import WorkloadApp, ceil_div

_N = 192
_ITERATIONS = 9


def _spmv_kernel() -> str:
    """y = A x with A = tridiag(-1, 4, -1) (SPD).  Params: 0=n, 1=x, 2=y."""
    kb = KernelBuilder("cg_spmv", num_params=3)
    i = kb.global_tid_x()
    n = kb.param(0)
    oob = kb.isetp("GE", i, n, unsigned=True)
    kb.exit_if(oob)
    xc = kb.ldg_f32(kb.index(kb.param(1), i, 4))
    accum = kb.fmul(xc, kb.const_f32(4.0))
    has_left = kb.isetp("GT", i, 0)
    with kb.if_then(has_left):
        left = kb.ldg_f32(kb.index(kb.param(1), i, 4), offset=-4)
        kb.assign(accum, kb.ffma(left, kb.const_f32(-1.0), accum))
    last = kb.iadd(n, -1)
    has_right = kb.isetp("LT", i, last)
    with kb.if_then(has_right):
        right = kb.ldg_f32(kb.index(kb.param(1), i, 4), offset=4)
        kb.assign(accum, kb.ffma(right, kb.const_f32(-1.0), accum))
    kb.stg(kb.index(kb.param(2), i, 4), accum)
    kb.exit()
    return kb.finish()


def _build_module() -> str:
    axpy = kf.ewise2_scalar(
        "cg_axpy", lambda kb, y, x, a: kb.ffma(x, a, y)
    )
    aypx = kf.ewise2_scalar(
        "cg_aypx", lambda kb, y, x, a: kb.ffma(y, a, x)
    )
    copy = kf.ewise1("cg_copy", lambda kb, x: kb.mov(x))
    norm = kf.dot_product("cg_dot")
    sq_norm = kf.reduce_sum("cg_norm_partial")
    return "\n".join((_spmv_kernel(), norm, axpy, aypx, copy, sq_norm))


class Cg(WorkloadApp):
    name = "354.cg"
    description = "Conjugate gradient"
    paper_static_kernels = 22
    paper_dynamic_kernels = 2027
    check_rtol = 5e-3

    _module_cache: str | None = None

    @classmethod
    def module_text(cls) -> str:
        if cls._module_cache is None:
            cls._module_cache = _build_module()
        return cls._module_cache

    def run(self, ctx: AppContext) -> None:
        rt = ctx.cuda
        module = rt.load_module(self.module_text(), self.name)
        get = lambda name: rt.get_function(module, name)  # noqa: E731
        spmv, dot, axpy = get("cg_spmv"), get("cg_dot"), get("cg_axpy")
        aypx, copy, norm = get("cg_aypx"), get("cg_copy"), get("cg_norm_partial")

        rng = ctx.rng()
        b = (rng.random(_N).astype(np.float32) - 0.5)
        x = rt.to_device(np.zeros(_N, np.float32))
        r = rt.to_device(b)  # r = b - A*0 = b
        p = rt.to_device(b)
        ap = rt.alloc(_N, np.float32)
        scalar = rt.alloc(2, np.float32)

        grid = ceil_div(_N, 64)

        def device_dot(u, v) -> float:
            scalar.from_host(np.zeros(2, np.float32))
            rt.launch(dot, grid, 64, _N, u, v, scalar)
            return float(scalar.to_host()[0])

        rs_old = device_dot(r, r)
        for _ in range(_ITERATIONS):
            rt.launch(spmv, grid, 64, _N, p, ap)
            p_ap = device_dot(p, ap)
            if p_ap == 0.0 or not np.isfinite(p_ap):
                break
            alpha = rs_old / p_ap
            rt.launch(axpy, grid, 64, _N, x, p, x, float(alpha))
            rt.launch(axpy, grid, 64, _N, r, ap, r, float(-alpha))
            rs_new = device_dot(r, r)
            if rs_new == 0.0 or not np.isfinite(rs_new):
                break
            rt.launch(aypx, grid, 64, _N, p, r, p, float(rs_new / rs_old))
            rs_old = rs_new
        rt.launch(copy, grid, 64, _N, x, ap)
        scalar.from_host(np.zeros(2, np.float32))
        rt.launch(norm, grid, 64, _N, ap, scalar)

        if rt.synchronize() is not CudaError.SUCCESS:
            ctx.print("cg: CUDA failure detected")
            ctx.exit(1)
        ctx.print(f"cg: final residual {rs_old:.3e}")
        self.finalize(ctx, ap.to_host())
