"""355.seismic — seismic wave modeling (staggered-grid wave equation).

Six static kernels: velocity updates (x/z), stress update, source
injection, absorbing boundary and a snapshot copy, iterated over
timesteps.  The host checks CUDA errors each quarter of the run.
"""

from __future__ import annotations

import numpy as np

from repro.cuda.errorcodes import CudaError
from repro.kbuild.builder import KernelBuilder
from repro.runner.app import AppContext
from repro.workloads import kernels as kf
from repro.workloads.base import WorkloadApp, ceil_div

_WIDTH = 16
_HEIGHT = 16
_CELLS = _WIDTH * _HEIGHT
_STEPS = 8


def _source_kernel() -> str:
    """Inject a Ricker-style pulse at one cell.  Params: 0=field, 1=cell, 2=amp."""
    kb = KernelBuilder("seismic_source", num_params=3)
    i = kb.global_tid_x()
    target = kb.param(1)
    is_target = kb.isetp("EQ", i, target)
    with kb.if_then(is_target):
        addr = kb.index(kb.param(0), i, 4)
        value = kb.ldg_f32(addr)
        kb.stg(addr, kb.fadd(value, kb.param_f32(2)))
    kb.exit()
    return kb.finish()


def _build_module() -> str:
    update_vx = kf.stencil5("seismic_update_vx", center=1.0, neighbour=0.05, width=_WIDTH)
    update_vz = kf.stencil5("seismic_update_vz", center=1.0, neighbour=-0.05, width=_WIDTH)
    update_stress = kf.ewise3(
        "seismic_update_stress",
        lambda kb, s, vx, vz: kb.ffma(
            kb.fadd(vx, vz), kb.const_f32(0.1), kb.fmul(s, kb.const_f32(0.995))
        ),
    )
    absorb = kf.ewise1(
        "seismic_absorb",
        lambda kb, x: kb.fmul(x, kb.const_f32(0.99)),
    )
    snapshot = kf.ewise1("seismic_snapshot", lambda kb, x: kb.mov(x))
    return "\n".join(
        (update_vx, update_vz, update_stress, _source_kernel(), absorb, snapshot)
    )


class Seismic(WorkloadApp):
    name = "355.seismic"
    description = "Seismic wave modeling"
    paper_static_kernels = 16
    paper_dynamic_kernels = 3502
    check_rtol = 5e-3

    _module_cache: str | None = None

    @classmethod
    def module_text(cls) -> str:
        if cls._module_cache is None:
            cls._module_cache = _build_module()
        return cls._module_cache

    def run(self, ctx: AppContext) -> None:
        rt = ctx.cuda
        module = rt.load_module(self.module_text(), self.name)
        get = lambda name: rt.get_function(module, name)  # noqa: E731

        vx = rt.to_device(np.zeros(_CELLS, np.float32))
        vz = rt.to_device(np.zeros(_CELLS, np.float32))
        stress = rt.to_device(np.zeros(_CELLS, np.float32))
        scratch = rt.alloc(_CELLS, np.float32)
        snap = rt.alloc(_CELLS, np.float32)

        source_cell = (_HEIGHT // 2) * _WIDTH + _WIDTH // 2
        grid = ceil_div(_CELLS, 64)
        for step in range(_STEPS):
            amplitude = float(np.float32(np.exp(-0.5 * (step - 3.0) ** 2)))
            rt.launch(get("seismic_source"), grid, 64, stress, source_cell, amplitude)
            rt.launch(get("seismic_update_vx"), grid, 64, _HEIGHT, stress, scratch)
            rt.launch(get("seismic_update_vz"), grid, 64, _HEIGHT, scratch, vz)
            rt.launch(
                get("seismic_update_stress"), grid, 64,
                _CELLS, stress, scratch, vz, stress,
            )
            rt.launch(get("seismic_absorb"), grid, 64, _CELLS, stress, stress)
            if step % 2 == 1:
                rt.launch(get("seismic_snapshot"), grid, 64, _CELLS, stress, snap)
            if step == _STEPS // 2 and rt.synchronize() is not CudaError.SUCCESS:
                ctx.print("seismic: CUDA failure detected mid-run")
                ctx.exit(2)

        self.finalize(ctx, np.concatenate([stress.to_host(), snap.to_host()]))
