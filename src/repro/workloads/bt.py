"""370.bt — NAS BT: block tri-diagonal solver for a 3D PDE.

Eight static kernels: RHS computation (FP64 mixed), x/y forward and
backward block sweeps, a small dense mat-vec per cell, the solution-add
pass and a residual-norm reduction.  The host validates the residual and
aborts on non-finite values (Application-detection DUE path).
"""

from __future__ import annotations

import numpy as np

from repro.cuda.errorcodes import CudaError
from repro.kbuild.builder import KernelBuilder
from repro.runner.app import AppContext
from repro.workloads import kernels as kf
from repro.workloads.base import WorkloadApp, ceil_div

_WIDTH = 16
_HEIGHT = 16
_CELLS = _WIDTH * _HEIGHT
_STEPS = 12


def _rhs_kernel() -> str:
    """FP64-accumulated RHS: rhs = (double)(f - 0.15*u*u).  Params: 0=n,1=f,2=u,3=rhs."""
    kb = KernelBuilder("bt_compute_rhs", num_params=4)
    i = kb.global_tid_x()
    oob = kb.isetp("GE", i, kb.param(0), unsigned=True)
    kb.exit_if(oob)
    f = kb.ldg_f32(kb.index(kb.param(1), i, 4))
    u = kb.ldg_f32(kb.index(kb.param(2), i, 4))
    fd = kb.f2d(f)
    ud = kb.f2d(u)
    u2 = kb.dmul(ud, ud)
    coef = kb.f2d(kb.const_f32(-0.15))
    rhs = kb.dfma(u2, coef, fd)
    kb.stg(kb.index(kb.param(3), i, 4), kb.d2f(rhs))
    kb.exit()
    return kb.finish()


def _matvec_kernel() -> str:
    """2x2 block mat-vec per pair of cells.  Params: 0=pairs, 1=x, 2=y."""
    kb = KernelBuilder("bt_matvec", num_params=3)
    i = kb.global_tid_x()
    oob = kb.isetp("GE", i, kb.param(0), unsigned=True)
    kb.exit_if(oob)
    base = kb.shl(i, 1)  # element index of the pair
    a0 = kb.ldg_f32(kb.index(kb.param(1), base, 4))
    a1 = kb.ldg_f32(kb.index(kb.param(1), base, 4), offset=4)
    # [y0; y1] = [[0.9, 0.1], [0.1, 0.9]] [a0; a1]
    y0 = kb.ffma(a0, kb.const_f32(0.9), kb.fmul(a1, kb.const_f32(0.1)))
    y1 = kb.ffma(a1, kb.const_f32(0.9), kb.fmul(a0, kb.const_f32(0.1)))
    out = kb.index(kb.param(2), base, 4)
    kb.stg(out, y0)
    kb.stg(out, y1, offset=4)
    kb.exit()
    return kb.finish()


class Bt(WorkloadApp):
    name = "370.bt"
    description = "Block tri-diagonal solver for 3D PDE"
    paper_static_kernels = 50
    paper_dynamic_kernels = 10069
    check_rtol = 5e-3

    _module_cache: str | None = None

    @classmethod
    def module_text(cls) -> str:
        if cls._module_cache is None:
            parts = [
                _rhs_kernel(),
                kf.tridiag_sweep("bt_x_forward", forward=True, width=_WIDTH, coef=0.25),
                kf.tridiag_sweep("bt_x_backward", forward=False, width=_WIDTH, coef=0.25),
                kf.tridiag_sweep("bt_y_forward", forward=True, width=_WIDTH, coef=0.2),
                kf.tridiag_sweep("bt_y_backward", forward=False, width=_WIDTH, coef=0.2),
                _matvec_kernel(),
                kf.ewise2("bt_add", lambda kb, u, r: kb.ffma(r, kb.const_f32(0.8), u)),
                kf.reduce_sum("bt_norm"),
            ]
            cls._module_cache = "\n".join(parts)
        return cls._module_cache

    def run(self, ctx: AppContext) -> None:
        rt = ctx.cuda
        module = rt.load_module(self.module_text(), self.name)
        get = lambda name: rt.get_function(module, name)  # noqa: E731

        rng = ctx.rng()
        u = rt.to_device((rng.random(_CELLS) * 0.4 + 0.8).astype(np.float32))
        forcing = rt.to_device((rng.random(_CELLS) * 0.2).astype(np.float32))
        rhs = rt.alloc(_CELLS, np.float32)
        norms = rt.to_device(np.zeros(_STEPS, np.float32))

        grid = ceil_div(_CELLS, 64)
        line_grid = ceil_div(_HEIGHT, 32)
        for step in range(_STEPS):
            rt.launch(get("bt_compute_rhs"), grid, 64, _CELLS, forcing, u, rhs)
            rt.launch(get("bt_x_forward"), line_grid, 32, _HEIGHT, rhs)
            rt.launch(get("bt_x_backward"), line_grid, 32, _HEIGHT, rhs)
            rt.launch(get("bt_y_forward"), line_grid, 32, _HEIGHT, rhs)
            rt.launch(get("bt_y_backward"), line_grid, 32, _HEIGHT, rhs)
            rt.launch(get("bt_matvec"), grid, 64, _CELLS // 2, rhs, rhs)
            rt.launch(get("bt_add"), grid, 64, _CELLS, u, rhs, u)
            rt.launch(get("bt_norm"), grid, 64, _CELLS, rhs, norms.address + 4 * step)

        if rt.synchronize() is not CudaError.SUCCESS:
            ctx.print("bt: CUDA failure detected")
            ctx.exit(1)
        final_norms = norms.to_host()
        if not np.isfinite(final_norms).all():
            ctx.print("bt: VERIFICATION FAILED (non-finite residual)")
            ctx.exit(3)
        self.finalize(ctx, np.concatenate([u.to_host(), final_norms]))
