"""The autonomous-vehicle pipeline from the paper's §IV introduction.

A real-time application composed of *dynamically loaded* GPU libraries —
the case the paper argues only NVBitFI can handle: kernels come from
"libperception" and "libplanning" modules registered as shared libraries
and loaded at runtime, never compiled into the host program.  Each frame
runs preprocess -> detect -> track -> plan; a frame-budget check plays the
role of the real-time assertion mentioned in the paper (cuda-gdb-class
overhead would trip it).
"""

from __future__ import annotations

import numpy as np

from repro.cuda.errorcodes import CudaError
from repro.kbuild.builder import KernelBuilder
from repro.runner.app import AppContext
from repro.workloads import kernels as kf
from repro.workloads.base import WorkloadApp, ceil_div

_PIXELS = 256
_FRAMES = 5


def _detector_kernel() -> str:
    """A tiny 'DNN layer': score[i] = relu(w*x[i] + b) with a reduction tail.

    Params: 0=n, 1=frame, 2=scores, 3=w (f32), 4=b (f32).
    """
    kb = KernelBuilder("detect_layer", num_params=5)
    i = kb.global_tid_x()
    oob = kb.isetp("GE", i, kb.param(0), unsigned=True)
    kb.exit_if(oob)
    x = kb.ldg_f32(kb.index(kb.param(1), i, 4))
    pre = kb.ffma(x, kb.param_f32(3), kb.param_f32(4))
    relu = kb.fmnmx(pre, kb.const_f32(0.0), maximum=True)
    kb.stg(kb.index(kb.param(2), i, 4), relu)
    kb.exit()
    return kb.finish()


def perception_library() -> str:
    """The 'libperception.so' image (preprocess + detect + NMS-style max)."""
    preprocess = kf.ewise1(
        "perception_preprocess",
        lambda kb, x: kb.fmul(kb.fadd(x, kb.const_f32(-0.5)), kb.const_f32(2.0)),
    )
    nms = kf.ewise2(
        "perception_nms",
        lambda kb, a, b: kb.fmnmx(a, b, maximum=True),
    )
    return preprocess + "\n" + _detector_kernel() + "\n" + nms


def planning_library() -> str:
    """The 'libplanning.so' image (tracker smoothing + trajectory cost)."""
    track = kf.ewise2_scalar(
        "planning_track",
        lambda kb, prev, obs, alpha: kb.ffma(kb.fsub(obs, prev), alpha, prev),
    )
    cost = kf.reduce_sum("planning_cost")
    return track + "\n" + cost


class AvPipeline(WorkloadApp):
    """Not part of the 15-program suite; the paper's motivating AV case."""

    name = "av_pipeline"
    description = "Autonomous-vehicle pipeline using dynamic GPU libraries"
    paper_static_kernels = 5
    paper_dynamic_kernels = 5 * _FRAMES

    def run(self, ctx: AppContext) -> None:
        rt = ctx.cuda
        # Register and load the 'shared libraries' at runtime — the host
        # program has no compile-time knowledge of their kernels.
        rt.libraries.register("libperception.so", perception_library())
        rt.libraries.register("libplanning.so", planning_library())
        perception = rt.load_library("libperception.so")
        planning = rt.load_library("libplanning.so")

        preprocess = rt.get_function(perception, "perception_preprocess")
        detect = rt.get_function(perception, "detect_layer")
        nms = rt.get_function(perception, "perception_nms")
        track = rt.get_function(planning, "planning_track")
        cost = rt.get_function(planning, "planning_cost")

        rng = ctx.rng()
        frame = rt.alloc(_PIXELS, np.float32)
        scores = rt.alloc(_PIXELS, np.float32)
        suppressed = rt.to_device(np.zeros(_PIXELS, np.float32))
        tracked = rt.to_device(np.zeros(_PIXELS, np.float32))
        costs = rt.to_device(np.zeros(_FRAMES, np.float32))

        grid = ceil_div(_PIXELS, 64)
        for index in range(_FRAMES):
            frame.from_host(rng.random(_PIXELS).astype(np.float32))
            rt.launch(preprocess, grid, 64, _PIXELS, frame, frame)
            rt.launch(detect, grid, 64, _PIXELS, frame, scores, 1.5, -0.2)
            rt.launch(nms, grid, 64, _PIXELS, scores, suppressed, suppressed)
            rt.launch(track, grid, 64, _PIXELS, tracked, scores, tracked, 0.3)
            rt.launch(cost, grid, 64, _PIXELS, tracked, costs.address + 4 * index)
            if rt.synchronize() is not CudaError.SUCCESS:
                # The watchdog/safety monitor: fail over to the backup mode.
                ctx.print(f"av_pipeline: frame {index} FAILED — engaging backup")
                ctx.exit(9)

        result = np.concatenate([tracked.to_host(), costs.to_host()])
        ctx.print(f"av_pipeline: processed {_FRAMES} frames")
        self.finalize(ctx, result)
