"""351.palm — large-eddy simulation of atmospheric turbulence.

PALM's signature in Table IV is its huge *static* kernel count (100 static,
7050 dynamic): the solver is split into many small field-update kernels.
We generate ten distinct static kernels from parameterised templates (a mix
of FP32 and FP64 updates) and launch them in rounds — 10 static / 71
dynamic in the scaled configuration.
"""

from __future__ import annotations

import numpy as np

from repro.runner.app import AppContext
from repro.workloads import kernels as kf
from repro.workloads.base import WorkloadApp, ceil_div

_POINTS = 256
_ROUNDS = 7
_NUM_KERNELS = 10


def _field_update(index: int) -> str:
    """One generated PALM field-update kernel; each index gets its own mix."""
    coefficient = 0.1 + 0.07 * index
    name = f"palm_update_{index:02d}"
    if index % 4 == 0:
        # Advection-like: out = x + c * (y - x)
        return kf.ewise2(
            name,
            lambda kb, x, y: kb.ffma(kb.fsub(y, x), kb.const_f32(coefficient), x),
        )
    if index % 4 == 1:
        # Buoyancy-like with a transcendental term.
        return kf.ewise2(
            name,
            lambda kb, x, y: kb.ffma(
                kb.mufu("EX2", kb.fmul(x, kb.const_f32(0.1))),
                kb.const_f32(coefficient),
                y,
            ),
        )
    if index % 4 == 2:
        # Diffusion-like in FP64 (PALM is a double-precision code).
        def body(kb, x, y):
            xd = kb.f2d(x)
            yd = kb.f2d(y)
            mixed = kb.dfma(xd, kb.f2d(kb.const_f32(coefficient)), yd)
            return kb.d2f(mixed)

        return kf.ewise2(name, body)
    # Damping / limiting.
    return kf.ewise2(
        name,
        lambda kb, x, y: kb.fmnmx(
            kb.fmul(kb.fadd(x, y), kb.const_f32(coefficient)),
            kb.const_f32(50.0),
        ),
    )


class Palm(WorkloadApp):
    name = "351.palm"
    description = "Large-eddy simulation, atmospheric turbulence"
    paper_static_kernels = 100
    paper_dynamic_kernels = 7050

    _module_cache: str | None = None

    @classmethod
    def module_text(cls) -> str:
        if cls._module_cache is None:
            cls._module_cache = "\n".join(
                _field_update(i) for i in range(_NUM_KERNELS)
            )
        return cls._module_cache

    def run(self, ctx: AppContext) -> None:
        rt = ctx.cuda
        module = rt.load_module(self.module_text(), self.name)
        updates = [
            rt.get_function(module, f"palm_update_{i:02d}")
            for i in range(_NUM_KERNELS)
        ]

        rng = ctx.rng()
        u = rt.to_device((rng.random(_POINTS) * 2.0 - 1.0).astype(np.float32))
        w = rt.to_device((rng.random(_POINTS) * 2.0 - 1.0).astype(np.float32))
        scratch = rt.alloc(_POINTS, np.float32)

        grid = ceil_div(_POINTS, 64)
        for _ in range(_ROUNDS):
            for update in updates:
                rt.launch(update, grid, 64, _POINTS, u, w, scratch)
                u, scratch = scratch, u
        # One extra launch of the first kernel => 71 dynamic kernels.
        rt.launch(updates[0], grid, 64, _POINTS, u, w, scratch)

        self.finalize(ctx, scratch.to_host())
