"""359.miniGhost — finite difference with halo exchange.

Six static kernels: the central difference stencil, two halo-exchange
kernels (x and y edges, strided copies), a boundary condition, a grid sum
reduction and a field swap/copy.
"""

from __future__ import annotations

import numpy as np

from repro.kbuild.builder import KernelBuilder
from repro.runner.app import AppContext
from repro.workloads import kernels as kf
from repro.workloads.base import WorkloadApp, ceil_div

_WIDTH = 16
_HEIGHT = 16
_CELLS = _WIDTH * _HEIGHT
_STEPS = 12


def _halo_x_kernel() -> str:
    """Copy west edge to east halo (periodic).  Params: 0=height, 1=field."""
    kb = KernelBuilder("mg_halo_x", num_params=2)
    row = kb.global_tid_x()
    oob = kb.isetp("GE", row, kb.param(0), unsigned=True)
    kb.exit_if(oob)
    row_base = kb.iscadd(kb.imul(row, kb.const_u32(_WIDTH)), kb.param(1), 2)
    west = kb.ldg_f32(row_base, offset=4)
    kb.stg(row_base, west, offset=4 * (_WIDTH - 1))
    kb.exit()
    return kb.finish()


def _halo_y_kernel() -> str:
    """Copy north interior row to south halo.  Params: 0=width, 1=field, 2=height."""
    kb = KernelBuilder("mg_halo_y", num_params=3)
    col = kb.global_tid_x()
    oob = kb.isetp("GE", col, kb.param(0), unsigned=True)
    kb.exit_if(oob)
    field = kb.param(1)
    north = kb.ldg_f32(kb.index(field, kb.iadd(col, _WIDTH), 4))
    height_m1 = kb.iadd(kb.param(2), -1)
    south_index = kb.imad(height_m1, kb.const_u32(_WIDTH), col)
    kb.stg(kb.index(field, south_index, 4), north)
    kb.exit()
    return kb.finish()


class MiniGhost(WorkloadApp):
    name = "359.miniGhost"
    description = "Finite difference"
    paper_static_kernels = 26
    paper_dynamic_kernels = 8010
    check_rtol = 5e-3

    _module_cache: str | None = None

    @classmethod
    def module_text(cls) -> str:
        if cls._module_cache is None:
            stencil = kf.stencil5("mg_stencil", center=0.5, neighbour=0.125, width=_WIDTH)
            bc = kf.ewise1(
                "mg_bc",
                lambda kb, x: kb.fmnmx(x, kb.const_f32(0.0), maximum=True),
            )
            grid_sum = kf.reduce_sum("mg_grid_sum")
            copy = kf.ewise1("mg_copy", lambda kb, x: kb.mov(x))
            cls._module_cache = "\n".join(
                (stencil, _halo_x_kernel(), _halo_y_kernel(), bc, grid_sum, copy)
            )
        return cls._module_cache

    def run(self, ctx: AppContext) -> None:
        rt = ctx.cuda
        module = rt.load_module(self.module_text(), self.name)
        get = lambda name: rt.get_function(module, name)  # noqa: E731

        rng = ctx.rng()
        field = rt.to_device((rng.random(_CELLS) * 4.0).astype(np.float32))
        scratch = rt.alloc(_CELLS, np.float32)
        sums = rt.to_device(np.zeros(_STEPS, np.float32))

        grid = ceil_div(_CELLS, 64)
        line_grid = ceil_div(max(_WIDTH, _HEIGHT), 32)
        for step in range(_STEPS):
            rt.launch(get("mg_halo_x"), line_grid, 32, _HEIGHT, field)
            rt.launch(get("mg_halo_y"), line_grid, 32, _WIDTH, field, _HEIGHT)
            rt.launch(get("mg_stencil"), grid, 64, _HEIGHT, field, scratch)
            rt.launch(get("mg_bc"), grid, 64, _CELLS, scratch, scratch)
            rt.launch(get("mg_grid_sum"), grid, 64, _CELLS, scratch, sums.address + 4 * step)
            rt.launch(get("mg_copy"), grid, 64, _CELLS, scratch, field)

        self.finalize(ctx, np.concatenate([field.to_host(), sums.to_host()]))
