"""Adaptive campaign sizing — ``BENCH_adaptive.json``.

The acceptance claim of the adaptive layer (docs/statistics.md): on the
default 370.bt bench workload, a campaign with ``--target-outcome SDC
--confidence 0.95 --half-width 0.05`` stops early with at least 20% fewer
injections than the fixed-N equivalent (385, the worst-case p = 0.5
inversion of the interval), while the achieved CI half-width meets the
target and the interval contains the fixed-N campaign's estimate.

``REPRO_QUICK=1`` shrinks to a CI-smoke size on 303.ostencil: the savings
floor is skipped (small budgets can't amortize batching), but the stop-at-
or-under-budget and half-width-met assertions still run.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from benchmarks.harness import campaign_seed, emit, quick_mode
from repro.core.adaptive import StoppingRule
from repro.core.campaign import CampaignConfig
from repro.core.engine import CampaignEngine
from repro.core.outcomes import Outcome
from repro.core.store import CampaignStore
from repro.obs import MetricsRegistry
from repro.utils.text import format_table

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_adaptive.json"

# Acceptance floor (non-quick): the adaptive campaign must save at least
# this fraction of the fixed-N budget on the default workload.
_MIN_SAVINGS = 0.20


def _workload() -> str:
    if quick_mode():
        return "303.ostencil"
    return os.environ.get("REPRO_BENCH_WORKLOAD", "370.bt")


def _rule() -> StoppingRule:
    if quick_mode():
        # Small-budget smoke: a rule 303.ostencil satisfies within ~50 runs.
        return StoppingRule(
            target_outcome="SDC", confidence=0.90, half_width=0.12,
            min_injections=10,
        )
    return StoppingRule(target_outcome="SDC", confidence=0.95, half_width=0.05)


def _run(tmp_path, label, stopping):
    registry = MetricsRegistry()
    engine = CampaignEngine(
        _workload(),
        CampaignConfig(
            workload=_workload(),
            num_transient=_rule().fixed_n(),
            seed=campaign_seed(),
            stopping=stopping,
        ),
        store=CampaignStore(tmp_path / label),
        metrics=registry,
    )
    started = time.perf_counter()
    result = engine.run_transient()
    return result, time.perf_counter() - started, registry


def test_adaptive_early_stopping(benchmark, tmp_path):
    rule = _rule()
    budget = rule.fixed_n()

    def run_both():
        adaptive = _run(tmp_path, "adaptive", rule)
        fixed = _run(tmp_path, "fixed", None)
        return adaptive, fixed

    (adaptive, adaptive_seconds, registry), (fixed, fixed_seconds, _) = (
        benchmark.pedantic(run_both, rounds=1, iterations=1)
    )

    summary = adaptive.adaptive
    estimate = summary.estimate
    fixed_p = fixed.tally.fraction(Outcome.SDC)

    # The adaptive campaign never exceeds the fixed-N equivalent, its
    # achieved half-width meets the rule, and its interval contains the
    # fixed-N estimate (same population, tighter sample).
    assert summary.injections <= budget
    assert estimate.half_width <= rule.half_width
    assert estimate.low <= fixed_p <= estimate.high, (
        f"adaptive CI [{estimate.low:.3f}, {estimate.high:.3f}] excludes "
        f"the fixed-N estimate {fixed_p:.3f}"
    )

    savings = summary.injections_saved / budget
    payload = {
        "benchmark": "adaptive_early_stopping",
        "workload": _workload(),
        "seed": campaign_seed(),
        "quick": quick_mode(),
        "rule": rule.fingerprint(),
        "fixed_n": budget,
        "adaptive_injections": summary.injections,
        "stopped_early_at": summary.stopped_early_at,
        "injections_saved": summary.injections_saved,
        "savings_fraction": round(savings, 3),
        "batches": summary.batches,
        "adaptive_estimate": {
            "p_hat": round(estimate.p_hat, 4),
            "half_width": round(estimate.half_width, 4),
        },
        "fixed_estimate": round(fixed_p, 4),
        "adaptive_seconds": round(adaptive_seconds, 3),
        "fixed_seconds": round(fixed_seconds, 3),
        "adaptive_batches_counter": int(
            registry.counter("engine.adaptive.batches").value
        ),
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    emit(
        "adaptive_early_stopping",
        format_table(
            ["Campaign", "Injections", "Wall clock", "SDC estimate"],
            [
                [
                    "adaptive",
                    f"{summary.injections}/{budget}",
                    f"{adaptive_seconds:.2f}s",
                    estimate.describe(),
                ],
                [
                    "fixed-N",
                    str(budget),
                    f"{fixed_seconds:.2f}s",
                    f"{fixed_p * 100:.1f}%",
                ],
                [
                    "saved",
                    f"{summary.injections_saved} ({savings:.0%})",
                    f"{fixed_seconds - adaptive_seconds:.2f}s",
                    "-",
                ],
            ],
            title=f"Adaptive early stopping on {_workload()}: "
                  f"{rule.target_outcome.value} ±{rule.half_width} at "
                  f"{rule.confidence:.0%}",
        ),
    )

    if not quick_mode():
        assert savings >= _MIN_SAVINGS, (
            f"adaptive savings regressed: {savings:.0%} < {_MIN_SAVINGS:.0%} "
            f"of the fixed-N budget (see {BENCH_PATH})"
        )
