"""Campaign wall-clock trajectory — ``BENCH_campaign.json``.

The repo's perf north-star is campaign throughput: NVBitFI's headline
claim (paper §III-C, Figures 4–5) is that injection runs cost barely more
than uninstrumented runs.  This benchmark measures a real transient
campaign end-to-end (golden + profile + select + inject) across serial
{full, pre-target replay, pre + tail replay, snapshot execution with a
cold/warm replay cache, batched multi-fault passes, resumed}, and
parallel {full, pre + tail, snapshot × {2, 8} workers, batch × 2
workers} configurations — and persists the numbers to
``BENCH_campaign.json`` at the repo root so the trajectory is tracked
across PRs.

Fast-forward, snapshot forking and the persistent replay cache (see
:mod:`repro.gpusim.replay`, :mod:`repro.core.snapshot` and
``docs/performance.md``) must never change results: every
configuration's ``results.csv`` is asserted byte-identical against the
serial full-simulation baseline — snapshot on/off, cache cold/warm,
serial/parallel/resumed, and the block-compiled execution tier on/off
(the ``*-nobc`` rows re-run the full, snapshot and batch configurations
with ``block_compile=False``) alike.  The tail rows additionally report how
many faults re-converged with the golden run; snapshot rows report fork
and cache counters.

Knobs: ``REPRO_QUICK=1`` shrinks to a CI-smoke size (parity still
asserted); ``REPRO_BENCH_WORKLOAD`` / ``REPRO_BENCH_FAULTS`` override the
default 50-fault campaign on 370.bt (96 golden launches, late-kernel-heavy:
the weighted mean injection site sits ~58% into the golden run).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from benchmarks.harness import campaign_seed, emit, quick_mode
from repro.core.batch_injector import BatchExecutor
from repro.core.campaign import CampaignConfig
from repro.core.engine import CampaignEngine, ParallelExecutor
from repro.core.snapshot import SnapshotExecutor
from repro.core.store import CampaignStore
from repro.obs import MetricsRegistry
from repro.utils.text import format_table

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_campaign.json"

# Wall-clock floors on the default (late-kernel-heavy) campaign: pre-target
# replay vs full simulation, the additional factor the tail must buy on
# top of pre-target replay, the total the snapshot executor + warm
# replay cache must clear (the PR-8 headline: past the previous 3.36x),
# and the total the batched multi-fault pass must clear (this PR's
# headline: strictly past the snapshot executor's previous 4.27x —
# batching amortizes the per-group host run and tape replay into one
# chained counting pass, and pipelines every fault's divergent suffix
# against it as concurrent copy-on-write children).  The pipelined
# children need a second CPU to actually overlap; on a single-CPU box
# they serialize behind the pass and the batch row is held to the
# snapshot bar instead.  Quick/CI runs are too small to amortize the
# fixed phases, so they assert parity only.
_MIN_SPEEDUP = 2.0
_MIN_TAIL_SPEEDUP = 1.3
_MIN_SNAPSHOT_SPEEDUP = 3.36
_MIN_BATCH_SPEEDUP = 4.27
# 8-worker wall clock vs 2-worker, normalized by how many of those workers
# the machine can actually run concurrently (min(workers, cpu_count)):
# on a box with >= 8 CPUs this demands real scaling; on smaller boxes it
# asserts that oversubscription does not collapse throughput.
_MIN_SCALING_EFFICIENCY = 0.8


def _workload() -> str:
    if quick_mode():
        return "303.ostencil"  # multi-kernel but small: 21 golden launches
    return os.environ.get("REPRO_BENCH_WORKLOAD", "370.bt")


def _faults() -> int:
    if quick_mode():
        return 6
    return int(os.environ.get("REPRO_BENCH_FAULTS", "50"))


def _config(fast_forward=True, tail=True, cache_dir=None, knobs=False,
            block_compile=True):
    return CampaignConfig(
        workload=_workload(),
        num_transient=_faults(),
        seed=campaign_seed(),
        fast_forward=fast_forward,
        tail_fast_forward=tail,
        # The "knob" rows exercise the CLI-level combination
        # (--snapshot --batch-launch with no explicit executor): the
        # engine's default-executor resolution must pick the batch path.
        snapshot=knobs,
        batch_launch=knobs,
        block_compile=block_compile,
        replay_cache=str(cache_dir) if cache_dir else None,
    )


def _make_executor(kind, workers):
    if kind == "batch":
        return BatchExecutor(max_workers=workers)
    if kind == "snapshot":
        return SnapshotExecutor(max_workers=workers)
    if workers:
        return ParallelExecutor(max_workers=workers)
    return None


def _run_campaign(tmp_path, label, fast_forward, tail, workers,
                  executor_kind="plain", cache_dir=None, block_compile=True):
    """One full campaign; returns (seconds, counters-snapshot, results.csv)."""
    store_dir = tmp_path / label
    registry = MetricsRegistry()
    engine = CampaignEngine(
        _workload(),
        _config(fast_forward, tail, cache_dir,
                knobs=executor_kind == "knob-batch",
                block_compile=block_compile),
        store=CampaignStore(store_dir),
        executor=(None if executor_kind == "knob-batch"
                  else _make_executor(executor_kind, workers)),
        metrics=registry,
    )
    started = time.perf_counter()
    engine.run_transient()
    seconds = time.perf_counter() - started
    counters = registry.snapshot()["counters"]
    return seconds, counters, (store_dir / "results.csv").read_bytes()


def _run_resumed(tmp_path, cache_dir):
    """Half the campaign, then a fresh engine resuming the same store.

    Both halves run through the batched executor: a resumed campaign's
    leftover indices regroup into (smaller) same-launch batches and the
    stitched results.csv must still match the serial baseline.
    """
    store_dir = tmp_path / "serial-resumed"
    first = CampaignEngine(
        _workload(),
        _config(cache_dir=cache_dir),
        store=CampaignStore(store_dir),
        executor=BatchExecutor(),
    )
    first.plan_transient()
    first.run_batch(range(_faults() // 2))
    resumed = CampaignEngine(
        _workload(),
        _config(cache_dir=cache_dir),
        store=CampaignStore(store_dir),
        executor=BatchExecutor(),
    )
    resumed.run_transient()
    return (store_dir / "results.csv").read_bytes()


def test_campaign_wall_clock(benchmark, tmp_path):
    matrix = [
        # (executor, mode, fast_forward, tail_ff, workers, kind, cached, bc)
        ("serial", "full", False, False, 0, "plain", False, True),
        # Same campaign with the block-compiled tier off: results.csv must
        # not move, and the default row above must not be slower.
        ("serial", "full-nobc", False, False, 0, "plain", False, False),
        ("serial", "ff", True, False, 0, "plain", False, True),
        ("serial", "ff+tail", True, True, 0, "plain", False, True),
        # Cold first, warm second: the cold row stores the golden tape the
        # warm row (and the parallel snapshot rows below) replay.
        ("serial", "snap+cache-cold", True, True, 0, "snapshot", True, True),
        ("serial", "snap+cache-warm", True, True, 0, "snapshot", True, True),
        ("serial", "snap-warm-nobc", True, True, 0, "snapshot", True, False),
        # Batched multi-fault passes ride the warm cache: one counting
        # pass per target launch, every same-launch fault forked off it.
        ("serial", "batch+cache-warm", True, True, 0, "batch", True, True),
        ("serial", "batch-warm-nobc", True, True, 0, "batch", True, False),
        ("serial", "knob-batch", True, True, 0, "knob-batch", True, True),
        ("parallel", "full", False, False, 2, "plain", False, True),
        ("parallel", "ff+tail", True, True, 2, "plain", False, True),
        ("parallel", "snap-2w", True, True, 2, "snapshot", True, True),
        ("parallel", "snap-8w", True, True, 8, "snapshot", True, True),
        ("parallel", "batch-2w", True, True, 2, "batch", True, True),
    ]
    # Single-shot wall clocks on a loaded box swing by tens of percent —
    # enough to flip the floor assertions either way.  Repeat the whole
    # matrix (fresh stores and a fresh cache each round, so cold stays
    # cold) and keep the per-row minimum: the min is the run least
    # disturbed by unrelated system load.
    rounds = 1 if quick_mode() else 3

    def run_round(round_dir):
        cache_dir = round_dir / "replay-cache"
        measured = {
            (executor, mode): _run_campaign(
                round_dir, f"{executor}-{mode}", fast_forward, tail, workers,
                executor_kind=kind, cache_dir=cache_dir if cached else None,
                block_compile=bc,
            )
            for executor, mode, fast_forward, tail, workers, kind, cached, bc
            in matrix
        }
        measured[("serial", "resumed")] = (
            None, {}, _run_resumed(round_dir, cache_dir)
        )
        return measured

    def run_all():
        per_round = [run_round(tmp_path / f"round{n}") for n in range(rounds)]
        baseline = per_round[0][("serial", "full")][2]
        for n, round_runs in enumerate(per_round):
            for key, (_, _, csv) in round_runs.items():
                assert csv == baseline, f"round {n}: csv diverged for {key}"
        best = {}
        for key in per_round[0]:
            seconds = [r[key][0] for r in per_round]
            best[key] = (
                None if seconds[0] is None else min(seconds),
                per_round[0][key][1],
                per_round[0][key][2],
            )
        round_seconds = [
            {key: value[0] for key, value in round_runs.items()
             if value[0] is not None}
            for round_runs in per_round
        ]
        return best, round_seconds

    measured, round_seconds = benchmark.pedantic(run_all, rounds=1, iterations=1)

    def best_ratio(numerator, denominator):
        """Matched-pair speedup: both sides from the same round, best round
        kept — the within-round pairing cancels load drift the same way
        min wall-clock does for a single row."""
        return round(
            max(r[numerator] / r[denominator] for r in round_seconds), 2
        )

    # Fast-forward parity: every configuration reproduces the serial
    # full-simulation results.csv byte for byte.
    baseline = measured[("serial", "full")][2]
    for key, (_, _, csv) in measured.items():
        assert csv == baseline, f"results.csv diverged for {key}"

    runs = []
    for executor, mode, fast_forward, tail, workers, kind, _cache, bc in matrix:
        seconds, counters, _ = measured[(executor, mode)]
        runs.append({
            "executor": executor,
            "mode": mode,
            "workers": workers or 1,
            "fast_forward": fast_forward,
            "tail_fast_forward": tail,
            "snapshot": kind == "snapshot",
            "block_compile": bc,
            "seconds": round(seconds, 3),
            "simulated_cycles": int(counters.get("gpusim.cycles", 0)),
            "replay_hits": int(counters.get("engine.replay.hits", 0)),
            "replay_launches_skipped": int(
                counters.get("engine.replay.launches_skipped", 0)
            ),
            "faults_converged": int(counters.get("engine.replay.tail_hits", 0)),
            "tail_launches_skipped": int(
                counters.get("engine.replay.tail_launches_skipped", 0)
            ),
            "snapshot_forks": int(counters.get("engine.snapshot.forks", 0)),
            "batch_checkpoints": int(
                counters.get("engine.batch.checkpoints", 0)
            ),
            "batch_launches_shared": int(
                counters.get("engine.batch.launches_shared", 0)
            ),
            "cache_hits": int(counters.get("engine.cache.hits", 0)),
            "cache_misses": int(counters.get("engine.cache.misses", 0)),
        })

    by_mode = {(r["executor"], r["mode"]): r for r in runs}
    # Replayed launches (pre-target and tail alike) reconstruct their cycle
    # accounting from the golden recording, so every configuration reports
    # the identical simulated-cycle total.  (Warm-cache rows replay the
    # golden run itself from the tape — same recorded cycle deltas.)
    cycle_totals = {r["simulated_cycles"] for r in runs}
    assert len(cycle_totals) == 1, f"simulated cycles diverged: {cycle_totals}"
    assert by_mode[("serial", "ff")]["replay_launches_skipped"] > 0
    assert by_mode[("serial", "ff")]["faults_converged"] == 0  # tail off
    assert by_mode[("serial", "ff+tail")]["faults_converged"] > 0
    assert by_mode[("serial", "ff+tail")]["tail_launches_skipped"] > 0
    # The snapshot rows must actually fork (not silently fall back), and
    # the replay cache must go exactly cold -> warm.
    assert by_mode[("serial", "snap+cache-cold")]["snapshot_forks"] > 0
    assert by_mode[("serial", "snap+cache-cold")]["cache_misses"] == 1
    assert by_mode[("serial", "snap+cache-warm")]["cache_hits"] == 1
    assert by_mode[("serial", "snap+cache-warm")]["cache_misses"] == 0
    # The batch rows must actually checkpoint every fault off a shared
    # counting pass (explicit executor and config-knob path alike).
    for batch_key in [("serial", "batch+cache-warm"),
                      ("serial", "batch-warm-nobc"),
                      ("serial", "knob-batch"), ("parallel", "batch-2w")]:
        assert by_mode[batch_key]["batch_checkpoints"] == _faults(), batch_key
        assert by_mode[batch_key]["batch_launches_shared"] >= 1, batch_key

    cpus = os.cpu_count() or 1
    # Ideal 8-vs-2-worker ratio, capped by physical CPUs: on an 8+-core
    # box the 8-worker run should be ~4x faster; on a single core both
    # runs serialize and the ideal ratio is 1.
    ideal = min(8, cpus) / min(2, cpus)
    scaling_efficiency = round(
        best_ratio(("parallel", "snap-2w"), ("parallel", "snap-8w")) / ideal, 2
    )
    speedup = {
        "serial": best_ratio(("serial", "full"), ("serial", "ff")),
        "serial_tail": best_ratio(("serial", "ff"), ("serial", "ff+tail")),
        "serial_total": best_ratio(("serial", "full"), ("serial", "ff+tail")),
        "serial_snapshot": best_ratio(
            ("serial", "full"), ("serial", "snap+cache-warm")
        ),
        "serial_batch": best_ratio(
            ("serial", "full"), ("serial", "batch+cache-warm")
        ),
        # Block-compiled tier's contribution to the simulated portion:
        # the identical campaign, per-step vs block-compiled.
        "serial_blockc": best_ratio(
            ("serial", "full-nobc"), ("serial", "full")
        ),
        "parallel": best_ratio(("parallel", "full"), ("parallel", "ff+tail")),
        "parallel_snapshot": best_ratio(
            ("parallel", "full"), ("parallel", "snap-2w")
        ),
        "parallel_batch": best_ratio(
            ("parallel", "full"), ("parallel", "batch-2w")
        ),
    }
    payload = {
        "benchmark": "campaign_wall_clock",
        "workload": _workload(),
        "faults": _faults(),
        "seed": campaign_seed(),
        "quick": quick_mode(),
        "cpu_count": cpus,
        "runs": runs,
        "fast_forward_speedup": speedup,
        "scaling_efficiency_8v2": scaling_efficiency,
        "results_csv_byte_identical": True,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    rows = [
        [
            r["executor"],
            r["mode"],
            f"{r['seconds']:.2f}s",
            f"{r['simulated_cycles'] / 1e6:.1f} Mcyc",
            r["replay_launches_skipped"],
            r["faults_converged"],
            r["snapshot_forks"],
        ]
        for r in runs
    ]
    for title, value in [
        ("speedup (serial ff/full)", f"{speedup['serial']:.2f}x"),
        ("speedup (serial tail/ff)", f"{speedup['serial_tail']:.2f}x"),
        ("speedup (serial total)", f"{speedup['serial_total']:.2f}x"),
        ("speedup (serial snapshot)", f"{speedup['serial_snapshot']:.2f}x"),
        ("speedup (serial batch)", f"{speedup['serial_batch']:.2f}x"),
        ("speedup (serial blockc on/off)", f"{speedup['serial_blockc']:.2f}x"),
        ("speedup (parallel)", f"{speedup['parallel']:.2f}x"),
        ("scaling efficiency (8w vs 2w)", f"{scaling_efficiency:.2f}"),
    ]:
        rows.append([title, "-", value, "-", "-", "-", "-"])
    emit(
        "campaign_wall_clock",
        format_table(
            ["Executor", "Mode", "Wall clock", "Simulated cycles",
             "Pre-replayed", "Faults converged", "Forks"],
            rows,
            title=f"Campaign wall clock: {_faults()} transient faults on "
                  f"{_workload()} (results.csv byte-identical throughout)",
        ),
    )

    if not quick_mode():
        assert speedup["serial"] >= _MIN_SPEEDUP, (
            f"fast-forward speedup regressed: {speedup['serial']:.2f}x < "
            f"{_MIN_SPEEDUP}x (see {BENCH_PATH})"
        )
        assert speedup["serial_tail"] >= _MIN_TAIL_SPEEDUP, (
            f"tail fast-forward speedup regressed: "
            f"{speedup['serial_tail']:.2f}x < {_MIN_TAIL_SPEEDUP}x "
            f"(see {BENCH_PATH})"
        )
        assert speedup["serial_snapshot"] > _MIN_SNAPSHOT_SPEEDUP, (
            f"snapshot + warm-cache speedup regressed: "
            f"{speedup['serial_snapshot']:.2f}x <= {_MIN_SNAPSHOT_SPEEDUP}x "
            f"(see {BENCH_PATH})"
        )
        batch_floor = (
            _MIN_BATCH_SPEEDUP if cpus >= 2 else _MIN_SNAPSHOT_SPEEDUP
        )
        assert speedup["serial_batch"] > batch_floor, (
            f"batched multi-fault speedup regressed: "
            f"{speedup['serial_batch']:.2f}x <= {batch_floor}x "
            f"on {cpus} CPU(s) (see {BENCH_PATH})"
        )
        assert scaling_efficiency >= _MIN_SCALING_EFFICIENCY, (
            f"8-worker scaling efficiency regressed: {scaling_efficiency} < "
            f"{_MIN_SCALING_EFFICIENCY} (see {BENCH_PATH})"
        )
