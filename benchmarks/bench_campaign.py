"""Campaign wall-clock trajectory — ``BENCH_campaign.json``.

The repo's perf north-star is campaign throughput: NVBitFI's headline
claim (paper §III-C, Figures 4–5) is that injection runs cost barely more
than uninstrumented runs.  This benchmark measures a real transient
campaign end-to-end (golden + profile + select + inject) in five
configurations — serial {full, pre-target replay only, pre + tail replay}
and parallel {full, pre + tail} — and persists the numbers to
``BENCH_campaign.json`` at the repo root so the trajectory is tracked
across PRs.

Fast-forward (see :mod:`repro.gpusim.replay` and ``docs/performance.md``)
must never change results: every configuration's ``results.csv`` is
asserted byte-identical against the serial full-simulation baseline.
The tail rows additionally report how many faults re-converged with the
golden run and how many launches the re-armed tape skipped.

Knobs: ``REPRO_QUICK=1`` shrinks to a CI-smoke size (parity still
asserted); ``REPRO_BENCH_WORKLOAD`` / ``REPRO_BENCH_FAULTS`` override the
default 50-fault campaign on 370.bt (96 golden launches, late-kernel-heavy:
the weighted mean injection site sits ~58% into the golden run).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from benchmarks.harness import campaign_seed, emit, quick_mode
from repro.core.campaign import CampaignConfig
from repro.core.engine import CampaignEngine, ParallelExecutor
from repro.core.store import CampaignStore
from repro.obs import MetricsRegistry
from repro.utils.text import format_table

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_campaign.json"

# Wall-clock floors on the default (late-kernel-heavy) campaign: pre-target
# replay vs full simulation, and the additional factor the tail must buy on
# top of pre-target replay.  Quick/CI runs are too small to amortize the
# fixed phases, so they assert parity only.
_MIN_SPEEDUP = 2.0
_MIN_TAIL_SPEEDUP = 1.3


def _workload() -> str:
    if quick_mode():
        return "303.ostencil"  # multi-kernel but small: 21 golden launches
    return os.environ.get("REPRO_BENCH_WORKLOAD", "370.bt")


def _faults() -> int:
    if quick_mode():
        return 6
    return int(os.environ.get("REPRO_BENCH_FAULTS", "50"))


def _run_campaign(tmp_path, label, fast_forward, tail, workers):
    """One full campaign; returns (seconds, counters-snapshot, results.csv)."""
    store_dir = tmp_path / label
    registry = MetricsRegistry()
    engine = CampaignEngine(
        _workload(),
        CampaignConfig(
            workload=_workload(),
            num_transient=_faults(),
            seed=campaign_seed(),
            fast_forward=fast_forward,
            tail_fast_forward=tail,
        ),
        store=CampaignStore(store_dir),
        executor=ParallelExecutor(max_workers=workers) if workers else None,
        metrics=registry,
    )
    started = time.perf_counter()
    engine.run_transient()
    seconds = time.perf_counter() - started
    counters = registry.snapshot()["counters"]
    return seconds, counters, (store_dir / "results.csv").read_bytes()


def test_campaign_wall_clock(benchmark, tmp_path):
    matrix = [
        # (executor, mode, fast_forward, tail_fast_forward, workers)
        ("serial", "full", False, False, 0),
        ("serial", "ff", True, False, 0),
        ("serial", "ff+tail", True, True, 0),
        ("parallel", "full", False, False, 2),
        ("parallel", "ff+tail", True, True, 2),
    ]

    def run_all():
        return {
            (executor, mode): _run_campaign(
                tmp_path, f"{executor}-{mode}", fast_forward, tail, workers
            )
            for executor, mode, fast_forward, tail, workers in matrix
        }

    measured = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # Fast-forward parity: every configuration reproduces the serial
    # full-simulation results.csv byte for byte.
    baseline = measured[("serial", "full")][2]
    for key, (_, _, csv) in measured.items():
        assert csv == baseline, f"results.csv diverged for {key}"

    runs = []
    for executor, mode, fast_forward, tail, workers in matrix:
        seconds, counters, _ = measured[(executor, mode)]
        runs.append({
            "executor": executor,
            "mode": mode,
            "workers": workers or 1,
            "fast_forward": fast_forward,
            "tail_fast_forward": tail,
            "seconds": round(seconds, 3),
            "simulated_cycles": int(counters.get("gpusim.cycles", 0)),
            "replay_hits": int(counters.get("engine.replay.hits", 0)),
            "replay_launches_skipped": int(
                counters.get("engine.replay.launches_skipped", 0)
            ),
            "faults_converged": int(counters.get("engine.replay.tail_hits", 0)),
            "tail_launches_skipped": int(
                counters.get("engine.replay.tail_launches_skipped", 0)
            ),
        })

    # Replayed launches (pre-target and tail alike) reconstruct their cycle
    # accounting from the golden recording, so every configuration reports
    # the identical simulated-cycle total.
    cycle_totals = {r["simulated_cycles"] for r in runs}
    assert len(cycle_totals) == 1, f"simulated cycles diverged: {cycle_totals}"
    by_mode = {(r["executor"], r["mode"]): r for r in runs}
    assert by_mode[("serial", "ff")]["replay_launches_skipped"] > 0
    assert by_mode[("serial", "ff")]["faults_converged"] == 0  # tail off
    assert by_mode[("serial", "ff+tail")]["faults_converged"] > 0
    assert by_mode[("serial", "ff+tail")]["tail_launches_skipped"] > 0

    serial_full = measured[("serial", "full")][0]
    serial_ff = measured[("serial", "ff")][0]
    serial_tail = measured[("serial", "ff+tail")][0]
    speedup = {
        "serial": round(serial_full / serial_ff, 2),
        "serial_tail": round(serial_ff / serial_tail, 2),
        "serial_total": round(serial_full / serial_tail, 2),
        "parallel": round(
            measured[("parallel", "full")][0]
            / measured[("parallel", "ff+tail")][0],
            2,
        ),
    }
    payload = {
        "benchmark": "campaign_wall_clock",
        "workload": _workload(),
        "faults": _faults(),
        "seed": campaign_seed(),
        "quick": quick_mode(),
        "runs": runs,
        "fast_forward_speedup": speedup,
        "results_csv_byte_identical": True,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    rows = [
        [
            r["executor"],
            r["mode"],
            f"{r['seconds']:.2f}s",
            f"{r['simulated_cycles'] / 1e6:.1f} Mcyc",
            r["replay_launches_skipped"],
            r["faults_converged"],
            r["tail_launches_skipped"],
        ]
        for r in runs
    ]
    rows.append([
        "speedup (serial ff/full)", "-", f"{speedup['serial']:.2f}x",
        "-", "-", "-", "-",
    ])
    rows.append([
        "speedup (serial tail/ff)", "-", f"{speedup['serial_tail']:.2f}x",
        "-", "-", "-", "-",
    ])
    rows.append([
        "speedup (serial total)", "-", f"{speedup['serial_total']:.2f}x",
        "-", "-", "-", "-",
    ])
    rows.append([
        "speedup (parallel)", "-", f"{speedup['parallel']:.2f}x",
        "-", "-", "-", "-",
    ])
    emit(
        "campaign_wall_clock",
        format_table(
            ["Executor", "Mode", "Wall clock", "Simulated cycles",
             "Pre-replayed", "Faults converged", "Tail-replayed"],
            rows,
            title=f"Campaign wall clock: {_faults()} transient faults on "
                  f"{_workload()} (results.csv byte-identical throughout)",
        ),
    )

    if not quick_mode():
        assert speedup["serial"] >= _MIN_SPEEDUP, (
            f"fast-forward speedup regressed: {speedup['serial']:.2f}x < "
            f"{_MIN_SPEEDUP}x (see {BENCH_PATH})"
        )
        assert speedup["serial_tail"] >= _MIN_TAIL_SPEEDUP, (
            f"tail fast-forward speedup regressed: "
            f"{speedup['serial_tail']:.2f}x < {_MIN_TAIL_SPEEDUP}x "
            f"(see {BENCH_PATH})"
        )
