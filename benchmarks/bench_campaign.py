"""Campaign wall-clock trajectory — ``BENCH_campaign.json``.

The repo's perf north-star is campaign throughput: NVBitFI's headline
claim (paper §III-C, Figures 4–5) is that injection runs cost barely more
than uninstrumented runs.  This benchmark measures a real transient
campaign end-to-end (golden + profile + select + inject) in four
configurations — {serial, parallel} x {fast-forward on, off} — and
persists the numbers to ``BENCH_campaign.json`` at the repo root so the
trajectory is tracked across PRs.

Fast-forward (see :mod:`repro.gpusim.replay` and ``docs/performance.md``)
must never change results: every configuration's ``results.csv`` is
asserted byte-identical against the serial full-simulation baseline.

Knobs: ``REPRO_QUICK=1`` shrinks to a CI-smoke size (parity still
asserted); ``REPRO_BENCH_WORKLOAD`` / ``REPRO_BENCH_FAULTS`` override the
default 50-fault campaign on 370.bt (96 golden launches, late-kernel-heavy:
the weighted mean injection site sits ~58% into the golden run).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from benchmarks.harness import campaign_seed, emit, quick_mode
from repro.core.campaign import CampaignConfig
from repro.core.engine import CampaignEngine, ParallelExecutor
from repro.core.store import CampaignStore
from repro.obs import MetricsRegistry
from repro.utils.text import format_table

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_campaign.json"

# Wall-clock floor for fast-forward on the default (late-kernel-heavy)
# campaign.  Quick/CI runs are too small to amortize the fixed phases, so
# they assert parity only.
_MIN_SPEEDUP = 2.0


def _workload() -> str:
    if quick_mode():
        return "303.ostencil"  # multi-kernel but small: 21 golden launches
    return os.environ.get("REPRO_BENCH_WORKLOAD", "370.bt")


def _faults() -> int:
    if quick_mode():
        return 6
    return int(os.environ.get("REPRO_BENCH_FAULTS", "50"))


def _run_campaign(tmp_path, label, fast_forward, workers):
    """One full campaign; returns (seconds, counters-snapshot, results.csv)."""
    store_dir = tmp_path / label
    registry = MetricsRegistry()
    engine = CampaignEngine(
        _workload(),
        CampaignConfig(
            workload=_workload(),
            num_transient=_faults(),
            seed=campaign_seed(),
            fast_forward=fast_forward,
        ),
        store=CampaignStore(store_dir),
        executor=ParallelExecutor(max_workers=workers) if workers else None,
        metrics=registry,
    )
    started = time.perf_counter()
    engine.run_transient()
    seconds = time.perf_counter() - started
    counters = registry.snapshot()["counters"]
    return seconds, counters, (store_dir / "results.csv").read_bytes()


def test_campaign_wall_clock(benchmark, tmp_path):
    matrix = [
        ("serial", "full", False, 0),
        ("serial", "ff", True, 0),
        ("parallel", "full", False, 2),
        ("parallel", "ff", True, 2),
    ]

    def run_all():
        return {
            (executor, mode): _run_campaign(
                tmp_path, f"{executor}-{mode}", fast_forward, workers
            )
            for executor, mode, fast_forward, workers in matrix
        }

    measured = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # Fast-forward parity: every configuration reproduces the serial
    # full-simulation results.csv byte for byte.
    baseline = measured[("serial", "full")][2]
    for key, (_, _, csv) in measured.items():
        assert csv == baseline, f"results.csv diverged for {key}"

    runs = []
    for executor, mode, fast_forward, workers in matrix:
        seconds, counters, _ = measured[(executor, mode)]
        runs.append({
            "executor": executor,
            "workers": workers or 1,
            "fast_forward": fast_forward,
            "seconds": round(seconds, 3),
            "simulated_cycles": int(counters.get("gpusim.cycles", 0)),
            "replay_hits": int(counters.get("engine.replay.hits", 0)),
            "replay_launches_skipped": int(
                counters.get("engine.replay.launches_skipped", 0)
            ),
        })

    # Replayed launches reconstruct their cycle accounting from the golden
    # recording, so the simulated-cycle totals agree exactly.
    assert runs[0]["simulated_cycles"] == runs[1]["simulated_cycles"]
    assert runs[1]["replay_launches_skipped"] > 0

    speedup = {
        "serial": round(
            measured[("serial", "full")][0] / measured[("serial", "ff")][0], 2
        ),
        "parallel": round(
            measured[("parallel", "full")][0] / measured[("parallel", "ff")][0], 2
        ),
    }
    payload = {
        "benchmark": "campaign_wall_clock",
        "workload": _workload(),
        "faults": _faults(),
        "seed": campaign_seed(),
        "quick": quick_mode(),
        "runs": runs,
        "fast_forward_speedup": speedup,
        "results_csv_byte_identical": True,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    rows = [
        [
            r["executor"],
            "on" if r["fast_forward"] else "off",
            f"{r['seconds']:.2f}s",
            f"{r['simulated_cycles'] / 1e6:.1f} Mcyc",
            r["replay_launches_skipped"],
        ]
        for r in runs
    ]
    rows.append(["speedup (serial)", "-", f"{speedup['serial']:.2f}x", "-", "-"])
    rows.append(["speedup (parallel)", "-", f"{speedup['parallel']:.2f}x", "-", "-"])
    emit(
        "campaign_wall_clock",
        format_table(
            ["Executor", "Fast-forward", "Wall clock", "Simulated cycles",
             "Launches replayed"],
            rows,
            title=f"Campaign wall clock: {_faults()} transient faults on "
                  f"{_workload()} (results.csv byte-identical throughout)",
        ),
    )

    if not quick_mode():
        assert speedup["serial"] >= _MIN_SPEEDUP, (
            f"fast-forward speedup regressed: {speedup['serial']:.2f}x < "
            f"{_MIN_SPEEDUP}x (see {BENCH_PATH})"
        )
