"""Extension bench — outcome sensitivity to the bit-flip model (Table II).

The paper offers four bit-level corruption models as "a simpler, but more
generalizable fault model"; this bench quantifies how much the choice
matters by running the same campaign under each model.  Expectation from
the fault-model literature (and asserted here): RANDOM_VALUE corruptions,
which rewrite the whole word, are at least as damaging as single-bit
flips, which often land in tolerated mantissa tails.
"""

from __future__ import annotations

from benchmarks.harness import campaign_seed, emit, num_injections, quick_mode
from repro.core.bitflip import BitFlipModel
from repro.core.campaign import Campaign, CampaignConfig
from repro.core.outcomes import Outcome
from repro.utils.text import format_table
from repro.workloads import get_workload

_PROGRAMS = ("303.ostencil", "363.swim")


def _measure():
    programs = _PROGRAMS[:1] if quick_mode() else _PROGRAMS
    injections = max(num_injections(), 20)
    rows = []
    fractions = {}
    for model in BitFlipModel:
        sdc = due = masked = 0.0
        for name in programs:
            campaign = Campaign(
                get_workload(name),
                CampaignConfig(
                    model=model, num_transient=injections, seed=campaign_seed()
                ),
            )
            tally = campaign.run_transient().tally
            sdc += tally.fraction(Outcome.SDC)
            due += tally.fraction(Outcome.DUE)
            masked += tally.fraction(Outcome.MASKED)
        count = len(programs)
        fractions[model] = (sdc / count, due / count, masked / count)
        rows.append([
            model.name,
            f"{sdc / count * 100:.0f}%",
            f"{due / count * 100:.0f}%",
            f"{masked / count * 100:.0f}%",
        ])
    return rows, fractions, injections, programs


def test_extension_bitflip_model_comparison(benchmark):
    rows, fractions, injections, programs = benchmark.pedantic(
        _measure, rounds=1, iterations=1
    )
    table = format_table(
        ["bit-flip model", "SDC", "DUE", "Masked"],
        rows,
        title=f"Extension: outcome sensitivity to the Table II bit-flip model "
              f"({injections} faults x {len(programs)} program(s), same sites)",
    )
    emit("ext_bitflip_models", table)
    # Whole-word random corruption masks no more than a single-bit flip.
    random_masked = fractions[BitFlipModel.RANDOM_VALUE][2]
    single_masked = fractions[BitFlipModel.FLIP_SINGLE_BIT][2]
    assert random_masked <= single_masked + 0.10
