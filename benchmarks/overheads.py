"""Shared overhead measurements for Figures 4 and 5.

Overheads are reported in **simulated GPU cycles** (see DESIGN.md): the
substrate is a Python simulator, so wall-clock ratios would measure Python
dispatch, not the instrumentation economics the paper studies.  The device
charges each instrumentation callback a trampoline fee plus a per-thread
fee and each JIT build a one-time fee, mirroring where real NVBit time
goes; uninstrumented warp-instructions cost one cycle.

Cached per pytest session so Figure 4 and Figure 5 share one pass.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from benchmarks.harness import campaign_seed, workload_names
from repro.core.campaign import Campaign, CampaignConfig
from repro.core.injector import TransientInjectorTool
from repro.core.pf_injector import PermanentInjectorTool
from repro.core.profiler import ProfilerTool, ProfilingMode
from repro.core.site_selection import select_permanent_sites
from repro.runner.sandbox import run_app
from repro.utils.rng import SeedSequenceStream
from repro.workloads import get_workload

_SAMPLE_INJECTIONS = 5


@dataclass
class ProgramOverheads:
    name: str
    golden_cycles: int
    exact_profile_cycles: int
    approx_profile_cycles: int
    median_transient_cycles: float
    median_permanent_cycles: float
    executed_opcodes: int
    num_dynamic_kernels: int

    @property
    def exact_overhead(self) -> float:
        return self.exact_profile_cycles / self.golden_cycles

    @property
    def approx_overhead(self) -> float:
        return self.approx_profile_cycles / self.golden_cycles

    @property
    def transient_overhead(self) -> float:
        return self.median_transient_cycles / self.golden_cycles

    @property
    def permanent_overhead(self) -> float:
        return self.median_permanent_cycles / self.golden_cycles

    def transient_campaign_cycles(self, injections: int = 100) -> float:
        """Paper Fig 5 model: profile once + N injection runs."""
        return self.approx_profile_cycles + injections * self.median_transient_cycles

    def permanent_campaign_cycles(self) -> float:
        """One run per *executed* opcode (unused opcodes skipped)."""
        return self.executed_opcodes * self.median_permanent_cycles


_CACHE: list[ProgramOverheads] | None = None


def measure_all(force: bool = False) -> list[ProgramOverheads]:
    global _CACHE
    if _CACHE is not None and not force:
        return _CACHE
    _CACHE = [_measure_program(name) for name in workload_names()]
    return _CACHE


def _cycles(app, tools, config) -> int:
    artifacts = run_app(app, preload=tools, config=config)
    return artifacts.cycles


def _measure_program(name: str) -> ProgramOverheads:
    campaign = Campaign(
        get_workload(name),
        CampaignConfig(seed=campaign_seed(), num_transient=_SAMPLE_INJECTIONS),
    )
    golden = campaign.run_golden()
    config = campaign._injection_config()
    app = campaign.app

    exact_cycles = _cycles(app, [ProfilerTool(ProfilingMode.EXACT)], config)
    approx_cycles = _cycles(
        app, [ProfilerTool(ProfilingMode.APPROXIMATE)], config
    )

    campaign.run_profile(ProfilingMode.EXACT)
    transient_cycles = [
        _cycles(app, [TransientInjectorTool(site)], config)
        for site in campaign.select_sites(_SAMPLE_INJECTIONS)
    ]

    rng = SeedSequenceStream(campaign_seed(), path=name).child("pf").generator()
    permanent_sites = select_permanent_sites(
        campaign.profile, rng, sm_ids=campaign._active_sm_ids()
    )
    permanent_cycles = [
        _cycles(app, [PermanentInjectorTool(site)], config)
        for site in permanent_sites[:_SAMPLE_INJECTIONS]
    ]

    return ProgramOverheads(
        name=name,
        golden_cycles=golden.cycles,
        exact_profile_cycles=exact_cycles,
        approx_profile_cycles=approx_cycles,
        median_transient_cycles=statistics.median(transient_cycles),
        median_permanent_cycles=statistics.median(permanent_cycles),
        executed_opcodes=len(permanent_sites),
        num_dynamic_kernels=campaign.profile.num_dynamic_kernels,
    )
