"""Tables II & III — fault-model parameter spaces, generated from the code.

Rather than restating the paper, these tables are rendered from the live
implementation (group sizes from the 171-opcode ISA table, mask formulas
evaluated), so any drift between the paper's model and this code surfaces
here.
"""

from __future__ import annotations

from benchmarks.harness import emit
from repro.core.bitflip import BitFlipModel, compute_mask
from repro.core.groups import InstructionGroup, in_group
from repro.sass.isa import NUM_OPCODES, OPCODES, WARP_SIZE
from repro.utils.text import format_table


def _group_rows():
    rows = []
    descriptions = {
        InstructionGroup.G_FP64: "FP64 arithmetic instructions",
        InstructionGroup.G_FP32: "FP32 arithmetic instructions",
        InstructionGroup.G_LD: "instructions that read from memory",
        InstructionGroup.G_PR: "instructions that write predicate registers only",
        InstructionGroup.G_NODEST: "instructions with no destination register",
        InstructionGroup.G_OTHERS: "other GP-register-writing instructions",
        InstructionGroup.G_GPPR: "all - G_NODEST",
        InstructionGroup.G_GP: "all - G_NODEST - G_PR",
    }
    for group in InstructionGroup:
        members = sum(in_group(info, group) for info in OPCODES)
        rows.append([int(group), group.name, descriptions[group], members])
    return rows


def _mask_rows():
    examples = []
    for model in BitFlipModel:
        sample = compute_mask(model, 0.5, 0xDEADBEEF)
        formula = {
            BitFlipModel.FLIP_SINGLE_BIT: "0x1 << int(32 * value)",
            BitFlipModel.FLIP_TWO_BITS: "0x3 << int(31 * value)",
            BitFlipModel.RANDOM_VALUE: "int(0xffffffff * value)",
            BitFlipModel.ZERO_VALUE: "mask == original value (XOR -> 0)",
        }[model]
        examples.append(
            [int(model), model.name, formula, f"0x{sample:08x}"]
        )
    return examples


def test_table2_transient_parameters(benchmark):
    rows = benchmark.pedantic(_group_rows, rounds=1, iterations=1)
    groups = format_table(
        ["id", "arch state id", "description", "# opcodes in this ISA"],
        rows,
        title="Table II (fault types): instruction groups over the 171-opcode table",
    )
    masks = format_table(
        ["id", "bit-flip model", "mask formula", "mask @ value=0.5, old=0xdeadbeef"],
        _mask_rows(),
        title="Table II (bit-flip models)",
    )
    emit("table2_params", groups + "\n\n" + masks)


def test_table3_permanent_parameters(benchmark):
    def build():
        return format_table(
            ["parameter", "range in this implementation"],
            [
                ["SM id", "0 .. num_sms-1 (80 on the simulated Titan V)"],
                ["Lane id", f"0 .. {WARP_SIZE - 1}"],
                ["Bit mask", "any 32-bit XOR mask"],
                ["Opcode id", f"0 .. {NUM_OPCODES - 1} "
                              f"('the Volta ISA contains {NUM_OPCODES} opcodes')"],
            ],
            title="Table III: permanent fault parameters",
        )

    emit("table3_params", benchmark.pedantic(build, rounds=1, iterations=1))
