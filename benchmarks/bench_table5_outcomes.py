"""Table V — possible error-propagation outcomes.

Each row of the taxonomy is *produced by an actual injected fault* (not a
synthetic artifact): crafted fault sites drive one real run per symptom and
the classifier must report the corresponding row.
"""

from __future__ import annotations

import numpy as np

from benchmarks.harness import emit
from repro.core.bitflip import BitFlipModel
from repro.core.groups import InstructionGroup
from repro.core.injector import TransientInjectorTool
from repro.core.outcomes import Outcome, classify
from repro.core.params import TransientParams
from repro.runner.app import Application
from repro.runner.golden import capture_golden
from repro.runner.sandbox import SandboxConfig, run_app
from repro.utils.text import format_table

# One kernel whose different registers, when corrupted, produce each
# Table V symptom:  R2 = loop bound (hang), R4 = output address (DUE or
# potential-DUE via illegal address), R6 = data (SDC), dead R8 (masked).
_KERNEL = """
.kernel victim
.params 2
    S2R R1, SR_TID.X ;
    MOV R2, 20 ;
    MOV R3, RZ ;
    MOV R4, c[0x0][0x0] ;
    MOV32I R6, 0x42280000 ;
    MOV R8, 1234 ;
    PBK DONE ;
LOOP:
    ISETP.GE P0, R3, R2 ;
@P0 BRK ;
    FADD R6, R6, 1.0f ;
    IADD R3, R3, 1 ;
    BRA LOOP ;
DONE:
    ISCADD R9, R1, R4, 2 ;
    STG.32 [R9], R6 ;
    EXIT ;
"""


class VictimApp(Application):
    name = "victim"

    def __init__(self, check_errors: bool = False):
        self.check_errors = check_errors

    def run(self, ctx):
        module = ctx.cuda.load_module(_KERNEL)
        func = ctx.cuda.get_function(module, "victim")
        out = ctx.cuda.alloc(32, np.float32)
        ctx.cuda.launch(func, 1, 32, out, 0)
        if self.check_errors and ctx.cuda.synchronize() != 0:
            ctx.exit(1)
        ctx.print("victim done")
        ctx.write_file("out", out.to_host().tobytes())


def _site(instruction_count: int, bit_value: float,
          model=BitFlipModel.FLIP_SINGLE_BIT) -> TransientParams:
    return TransientParams(
        group=InstructionGroup.G_GP, model=model, kernel_name="victim",
        kernel_count=0, instruction_count=instruction_count,
        dest_reg_selector=0.0, bit_pattern_value=bit_value,
    )


def _demonstrate() -> list[list[str]]:
    rows = []
    config = SandboxConfig(instruction_budget=100_000)

    def run_case(expected_label: str, app: Application, site: TransientParams):
        golden = capture_golden(app, config)
        injector = TransientInjectorTool(site)
        observed = run_app(app, preload=[injector], config=config)
        record = classify(app, golden, observed)
        rows.append([
            expected_label,
            record.outcome.value + (" (potential DUE)" if record.potential_due else ""),
            record.symptom,
            injector.record.describe()[:64],
        ])
        return record

    # G_GP stream per warp (32 threads each): S2R,MOV,MOV,MOV,MOV32I,MOV
    # then per-iteration FADD/IADD pairs, then ISCADD.
    # SDC: corrupt the FADD data value's high mantissa on lane 0, iter 0.
    record = run_case("SDC / output file differs", VictimApp(),
                      _site(6 * 32, 20.2 / 32))
    assert record.outcome is Outcome.SDC

    # DUE via hang: flip bit 30 of the loop bound (R2, the 2nd MOV).
    record = run_case("DUE / timeout (hang)", VictimApp(),
                      _site(1 * 32, 30.2 / 32))
    assert record.outcome is Outcome.DUE

    # DUE via application detection: corrupt the output pointer (4th MOV)
    # with a random value; the checking variant exits non-zero.
    record = run_case("DUE / application detection", VictimApp(check_errors=True),
                      _site(3 * 32, 0.77, BitFlipModel.RANDOM_VALUE))
    assert record.outcome is Outcome.DUE

    # Potential DUE: same pointer corruption, but the host never checks.
    record = run_case("Potential DUE / unchecked CUDA error", VictimApp(),
                      _site(3 * 32, 0.77, BitFlipModel.RANDOM_VALUE))
    assert record.potential_due

    # Masked: corrupt the dead register R8 (the 6th GP write, a MOV).
    record = run_case("Masked / dead value", VictimApp(), _site(5 * 32, 10.2 / 32))
    assert record.outcome is Outcome.MASKED
    return rows


def test_table5_outcomes(benchmark):
    rows = benchmark.pedantic(_demonstrate, rounds=1, iterations=1)
    table = format_table(
        ["Engineered fault", "Classified outcome", "Table V symptom",
         "Injection record (truncated)"],
        rows,
        title="Table V: every outcome row produced by a real injection",
    )
    emit("table5_outcomes", table)
