"""Figure 2 — transient-fault outcomes under exact vs approximate profiling.

For every program, two full transient campaigns are run: one whose fault
sites are drawn from an exact profile and one from an approximate profile.
The figure reproduces the paper's finding: per-program outcome mixes are
similar across the two profiling modes (the paper reports averages of
32.5%/4.2%/63.3% vs 37.9%/4.5%/57.6% SDC/DUE/Masked; our absolute numbers
differ because the workloads are scaled, but the exact~approximate
agreement is the result under test).
"""

from __future__ import annotations

from benchmarks.harness import emit, make_campaign, num_injections, workload_names
from repro.core.outcomes import Outcome
from repro.core.profiler import ProfilingMode
from repro.core.report import OutcomeTally
from repro.utils.text import format_histogram_row, format_table


def _campaign_outcomes(name: str, mode: ProfilingMode) -> OutcomeTally:
    campaign = make_campaign(name, profiling=mode)
    return campaign.run_transient().tally


def _measure():
    rows = []
    exact_total = OutcomeTally()
    approx_total = OutcomeTally()
    for name in workload_names():
        exact = _campaign_outcomes(name, ProfilingMode.EXACT)
        approx = _campaign_outcomes(name, ProfilingMode.APPROXIMATE)
        exact_total = exact_total.merge(exact)
        approx_total = approx_total.merge(approx)
        rows.append((name, exact, approx))
    return rows, exact_total, approx_total


def _render(rows, exact_total, approx_total) -> str:
    lines = [
        "Figure 2: exact vs approximate profiling, transient faults "
        f"({num_injections()} injections/program)",
        "=" * 78,
    ]
    for name, exact, approx in rows:
        lines.append(format_histogram_row(f"{name} [exact]", exact.fractions()))
        lines.append(format_histogram_row(f"{'':>12} [apprx]", approx.fractions()))
    lines.append("")
    summary = format_table(
        ["profiling", "SDC", "DUE", "Masked", "paper (avg)"],
        [
            ["exact",
             f"{exact_total.fraction(Outcome.SDC) * 100:.1f}%",
             f"{exact_total.fraction(Outcome.DUE) * 100:.1f}%",
             f"{exact_total.fraction(Outcome.MASKED) * 100:.1f}%",
             "32.5 / 4.2 / 63.3"],
            ["approximate",
             f"{approx_total.fraction(Outcome.SDC) * 100:.1f}%",
             f"{approx_total.fraction(Outcome.DUE) * 100:.1f}%",
             f"{approx_total.fraction(Outcome.MASKED) * 100:.1f}%",
             "37.9 / 4.5 / 57.6"],
        ],
        title="Averages across programs",
    )
    lines.append(summary)
    return "\n".join(lines)


def test_fig2_exact_vs_approximate(benchmark):
    rows, exact_total, approx_total = benchmark.pedantic(
        _measure, rounds=1, iterations=1
    )
    emit("fig2_profiling_outcomes", _render(rows, exact_total, approx_total))
    # The paper's claim: approximate profiling preserves outcome fidelity.
    # With N injections the CI half-width is ~1.64*sqrt(0.25/N) per program;
    # across the merged suite the averages must agree within a loose bound.
    for outcome in Outcome:
        delta = abs(
            exact_total.fraction(outcome) - approx_total.fraction(outcome)
        )
        assert delta < 0.18, f"{outcome}: exact vs approximate diverged by {delta}"
