"""Extension bench — error-propagation profiles by outcome class.

The paper's abstract frames the whole problem as error *propagation*; this
bench makes the connection between propagation behaviour and the Table V
outcome classes quantitative: across a set of injections, SDC runs show a
growing corruption front in device memory, while Masked runs either never
touch memory, keep corruption within the SDC-check tolerance, or are
overwritten (architectural masking).
"""

from __future__ import annotations

from benchmarks.harness import campaign_seed, emit, quick_mode
from repro.core.campaign import Campaign, CampaignConfig
from repro.core.injector import TransientInjectorTool
from repro.core.outcomes import Outcome, classify
from repro.core.propagation import trace_propagation
from repro.runner.sandbox import run_app
from repro.utils.text import format_table
from repro.workloads import get_workload

_PROGRAM = "303.ostencil"


def _measure():
    campaign = Campaign(
        get_workload(_PROGRAM), CampaignConfig(seed=campaign_seed())
    )
    campaign.run_golden()
    campaign.run_profile()
    count = 8 if quick_mode() else 20
    config = campaign._injection_config()

    stats = {
        Outcome.SDC: {"n": 0, "reached": 0, "peak": 0, "final": 0, "gone": 0},
        Outcome.MASKED: {"n": 0, "reached": 0, "peak": 0, "final": 0, "gone": 0},
        Outcome.DUE: {"n": 0, "reached": 0, "peak": 0, "final": 0, "gone": 0},
    }
    for site in campaign.select_sites(count):
        injector = TransientInjectorTool(site)
        observed = run_app(campaign.app, preload=[injector], config=config)
        outcome = classify(campaign.app, campaign.golden, observed).outcome
        trace = trace_propagation(
            campaign.app, TransientInjectorTool(site), config
        )
        bucket = stats[outcome]
        bucket["n"] += 1
        if trace.peak_corruption:
            bucket["reached"] += 1
        bucket["peak"] += trace.peak_corruption
        bucket["final"] += trace.final_corruption
        if trace.was_overwritten:
            bucket["gone"] += 1
    return count, stats


def test_extension_propagation_profiles(benchmark):
    count, stats = benchmark.pedantic(_measure, rounds=1, iterations=1)
    rows = []
    for outcome, bucket in stats.items():
        n = max(bucket["n"], 1)
        rows.append([
            outcome.value,
            bucket["n"],
            bucket["reached"],
            f"{bucket['peak'] / n:.0f} B",
            f"{bucket['final'] / n:.0f} B",
            bucket["gone"],
        ])
    table = format_table(
        ["outcome", "faults", "reached memory", "mean peak corruption",
         "mean final corruption", "overwritten"],
        rows,
        title=f"Extension: propagation profiles for {count} faults in {_PROGRAM}",
    )
    emit("ext_propagation", table)

    sdc = stats[Outcome.SDC]
    masked = stats[Outcome.MASKED]
    if sdc["n"] and masked["n"]:
        # SDC runs must end with (strictly) more memory corruption on
        # average than masked runs — that is what "silent data corruption
        # reached the output" means mechanically.
        assert sdc["final"] / sdc["n"] > masked["final"] / max(masked["n"], 1)
        # And every SDC run's corruption reached memory at all.
        assert sdc["reached"] == sdc["n"]
