"""Table IV — the 15 SpecACCEL programs: static / dynamic kernel counts.

The bench profiles every program and prints the measured counts next to the
paper's.  Dynamic counts are intentionally scaled down (~1/10 .. 1/200, see
EXPERIMENTS.md); static-kernel diversity is preserved program-by-program
where tractable.
"""

from __future__ import annotations

from benchmarks.harness import emit, workload_names
from repro.core.profiler import ProfilerTool, ProfilingMode
from repro.runner.sandbox import run_app
from repro.utils.text import format_table
from repro.workloads import get_workload


def _measure() -> list[list]:
    rows = []
    for name in workload_names():
        app = get_workload(name)
        profiler = ProfilerTool(ProfilingMode.APPROXIMATE)
        artifacts = run_app(app, preload=[profiler])
        assert artifacts.exit_status == 0, f"{name}: {artifacts.summary()}"
        profile = profiler.profile
        rows.append([
            name,
            app.description,
            app.paper_static_kernels,
            profile.num_static_kernels,
            app.paper_dynamic_kernels,
            profile.num_dynamic_kernels,
            profile.total_count(),
        ])
    return rows


def test_table4_benchmark_programs(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table = format_table(
        ["Program", "Description", "Static (paper)", "Static (ours)",
         "Dynamic (paper)", "Dynamic (ours)", "Dyn. instructions (ours)"],
        rows,
        title="Table IV: SpecACCEL OpenACC 1.2 benchmark programs "
              "(ours = scaled reproduction)",
    )
    emit("table4_kernel_counts", table)
    # Structural assertions: ilbdc is the single-static-kernel program and
    # sp/csp carry the largest dynamic counts, as in the paper.
    by_name = {row[0]: row for row in rows}
    if "360.ilbdc" in by_name:
        assert by_name["360.ilbdc"][3] == 1
    if "356.sp" in by_name and "314.omriq" in by_name:
        assert by_name["356.sp"][5] > by_name["314.omriq"][5]
