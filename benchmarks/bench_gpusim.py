"""Interpreter throughput — ``BENCH_gpusim.json``.

The block-compiled execution tier (:mod:`repro.gpusim.blockc`) exists to
make the launches that *must* be simulated — golden runs and
never-reconverging divergent suffixes — cheaper.  This benchmark measures
raw interpreter throughput in **warp-instructions per second**, per-step
versus block-compiled, two ways:

* a synthetic ALU-loop microbench (tight straight-line loop body, the
  best case for block compilation and the number the ``blockc``
  acceptance floor is defined against), and
* one uninstrumented golden run of each workload (the realistic mix of
  ALU, memory and control instructions).

Both sides of every comparison must agree exactly on instruction and
cycle totals — the block-compiled tier is an execution *strategy*, not a
semantics change — and the workload rows additionally diff stdout and
output files.

Wall clocks on a loaded box swing hard, so the microbench interleaves
step/block rounds and keeps the best round per mode before computing the
speedup ratio.  ``REPRO_QUICK=1`` shrinks iteration counts and skips the
speedup floor (CI smoke boxes are too noisy to assert throughput).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from benchmarks.harness import emit, quick_mode, workload_names
from repro.gpusim.device import Device
from repro.runner.sandbox import SandboxConfig, run_app
from repro.sass import assemble
from repro.utils.text import format_table
from repro.workloads import get_workload

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_gpusim.json"

# Acceptance floor for the block-compiled tier on the straight-line
# microbench (best-of-rounds, uninstrumented).  Measured ~2.0x on an
# unloaded box; 1.5x leaves headroom for slower hosts.
_MIN_MICRO_SPEEDUP = 1.5

# Tight ALU loop: one ISETP/BRA pair of control per 9 straight-line
# instructions, so almost the whole dynamic stream is block-compilable.
_MICRO_SRC = """
.kernel hot
.params 1
    MOV R1, RZ ;
    MOV R2, c[0x0][0x0] ;
    MOV R6, 0x3f800000 ;
LOOP:
    ISETP.GE P0, R1, R2 ;
@P0 BRA DONE ;
    IADD R3, R1, 7 ;
    SHL R4, R3, 2 ;
    LOP.XOR R5, R4, R3 ;
    FADD R6, R6, R6 ;
    FMUL R7, R6, R6 ;
    FFMA R8, R6, R7, R8 ;
    IMAD R9, R3, R4, R5 ;
    SHR R10, R9, 3 ;
    IADD R1, R1, 1 ;
    BRA LOOP ;
DONE:
    EXIT ;
"""


def _micro_run(block_compile: bool, iterations: int):
    """One timed launch; returns (warp_instructions, seconds, counters)."""
    kernel = assemble(_MICRO_SRC).get("hot")
    device = Device(num_sms=1, block_compile=block_compile)
    device.launch(kernel, 1, 32, [10])  # warm: pays codegen outside the clock
    before = device.instructions_executed
    started = time.perf_counter()
    device.launch(kernel, 2, 256, [iterations])
    seconds = time.perf_counter() - started
    executed = device.instructions_executed - before
    return executed, seconds, (device.instructions_executed, device.cycles)


def _measure_micro():
    iterations = 100 if quick_mode() else 1000
    rounds = 1 if quick_mode() else 3
    best = {False: 0.0, True: 0.0}
    executed = counters = None
    for _ in range(rounds):
        for block_compile in (False, True):
            n, seconds, totals = _micro_run(block_compile, iterations)
            best[block_compile] = max(best[block_compile], n / seconds)
            if counters is None:
                executed, counters = n, totals
            else:
                assert totals == counters, (
                    f"microbench counters diverged: {totals} != {counters}"
                )
    return {
        "warp_instructions": executed,
        "step_winstr_per_sec": round(best[False], 1),
        "blockc_winstr_per_sec": round(best[True], 1),
        "speedup": round(best[True] / best[False], 2),
    }


def _workload_run(name: str, block_compile: bool):
    app = get_workload(name)
    started = time.perf_counter()
    artifacts = run_app(app, config=SandboxConfig(block_compile=block_compile))
    seconds = time.perf_counter() - started
    return artifacts, seconds


def _measure_workloads():
    names = workload_names()
    if quick_mode():
        names = names[:2]
    rounds = 1 if quick_mode() else 2
    rows = []
    for name in names:
        # Best-of interleaved rounds, like the microbench: one end-to-end
        # run is noisy, and the first block-compiled run additionally pays
        # codegen inside the clock (later rounds hit the process-global
        # layout cache, which is the steady state of a real campaign).
        best = {False: float("inf"), True: float("inf")}
        step = blockc = None
        for _ in range(rounds):
            step, step_seconds = _workload_run(name, block_compile=False)
            blockc, blockc_seconds = _workload_run(name, block_compile=True)
            assert step.instructions_executed == blockc.instructions_executed, name
            assert step.cycles == blockc.cycles, name
            assert step.stdout == blockc.stdout, name
            assert step.files == blockc.files, name
            best[False] = min(best[False], step_seconds)
            best[True] = min(best[True], blockc_seconds)
        executed = step.instructions_executed
        rows.append({
            "workload": name,
            "warp_instructions": executed,
            "step_seconds": round(best[False], 3),
            "blockc_seconds": round(best[True], 3),
            "step_winstr_per_sec": round(executed / best[False], 1),
            "blockc_winstr_per_sec": round(executed / best[True], 1),
            "speedup": round(best[False] / best[True], 2),
            "blocks_compiled": blockc.blockc_blocks_compiled,
            "block_hits": blockc.blockc_block_hits,
        })
    return rows


def test_interpreter_throughput(benchmark):
    micro, workloads = benchmark.pedantic(
        lambda: (_measure_micro(), _measure_workloads()), rounds=1, iterations=1
    )

    payload = {
        "benchmark": "gpusim_throughput",
        "quick": quick_mode(),
        "microbench": micro,
        "workloads": workloads,
        "micro_speedup_floor": _MIN_MICRO_SPEEDUP,
        "counters_identical": True,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    table_rows = [
        [
            "microbench (ALU loop)",
            micro["warp_instructions"],
            f"{micro['step_winstr_per_sec'] / 1e3:.1f}k/s",
            f"{micro['blockc_winstr_per_sec'] / 1e3:.1f}k/s",
            f"{micro['speedup']:.2f}x",
            "-",
        ]
    ] + [
        [
            row["workload"],
            row["warp_instructions"],
            f"{row['step_winstr_per_sec'] / 1e3:.1f}k/s",
            f"{row['blockc_winstr_per_sec'] / 1e3:.1f}k/s",
            f"{row['speedup']:.2f}x",
            f"{row['block_hits']}",
        ]
        for row in workloads
    ]
    emit(
        "gpusim_throughput",
        format_table(
            ["Program", "Warp-instrs", "Step", "Block-compiled", "Speedup",
             "Block hits"],
            table_rows,
            title="Interpreter throughput: per-step vs block-compiled "
                  "(instruction/cycle totals identical throughout)",
        ),
    )

    # Block compilation must actually engage on the workloads.
    assert all(row["blocks_compiled"] > 0 for row in workloads)
    assert all(row["block_hits"] > 0 for row in workloads)
    if not quick_mode():
        assert micro["speedup"] >= _MIN_MICRO_SPEEDUP, (
            f"block-compiled microbench speedup regressed: "
            f"{micro['speedup']:.2f}x < {_MIN_MICRO_SPEEDUP}x "
            f"(see {BENCH_PATH})"
        )
