"""Table I — physical-GPU fault-injection tool comparison.

The table itself is literature data; the benchmark *verifies* the NVBitFI
rows against this implementation by demonstrating (and timing) the two
differentiating capabilities: injection into a source-free binary module,
and injection into a dynamically loaded library.
"""

from __future__ import annotations

import numpy as np

from benchmarks.harness import emit
from repro.core.bitflip import BitFlipModel
from repro.core.groups import InstructionGroup
from repro.core.injector import TransientInjectorTool
from repro.core.params import TransientParams
from repro.runner.app import Application
from repro.runner.sandbox import run_app
from repro.sass import assemble, encode_module
from repro.utils.text import format_table
from repro.workloads import AvPipeline

TABLE_I = [
    ["2020", "NVBitFI", "NVBit", "SASS", "No", "Yes"],
    ["2017", "SASSIFI", "SASSI", "SASS", "Yes", "No"],
    ["2016", "LLFI-GPU", "LLVM", "LLVM IR", "Yes", "No"],
    ["2014", "GPU-Qin", "cuda-gdb", "SASS", "No", "Maybe"],
    ["2011", "Hauberk", "source code", "C++", "Yes", "No"],
]

_BINARY_ONLY = """
.kernel closed_source
.params 1
    S2R R1, SR_TID.X ;
    IADD R2, R1, 41 ;
    MOV R3, c[0x0][0x0] ;
    ISCADD R4, R1, R3, 2 ;
    STG.32 [R4], R2 ;
    EXIT ;
"""


class BinaryOnlyApp(Application):
    """A host program that only ever sees the *encoded* module bytes."""

    name = "binary_only"

    def __init__(self, blob: bytes):
        self.blob = blob

    def run(self, ctx):
        module = ctx.cuda.driver.cuModuleLoadData(self.blob, name="closed.cubin")
        func = ctx.cuda.get_function(module, "closed_source")
        out = ctx.cuda.alloc(32, np.uint32)
        ctx.cuda.launch(func, 1, 32, out)
        ctx.write_file("out", out.to_host().tobytes())


def _verify_no_source_needed() -> str:
    blob = encode_module(assemble(_BINARY_ONLY))
    app = BinaryOnlyApp(blob)
    params = TransientParams(
        group=InstructionGroup.G_GP, model=BitFlipModel.FLIP_SINGLE_BIT,
        kernel_name="closed_source", kernel_count=0, instruction_count=35,
        dest_reg_selector=0.0, bit_pattern_value=0.2,
    )
    injector = TransientInjectorTool(params)
    run_app(app, preload=[injector])
    assert injector.record.injected
    return "verified: injected into a binary-only (no-source) module"


def _verify_library_injection() -> str:
    params = TransientParams(
        group=InstructionGroup.G_GP, model=BitFlipModel.FLIP_SINGLE_BIT,
        kernel_name="planning_track", kernel_count=1, instruction_count=10,
        dest_reg_selector=0.0, bit_pattern_value=0.4,
    )
    injector = TransientInjectorTool(params)
    run_app(AvPipeline(), preload=[injector])
    assert injector.record.injected
    return "verified: injected into a dynamically loaded library kernel"


def test_table1_tool_comparison(benchmark):
    proofs = benchmark.pedantic(
        lambda: [_verify_no_source_needed(), _verify_library_injection()],
        rounds=1, iterations=1,
    )
    table = format_table(
        ["Year", "Tool", "Injection mechanism", "Fault model level",
         "Needs source code?", "Inject libraries?"],
        TABLE_I,
        title="Table I: physical-GPU fault injection tools",
    )
    emit("table1_tools", table + "\n\n" + "\n".join(proofs))
