"""Figure 5 — total campaign times (100 transient faults vs permanent).

The paper's campaign-time model: a transient campaign profiles once and
runs 100 injection experiments; a permanent campaign runs one experiment
per *executed* opcode (16..41 of the 171 in their suite — unused opcodes
are skipped thanks to the profile).  The paper observes transient campaigns
typically take about twice as long as permanent ones, ranging from ~5x
longer to slightly faster.
"""

from __future__ import annotations

import statistics

from benchmarks.harness import campaign_seed, emit
from benchmarks.overheads import measure_all
from repro.utils.text import format_table

_TRANSIENT_FAULTS = 100  # the paper's campaign size


def _render(measurements) -> str:
    rows = []
    ratios = []
    for item in measurements:
        transient = item.transient_campaign_cycles(_TRANSIENT_FAULTS)
        permanent = item.permanent_campaign_cycles()
        ratio = transient / permanent
        ratios.append(ratio)
        rows.append([
            item.name,
            f"{transient / 1e6:.1f} Mcyc",
            f"{permanent / 1e6:.1f} Mcyc",
            item.executed_opcodes,
            f"{ratio:.2f}x",
        ])
    rows.append([
        "typical (median)", "-", "-", "-",
        f"{statistics.median(ratios):.2f}x",
    ])
    return format_table(
        ["Program", f"Transient campaign ({_TRANSIENT_FAULTS} faults)",
         "Permanent campaign", "Executed opcodes (of 171)",
         "Transient / permanent"],
        rows,
        title="Figure 5: total campaign times "
              "(paper: transient typically ~2x permanent, 5x to <1x range)",
    )


def test_fig5_parallel_engine_campaign(benchmark):
    """The campaign-speed claim, exercised end-to-end: a real (small)
    transient campaign through :class:`CampaignEngine` with injection runs
    fanned out over a process pool — the paper's ``run_injections.py -p``
    path — checking the engine's throughput metrics and result integrity."""
    from repro.core.campaign import CampaignConfig
    from repro.core.engine import CampaignEngine, ParallelExecutor

    engines = []

    def run():
        engine = CampaignEngine(
            "314.omriq",
            CampaignConfig(num_transient=8, seed=campaign_seed()),
            executor=ParallelExecutor(max_workers=2, chunksize=2),
        )
        engines.append(engine)
        return engine.run_transient()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    engine = engines[-1]
    emit(
        "fig5_parallel_engine",
        f"parallel engine campaign (8 faults, 2 workers): "
        f"{engine.metrics.summary()}",
    )
    assert len(result.results) == 8
    assert result.tally.total == 8
    assert engine.metrics.injections_per_second > 0
    assert engine.metrics.phase_seconds.keys() >= {"golden", "profile", "inject"}


def test_fig5_campaign_times(benchmark):
    measurements = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    emit("fig5_campaign_times", _render(measurements))

    # Unused-opcode pruning is real: every program exercises far fewer than
    # the 171 table opcodes (the paper saw 16..41).
    for item in measurements:
        assert item.executed_opcodes < 60

    # Transient campaigns dominate permanent ones for most programs (the
    # paper: 'typically about twice the time ... as much as 5x or slightly
    # faster').
    ratios = [
        m.transient_campaign_cycles(_TRANSIENT_FAULTS) / m.permanent_campaign_cycles()
        for m in measurements
    ]
    median_ratio = statistics.median(ratios)
    assert 1.0 < median_ratio < 15.0  # scaled suite inflates vs the paper's ~2x
