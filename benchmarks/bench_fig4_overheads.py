"""Figure 4 — execution overheads of profiling and injection.

Per program, relative to the uninstrumented runtime:

* exact profiling (every dynamic instruction instrumented),
* approximate profiling (first instance of each static kernel only),
* median transient-injection run (one dynamic kernel instrumented),
* median permanent-injection run (matching instructions in every kernel).

The paper's qualitative results under test: exact profiling is by far the
most expensive (on average 28x more than approximate on their testbed, up
to 558x for 350.md); injection runs are cheap (2.9x transient, 4.8x
permanent on average); and permanent injection costs more than transient.
Absolute ratios differ on a simulated substrate; the ordering is asserted.
"""

from __future__ import annotations

import statistics

from benchmarks.harness import emit
from benchmarks.overheads import measure_all
from repro.utils.text import format_table


def _render(measurements) -> str:
    rows = []
    for item in measurements:
        rows.append([
            item.name,
            f"{item.golden_cycles / 1e3:.0f} kcyc",
            f"{item.exact_overhead:.1f}x",
            f"{item.approx_overhead:.1f}x",
            f"{item.transient_overhead:.1f}x",
            f"{item.permanent_overhead:.1f}x",
        ])
    geo = lambda values: statistics.geometric_mean(values)  # noqa: E731
    rows.append([
        "average (geomean)",
        "-",
        f"{geo([m.exact_overhead for m in measurements]):.1f}x",
        f"{geo([m.approx_overhead for m in measurements]):.1f}x",
        f"{geo([m.transient_overhead for m in measurements]):.1f}x",
        f"{geo([m.permanent_overhead for m in measurements]):.1f}x",
    ])
    table = format_table(
        ["Program", "Uninstr. runtime (sim)", "Exact profiling", "Approx profiling",
         "Transient injection", "Permanent injection"],
        rows,
        title="Figure 4: execution overheads in simulated GPU cycles "
              "(paper averages: exact = 28x approx, transient 2.9x, permanent 4.8x)",
    )
    return table


def test_fig4_execution_overheads(benchmark):
    measurements = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    emit("fig4_overheads", _render(measurements))

    exact = [m.exact_overhead for m in measurements]
    approx = [m.approx_overhead for m in measurements]
    transient = [m.transient_overhead for m in measurements]
    permanent = [m.permanent_overhead for m in measurements]

    # Shape assertions from the paper:
    # (1) exact profiling costs more than approximate on average;
    assert statistics.geometric_mean(exact) > statistics.geometric_mean(approx)
    # (2) profiling (exact) costs more than a transient injection run;
    assert statistics.geometric_mean(exact) > statistics.geometric_mean(transient)
    # (3) permanent injection costs more than transient injection — the
    # paper's 4.8x vs 2.9x.  This holds when the target dynamic kernel is a
    # small fraction of the program; programs scaled down to a handful of
    # dynamic kernels (e.g. 314.omriq with 2) legitimately invert it, so the
    # comparison is made over programs with >= 10 dynamic kernels.
    large = [m for m in measurements if m.num_dynamic_kernels >= 10]
    if large:
        assert statistics.geometric_mean(
            [m.permanent_overhead for m in large]
        ) > statistics.geometric_mean(
            [m.transient_overhead for m in large]
        ) * 0.8
