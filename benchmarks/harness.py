"""Shared infrastructure for the paper-reproduction benchmarks.

Environment knobs:

* ``REPRO_INJECTIONS`` — transient injections per program (default 30; the
  paper used 100, which the harness fully supports — see EXPERIMENTS.md for
  the confidence-interval implications of the default).
* ``REPRO_QUICK=1``   — restrict to four representative programs with 6
  injections each (smoke mode).
* ``REPRO_SEED``      — campaign seed (default 2021, the paper's year).

Every benchmark writes its rendered table/figure to
``benchmarks/results/<name>.txt`` in addition to printing it.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.core.campaign import Campaign, CampaignConfig
from repro.core.profiler import ProfilingMode
from repro.workloads import WORKLOAD_CLASSES, get_workload

RESULTS_DIR = Path(__file__).parent / "results"

_QUICK_SUBSET = ("303.ostencil", "314.omriq", "352.ep", "360.ilbdc")


def quick_mode() -> bool:
    return os.environ.get("REPRO_QUICK", "") == "1"


def num_injections() -> int:
    if quick_mode():
        return 6
    return int(os.environ.get("REPRO_INJECTIONS", "30"))


def campaign_seed() -> int:
    return int(os.environ.get("REPRO_SEED", "2021"))


def workload_names() -> list[str]:
    if quick_mode():
        return list(_QUICK_SUBSET)
    return [cls.name for cls in WORKLOAD_CLASSES]


def make_campaign(name: str, profiling: ProfilingMode = ProfilingMode.EXACT,
                  injections: int | None = None) -> Campaign:
    config = CampaignConfig(
        num_transient=injections if injections is not None else num_injections(),
        seed=campaign_seed(),
        profiling=profiling,
    )
    return Campaign(get_workload(name), config)


def emit(name: str, text: str) -> None:
    """Print a rendered table/figure and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
