"""Figure 3 — relative outcomes for permanent faults.

One permanent injection per executed opcode per program (paper §IV-B: '171
runs ... one opcode out of the possible 171' with unused opcodes skipped
via the profile), each run's outcome weighted by the opcode's share of the
program's dynamic instructions.

The paper's headline comparison: masked outcomes drop from 57.6% (transient)
to 17.4% (permanent) because a permanent fault activates repeatedly.  The
bench asserts the *shape*: permanent faults mask less and corrupt more than
transient faults on the same programs.
"""

from __future__ import annotations

from benchmarks.harness import emit, make_campaign, workload_names
from repro.core.outcomes import Outcome
from repro.core.report import OutcomeTally
from repro.utils.text import format_histogram_row, format_table


def _measure():
    rows = []
    weighted_total = OutcomeTally()
    transient_total = OutcomeTally()
    for name in workload_names():
        campaign = make_campaign(name)
        transient = campaign.run_transient()
        permanent = campaign.run_permanent()
        weighted_total = weighted_total.merge(permanent.tally)
        transient_total = transient_total.merge(transient.tally)
        rows.append((name, permanent, transient))
    return rows, weighted_total, transient_total


def _render(rows, weighted_total, transient_total) -> str:
    lines = [
        "Figure 3: relative outcomes for permanent faults "
        "(weighted by opcode dynamic-instruction share)",
        "=" * 78,
    ]
    for name, permanent, _ in rows:
        lines.append(
            format_histogram_row(name, permanent.tally.fractions())
        )
        executed = len(permanent.results)
        lines.append(
            f"{'':>16}  {executed} executed opcodes injected "
            f"(unused opcodes skipped, as in §IV-C)"
        )
    comparison = format_table(
        ["fault type", "SDC", "DUE", "Masked", "paper Masked"],
        [
            ["transient (ours)",
             f"{transient_total.fraction(Outcome.SDC) * 100:.1f}%",
             f"{transient_total.fraction(Outcome.DUE) * 100:.1f}%",
             f"{transient_total.fraction(Outcome.MASKED) * 100:.1f}%",
             "57.6%"],
            ["permanent (ours)",
             f"{weighted_total.fraction(Outcome.SDC) * 100:.1f}%",
             f"{weighted_total.fraction(Outcome.DUE) * 100:.1f}%",
             f"{weighted_total.fraction(Outcome.MASKED) * 100:.1f}%",
             "17.4%"],
        ],
        title="Transient vs permanent (suite averages)",
    )
    lines.append("")
    lines.append(comparison)
    return "\n".join(lines)


def test_fig3_permanent_outcomes(benchmark):
    rows, weighted_total, transient_total = benchmark.pedantic(
        _measure, rounds=1, iterations=1
    )
    emit("fig3_permanent", _render(rows, weighted_total, transient_total))
    # Shape assertion: permanent faults are activated many times, so they
    # mask strictly less than transients and produce at least as many SDCs.
    assert weighted_total.fraction(Outcome.MASKED) < transient_total.fraction(
        Outcome.MASKED
    )
    assert weighted_total.fraction(Outcome.SDC) > transient_total.fraction(
        Outcome.SDC
    ) * 0.9
