"""Ablation — selective dynamic instrumentation (the core NVBitFI design).

The paper's central performance claim (§I, §V): NVBitFI limits
instrumentation to *the dynamic instance of the target kernel*; everything
else runs unmodified.  The ablation compares three injector variants on
the same fault site:

* **selective** (NVBitFI): only the targeted dynamic kernel instance runs
  instrumented;
* **kernel-wide** (SASSIFI-style static instrumentation): every instance of
  the target static kernel runs instrumented;
* **whole-program** (debugger-style, GPU-Qin/cuda-gdb class): every kernel
  of every launch runs instrumented.

Simulated-cycle overheads must be strictly ordered.
"""

from __future__ import annotations

import statistics

from benchmarks.harness import campaign_seed, emit, workload_names
from repro.core.campaign import Campaign, CampaignConfig
from repro.core.groups import instruction_in_group
from repro.core.injector import TransientInjectorTool
from repro.cuda.driver import CudaEvent
from repro.nvbit.instr import IPoint
from repro.runner.sandbox import run_app
from repro.utils.text import format_table
from repro.workloads import get_workload


class KernelWideInjector(TransientInjectorTool):
    """Ablation: instrument every dynamic instance of the target kernel."""

    def nvbit_at_cuda_event(self, driver, event, payload, is_exit) -> None:
        if event is not CudaEvent.LAUNCH_KERNEL:
            return
        func = payload.func
        if func.name != self.params.kernel_name:
            return
        if not is_exit:
            instance = self._instance_counter.get(func.name, 0)
            self._instrument(func)
            self.nvbit.enable_instrumented(func, True)  # every instance
            self._armed = (
                instance == self.params.kernel_count and not self.record.injected
            )
            if self._armed:
                self._instr_counter = 0
        else:
            self._instance_counter[func.name] = (
                self._instance_counter.get(func.name, 0) + 1
            )
            self._armed = False


class WholeProgramInjector(KernelWideInjector):
    """Ablation: instrument every instruction of every kernel."""

    def nvbit_at_cuda_event(self, driver, event, payload, is_exit) -> None:
        if event is not CudaEvent.LAUNCH_KERNEL:
            return
        func = payload.func
        if not is_exit:
            if func not in self._instrumented:
                for instr in self.nvbit.get_instrs(func):
                    if instruction_in_group(instr.raw, self.params.group):
                        instr.insert_call(self._visit, IPoint.AFTER)
                    else:
                        instr.insert_call(self._observe, IPoint.AFTER)
                self._instrumented.add(func)
            self.nvbit.enable_instrumented(func, True)
            if func.name == self.params.kernel_name:
                instance = self._instance_counter.get(func.name, 0)
                self._armed = (
                    instance == self.params.kernel_count
                    and not self.record.injected
                )
                if self._armed:
                    self._instr_counter = 0
        else:
            if func.name == self.params.kernel_name:
                self._instance_counter[func.name] = (
                    self._instance_counter.get(func.name, 0) + 1
                )
                self._armed = False

    def _observe(self, site) -> None:
        """Debugger-style per-instruction state maintenance (pure overhead)."""

    def _visit(self, site) -> None:
        if self._armed:
            super()._visit(site)


def _measure():
    rows = []
    ratios = {"kernel-wide": [], "whole-program": []}
    for name in workload_names():
        campaign = Campaign(
            get_workload(name), CampaignConfig(seed=campaign_seed())
        )
        campaign.run_golden()
        campaign.run_profile()
        site = campaign.select_sites(1)[0]
        config = campaign._injection_config()
        golden_cycles = campaign.golden.cycles

        cycles = {}
        for label, factory in (
            ("selective", TransientInjectorTool),
            ("kernel-wide", KernelWideInjector),
            ("whole-program", WholeProgramInjector),
        ):
            injector = factory(site)
            artifacts = run_app(campaign.app, preload=[injector], config=config)
            assert injector.record.injected, (name, label)
            cycles[label] = artifacts.cycles / golden_cycles
        rows.append([
            name,
            f"{cycles['selective']:.1f}x",
            f"{cycles['kernel-wide']:.1f}x",
            f"{cycles['whole-program']:.1f}x",
        ])
        ratios["kernel-wide"].append(cycles["kernel-wide"] / cycles["selective"])
        ratios["whole-program"].append(
            cycles["whole-program"] / cycles["selective"]
        )
    return rows, ratios


def test_ablation_selective_instrumentation(benchmark):
    rows, ratios = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table = format_table(
        ["Program", "Selective (NVBitFI)", "Kernel-wide (SASSIFI-style)",
         "Whole-program (debugger-style)"],
        rows,
        title="Ablation: injection-run overhead vs instrumentation scope "
              "(x over uninstrumented, simulated cycles)",
    )
    summary = (
        f"\nmedian cost of dropping selectivity: "
        f"kernel-wide {statistics.median(ratios['kernel-wide']):.1f}x, "
        f"whole-program {statistics.median(ratios['whole-program']):.1f}x "
        f"the selective injector's runtime"
    )
    emit("ablation_selective", table + summary)
    # Selectivity must never lose, and whole-program must be the worst.
    assert statistics.median(ratios["kernel-wide"]) >= 1.0
    assert statistics.median(ratios["whole-program"]) >= statistics.median(
        ratios["kernel-wide"]
    )
