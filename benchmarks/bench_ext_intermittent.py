"""Extension bench — intermittent faults (paper §V future work).

Sweeps the activation probability of an intermittent fault between the
transient limit (activates ~once) and the permanent limit (always active),
showing how error propagation interpolates between the two regimes of
Figures 2 and 3: more activations => fewer masked outcomes.
"""

from __future__ import annotations

from benchmarks.harness import campaign_seed, emit, quick_mode
from repro.core.campaign import Campaign, CampaignConfig
from repro.core.outcomes import Outcome
from repro.core.params import IntermittentParams
from repro.core.report import OutcomeTally
from repro.core.site_selection import select_permanent_sites
from repro.utils.rng import SeedSequenceStream
from repro.utils.text import format_table
from repro.workloads import get_workload

_PROBABILITIES = (0.01, 0.1, 0.5, 1.0)
_PROGRAMS = ("303.ostencil", "360.ilbdc")


def _measure():
    rows = []
    tallies: dict[float, OutcomeTally] = {p: OutcomeTally() for p in _PROBABILITIES}
    activations: dict[float, int] = {p: 0 for p in _PROBABILITIES}
    programs = _PROGRAMS[:1] if quick_mode() else _PROGRAMS
    for name in programs:
        campaign = Campaign(get_workload(name), CampaignConfig(seed=campaign_seed()))
        campaign.run_golden()
        campaign.run_profile()
        rng = SeedSequenceStream(campaign_seed(), path=name).child("int").generator()
        sites = select_permanent_sites(
            campaign.profile, rng, sm_ids=campaign._active_sm_ids()
        )
        for probability in _PROBABILITIES:
            for index, site in enumerate(sites[:10]):
                result = campaign.run_intermittent(
                    IntermittentParams(
                        site,
                        process="random",
                        activation_probability=probability,
                        seed=index,
                    )
                )
                tallies[probability].add(result.outcome)
                activations[probability] += result.activations
    for probability in _PROBABILITIES:
        tally = tallies[probability]
        rows.append([
            f"{probability:.2f}",
            activations[probability],
            f"{tally.fraction(Outcome.SDC) * 100:.0f}%",
            f"{tally.fraction(Outcome.DUE) * 100:.0f}%",
            f"{tally.fraction(Outcome.MASKED) * 100:.0f}%",
        ])
    return rows, tallies


def test_extension_intermittent_sweep(benchmark):
    rows, tallies = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table = format_table(
        ["activation probability", "total activations", "SDC", "DUE", "Masked"],
        rows,
        title="Extension (paper Sec. V future work): intermittent-fault sweep "
              "from near-transient (p=0.01) to permanent (p=1.0)",
    )
    emit("ext_intermittent", table)
    # More activations can only reduce masking (monotone trend endpoint check).
    assert tallies[1.0].fraction(Outcome.MASKED) <= tallies[0.01].fraction(
        Outcome.MASKED
    )
