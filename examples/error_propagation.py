#!/usr/bin/env python
"""Watching an injected error propagate through device memory.

"A key component of these dependability characteristics is the propagation
of errors and their eventual effect on system outputs" (paper, abstract).
This example injects faults into an iterative stencil and traces the
corruption front through memory after every dynamic kernel: some faults
spread across the grid (SDC), some are overwritten before they matter
(architectural masking), some never reach memory at all.

Run:  python examples/error_propagation.py
"""

from __future__ import annotations

from repro.core import (
    Campaign,
    CampaignConfig,
    Outcome,
    TransientInjectorTool,
    classify,
    trace_propagation,
)
from repro.runner import run_app
from repro.workloads import get_workload


def main() -> None:
    app = get_workload("303.ostencil")
    campaign = Campaign(app, CampaignConfig(seed=77))
    campaign.run_golden()
    campaign.run_profile()
    sites = campaign.select_sites(8)
    config = campaign._injection_config()

    print(f"tracing error propagation for 8 faults in {app.name}\n")
    for index, site in enumerate(sites):
        injector = TransientInjectorTool(site)
        observed = run_app(app, preload=[injector], config=config)
        outcome = classify(app, campaign.golden, observed)

        # A second pair of runs with the memory tracer attached.
        trace = trace_propagation(app, TransientInjectorTool(site), config)

        print(f"fault {index}: {site.kernel_name}[{site.kernel_count}] "
              f"instr {site.instruction_count} -> {outcome.label()}")
        if injector.record.injected:
            print(f"  {injector.record.describe()}")
        for line in trace.describe().splitlines():
            print(f"  {line}")
        if trace.points and trace.peak_corruption:
            front = " -> ".join(
                str(point.corrupt_bytes) for point in trace.points[:12]
            )
            print(f"  corruption front (bytes/launch): {front}"
                  + (" ..." if len(trace.points) > 12 else ""))
        if outcome.outcome is Outcome.MASKED and trace.peak_corruption:
            print("  NOTE: corruption reached memory but the SDC check "
                  "tolerated or the program overwrote it")
        print()


if __name__ == "__main__":
    main()
