#!/usr/bin/env python
"""Quickstart: inject one transient fault into a SAXPY kernel.

Walks the whole Figure-1 workflow through the stable :mod:`repro.api`
facade on a five-line application:

1. define a target program (host code + one GPU kernel),
2. profile it (golden run + exact profiling run) — ``repro.profile``,
3. pick a fault site uniformly from the profile — ``repro.select_sites``,
4. run the injection and classify the outcome — ``repro.inject``.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.runner import Application

SAXPY = """
.kernel saxpy
.params 4
    S2R R1, SR_TID.X ;
    MOV R2, c[0x0][0x0] ;          // n
    ISETP.GE.U32 P0, R1, R2 ;
@P0 EXIT ;
    MOV R3, c[0x0][0x4] ;          // x
    ISCADD R4, R1, R3, 2 ;
    LDG.32 R5, [R4] ;
    MOV R6, c[0x0][0x8] ;          // y
    ISCADD R7, R1, R6, 2 ;
    LDG.32 R8, [R7] ;
    MOV R9, c[0x0][0xc] ;          // a (f32 bits)
    FFMA R10, R5, R9, R8 ;         // a*x + y
    STG.32 [R7], R10 ;
    EXIT ;
"""


class SaxpyApp(Application):
    """y = a*x + y over 64 elements; prints a checksum, writes y out."""

    name = "saxpy_demo"

    def run(self, ctx):
        n = 64
        rt = ctx.cuda
        module = rt.load_module(SAXPY, name="saxpy_module")
        saxpy = rt.get_function(module, "saxpy")
        x = rt.to_device(np.arange(n, dtype=np.float32))
        y = rt.to_device(np.ones(n, dtype=np.float32))
        rt.launch(saxpy, 2, 32, n, x, y, 2.0)
        result = y.to_host()
        ctx.print(f"saxpy checksum: {result.sum():.2f}")
        ctx.write_file("y.bin", result.tobytes())


def main() -> None:
    app = SaxpyApp()

    # -- 1. profile (golden run + the LD_PRELOAD=profiler.so step) -------------
    profile = repro.profile(app)
    print(f"profile    : {profile.num_dynamic_kernels} dynamic kernel(s), "
          f"{profile.total_count()} dynamic instructions")
    for kernel_profile in profile.kernels:
        print(f"             {kernel_profile.to_line()}")

    # -- 2. select a fault site uniformly over G_GP instructions ---------------
    [site] = repro.select_sites(profile, count=1, seed=2021)
    print("\nfault site (the parameter file of Figure 1):")
    for line in site.to_text().splitlines():
        print(f"             {line}")

    # -- 3. inject (the LD_PRELOAD=injector.so step) and classify (Table V) ----
    result = repro.inject(app, site)
    print(f"\ninjection  : {result.record.describe()}")
    print(f"outcome    : {result.outcome.label()}")
    print(f"run        : {result.artifacts.summary()}")
    if not result.masked:
        print(f"faulty out : {result.artifacts.stdout.strip()}")


if __name__ == "__main__":
    main()
