#!/usr/bin/env python
"""Quickstart: inject one transient fault into a SAXPY kernel.

Walks the whole Figure-1 workflow by hand on a five-line application:

1. define a target program (host code + one GPU kernel),
2. capture the golden run,
3. profile it (exact mode),
4. pick a fault site uniformly from the profile,
5. run the injection and classify the outcome.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    BitFlipModel,
    InstructionGroup,
    ProfilerTool,
    ProfilingMode,
    TransientInjectorTool,
    classify,
    select_transient_site,
)
from repro.runner import Application, capture_golden, run_app
from repro.utils.rng import SeedSequenceStream

SAXPY = """
.kernel saxpy
.params 4
    S2R R1, SR_TID.X ;
    MOV R2, c[0x0][0x0] ;          // n
    ISETP.GE.U32 P0, R1, R2 ;
@P0 EXIT ;
    MOV R3, c[0x0][0x4] ;          // x
    ISCADD R4, R1, R3, 2 ;
    LDG.32 R5, [R4] ;
    MOV R6, c[0x0][0x8] ;          // y
    ISCADD R7, R1, R6, 2 ;
    LDG.32 R8, [R7] ;
    MOV R9, c[0x0][0xc] ;          // a (f32 bits)
    FFMA R10, R5, R9, R8 ;         // a*x + y
    STG.32 [R7], R10 ;
    EXIT ;
"""


class SaxpyApp(Application):
    """y = a*x + y over 64 elements; prints a checksum, writes y out."""

    name = "saxpy_demo"

    def run(self, ctx):
        n = 64
        rt = ctx.cuda
        module = rt.load_module(SAXPY, name="saxpy_module")
        saxpy = rt.get_function(module, "saxpy")
        x = rt.to_device(np.arange(n, dtype=np.float32))
        y = rt.to_device(np.ones(n, dtype=np.float32))
        rt.launch(saxpy, 2, 32, n, x, y, 2.0)
        result = y.to_host()
        ctx.print(f"saxpy checksum: {result.sum():.2f}")
        ctx.write_file("y.bin", result.tobytes())


def main() -> None:
    app = SaxpyApp()

    # -- 1. golden run -------------------------------------------------------
    golden = capture_golden(app)
    print(f"golden run : {golden.summary()}")
    print(f"golden out : {golden.stdout.strip()}")

    # -- 2. profile (the LD_PRELOAD=profiler.so step) -------------------------
    profiler = ProfilerTool(ProfilingMode.EXACT)
    run_app(app, preload=[profiler])
    profile = profiler.profile
    print(f"\nprofile    : {profile.num_dynamic_kernels} dynamic kernel(s), "
          f"{profile.total_count()} dynamic instructions")
    for kernel_profile in profile.kernels:
        print(f"             {kernel_profile.to_line()}")

    # -- 3. select a fault site uniformly over G_GP instructions --------------
    rng = SeedSequenceStream(2021).child("sites").generator()
    site = select_transient_site(
        profile, InstructionGroup.G_GP, BitFlipModel.FLIP_SINGLE_BIT, rng
    )
    print("\nfault site (the parameter file of Figure 1):")
    for line in site.to_text().splitlines():
        print(f"             {line}")

    # -- 4. inject (the LD_PRELOAD=injector.so step) ---------------------------
    injector = TransientInjectorTool(site)
    observed = run_app(app, preload=[injector])
    print(f"\ninjection  : {injector.record.describe()}")

    # -- 5. classify against the golden run (Table V) --------------------------
    outcome = classify(app, golden, observed)
    print(f"outcome    : {outcome.label()}")
    if observed.stdout != golden.stdout:
        print(f"faulty out : {observed.stdout.strip()}")


if __name__ == "__main__":
    main()
