#!/usr/bin/env python
"""Permanent and intermittent fault campaigns (paper §III-B and §V).

Runs the paper's permanent-fault methodology on one program — one injection
per *executed* opcode, outcomes weighted by each opcode's dynamic
instruction share (Figure 3) — then shows the §V intermittent-fault
extension sweeping the activation probability on the heaviest opcode.

Run:  python examples/permanent_faults.py [workload]
"""

from __future__ import annotations

import sys

from repro.core import Campaign, CampaignConfig, IntermittentParams
from repro.workloads import get_workload


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "359.miniGhost"
    campaign = Campaign(get_workload(workload), CampaignConfig(seed=7))
    campaign.run_golden()
    profile = campaign.run_profile()

    print(f"== permanent-fault campaign on {workload} ==")
    print(f"{len(profile.executed_opcodes())} executed opcodes "
          f"(the other {171 - len(profile.executed_opcodes())} of the 171 "
          f"are skipped, as in paper Sec. IV-C)\n")

    result = campaign.run_permanent()
    print(f"{'opcode':8} {'weight':>7} {'activations':>12}  outcome")
    for item in sorted(result.results, key=lambda r: -r.weight):
        print(f"{item.opcode:8} {item.weight:7.3f} {item.activations:12d}  "
              f"{item.outcome.label()}")
    print(f"\nweighted outcomes (Figure 3): {result.tally.report()}")

    # -- intermittent extension ------------------------------------------------
    heaviest = max(result.results, key=lambda r: r.weight)
    print(f"\n== intermittent faults on {heaviest.opcode} "
          f"(site: SM {heaviest.params.sm_id}, lane {heaviest.params.lane_id}) ==")
    print(f"{'p(active)':>10} {'process':>8} {'activations':>12}  outcome")
    for probability in (0.05, 0.25, 1.0):
        for process in ("random", "bursty"):
            outcome = campaign.run_intermittent(
                IntermittentParams(
                    heaviest.params,
                    process=process,
                    activation_probability=probability,
                    burst_length=8.0,
                    seed=42,
                )
            )
            print(f"{probability:10.2f} {process:>8} {outcome.activations:12d}  "
                  f"{outcome.outcome.label()}")


if __name__ == "__main__":
    main()
