#!/usr/bin/env python
"""An end-to-end AVF study: parallel campaign + persistence + analysis.

Shows the workflow a resilience researcher would actually run on top of
NVBitFI: execute a campaign with injection runs fanned out over worker
processes, persist every artifact to a study directory (so the campaign is
auditable and resumable), and derive AVF estimates with per-kernel and
per-instruction-group breakdowns.

Run:  python examples/avf_study.py [workload] [injections] [study_dir]
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

from repro.core import (
    Campaign,
    CampaignConfig,
    CampaignStore,
    estimate_avf,
    format_avf_report,
    run_transient_parallel,
)
from repro.workloads import get_workload


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "352.ep"
    injections = int(sys.argv[2]) if len(sys.argv) > 2 else 40
    study_dir = Path(
        sys.argv[3] if len(sys.argv) > 3 else tempfile.mkdtemp(prefix="avf_study_")
    )

    config = CampaignConfig(num_transient=injections, seed=1234)

    print(f"== parallel campaign: {injections} faults into {workload} ==")
    started = time.perf_counter()
    result = run_transient_parallel(workload, config, max_workers=4)
    elapsed = time.perf_counter() - started
    print(f"completed in {elapsed:.1f}s "
          f"(sum of injection runtimes: "
          f"{sum(r.wall_time for r in result.results):.1f}s)")

    print("\n== persisting the study ==")
    campaign = Campaign(get_workload(workload), config)
    campaign.run_golden()
    campaign.run_profile()
    store = CampaignStore(study_dir)
    store.save_campaign(campaign.golden, campaign.profile, result)
    print(f"study directory: {study_dir}")
    print(f"  {len(store.completed_injections())} injections on disk, "
          f"plus golden/, profile.txt and results.csv")

    print("\n== reloading + analysing ==")
    tally = store.load_tally()  # rebuilt purely from disk
    print(f"reloaded tally: {tally.report(samples=injections)}")
    print(f"overall: {estimate_avf(tally)}")
    print()
    print(format_avf_report(workload, result))


if __name__ == "__main__":
    main()
