#!/usr/bin/env python
"""An end-to-end AVF study: parallel engine + persistence + analysis.

Shows the workflow a resilience researcher would actually run on top of
NVBitFI: one :class:`CampaignEngine` executes the campaign with injection
runs fanned out over worker processes, checkpointing every artifact to a
study directory *as it completes* (so the campaign is auditable and — even
if killed mid-flight — resumable by rerunning this script), and then AVF
estimates are derived with per-kernel and per-instruction-group breakdowns.

Run:  python examples/avf_study.py [workload] [injections] [study_dir]
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

from repro.core import (
    CampaignConfig,
    CampaignEngine,
    CampaignStore,
    EngineHooks,
    ParallelExecutor,
    estimate_avf,
    format_avf_report,
)


class ProgressHooks(EngineHooks):
    """Live progress: phase timings + running outcome counts."""

    def on_phase(self, phase, seconds):
        print(f"  phase {phase}: {seconds:.2f}s")

    def on_injection(self, index, outcome, completed, total, tally):
        if completed % 10 == 0 or completed == total:
            print(f"  [{completed}/{total}] {tally.report(samples=completed)}")


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "352.ep"
    injections = int(sys.argv[2]) if len(sys.argv) > 2 else 40
    study_dir = Path(
        sys.argv[3] if len(sys.argv) > 3 else tempfile.mkdtemp(prefix="avf_study_")
    )

    store = CampaignStore(study_dir)
    engine = CampaignEngine(
        workload,
        CampaignConfig(num_transient=injections, seed=1234),
        executor=ParallelExecutor(max_workers=4),
        store=store,
        hooks=ProgressHooks(),
    )

    print(f"== parallel campaign: {injections} faults into {workload} ==")
    started = time.perf_counter()
    result = engine.run_transient()
    elapsed = time.perf_counter() - started
    print(f"completed in {elapsed:.1f}s at "
          f"{engine.metrics.injections_per_second:.1f} injections/s "
          f"({engine.metrics.injections_loaded} resumed from disk; "
          f"sum of injection runtimes: "
          f"{sum(r.wall_time for r in result.results):.1f}s)")

    print("\n== the study on disk ==")
    print(f"study directory: {study_dir}")
    print(f"  {len(store.completed_injections())} injections on disk, "
          f"plus golden/, profile.txt and results.csv")

    print("\n== reloading + analysing ==")
    tally = store.load_tally()  # rebuilt purely from disk
    print(f"reloaded tally: {tally.report(samples=injections)}")
    print(f"overall: {estimate_avf(tally)}")
    print()
    print(format_avf_report(workload, result))


if __name__ == "__main__":
    main()
