#!/usr/bin/env python
"""A full transient-fault campaign on a SpecACCEL-style workload.

Reproduces the paper's §IV-B methodology on one program: N uniform
injections drawn from an instruction profile, Table V classification, and
a report with the confidence intervals the paper discusses (100 injections
=> 90% confidence, +-8% margins).

Run:  python examples/transient_campaign.py [workload] [injections]
"""

from __future__ import annotations

import sys
from collections import Counter

from repro.core import (
    BitFlipModel,
    Campaign,
    CampaignConfig,
    InstructionGroup,
    error_margin,
)
from repro.workloads import get_workload


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "303.ostencil"
    injections = int(sys.argv[2]) if len(sys.argv) > 2 else 100

    config = CampaignConfig(
        group=InstructionGroup.G_GP,
        model=BitFlipModel.FLIP_SINGLE_BIT,
        num_transient=injections,
        seed=2021,
    )
    campaign = Campaign(get_workload(workload), config)

    print(f"== golden run of {workload} ==")
    golden = campaign.run_golden()
    print(golden.summary())

    print("\n== profiling (exact) ==")
    profile = campaign.run_profile()
    print(f"{profile.num_static_kernels} static kernels, "
          f"{profile.num_dynamic_kernels} dynamic kernels, "
          f"{profile.total_count():,} dynamic instructions "
          f"({profile.total_count(config.group):,} in {config.group.name})")
    print(f"executed opcodes: {len(profile.executed_opcodes())} of 171")

    print(f"\n== injecting {injections} transient faults ==")
    result = campaign.run_transient()

    print("\n== results ==")
    print(result.tally.report(confidence=0.90, samples=injections))
    print(f"(with n={injections}, worst-case margin is "
          f"+-{error_margin(injections, 0.90) * 100:.1f}% at 90% confidence; "
          f"the paper uses the same statistics)")

    symptoms = Counter(r.outcome.symptom for r in result.results)
    print("\nsymptom breakdown (Table V rows):")
    for symptom, count in symptoms.most_common():
        print(f"  {count:4d}  {symptom}")

    hit_kernels = Counter(
        r.record.kernel_name for r in result.results if r.record.injected
    )
    print("\ninjections per kernel (uniform over dynamic instructions):")
    for kernel, count in hit_kernels.most_common(8):
        print(f"  {count:4d}  {kernel}")

    print(f"\ncampaign wall time: {result.total_time:.1f}s "
          f"(profiling {result.profile_time:.1f}s, "
          f"median injection {result.median_injection_time * 1e3:.0f}ms)")


if __name__ == "__main__":
    main()
