#!/usr/bin/env python
"""A full transient-fault campaign on a SpecACCEL-style workload.

Reproduces the paper's §IV-B methodology on one program through the
stable :func:`repro.run_campaign` facade: N uniform injections drawn from
an instruction profile, Table V classification, and a report with the
confidence intervals the paper discusses (100 injections => 90%
confidence, +-8% margins).

Also demonstrates the observability layer: the campaign runs under a
:class:`repro.obs.Tracer` (spans + per-injection events, buffered in
memory here; pass a ``JsonlSink`` to write a trace file) and a
:class:`repro.obs.MetricsRegistry`, and the per-phase time table is
rendered straight from the recorded events.

Run:  python examples/transient_campaign.py [workload] [injections]
"""

from __future__ import annotations

import sys
from collections import Counter

import repro
from repro.core import BitFlipModel, InstructionGroup, error_margin
from repro.core.report import render_phase_breakdown
from repro.obs import MemorySink, MetricsRegistry, Tracer


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "303.ostencil"
    injections = int(sys.argv[2]) if len(sys.argv) > 2 else 100

    config = repro.CampaignConfig(
        workload=workload,
        group=InstructionGroup.G_GP,
        model=BitFlipModel.FLIP_SINGLE_BIT,
        num_transient=injections,
        seed=2021,
    )
    sink = MemorySink()
    tracer = Tracer(sink=sink)
    registry = MetricsRegistry()

    print(f"== running {injections} transient injections on {workload} ==")
    result = repro.run_campaign(config, tracer=tracer, metrics=registry)
    tracer.close()

    print("\n== results ==")
    print(result.tally.report(confidence=0.90, samples=injections))
    print(f"(with n={injections}, worst-case margin is "
          f"+-{error_margin(injections, 0.90) * 100:.1f}% at 90% confidence; "
          f"the paper uses the same statistics)")

    symptoms = Counter(r.outcome.symptom for r in result.results)
    print("\nsymptom breakdown (Table V rows):")
    for symptom, count in symptoms.most_common():
        print(f"  {count:4d}  {symptom}")

    hit_kernels = Counter(
        r.record.kernel_name for r in result.results if r.record.injected
    )
    print("\ninjections per kernel (uniform over dynamic instructions):")
    for kernel, count in hit_kernels.most_common(8):
        print(f"  {count:4d}  {kernel}")

    print("\n== per-phase time (from the recorded trace) ==")
    print(render_phase_breakdown(sink.events), end="")

    print("\n== metrics registry ==")
    print(registry.render_text(), end="")

    print(f"\ncampaign wall time: {result.total_time:.1f}s "
          f"(profiling {result.profile_time:.1f}s, "
          f"median injection {result.median_injection_time * 1e3:.0f}ms)")


if __name__ == "__main__":
    main()
