#!/usr/bin/env python
"""Writing a custom NVBit tool (the substrate NVBitFI is built on, §III-C).

NVBitFI's profiler and injectors are ordinary NVBit tools; this example
builds two more from scratch against the same API:

* ``OpcodeHistogramTool`` — a minimal dynamic-instruction histogrammer
  (what `nvbit/tools/opcode_hist` does in the real framework);
* ``ValueWatchTool``      — watches one register of one kernel and records
  every value it takes (a tiny debugger).

Run:  python examples/build_your_own_tool.py
"""

from __future__ import annotations

from collections import Counter

from repro.cuda.driver import CudaEvent
from repro.nvbit import IPoint, NVBitTool
from repro.runner import run_app
from repro.workloads import get_workload


class OpcodeHistogramTool(NVBitTool):
    """Counts executed instructions per opcode across the whole program."""

    name = "opcode_hist"

    def __init__(self) -> None:
        super().__init__()
        self.histogram: Counter[str] = Counter()
        self._instrumented = set()

    def nvbit_at_cuda_event(self, driver, event, payload, is_exit) -> None:
        if event is not CudaEvent.LAUNCH_KERNEL or is_exit:
            return
        func = payload.func
        if func not in self._instrumented:
            self._instrumented.add(func)
            for instr in self.nvbit.get_instrs(func):
                instr.insert_call(self._count, IPoint.AFTER)
        self.nvbit.enable_instrumented(func, True)

    def _count(self, site) -> None:
        self.histogram[site.opcode] += site.num_executed


class ValueWatchTool(NVBitTool):
    """Records every value written to one register of one kernel."""

    name = "value_watch"

    def __init__(self, kernel_name: str, register: int, lane: int = 0) -> None:
        super().__init__()
        self.kernel_name = kernel_name
        self.register = register
        self.lane = lane
        self.trace: list[tuple[int, str, int]] = []  # (pc, opcode, value)
        self._instrumented = set()

    def nvbit_at_cuda_event(self, driver, event, payload, is_exit) -> None:
        if event is not CudaEvent.LAUNCH_KERNEL or is_exit:
            return
        func = payload.func
        if func.name != self.kernel_name:
            self.nvbit.enable_instrumented(func, False)
            return
        if func not in self._instrumented:
            self._instrumented.add(func)
            for instr in self.nvbit.get_instrs(func):
                # Only instructions that write the watched register.
                if self.register in instr.get_dest_regs():
                    instr.insert_call(self._watch, IPoint.AFTER)
        self.nvbit.enable_instrumented(func, True)

    def _watch(self, site) -> None:
        if site.exec_mask[self.lane]:
            self.trace.append(
                (site.instr.pc, site.opcode, site.read_reg(self.lane, self.register))
            )


def main() -> None:
    app = get_workload("314.omriq")

    print("== tool 1: opcode histogram over 314.omriq ==")
    histogram_tool = OpcodeHistogramTool()
    run_app(app, preload=[histogram_tool])
    total = sum(histogram_tool.histogram.values())
    for opcode, count in histogram_tool.histogram.most_common(10):
        print(f"  {opcode:8} {count:8,}  ({count / total * 100:4.1f}%)")
    print(f"  {'total':8} {total:8,}")

    print("\n== tool 2: watch R13 of computeQ, lane 0 (accumulator) ==")
    watcher = ValueWatchTool("computeQ", register=13, lane=0)
    run_app(app, preload=[watcher])
    print(f"  {len(watcher.trace)} writes observed; first 8:")
    for pc, opcode, value in watcher.trace[:8]:
        print(f"    pc={pc:3d} {opcode:6} -> 0x{value:08x}")


if __name__ == "__main__":
    main()
