#!/usr/bin/env python
"""The paper's motivating scenario: injecting into an AV application built
from dynamically loaded GPU libraries (paper §IV, first paragraph).

The host program loads 'libperception.so' and 'libplanning.so' at runtime;
their kernels were never part of the application build.  NVBitFI attaches
via the preload mechanism and can profile and inject into them without any
source or recompilation — the capability the paper argues no other tool
provides for a large real-time system.

Run:  python examples/av_dynamic_libraries.py
"""

from __future__ import annotations

from collections import Counter

from repro.core import Campaign, CampaignConfig, Outcome
from repro.workloads import AvPipeline


def main() -> None:
    app = AvPipeline()
    campaign = Campaign(app, CampaignConfig(num_transient=60, seed=99))

    print("== golden frame pipeline ==")
    golden = campaign.run_golden()
    print(golden.stdout.strip())

    print("\n== profiling the dynamically loaded libraries ==")
    profile = campaign.run_profile()
    per_kernel = Counter()
    for kernel_profile in profile.kernels:
        per_kernel[kernel_profile.kernel_name] += kernel_profile.total()
    for kernel, instructions in per_kernel.most_common():
        print(f"  {kernel:24} {instructions:8,} dynamic instructions")

    print("\n== 60-fault transient campaign across the pipeline ==")
    result = campaign.run_transient()
    print(result.tally.report(samples=60))

    by_kernel = Counter()
    backups = 0
    for item in result.results:
        if item.record.injected:
            by_kernel[item.record.kernel_name] += 1
        if item.outcome.outcome is Outcome.DUE and "exit status" in item.outcome.symptom:
            backups += 1
    print("\ninjections per library kernel:")
    for kernel, count in by_kernel.most_common():
        print(f"  {count:3d}  {kernel}")
    print(f"\nframes where the safety monitor engaged the backup mode "
          f"(application-detected DUE): {backups}")

    potential = sum(1 for r in result.results if r.outcome.potential_due)
    print(f"potential DUEs (GPU detected the error, host never checked): "
          f"{potential}")


if __name__ == "__main__":
    main()
