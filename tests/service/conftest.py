"""Shared fixtures for the service tests.

One tiny reference campaign (serial, directory-backed) is run once per
session; its ``results.csv`` bytes are the parity oracle every FaultDB
export is checked against.
"""

from __future__ import annotations

import pytest

import repro
from repro.core.store import CampaignStore

WORKLOAD = "360.ilbdc"
NUM_INJECTIONS = 4
SEED = 3


def make_config(**overrides) -> repro.CampaignConfig:
    return repro.CampaignConfig(
        workload=WORKLOAD, num_transient=NUM_INJECTIONS, seed=SEED
    ).with_overrides(**overrides)


@pytest.fixture(scope="session")
def reference(tmp_path_factory):
    """The single-process reference run: (campaign result, results.csv bytes)."""
    root = tmp_path_factory.mktemp("reference-store")
    result = repro.run_campaign(make_config(), store=CampaignStore(root))
    return result, (root / "results.csv").read_bytes()
