"""Scheduler: sharding, lease lifecycle, requeue-on-death, worker parity."""

from __future__ import annotations

import time

import pytest

from repro.service import CampaignScheduler, FaultDB, shard_units, worker_main
from repro.errors import ReproError

from tests.service.conftest import make_config


@pytest.fixture
def db(tmp_path):
    with FaultDB(tmp_path / "faults.sqlite") as handle:
        yield handle


# -- sharding ------------------------------------------------------------------


def test_shard_units_covers_every_index_once():
    units = shard_units(10, workers=3)
    flattened = [index for unit in units for index in unit]
    assert flattened == list(range(10))
    assert all(units)  # no empty units


def test_shard_units_gives_each_worker_several_units():
    units = shard_units(100, workers=2)
    assert len(units) >= 2 * 2  # several small units, not one big one each


def test_shard_units_empty_and_explicit_size():
    assert shard_units(0, workers=2) == []
    assert shard_units(5, workers=2, unit_size=2) == [[0, 1], [2, 3], [4]]


# -- leases --------------------------------------------------------------------


def test_lease_lifecycle(db):
    db.create_campaign("c", make_config())
    db.insert_units("c", [[0, 1], [2, 3]])

    lease = db.lease_unit("c", "w0", lease_seconds=30.0)
    assert lease == (0, [0, 1])
    assert db.heartbeat_unit("c", 0, "w0", lease_seconds=30.0)
    assert not db.all_units_done("c")

    other = db.lease_unit("c", "w1", lease_seconds=30.0)
    assert other == (1, [2, 3])
    assert db.lease_unit("c", "w2", lease_seconds=30.0) is None  # all leased

    db.complete_unit("c", 0, "w0")
    db.complete_unit("c", 1, "w1")
    assert db.all_units_done("c")
    assert db.unit_states("c") == {"done": 2}


def test_expired_lease_is_requeued_to_the_next_worker(db):
    db.create_campaign("c", make_config())
    db.insert_units("c", [[0, 1]])

    assert db.lease_unit("c", "doomed", lease_seconds=0.01) is not None
    time.sleep(0.05)
    assert db.has_runnable_unit("c")

    # The replacement claims the dead worker's unit; the original's
    # heartbeat (and completion) are rejected — it lost the lease.
    assert db.lease_unit("c", "heir", lease_seconds=30.0) == (0, [0, 1])
    assert not db.heartbeat_unit("c", 0, "doomed", lease_seconds=30.0)
    db.complete_unit("c", 0, "doomed")  # no-op: wrong worker
    assert not db.all_units_done("c")
    db.complete_unit("c", 0, "heir")
    assert db.all_units_done("c")


# -- workers -------------------------------------------------------------------


def test_worker_main_drains_every_unit(db, reference):
    _, reference_bytes = reference
    db.create_campaign("c", make_config())
    db.insert_units("c", [[0, 1], [2, 3]])
    worker_main(str(db.path), "c", "w0", lease_seconds=30.0)
    assert db.all_units_done("c")
    assert db.export_results_csv("c").encode() == reference_bytes


def test_scheduler_inline_path_when_workers_zero(db, reference):
    _, reference_bytes = reference
    db.create_campaign("c", make_config())
    CampaignScheduler(db, "c", workers=0).run()
    assert db.campaign_row("c")["state"] == "done"
    assert db.load_artifact("c", "results.csv") == reference_bytes


def test_scheduler_rejects_permanent_campaigns(db):
    db.create_campaign("c", make_config(), kind="permanent")
    with pytest.raises(ReproError, match="transient campaigns only"):
        CampaignScheduler(db, "c", workers=0).run()
    assert db.campaign_row("c")["state"] == "failed"


def test_scheduler_dedups_against_a_finished_campaign(db, reference):
    _, reference_bytes = reference
    db.create_campaign("first", make_config())
    CampaignScheduler(db, "first", workers=0).run()

    # An identical second campaign: every site's fingerprint already
    # executed, so the sharded path copies outcomes and runs nothing.
    db.create_campaign("second", make_config())
    CampaignScheduler(db, "second", workers=2).run()
    assert db.campaign_row("second")["state"] == "done"
    assert db.load_artifact("second", "results.csv") == reference_bytes
    assert db.unit_states("second") == {}  # nothing left to shard
    donors = {
        db.find_outcome(fp)["campaign_id"]
        for fp in db.site_fingerprints("second").values()
    }
    assert donors == {"first"}


def test_worker_abandons_unit_when_lease_is_lost(db, monkeypatch):
    """Regression: ``_heartbeat_loop`` noticed ``heartbeat_unit(...) ==
    False`` but only stopped renewing — the worker finished the whole unit
    as wasted duplicate work and even marked it done over the new lease
    holder's claim.  The loop must signal the worker to abandon the unit."""
    db.create_campaign("c", make_config())
    db.insert_units("c", [[0, 1, 2, 3]])

    real_heartbeat = FaultDB.heartbeat_unit
    beats = []

    def lost_first_beat(self, campaign_id, unit_id, worker, lease_seconds):
        beats.append(unit_id)
        if len(beats) == 1:
            return False  # simulate lease expiry mid-unit
        return real_heartbeat(self, campaign_id, unit_id, worker, lease_seconds)

    monkeypatch.setattr(FaultDB, "heartbeat_unit", lost_first_beat)
    # A tiny lease makes the first beat fire while the unit is mid-flight.
    worker_main(str(db.path), "c", "w0", lease_seconds=0.05)

    # The abandoned unit was NOT completed by w0; at least one beat fired,
    # the unit went back to runnable, and w0's second lease of the same
    # unit (attempts == 2) finished only the leftover injections.
    assert beats
    assert db.all_units_done("c")
    states = db.unit_states("c")
    assert states == {"done": 1}
    with db._lock:
        attempts = db._conn.execute(
            "SELECT attempts FROM units WHERE campaign_id = 'c'"
        ).fetchone()[0]
    assert attempts >= 2  # re-leased after the abandon, not finished on lease 1
    assert len(db.completed_injections("c")) == 4


@pytest.mark.slow
def test_two_worker_campaign_is_byte_identical(db, tmp_path):
    import repro
    from repro.core.store import CampaignStore

    db.create_campaign("c", make_config(num_transient=8))
    config = db.campaign_config("c")
    CampaignScheduler(db, "c", workers=2, lease_seconds=10.0).run()
    assert db.campaign_row("c")["state"] == "done"
    assert len(db.completed_injections("c")) == 8

    # Byte parity against the equivalent single-process run.
    root = tmp_path / "reference"
    repro.run_campaign(config, store=CampaignStore(root))
    assert db.load_artifact("c", "results.csv") == (
        root / "results.csv"
    ).read_bytes()
